/**
 * @file
 * Fault-injection fuzzer: replays seeded fault scenarios against the
 * simulator and verifies every one is defended the way its family demands
 * (user faults -> ConfigError, model corruptions -> ProtocolError /
 * WatchdogError, stress -> clean completion).  Exits nonzero on the first
 * class of mismatch; a failing scenario reproduces with the same
 * --seed / index pair.
 *
 * Usage: fault_fuzz [--scenarios N] [--seed S] [--scheduler NAME|all]
 *                   [--channel-jobs N] [--verbose]
 *
 * --scheduler / --channel-jobs replay the same scenario stream under a
 * different scheduler or worker count; the defenses must not change
 * (tests/sim/fault_injection_test.cc asserts exact equality).  Scheduler
 * names come from the factory registry (AllSchedulerKinds), so a newly
 * registered policy is accepted — and swept by `--scheduler all` — with
 * no fuzzer change.
 */
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "sched/factory.hh"
#include "sim/fault_injector.hh"

using namespace parbs;

namespace {

/** Runs @p scenarios scenarios under @p options; @return mismatches. */
std::uint64_t
RunSweep(std::uint64_t scenarios, std::uint64_t seed,
         const FaultOptions& options, bool verbose)
{
    FaultInjector injector(seed);
    std::uint64_t passed = 0;
    std::uint64_t failed = 0;
    std::uint64_t by_kind[kNumFaultKinds] = {};
    for (std::uint64_t index = 0; index < scenarios; ++index) {
        const FaultOutcome outcome = injector.RunScenario(index, options);
        by_kind[static_cast<std::size_t>(outcome.kind)] += 1;
        if (outcome.Passed()) {
            passed += 1;
            if (verbose) {
                std::printf("[%6llu] %-22s %-18s %s\n",
                            static_cast<unsigned long long>(index),
                            FaultKindName(outcome.kind),
                            DefenseName(outcome.observed),
                            outcome.detail.c_str());
            }
        } else {
            failed += 1;
            std::fprintf(stderr,
                         "FAIL [%llu] %s: expected %s, observed %s\n  %s\n",
                         static_cast<unsigned long long>(index),
                         FaultKindName(outcome.kind),
                         DefenseName(outcome.expected),
                         DefenseName(outcome.observed),
                         outcome.detail.c_str());
        }
    }

    std::printf("fault_fuzz: scheduler %s: %llu scenarios, %llu defended "
                "as expected, %llu mismatched (seed 0x%llx)\n",
                SchedulerKindName(options.scheduler),
                static_cast<unsigned long long>(scenarios),
                static_cast<unsigned long long>(passed),
                static_cast<unsigned long long>(failed),
                static_cast<unsigned long long>(seed));
    for (std::size_t kind = 0; kind < kNumFaultKinds; ++kind) {
        std::printf("  %-22s %llu\n",
                    FaultKindName(static_cast<FaultKind>(kind)),
                    static_cast<unsigned long long>(by_kind[kind]));
    }
    return failed;
}

} // namespace

int
main(int argc, char** argv)
{
    std::uint64_t scenarios = 1000;
    std::uint64_t seed = 0xFA11;
    bool verbose = false;
    bool all_schedulers = false;
    FaultOptions options;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--scenarios") == 0 && i + 1 < argc) {
            scenarios = std::strtoull(argv[++i], nullptr, 0);
        } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
            seed = std::strtoull(argv[++i], nullptr, 0);
        } else if (std::strcmp(argv[i], "--scheduler") == 0 && i + 1 < argc) {
            i += 1;
            if (std::strcmp(argv[i], "all") == 0) {
                all_schedulers = true;
            } else if (!ParseSchedulerKind(argv[i], options.scheduler)) {
                std::fprintf(stderr, "unknown scheduler: %s (registry:",
                             argv[i]);
                for (const SchedulerKind kind : AllSchedulerKinds()) {
                    std::fprintf(stderr, " %s", SchedulerKindName(kind));
                }
                std::fprintf(stderr, ", or all)\n");
                return 2;
            }
        } else if (std::strcmp(argv[i], "--channel-jobs") == 0 &&
                   i + 1 < argc) {
            options.channel_jobs = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 0));
        } else if (std::strcmp(argv[i], "--verbose") == 0) {
            verbose = true;
        } else {
            std::fprintf(stderr,
                         "usage: %s [--scenarios N] [--seed S] "
                         "[--scheduler NAME|all] [--channel-jobs N] "
                         "[--verbose]\n",
                         argv[0]);
            return 2;
        }
    }

    std::uint64_t failed = 0;
    if (all_schedulers) {
        for (const SchedulerKind kind : AllSchedulerKinds()) {
            options.scheduler = kind;
            failed += RunSweep(scenarios, seed, options, verbose);
        }
    } else {
        failed = RunSweep(scenarios, seed, options, verbose);
    }
    return failed == 0 ? 0 : 1;
}
