/**
 * @file
 * Iterative calibration of the synthetic-trace knobs against the Table 3
 * targets, measured on alone runs of the baseline 4-core system.
 *
 * Knobs and the target they are fitted to:
 *   row_run_length     <- row-buffer hit rate
 *   burst_banks        <- BLP (threads with paper BLP >= 1.6)
 *   bank_switch_prob   <- BLP (sticky/streaming threads, paper BLP < 1.6)
 *   dependent_fraction <- AST/req (non-intensive threads only; intensive
 *                         threads are streaming: dep = 0 so that their
 *                         standing request queues exhibit the FR-FCFS
 *                         capture behaviour the paper describes)
 *
 * Output is pasted into src/trace/spec_profiles.cc.
 */
#include <algorithm>
#include <cstdio>
#include "sim/config.hh"
#include "sim/system.hh"
#include "trace/spec_profiles.hh"
#include "trace/synthetic.hh"

using namespace parbs;

static ThreadMeasurement MeasureAlone(const SyntheticParams& params) {
    SystemConfig config = SystemConfig::Baseline(4);
    config.scheduler.kind = SchedulerKind::kFrFcfs;
    dram::AddressMapper mapper(config.geometry, config.xor_bank_hash);
    std::vector<std::unique_ptr<TraceSource>> traces;
    traces.push_back(std::make_unique<SyntheticTraceSource>(
        params, mapper, 0, 4, 0xCA11B));
    System system(config, std::move(traces));
    system.Run(2'000'000);
    return system.Measure(0);
}

int main() {
    const int rounds = 8;
    struct Knobs { double run, banks, sw, dep; };
    std::vector<Knobs> knobs;
    for (const auto& p : SpecProfiles()) {
        Knobs k;
        k.run = std::clamp(p.paper_rb_hit >= 1.0 ? 32.0
                           : 1.0 / (1.0 - p.paper_rb_hit), 1.0, 32.0);
        k.banks = std::max(1.0, p.paper_blp);
        k.sw = 0.5;
        k.dep = p.paper_mpki > 15.0 ? 0.0 : 0.1;
        knobs.push_back(k);
    }
    for (int r = 0; r < rounds; ++r) {
        std::printf("--- round %d ---\n", r);
        for (std::size_t i = 0; i < SpecProfiles().size(); ++i) {
            const auto& p = SpecProfiles()[i];
            SyntheticParams params;
            params.mpki = p.paper_mpki;
            params.row_run_length = knobs[i].run;
            params.burst_banks = knobs[i].banks;
            params.bank_switch_prob = knobs[i].sw;
            params.dependent_fraction = knobs[i].dep;
            params.write_fraction = 0.15;
            ThreadMeasurement m = MeasureAlone(params);

            double ht = p.paper_rb_hit, hm = m.row_hit_rate;
            if (hm < 0.999 && ht < 0.999) {
                knobs[i].run = std::clamp(
                    knobs[i].run * (1.0 - hm) / (1.0 - ht), 1.0, 32.0);
            }
            // BLP rule: burst_banks stays anchored near the paper BLP so
            // that a thread's traffic concentrates on that many hot banks
            // (uniformly spreading over all banks would make the system
            // bus-bound and scheduler-insensitive).  bank_switch_prob is
            // the fine-tuning knob; banks grows only if stickiness tops
            // out, and never beyond paper BLP + 2.
            double bt = p.paper_blp, bm = std::max(m.blp, 1.0);
            if (bm > bt) {
                knobs[i].sw = std::clamp(
                    knobs[i].sw * (bt - 0.98) / std::max(bm - 0.98, 0.02),
                    0.02, 1.0);
            } else if (knobs[i].sw < 0.99) {
                knobs[i].sw = std::clamp(
                    knobs[i].sw * (bt - 0.98) / std::max(bm - 0.98, 0.02),
                    0.02, 1.0);
            } else {
                knobs[i].banks = std::clamp(knobs[i].banks * bt / bm, 1.0,
                                            p.paper_blp + 2.0);
            }
            {
                // Fit dependence to the AST/req target.  Intensive threads
                // target half the paper value: keeping a standing request
                // queue (MLP 3-6) preserves the FR-FCFS capture behaviour
                // and queue contention that drive the paper's unfairness
                // results, at the cost of a lower absolute alone-MCPI.
                const double scale = p.paper_mpki > 15.0 ? 0.5 : 1.0;
                double at = p.paper_ast_per_req * scale, am = m.ast_per_req;
                knobs[i].dep = std::clamp(
                    knobs[i].dep + 0.35 * (at - am) / at, 0.0, 0.95);
            }
            if (r == rounds - 1) {
                std::printf("%-16s run=%5.2f banks=%5.2f sw=%4.2f dep=%4.2f"
                            " | RB %.2f/%.2f BLP %.2f/%.2f MCPI %5.2f/%5.2f"
                            " AST %3.0f/%3.0f\n",
                            std::string(p.name).c_str(), knobs[i].run,
                            knobs[i].banks, knobs[i].sw, knobs[i].dep,
                            m.row_hit_rate, p.paper_rb_hit, m.blp,
                            p.paper_blp, m.mcpi, p.paper_mcpi,
                            m.ast_per_req, p.paper_ast_per_req);
            }
        }
    }
    std::printf("\n--- paste into spec_profiles.cc ---\n");
    for (std::size_t i = 0; i < SpecProfiles().size(); ++i) {
        const auto& p = SpecProfiles()[i];
        std::printf("            %.4g, %.4g, %.4g, %.4g),  // %s\n",
                    knobs[i].run, knobs[i].banks, knobs[i].sw,
                    knobs[i].dep, std::string(p.name).c_str());
    }
    return 0;
}
