/**
 * @file
 * Aggregates the per-binary JSON files the bench harness writes (one per
 * `--json` invocation, conventionally under bench/out/) into a single
 * BENCH_results.json, and optionally checks them against the checked-in
 * golden results:
 *
 *   bench_report --dir bench/out --out BENCH_results.json
 *   bench_report --dir bench/out --check bench/golden [--wall-tolerance 0.2]
 *   bench_report --dir bench/out --prev perf/BENCH_results-pr3.json
 *
 * The check compares each file's deterministic "run" subtree exactly
 * (any metric drift fails) and its wall clock against the golden wall
 * clock with a relative tolerance (default +20%) — the perf-regression
 * gate in CI.  Exit status: 0 clean, 1 regression/drift, 2 usage error.
 *
 * With --prev (a previously checked-in aggregate report, see perf/), a
 * per-binary speedup-vs-previous-run line is printed for every benchmark
 * present in both runs — the perf trajectory across PRs.  Informational
 * only: wall clocks from different machines are not gated.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.hh"

namespace fs = std::filesystem;
using parbs::json::Value;

namespace {

/** Sorted *.json paths directly inside @p dir. */
std::vector<fs::path>
JsonFiles(const fs::path& dir)
{
    std::vector<fs::path> files;
    if (!fs::is_directory(dir)) {
        return files;
    }
    for (const auto& entry : fs::directory_iterator(dir)) {
        if (entry.is_regular_file() &&
            entry.path().extension() == ".json") {
            files.push_back(entry.path());
        }
    }
    std::sort(files.begin(), files.end());
    return files;
}

bool
LoadJson(const fs::path& path, Value& out)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "bench_report: cannot read %s\n",
                     path.string().c_str());
        return false;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    try {
        out = Value::Parse(buffer.str());
    } catch (const parbs::json::ParseError& error) {
        std::fprintf(stderr, "bench_report: %s: %s\n",
                     path.string().c_str(), error.what());
        return false;
    }
    return true;
}

double
WallSeconds(const Value& root)
{
    const Value* env = root.Find("env");
    const Value* wall = env != nullptr ? env->Find("wall_seconds") : nullptr;
    return wall != nullptr ? wall->AsNumber() : 0.0;
}

/**
 * Prints one "speedup" line per benchmark present in both the fresh
 * aggregate @p report and the previous aggregate @p prev (matched by the
 * per-entry "file" name): previous wall, current wall, and the ratio
 * (>1x means this run is faster).
 */
void
PrintSpeedups(const Value& report, const Value& prev)
{
    const Value* prev_benchmarks = prev.Find("benchmarks");
    const Value* benchmarks = report.Find("benchmarks");
    if (prev_benchmarks == nullptr || benchmarks == nullptr) {
        std::fprintf(stderr,
                     "bench_report: --prev file has no \"benchmarks\" "
                     "array; skipping speedups\n");
        return;
    }
    double prev_total = 0.0;
    double total = 0.0;
    std::size_t matched = 0;
    for (const Value& entry : benchmarks->items()) {
        const Value* file = entry.Find("file");
        if (file == nullptr) {
            continue;
        }
        const Value* prev_entry = nullptr;
        for (const Value& candidate : prev_benchmarks->items()) {
            const Value* candidate_file = candidate.Find("file");
            if (candidate_file != nullptr &&
                candidate_file->AsString() == file->AsString()) {
                prev_entry = &candidate;
                break;
            }
        }
        if (prev_entry == nullptr) {
            std::fprintf(stderr, "speedup %-28s (new benchmark, no "
                                 "previous run)\n",
                         file->AsString().c_str());
            continue;
        }
        const double wall = WallSeconds(entry);
        const double prev_wall = WallSeconds(*prev_entry);
        if (wall <= 0.0 || prev_wall <= 0.0) {
            continue;
        }
        matched += 1;
        total += wall;
        prev_total += prev_wall;
        std::fprintf(stderr, "speedup %-28s %6.2fs -> %6.2fs  (%.2fx)\n",
                     file->AsString().c_str(), prev_wall, wall,
                     prev_wall / wall);
    }
    if (matched > 0) {
        std::fprintf(stderr,
                     "speedup total (%zu matched)          %6.2fs -> "
                     "%6.2fs  (%.2fx)\n",
                     matched, prev_total, total, prev_total / total);
    }
}

/**
 * Compares one result file against its golden counterpart.  @return true
 * when the run subtree matches exactly and the wall clock is within
 * tolerance.
 */
bool
CheckAgainstGolden(const std::string& name, const Value& result,
                   const Value& golden, double wall_tolerance)
{
    bool ok = true;
    const Value* run = result.Find("run");
    const Value* golden_run = golden.Find("run");
    if (run == nullptr || golden_run == nullptr) {
        std::fprintf(stderr, "FAIL %s: missing \"run\" subtree\n",
                     name.c_str());
        return false;
    }
    if (!(*run == *golden_run)) {
        std::fprintf(stderr,
                     "FAIL %s: simulated metrics drifted from golden "
                     "(the \"run\" subtree differs)\n",
                     name.c_str());
        ok = false;
    }
    const double wall = WallSeconds(result);
    const double golden_wall = WallSeconds(golden);
    if (golden_wall > 0.0 && wall > golden_wall * (1.0 + wall_tolerance)) {
        std::fprintf(stderr,
                     "FAIL %s: wall clock %.2fs exceeds golden %.2fs by "
                     "more than %.0f%%\n",
                     name.c_str(), wall, golden_wall,
                     wall_tolerance * 100.0);
        ok = false;
    }
    if (ok) {
        std::fprintf(stderr, "ok   %s (wall %.2fs, golden %.2fs)\n",
                     name.c_str(), wall, golden_wall);
    }
    return ok;
}

} // namespace

int
main(int argc, char** argv)
{
    std::string dir = "bench/out";
    std::string out_path = "BENCH_results.json";
    std::string golden_dir;
    std::string prev_path;
    double wall_tolerance = 0.20;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--dir" && i + 1 < argc) {
            dir = argv[++i];
        } else if (arg == "--out" && i + 1 < argc) {
            out_path = argv[++i];
        } else if (arg == "--check" && i + 1 < argc) {
            golden_dir = argv[++i];
        } else if (arg == "--prev" && i + 1 < argc) {
            prev_path = argv[++i];
        } else if (arg == "--wall-tolerance" && i + 1 < argc) {
            wall_tolerance = std::strtod(argv[++i], nullptr);
        } else if (arg == "--help" || arg == "-h") {
            std::fprintf(stderr,
                         "usage: %s [--dir DIR] [--out PATH] "
                         "[--check GOLDEN_DIR] [--prev REPORT] "
                         "[--wall-tolerance F]\n",
                         argv[0]);
            return 0;
        } else {
            std::fprintf(stderr, "bench_report: unknown option %s\n",
                         arg.c_str());
            return 2;
        }
    }

    const std::vector<fs::path> files = JsonFiles(dir);
    if (files.empty()) {
        std::fprintf(stderr, "bench_report: no .json files in %s\n",
                     dir.c_str());
        return 2;
    }

    Value benchmarks = Value::Array();
    double total_wall = 0.0;
    for (const fs::path& path : files) {
        Value root;
        if (!LoadJson(path, root)) {
            return 2;
        }
        total_wall += WallSeconds(root);
        Value entry = Value::Object();
        entry.Set("file", path.filename().string());
        entry.Set("env", std::move(*root.Find("env")));
        entry.Set("run", std::move(*root.Find("run")));
        benchmarks.Append(std::move(entry));
    }

    Value report = Value::Object();
    Value summary = Value::Object();
    summary.Set("benchmarks",
                static_cast<std::uint64_t>(benchmarks.items().size()));
    summary.Set("total_wall_seconds", total_wall);
    report.Set("summary", std::move(summary));
    report.Set("benchmarks", std::move(benchmarks));

    {
        std::ofstream out(out_path);
        if (!out) {
            std::fprintf(stderr, "bench_report: cannot write %s\n",
                         out_path.c_str());
            return 2;
        }
        out << report.Dump(2) << "\n";
    }
    std::fprintf(stderr, "bench_report: wrote %s (%zu benchmarks, "
                         "%.1fs total)\n",
                 out_path.c_str(), files.size(), total_wall);

    if (!prev_path.empty()) {
        Value prev;
        if (!LoadJson(prev_path, prev)) {
            return 2;
        }
        PrintSpeedups(report, prev);
    }

    if (golden_dir.empty()) {
        return 0;
    }

    // Gate mode: every golden file must have a fresh, matching result.
    const std::vector<fs::path> golden_files = JsonFiles(golden_dir);
    if (golden_files.empty()) {
        std::fprintf(stderr, "bench_report: no golden files in %s\n",
                     golden_dir.c_str());
        return 2;
    }
    bool all_ok = true;
    for (const fs::path& golden_path : golden_files) {
        const std::string name = golden_path.filename().string();
        const fs::path result_path = fs::path(dir) / name;
        Value golden;
        if (!LoadJson(golden_path, golden)) {
            return 2;
        }
        if (!fs::is_regular_file(result_path)) {
            std::fprintf(stderr, "FAIL %s: no result in %s\n",
                         name.c_str(), dir.c_str());
            all_ok = false;
            continue;
        }
        Value result;
        if (!LoadJson(result_path, result)) {
            return 2;
        }
        all_ok &= CheckAgainstGolden(name, result, golden, wall_tolerance);
    }
    std::fprintf(stderr, "bench_report: golden check %s\n",
                 all_ok ? "passed" : "FAILED");
    return all_ok ? 0 : 1;
}
