/**
 * @file
 * Aggregates the per-binary JSON files the bench harness writes (one per
 * `--json` invocation, conventionally under bench/out/) into a single
 * BENCH_results.json, and optionally checks them against the checked-in
 * golden results:
 *
 *   bench_report --dir bench/out --out BENCH_results.json
 *   bench_report --dir bench/out --check bench/golden [--wall-tolerance 0.2]
 *   bench_report --dir bench/out --prev perf/BENCH_results-pr3.json
 *   bench_report --trace run.json
 *
 * --trace switches to a standalone mode that validates one Chrome
 * trace-event file produced by the observability layer (PARBS_TRACE /
 * --trace on the experiment binaries): the JSON must parse, carry a
 * nonempty traceEvents array with well-formed events, and its request
 * spans must balance; a summary (event counts by category, sampler rows,
 * latency percentiles) is printed to stderr.
 *
 * The check compares each file's deterministic "run" subtree exactly
 * (any metric drift fails) and its wall clock against the golden wall
 * clock with a relative tolerance (default +20%) — the perf-regression
 * gate in CI.  Exit status: 0 clean, 1 regression/drift, 2 usage error.
 *
 * With --prev (a previously checked-in aggregate report, see perf/), a
 * per-binary speedup-vs-previous-run line is printed for every benchmark
 * present in both runs — the perf trajectory across PRs.  Informational
 * only: wall clocks from different machines are not gated.
 */

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.hh"

namespace fs = std::filesystem;
using parbs::json::Value;

namespace {

/** Sorted *.json paths directly inside @p dir. */
std::vector<fs::path>
JsonFiles(const fs::path& dir)
{
    std::vector<fs::path> files;
    if (!fs::is_directory(dir)) {
        return files;
    }
    for (const auto& entry : fs::directory_iterator(dir)) {
        if (entry.is_regular_file() &&
            entry.path().extension() == ".json") {
            files.push_back(entry.path());
        }
    }
    std::sort(files.begin(), files.end());
    return files;
}

bool
LoadJson(const fs::path& path, Value& out)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "bench_report: cannot read %s\n",
                     path.string().c_str());
        return false;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    try {
        out = Value::Parse(buffer.str());
    } catch (const parbs::json::ParseError& error) {
        std::fprintf(stderr, "bench_report: %s: %s\n",
                     path.string().c_str(), error.what());
        return false;
    }
    return true;
}

double
WallSeconds(const Value& root)
{
    const Value* env = root.Find("env");
    const Value* wall = env != nullptr ? env->Find("wall_seconds") : nullptr;
    return wall != nullptr ? wall->AsNumber() : 0.0;
}

/**
 * Prints one "speedup" line per benchmark present in both the fresh
 * aggregate @p report and the previous aggregate @p prev (matched by the
 * per-entry "file" name): previous wall, current wall, and the ratio
 * (>1x means this run is faster).
 */
void
PrintSpeedups(const Value& report, const Value& prev)
{
    const Value* prev_benchmarks = prev.Find("benchmarks");
    const Value* benchmarks = report.Find("benchmarks");
    if (prev_benchmarks == nullptr || benchmarks == nullptr) {
        std::fprintf(stderr,
                     "bench_report: --prev file has no \"benchmarks\" "
                     "array; skipping speedups\n");
        return;
    }
    double prev_total = 0.0;
    double total = 0.0;
    std::size_t matched = 0;
    for (const Value& entry : benchmarks->items()) {
        const Value* file = entry.Find("file");
        if (file == nullptr) {
            continue;
        }
        const Value* prev_entry = nullptr;
        for (const Value& candidate : prev_benchmarks->items()) {
            const Value* candidate_file = candidate.Find("file");
            if (candidate_file != nullptr &&
                candidate_file->AsString() == file->AsString()) {
                prev_entry = &candidate;
                break;
            }
        }
        if (prev_entry == nullptr) {
            std::fprintf(stderr, "speedup %-28s (new benchmark, no "
                                 "previous run)\n",
                         file->AsString().c_str());
            continue;
        }
        const double wall = WallSeconds(entry);
        const double prev_wall = WallSeconds(*prev_entry);
        if (wall <= 0.0 || prev_wall <= 0.0) {
            continue;
        }
        matched += 1;
        total += wall;
        prev_total += prev_wall;
        std::fprintf(stderr, "speedup %-28s %6.2fs -> %6.2fs  (%.2fx)\n",
                     file->AsString().c_str(), prev_wall, wall,
                     prev_wall / wall);
    }
    if (matched > 0) {
        std::fprintf(stderr,
                     "speedup total (%zu matched)          %6.2fs -> "
                     "%6.2fs  (%.2fx)\n",
                     matched, prev_total, total, prev_total / total);
    }
}

/**
 * Compares one result file against its golden counterpart.  @return true
 * when the run subtree matches exactly and the wall clock is within
 * tolerance.
 */
bool
CheckAgainstGolden(const std::string& name, const Value& result,
                   const Value& golden, double wall_tolerance)
{
    bool ok = true;
    const Value* run = result.Find("run");
    const Value* golden_run = golden.Find("run");
    if (run == nullptr || golden_run == nullptr) {
        std::fprintf(stderr, "FAIL %s: missing \"run\" subtree\n",
                     name.c_str());
        return false;
    }
    if (!(*run == *golden_run)) {
        std::fprintf(stderr,
                     "FAIL %s: simulated metrics drifted from golden "
                     "(the \"run\" subtree differs)\n",
                     name.c_str());
        ok = false;
    }
    const double wall = WallSeconds(result);
    const double golden_wall = WallSeconds(golden);
    if (golden_wall > 0.0 && wall > golden_wall * (1.0 + wall_tolerance)) {
        std::fprintf(stderr,
                     "FAIL %s: wall clock %.2fs exceeds golden %.2fs by "
                     "more than %.0f%%\n",
                     name.c_str(), wall, golden_wall,
                     wall_tolerance * 100.0);
        ok = false;
    }
    if (ok) {
        std::fprintf(stderr, "ok   %s (wall %.2fs, golden %.2fs)\n",
                     name.c_str(), wall, golden_wall);
    }
    return ok;
}

/**
 * Validates one observability trace file and prints its summary.
 * @return the process exit status (0 valid, 1 invalid, 2 unreadable).
 */
int
ValidateTrace(const std::string& path)
{
    Value root;
    if (!LoadJson(path, root)) {
        return 2;
    }
    const Value* events = root.Find("traceEvents");
    if (events == nullptr || events->items().empty()) {
        std::fprintf(stderr,
                     "FAIL %s: no traceEvents array (or it is empty)\n",
                     path.c_str());
        return 1;
    }

    bool ok = true;
    std::size_t spans_begin = 0;
    std::size_t spans_end = 0;
    std::size_t instants = 0;
    std::size_t counters = 0;
    std::size_t complete = 0;
    std::size_t metadata = 0;
    std::uint64_t last_ts = 0;
    for (const Value& event : events->items()) {
        const Value* ph = event.Find("ph");
        const Value* name = event.Find("name");
        if (ph == nullptr || name == nullptr ||
            event.Find("pid") == nullptr) {
            std::fprintf(stderr,
                         "FAIL %s: event without ph/name/pid\n",
                         path.c_str());
            ok = false;
            break;
        }
        const std::string& phase = ph->AsString();
        if (phase == "M") {
            metadata += 1;
            continue;
        }
        const Value* ts = event.Find("ts");
        if (ts == nullptr) {
            std::fprintf(stderr, "FAIL %s: non-metadata event without ts\n",
                         path.c_str());
            ok = false;
            break;
        }
        last_ts = std::max(last_ts,
                           static_cast<std::uint64_t>(ts->AsNumber()));
        if (phase == "b") {
            spans_begin += 1;
        } else if (phase == "e") {
            spans_end += 1;
        } else if (phase == "i") {
            instants += 1;
        } else if (phase == "C") {
            counters += 1;
        } else if (phase == "X") {
            complete += 1;
        } else {
            std::fprintf(stderr, "FAIL %s: unknown event phase \"%s\"\n",
                         path.c_str(), phase.c_str());
            ok = false;
            break;
        }
    }
    // Spans still open at the end of the run (in-flight requests, the open
    // batch) are legal, but more ends than begins never are.
    if (spans_end > spans_begin) {
        std::fprintf(stderr,
                     "FAIL %s: %zu span ends for %zu span begins\n",
                     path.c_str(), spans_end, spans_begin);
        ok = false;
    }
    if (spans_begin == 0) {
        std::fprintf(stderr, "FAIL %s: no request/batch spans recorded\n",
                     path.c_str());
        ok = false;
    }

    std::size_t sample_rows = 0;
    const Value* samples = root.Find("samples");
    const Value* rows =
        samples != nullptr ? samples->Find("samples") : nullptr;
    if (rows != nullptr) {
        sample_rows = rows->items().size();
    }
    std::uint64_t dropped = 0;
    const Value* other = root.Find("otherData");
    const Value* dropped_node =
        other != nullptr ? other->Find("events_dropped") : nullptr;
    if (dropped_node != nullptr) {
        dropped = static_cast<std::uint64_t>(dropped_node->AsNumber());
    }

    std::fprintf(stderr,
                 "trace %s: %zu events (%zu+%zu spans, %zu instants, "
                 "%zu counters, %zu complete, %zu metadata), last ts %llu, "
                 "%llu dropped, %zu sampler rows\n",
                 path.c_str(),
                 events->items().size(), spans_begin, spans_end, instants,
                 counters, complete, metadata,
                 static_cast<unsigned long long>(last_ts),
                 static_cast<unsigned long long>(dropped), sample_rows);

    const Value* latency = root.Find("latency");
    const Value* all = latency != nullptr ? latency->Find("all") : nullptr;
    const Value* total = all != nullptr ? all->Find("total") : nullptr;
    if (total != nullptr) {
        std::fprintf(
            stderr,
            "latency(all.total): count=%.0f p50=%.0f p95=%.0f p99=%.0f "
            "max=%.0f dram cycles\n",
            total->Find("count")->AsNumber(),
            total->Find("p50")->AsNumber(), total->Find("p95")->AsNumber(),
            total->Find("p99")->AsNumber(), total->Find("max")->AsNumber());
    }
    std::fprintf(stderr, "bench_report: trace check %s\n",
                 ok ? "passed" : "FAILED");
    return ok ? 0 : 1;
}

} // namespace

int
main(int argc, char** argv)
{
    std::string dir = "bench/out";
    std::string out_path = "BENCH_results.json";
    std::string golden_dir;
    std::string prev_path;
    std::string trace_path;
    double wall_tolerance = 0.20;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--dir" && i + 1 < argc) {
            dir = argv[++i];
        } else if (arg == "--out" && i + 1 < argc) {
            out_path = argv[++i];
        } else if (arg == "--check" && i + 1 < argc) {
            golden_dir = argv[++i];
        } else if (arg == "--prev" && i + 1 < argc) {
            prev_path = argv[++i];
        } else if (arg == "--trace" && i + 1 < argc) {
            trace_path = argv[++i];
        } else if (arg == "--wall-tolerance" && i + 1 < argc) {
            wall_tolerance = std::strtod(argv[++i], nullptr);
        } else if (arg == "--help" || arg == "-h") {
            std::fprintf(stderr,
                         "usage: %s [--dir DIR] [--out PATH] "
                         "[--check GOLDEN_DIR] [--prev REPORT] "
                         "[--trace FILE] [--wall-tolerance F]\n",
                         argv[0]);
            return 0;
        } else {
            std::fprintf(stderr, "bench_report: unknown option %s\n",
                         arg.c_str());
            return 2;
        }
    }

    if (!trace_path.empty()) {
        return ValidateTrace(trace_path);
    }

    const std::vector<fs::path> files = JsonFiles(dir);
    if (files.empty()) {
        std::fprintf(stderr, "bench_report: no .json files in %s\n",
                     dir.c_str());
        return 2;
    }

    Value benchmarks = Value::Array();
    double total_wall = 0.0;
    for (const fs::path& path : files) {
        Value root;
        if (!LoadJson(path, root)) {
            return 2;
        }
        total_wall += WallSeconds(root);
        Value entry = Value::Object();
        entry.Set("file", path.filename().string());
        entry.Set("env", std::move(*root.Find("env")));
        entry.Set("run", std::move(*root.Find("run")));
        benchmarks.Append(std::move(entry));
    }

    Value report = Value::Object();
    Value summary = Value::Object();
    summary.Set("benchmarks",
                static_cast<std::uint64_t>(benchmarks.items().size()));
    summary.Set("total_wall_seconds", total_wall);
    report.Set("summary", std::move(summary));
    report.Set("benchmarks", std::move(benchmarks));

    {
        std::ofstream out(out_path);
        if (!out) {
            std::fprintf(stderr, "bench_report: cannot write %s\n",
                         out_path.c_str());
            return 2;
        }
        out << report.Dump(2) << "\n";
    }
    std::fprintf(stderr, "bench_report: wrote %s (%zu benchmarks, "
                         "%.1fs total)\n",
                 out_path.c_str(), files.size(), total_wall);

    if (!prev_path.empty()) {
        Value prev;
        if (!LoadJson(prev_path, prev)) {
            return 2;
        }
        PrintSpeedups(report, prev);
    }

    if (golden_dir.empty()) {
        return 0;
    }

    // Gate mode: every golden file must have a fresh, matching result.
    const std::vector<fs::path> golden_files = JsonFiles(golden_dir);
    if (golden_files.empty()) {
        std::fprintf(stderr, "bench_report: no golden files in %s\n",
                     golden_dir.c_str());
        return 2;
    }
    bool all_ok = true;
    for (const fs::path& golden_path : golden_files) {
        const std::string name = golden_path.filename().string();
        const fs::path result_path = fs::path(dir) / name;
        Value golden;
        if (!LoadJson(golden_path, golden)) {
            return 2;
        }
        if (!fs::is_regular_file(result_path)) {
            std::fprintf(stderr, "FAIL %s: no result in %s\n",
                         name.c_str(), dir.c_str());
            all_ok = false;
            continue;
        }
        Value result;
        if (!LoadJson(result_path, result)) {
            return 2;
        }
        all_ok &= CheckAgainstGolden(name, result, golden, wall_tolerance);
    }
    std::fprintf(stderr, "bench_report: golden check %s\n",
                 all_ok ? "passed" : "FAILED");
    return all_ok ? 0 : 1;
}
