/**
 * @file
 * Aggregates the per-binary JSON files the bench harness writes (one per
 * `--json` invocation, conventionally under bench/out/) into a single
 * BENCH_results.json, and optionally checks them against the checked-in
 * golden results:
 *
 *   bench_report --dir bench/out --out BENCH_results.json
 *   bench_report --dir bench/out --check bench/golden [--wall-tolerance 0.2]
 *   bench_report --dir bench/out --prev perf/BENCH_results-pr3.json
 *   bench_report --dir bench/out --summary summary.md
 *   bench_report --dir bench/out --engine
 *   bench_report --trace run.json
 *
 * --trace switches to a standalone mode that validates one Chrome
 * trace-event file produced by the observability layer (PARBS_TRACE /
 * --trace on the experiment binaries): the JSON must parse, carry a
 * nonempty traceEvents array with well-formed events, and its request
 * spans must balance; a summary (event counts by category, sampler rows,
 * latency percentiles) is printed to stderr.  Traces stamped with
 * otherData.engine_profile must additionally carry the engine lanes
 * (DESIGN.md §5h) and only the known engine track names.
 *
 * --engine reads the engine flight-recorder subtrees that bench_scale
 * emits under env.engine (per-run phase timings) and prints one row per
 * (config, scheduler): serial-tail fraction of the coordinator, mean
 * worker utilization, and recorded window count.  When the same suite was
 * run at several --channel-jobs values into the same --dir, rows sharing
 * a label differ only in worker count N, so the mode also fits
 * wall = a + b/N per label and reports the implied Amdahl ceiling
 * (a+b)/a — the speedup the engine could reach with infinite workers.
 * With --summary the table is appended as markdown.
 *
 * The check compares each file's deterministic "run" subtree exactly
 * (any metric drift fails) and its wall clock against the golden wall
 * clock with a relative tolerance (default +20%) — the perf-regression
 * gate in CI.  Exit status: 0 clean, 1 regression/drift, 2 usage error.
 *
 * With --prev (a previously checked-in aggregate report, see perf/), a
 * per-binary speedup-vs-previous-run line is printed for every benchmark
 * present in both runs — the perf trajectory across PRs.  Informational
 * only: wall clocks from different machines are not gated.
 *
 * The aggregate pass also joins every per-scheduler aggregate (weighted
 * speedup, unfairness) with the table1 "scheduler cost" values into the
 * performance / fairness / hardware-cost Pareto table — the policy
 * shootout the lineup exists for.  --summary PATH additionally writes the
 * Pareto table and the speedup lines as GitHub-flavored markdown (CI
 * appends it to $GITHUB_STEP_SUMMARY).
 */

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.hh"

namespace fs = std::filesystem;
using parbs::json::Value;

namespace {

/** Sorted *.json paths directly inside @p dir. */
std::vector<fs::path>
JsonFiles(const fs::path& dir)
{
    std::vector<fs::path> files;
    if (!fs::is_directory(dir)) {
        return files;
    }
    for (const auto& entry : fs::directory_iterator(dir)) {
        if (entry.is_regular_file() &&
            entry.path().extension() == ".json") {
            files.push_back(entry.path());
        }
    }
    std::sort(files.begin(), files.end());
    return files;
}

bool
LoadJson(const fs::path& path, Value& out)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "bench_report: cannot read %s\n",
                     path.string().c_str());
        return false;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    try {
        out = Value::Parse(buffer.str());
    } catch (const parbs::json::ParseError& error) {
        std::fprintf(stderr, "bench_report: %s: %s\n",
                     path.string().c_str(), error.what());
        return false;
    }
    return true;
}

double
WallSeconds(const Value& root)
{
    const Value* env = root.Find("env");
    const Value* wall = env != nullptr ? env->Find("wall_seconds") : nullptr;
    return wall != nullptr ? wall->AsNumber() : 0.0;
}

/** One matched benchmark of the perf trajectory (--prev). */
struct SpeedupLine {
    std::string file;
    double prev_wall = 0.0;
    double wall = 0.0;
};

/**
 * Prints one "speedup" line per benchmark present in both the fresh
 * aggregate @p report and the previous aggregate @p prev (matched by the
 * per-entry "file" name): previous wall, current wall, and the ratio
 * (>1x means this run is faster).  @return the matched lines, for the
 * markdown summary.
 */
std::vector<SpeedupLine>
PrintSpeedups(const Value& report, const Value& prev)
{
    std::vector<SpeedupLine> lines;
    const Value* prev_benchmarks = prev.Find("benchmarks");
    const Value* benchmarks = report.Find("benchmarks");
    if (prev_benchmarks == nullptr || benchmarks == nullptr) {
        std::fprintf(stderr,
                     "bench_report: --prev file has no \"benchmarks\" "
                     "array; skipping speedups\n");
        return lines;
    }
    double prev_total = 0.0;
    double total = 0.0;
    std::size_t matched = 0;
    for (const Value& entry : benchmarks->items()) {
        const Value* file = entry.Find("file");
        if (file == nullptr) {
            continue;
        }
        const Value* prev_entry = nullptr;
        for (const Value& candidate : prev_benchmarks->items()) {
            const Value* candidate_file = candidate.Find("file");
            if (candidate_file != nullptr &&
                candidate_file->AsString() == file->AsString()) {
                prev_entry = &candidate;
                break;
            }
        }
        if (prev_entry == nullptr) {
            std::fprintf(stderr, "speedup %-28s (new benchmark, no "
                                 "previous run)\n",
                         file->AsString().c_str());
            continue;
        }
        const double wall = WallSeconds(entry);
        const double prev_wall = WallSeconds(*prev_entry);
        if (wall <= 0.0 || prev_wall <= 0.0) {
            continue;
        }
        matched += 1;
        total += wall;
        prev_total += prev_wall;
        lines.push_back({file->AsString(), prev_wall, wall});
        std::fprintf(stderr, "speedup %-28s %6.2fs -> %6.2fs  (%.2fx)\n",
                     file->AsString().c_str(), prev_wall, wall,
                     prev_wall / wall);
    }
    if (matched > 0) {
        std::fprintf(stderr,
                     "speedup total (%zu matched)          %6.2fs -> "
                     "%6.2fs  (%.2fx)\n",
                     matched, prev_total, total, prev_total / total);
    }
    return lines;
}

/**
 * Per-scheduler Pareto point: performance and fairness averaged over
 * every aggregate any benchmark recorded for the scheduler, joined with
 * the table1 "scheduler cost" storage bits.
 */
struct ParetoRow {
    std::string scheduler;
    double speedup_sum = 0.0;
    double unfairness_sum = 0.0;
    std::size_t samples = 0;
    double cost_bits = -1.0; ///< <0 until table1's value is found.
    bool frontier = false;

    double Speedup() const
    {
        return samples == 0 ? 0.0
                            : speedup_sum / static_cast<double>(samples);
    }
    double Unfairness() const
    {
        return samples == 0 ? 0.0
                            : unfairness_sum / static_cast<double>(samples);
    }
};

/**
 * Collects the Pareto rows from the aggregate @p report: every
 * sections[].aggregates[] entry contributes a (speedup, unfairness)
 * sample keyed by scheduler name; every "scheduler cost" section value
 * named "<scheduler> total bits" contributes the cost coordinate.
 * Insertion order follows first appearance (the lineup order).
 */
std::vector<ParetoRow>
CollectParetoRows(const Value& report)
{
    std::vector<ParetoRow> rows;
    auto row_for = [&rows](const std::string& name) -> ParetoRow& {
        for (ParetoRow& row : rows) {
            if (row.scheduler == name) {
                return row;
            }
        }
        rows.push_back(ParetoRow{});
        rows.back().scheduler = name;
        return rows.back();
    };

    const Value* benchmarks = report.Find("benchmarks");
    if (benchmarks == nullptr) {
        return rows;
    }

    // Pass 1: the lineup, from table1_hardware_cost's "scheduler cost"
    // section ("<scheduler> total bits" values, in lineup order).
    std::vector<std::pair<std::string, double>> costs;
    for (const Value& entry : benchmarks->items()) {
        const Value* run = entry.Find("run");
        const Value* sections =
            run != nullptr ? run->Find("sections") : nullptr;
        if (sections == nullptr) {
            continue;
        }
        for (const Value& section : sections->items()) {
            const Value* name = section.Find("name");
            if (name == nullptr || name->AsString() != "scheduler cost") {
                continue;
            }
            const Value* values = section.Find("values");
            if (values == nullptr) {
                continue;
            }
            for (const Value& value : values->items()) {
                const Value* value_name = value.Find("name");
                const Value* bits = value.Find("value");
                if (value_name == nullptr || bits == nullptr) {
                    continue;
                }
                const std::string& label = value_name->AsString();
                const std::string suffix = " total bits";
                if (label.size() <= suffix.size() ||
                    label.compare(label.size() - suffix.size(),
                                  suffix.size(), suffix) != 0) {
                    continue;
                }
                costs.emplace_back(
                    label.substr(0, label.size() - suffix.size()),
                    bits->AsNumber());
            }
        }
    }
    for (const auto& [scheduler, bits] : costs) {
        row_for(scheduler).cost_bits = bits;
    }

    // Pass 2: accumulate (speedup, unfairness) samples.  With a known
    // lineup, only sections covering the *whole* lineup contribute —
    // otherwise a scheduler that also appears in two-policy sweeps or
    // ablations would average over a different benchmark set than its
    // rivals and the means would not be comparable.  Without a cost
    // section (partial --dir) every aggregate contributes.
    for (const Value& entry : benchmarks->items()) {
        const Value* run = entry.Find("run");
        const Value* sections =
            run != nullptr ? run->Find("sections") : nullptr;
        if (sections == nullptr) {
            continue;
        }
        for (const Value& section : sections->items()) {
            const Value* aggregates = section.Find("aggregates");
            if (aggregates == nullptr) {
                continue;
            }
            if (!costs.empty()) {
                bool covers_lineup = true;
                for (const auto& [scheduler, bits] : costs) {
                    bool found = false;
                    for (const Value& aggregate : aggregates->items()) {
                        const Value* name = aggregate.Find("scheduler");
                        found |= name != nullptr &&
                                 name->AsString() == scheduler;
                    }
                    covers_lineup &= found;
                }
                if (!covers_lineup) {
                    continue;
                }
            }
            for (const Value& aggregate : aggregates->items()) {
                const Value* scheduler = aggregate.Find("scheduler");
                const Value* speedup =
                    aggregate.Find("weighted_speedup_gmean");
                const Value* unfairness =
                    aggregate.Find("unfairness_gmean");
                if (scheduler == nullptr || speedup == nullptr ||
                    unfairness == nullptr) {
                    continue;
                }
                if (!costs.empty() &&
                    std::none_of(costs.begin(), costs.end(),
                                 [&](const auto& cost) {
                                     return cost.first ==
                                            scheduler->AsString();
                                 })) {
                    continue;
                }
                ParetoRow& row = row_for(scheduler->AsString());
                row.speedup_sum += speedup->AsNumber();
                row.unfairness_sum += unfairness->AsNumber();
                row.samples += 1;
            }
        }
    }

    // A row is on the frontier unless some other row is at least as good
    // on every axis (speedup up; unfairness and cost down) and strictly
    // better on one.  Rows without a cost coordinate (cost-less fallback
    // mode) still compare on the two metric axes.
    for (ParetoRow& row : rows) {
        if (row.samples == 0) {
            continue;
        }
        row.frontier = true;
        for (const ParetoRow& other : rows) {
            if (&other == &row || other.samples == 0) {
                continue;
            }
            const double cost = row.cost_bits < 0 ? 0.0 : row.cost_bits;
            const double other_cost =
                other.cost_bits < 0 ? 0.0 : other.cost_bits;
            const bool as_good = other.Speedup() >= row.Speedup() &&
                                 other.Unfairness() <= row.Unfairness() &&
                                 other_cost <= cost;
            const bool better = other.Speedup() > row.Speedup() ||
                                other.Unfairness() < row.Unfairness() ||
                                other_cost < cost;
            if (as_good && better) {
                row.frontier = false;
                break;
            }
        }
    }
    return rows;
}

/** Prints the Pareto shootout table to stderr. */
void
PrintParetoTable(const std::vector<ParetoRow>& rows)
{
    bool any = false;
    for (const ParetoRow& row : rows) {
        if (row.samples > 0) {
            any = true;
            break;
        }
    }
    if (!any) {
        return;
    }
    std::fprintf(stderr,
                 "pareto %-22s %10s %10s %10s  %s\n",
                 "scheduler", "WS(mean)", "unfairness", "cost bits",
                 "frontier");
    for (const ParetoRow& row : rows) {
        if (row.samples == 0) {
            continue;
        }
        char cost[32];
        if (row.cost_bits < 0) {
            std::snprintf(cost, sizeof(cost), "%10s", "?");
        } else {
            std::snprintf(cost, sizeof(cost), "%10.0f", row.cost_bits);
        }
        std::fprintf(stderr, "pareto %-22s %10.3f %10.3f %s  %s\n",
                     row.scheduler.c_str(), row.Speedup(),
                     row.Unfairness(), cost,
                     row.frontier ? "*" : "");
    }
}

/**
 * Writes the markdown job summary: the Pareto table plus (when --prev
 * matched anything) the per-benchmark wall-clock trajectory.
 */
bool
WriteSummary(const std::string& path, const std::vector<ParetoRow>& rows,
             const std::vector<SpeedupLine>& speedups)
{
    std::ofstream out(path, std::ios::app);
    if (!out) {
        std::fprintf(stderr, "bench_report: cannot write %s\n",
                     path.c_str());
        return false;
    }
    out << "## Scheduler shootout — performance / fairness / hardware "
           "cost\n\n";
    out << "| scheduler | weighted speedup (mean) | unfairness (mean) | "
           "cost (bits) | Pareto |\n";
    out << "|---|---|---|---|---|\n";
    char line[256];
    for (const ParetoRow& row : rows) {
        if (row.samples == 0) {
            continue;
        }
        if (row.cost_bits < 0) {
            std::snprintf(line, sizeof(line),
                          "| %s | %.3f | %.3f | ? | %s |\n",
                          row.scheduler.c_str(), row.Speedup(),
                          row.Unfairness(),
                          row.frontier ? "frontier" : "");
        } else {
            std::snprintf(line, sizeof(line),
                          "| %s | %.3f | %.3f | %.0f | %s |\n",
                          row.scheduler.c_str(), row.Speedup(),
                          row.Unfairness(), row.cost_bits,
                          row.frontier ? "frontier" : "");
        }
        out << line;
    }
    out << "\n";
    if (!speedups.empty()) {
        out << "### Wall-clock trajectory vs previous run\n\n";
        out << "| benchmark | previous | current | speedup |\n";
        out << "|---|---|---|---|\n";
        double prev_total = 0.0;
        double total = 0.0;
        for (const SpeedupLine& speedup : speedups) {
            prev_total += speedup.prev_wall;
            total += speedup.wall;
            std::snprintf(line, sizeof(line),
                          "| %s | %.2fs | %.2fs | %.2fx |\n",
                          speedup.file.c_str(), speedup.prev_wall,
                          speedup.wall, speedup.prev_wall / speedup.wall);
            out << line;
        }
        std::snprintf(line, sizeof(line),
                      "| **total** | %.2fs | %.2fs | %.2fx |\n",
                      prev_total, total, prev_total / total);
        out << line;
        out << "\n";
    }
    std::fprintf(stderr, "bench_report: appended summary to %s\n",
                 path.c_str());
    return true;
}

/**
 * One engine flight-recorder row: the env.engine timing subtree a single
 * (config, scheduler) run recorded (DESIGN.md §5h).
 */
struct EngineRow {
    std::string label;        ///< "64 cores x 8 channels (1 rank)/PAR-BS"
    double participants = 0.0;
    double tail = 0.0;        ///< Coordinator serial-tail fraction.
    double utilization = 0.0; ///< Mean worker busy fraction.
    double windows = 0.0;     ///< Wall-timed window records kept.
    double wall_seconds = 0.0; ///< Coordinator busy seconds (all phases).
};

/** Per-config least-squares fit of wall = a + b/N. */
struct AmdahlFit {
    std::string group;
    std::size_t points = 0;
    double serial = 0.0;    ///< a: wall left at N = infinity.
    double parallel = 0.0;  ///< b: the part that scales away.
    double ceiling = 0.0;   ///< (a+b)/a, or 0 when a is noise-negative.
};

/**
 * Collects one EngineRow per env.engine entry of every benchmark in the
 * aggregate @p report.  Benchmarks without engine output contribute
 * nothing, so the mode degrades to an empty table on non-engine suites.
 */
std::vector<EngineRow>
CollectEngineRows(const Value& report)
{
    std::vector<EngineRow> rows;
    const Value* benchmarks = report.Find("benchmarks");
    if (benchmarks == nullptr) {
        return rows;
    }
    for (const Value& entry : benchmarks->items()) {
        const Value* env = entry.Find("env");
        const Value* engine = env != nullptr ? env->Find("engine") : nullptr;
        if (engine == nullptr) {
            continue;
        }
        for (const Value& item : engine->items()) {
            const Value* label = item.Find("label");
            const Value* timing = item.Find("engine");
            if (label == nullptr || timing == nullptr) {
                continue;
            }
            EngineRow row;
            row.label = label->AsString();
            const Value* participants = timing->Find("participants");
            const Value* tail = timing->Find("serial_tail_fraction");
            const Value* utilization = timing->Find("worker_utilization");
            const Value* windows = timing->Find("windows_recorded");
            row.participants =
                participants != nullptr ? participants->AsNumber() : 0.0;
            row.tail = tail != nullptr ? tail->AsNumber() : 0.0;
            row.utilization =
                utilization != nullptr ? utilization->AsNumber() : 0.0;
            row.windows = windows != nullptr ? windows->AsNumber() : 0.0;
            const Value* phases = timing->Find("phases");
            if (phases != nullptr) {
                for (const Value& phase : phases->items()) {
                    const Value* participant = phase.Find("participant");
                    const Value* seconds = phase.Find("seconds");
                    if (participant != nullptr && seconds != nullptr &&
                        participant->AsNumber() == 0.0) {
                        row.wall_seconds += seconds->AsNumber();
                    }
                }
            }
            rows.push_back(std::move(row));
        }
    }
    return rows;
}

/**
 * Fits wall = a + b * (1/N) per config label by least squares over the
 * rows whose participant counts differ.  Within one label the simulated
 * work is fixed, so N only varies when the same suite was run at several
 * --channel-jobs values into the same --dir (the CI engine sweep); the
 * intercept a is then the engine's serial floor and (a+b)/a its Amdahl
 * speedup ceiling.  Labels without at least two distinct N are skipped —
 * a single-sweep aggregate simply fits nothing.
 */
std::vector<AmdahlFit>
FitAmdahl(const std::vector<EngineRow>& rows)
{
    std::vector<AmdahlFit> fits;
    std::vector<std::string> groups;
    for (const EngineRow& row : rows) {
        if (std::find(groups.begin(), groups.end(), row.label) ==
            groups.end()) {
            groups.push_back(row.label);
        }
    }
    for (const std::string& group : groups) {
        double sum_x = 0.0;
        double sum_y = 0.0;
        double sum_xx = 0.0;
        double sum_xy = 0.0;
        std::size_t n = 0;
        double first_participants = -1.0;
        bool distinct = false;
        for (const EngineRow& row : rows) {
            if (row.label != group || row.participants <= 0.0 ||
                row.wall_seconds <= 0.0) {
                continue;
            }
            if (first_participants < 0.0) {
                first_participants = row.participants;
            } else if (row.participants != first_participants) {
                distinct = true;
            }
            const double x = 1.0 / row.participants;
            const double y = row.wall_seconds;
            sum_x += x;
            sum_y += y;
            sum_xx += x * x;
            sum_xy += x * y;
            n += 1;
        }
        if (n < 2 || !distinct) {
            continue;
        }
        const double denom =
            static_cast<double>(n) * sum_xx - sum_x * sum_x;
        if (denom == 0.0) {
            continue;
        }
        AmdahlFit fit;
        fit.group = group;
        fit.points = n;
        fit.parallel =
            (static_cast<double>(n) * sum_xy - sum_x * sum_y) / denom;
        fit.serial = (sum_y - fit.parallel * sum_x) / static_cast<double>(n);
        fit.ceiling = fit.serial > 0.0
                          ? (fit.serial + fit.parallel) / fit.serial
                          : 0.0;
        fits.push_back(std::move(fit));
    }
    return fits;
}

/** Prints the engine table and the Amdahl fits to stderr. */
void
PrintEngineTable(const std::vector<EngineRow>& rows,
                 const std::vector<AmdahlFit>& fits)
{
    if (rows.empty()) {
        std::fprintf(stderr,
                     "bench_report: --engine found no env.engine data "
                     "(run bench_scale with --engine)\n");
        return;
    }
    std::fprintf(stderr, "engine %-42s %4s %10s %10s %8s %9s\n",
                 "config/scheduler", "N", "tail", "util", "windows",
                 "wall");
    for (const EngineRow& row : rows) {
        std::fprintf(stderr,
                     "engine %-42s %4.0f %9.1f%% %9.1f%% %8.0f %8.3fs\n",
                     row.label.c_str(), row.participants, row.tail * 100.0,
                     row.utilization * 100.0, row.windows,
                     row.wall_seconds);
    }
    for (const AmdahlFit& fit : fits) {
        if (fit.ceiling > 0.0) {
            std::fprintf(stderr,
                         "amdahl %-42s serial %.3fs + parallel %.3fs "
                         "-> ceiling %.1fx (%zu points)\n",
                         fit.group.c_str(), fit.serial, fit.parallel,
                         fit.ceiling, fit.points);
        } else {
            std::fprintf(stderr,
                         "amdahl %-42s no measurable serial floor "
                         "(%zu points)\n",
                         fit.group.c_str(), fit.points);
        }
    }
}

/** Appends the engine table and Amdahl fits as markdown to @p path. */
bool
AppendEngineSummary(const std::string& path,
                    const std::vector<EngineRow>& rows,
                    const std::vector<AmdahlFit>& fits)
{
    if (rows.empty()) {
        return true;
    }
    std::ofstream out(path, std::ios::app);
    if (!out) {
        std::fprintf(stderr, "bench_report: cannot write %s\n",
                     path.c_str());
        return false;
    }
    out << "## Engine flight recorder — phase timings\n\n";
    out << "| config / scheduler | workers | serial tail | worker util | "
           "windows | coordinator wall |\n";
    out << "|---|---|---|---|---|---|\n";
    char line[256];
    for (const EngineRow& row : rows) {
        std::snprintf(line, sizeof(line),
                      "| %s | %.0f | %.1f%% | %.1f%% | %.0f | %.3fs |\n",
                      row.label.c_str(), row.participants, row.tail * 100.0,
                      row.utilization * 100.0, row.windows,
                      row.wall_seconds);
        out << line;
    }
    out << "\n";
    if (!fits.empty()) {
        out << "### Fitted Amdahl ceiling (wall = a + b/N)\n\n";
        out << "| group | points | serial a | parallel b | ceiling |\n";
        out << "|---|---|---|---|---|\n";
        for (const AmdahlFit& fit : fits) {
            if (fit.ceiling > 0.0) {
                std::snprintf(line, sizeof(line),
                              "| %s | %zu | %.3fs | %.3fs | %.1fx |\n",
                              fit.group.c_str(), fit.points, fit.serial,
                              fit.parallel, fit.ceiling);
            } else {
                std::snprintf(line, sizeof(line),
                              "| %s | %zu | — | — | no serial floor |\n",
                              fit.group.c_str(), fit.points);
            }
            out << line;
        }
        out << "\n";
    }
    std::fprintf(stderr, "bench_report: appended engine summary to %s\n",
                 path.c_str());
    return true;
}

/** Short display form of a scalar JSON value for diff lines. */
std::string
ScalarRepr(const Value& value)
{
    switch (value.kind()) {
      case Value::Kind::kNull:
        return "null";
      case Value::Kind::kBool:
        return value.AsBool() ? "true" : "false";
      case Value::Kind::kNumber:
        return parbs::json::FormatNumber(value.AsNumber());
      case Value::Kind::kString:
        return "\"" + value.AsString() + "\"";
      case Value::Kind::kArray:
        return "[array of " + std::to_string(value.items().size()) + "]";
      case Value::Kind::kObject:
        return "{object}";
    }
    return "?";
}

/**
 * Recursively collects human-readable difference lines between @p golden
 * and @p fresh into @p out (at most @p max lines), each prefixed with its
 * JSON path.  Array elements whose objects carry a "name" / "scheduler" /
 * "workload" key are labeled by it, so a drifted metric reads like
 * `sections[16 cores].aggregates[BLISS].unfairness_gmean: 1.2 -> 1.3`.
 */
void
DiffValues(const std::string& path, const Value& golden, const Value& fresh,
           std::vector<std::string>& out, std::size_t max)
{
    if (out.size() >= max) {
        return;
    }
    if (golden.kind() != fresh.kind()) {
        out.push_back(path + ": " + ScalarRepr(golden) + " -> " +
                      ScalarRepr(fresh));
        return;
    }
    switch (golden.kind()) {
      case Value::Kind::kObject: {
        for (const auto& [key, value] : golden.members()) {
            const Value* other = fresh.Find(key);
            if (other == nullptr) {
                out.push_back(path + "." + key +
                              ": missing from fresh result");
            } else {
                DiffValues(path + "." + key, value, *other, out, max);
            }
            if (out.size() >= max) {
                return;
            }
        }
        for (const auto& [key, value] : fresh.members()) {
            if (golden.Find(key) == nullptr) {
                out.push_back(path + "." + key + ": not in golden");
                if (out.size() >= max) {
                    return;
                }
            }
        }
        return;
      }
      case Value::Kind::kArray: {
        const std::size_t common =
            std::min(golden.items().size(), fresh.items().size());
        for (std::size_t i = 0; i < common; ++i) {
            const Value& element = golden.items()[i];
            std::string label = std::to_string(i);
            if (element.kind() == Value::Kind::kObject) {
                for (const char* key :
                     {"name", "scheduler", "workload"}) {
                    const Value* tag = element.Find(key);
                    if (tag != nullptr &&
                        tag->kind() == Value::Kind::kString) {
                        label = tag->AsString();
                        break;
                    }
                }
            }
            DiffValues(path + "[" + label + "]", element,
                       fresh.items()[i], out, max);
            if (out.size() >= max) {
                return;
            }
        }
        if (golden.items().size() != fresh.items().size()) {
            out.push_back(path + ": length " +
                          std::to_string(golden.items().size()) + " -> " +
                          std::to_string(fresh.items().size()));
        }
        return;
      }
      default:
        if (golden != fresh) {
            out.push_back(path + ": " + ScalarRepr(golden) + " -> " +
                          ScalarRepr(fresh));
        }
        return;
    }
}

/**
 * Compares one result file against its golden counterpart.  @return true
 * when the run subtree matches exactly and the wall clock is within
 * tolerance.
 */
bool
CheckAgainstGolden(const std::string& name, const Value& result,
                   const Value& golden, double wall_tolerance)
{
    bool ok = true;
    const Value* run = result.Find("run");
    const Value* golden_run = golden.Find("run");
    if (run == nullptr || golden_run == nullptr) {
        std::fprintf(stderr, "FAIL %s: missing \"run\" subtree\n",
                     name.c_str());
        return false;
    }
    if (!(*run == *golden_run)) {
        constexpr std::size_t kMaxDiffLines = 20;
        std::vector<std::string> diff;
        DiffValues("run", *golden_run, *run, diff, kMaxDiffLines);
        std::fprintf(stderr,
                     "FAIL %s: simulated metrics drifted from golden "
                     "(golden -> fresh):\n",
                     name.c_str());
        for (const std::string& line : diff) {
            std::fprintf(stderr, "  %s\n", line.c_str());
        }
        if (diff.size() >= kMaxDiffLines) {
            std::fprintf(stderr, "  ... (diff truncated at %zu lines)\n",
                         kMaxDiffLines);
        }
        std::fprintf(stderr,
                     "  if the change is intentional, regenerate with: "
                     "cmake --build build --target bench_quick && "
                     "cp build/bench/out/*.json bench/golden/\n");
        ok = false;
    }
    const double wall = WallSeconds(result);
    const double golden_wall = WallSeconds(golden);
    // Quarter-second absolute grace: sub-second binaries (table printers)
    // are all scheduler-independent setup noise, and 20% of ~10ms is
    // nothing but jitter.
    if (golden_wall > 0.0 &&
        wall > golden_wall * (1.0 + wall_tolerance) + 0.25) {
        std::fprintf(stderr,
                     "FAIL %s: wall clock %.2fs exceeds golden %.2fs by "
                     "more than %.0f%%\n",
                     name.c_str(), wall, golden_wall,
                     wall_tolerance * 100.0);
        ok = false;
    }
    if (ok) {
        std::fprintf(stderr, "ok   %s (wall %.2fs, golden %.2fs)\n",
                     name.c_str(), wall, golden_wall);
    }
    return ok;
}

/**
 * Validates one observability trace file and prints its summary.
 * @return the process exit status (0 valid, 1 invalid, 2 unreadable).
 */
int
ValidateTrace(const std::string& path)
{
    Value root;
    if (!LoadJson(path, root)) {
        return 2;
    }
    const Value* events = root.Find("traceEvents");
    if (events == nullptr || events->items().empty()) {
        std::fprintf(stderr,
                     "FAIL %s: no traceEvents array (or it is empty)\n",
                     path.c_str());
        return 1;
    }

    // The engine flight recorder's track names (DESIGN.md §5h): anything
    // else under the "engine" category is an exporter bug.
    constexpr const char* kEngineTracks[] = {
        "engine", "window", "core", "channels",
        "publish", "merge", "work", "engine window",
    };

    bool ok = true;
    std::size_t spans_begin = 0;
    std::size_t spans_end = 0;
    std::size_t instants = 0;
    std::size_t counters = 0;
    std::size_t complete = 0;
    std::size_t metadata = 0;
    std::size_t engine_events = 0;
    std::uint64_t last_ts = 0;
    for (const Value& event : events->items()) {
        const Value* ph = event.Find("ph");
        const Value* name = event.Find("name");
        if (ph == nullptr || name == nullptr ||
            event.Find("pid") == nullptr) {
            std::fprintf(stderr,
                         "FAIL %s: event without ph/name/pid\n",
                         path.c_str());
            ok = false;
            break;
        }
        const std::string& phase = ph->AsString();
        if (phase == "M") {
            metadata += 1;
            continue;
        }
        const Value* cat = event.Find("cat");
        if (cat != nullptr && cat->AsString() == "engine") {
            engine_events += 1;
            if (std::none_of(std::begin(kEngineTracks),
                             std::end(kEngineTracks),
                             [&name](const char* track) {
                                 return name->AsString() == track;
                             })) {
                std::fprintf(stderr,
                             "FAIL %s: unknown engine track \"%s\"\n",
                             path.c_str(), name->AsString().c_str());
                ok = false;
                break;
            }
        }
        const Value* ts = event.Find("ts");
        if (ts == nullptr) {
            std::fprintf(stderr, "FAIL %s: non-metadata event without ts\n",
                         path.c_str());
            ok = false;
            break;
        }
        last_ts = std::max(last_ts,
                           static_cast<std::uint64_t>(ts->AsNumber()));
        if (phase == "b") {
            spans_begin += 1;
        } else if (phase == "e") {
            spans_end += 1;
        } else if (phase == "i") {
            instants += 1;
        } else if (phase == "C") {
            counters += 1;
        } else if (phase == "X") {
            complete += 1;
        } else {
            std::fprintf(stderr, "FAIL %s: unknown event phase \"%s\"\n",
                         path.c_str(), phase.c_str());
            ok = false;
            break;
        }
    }
    // Spans still open at the end of the run (in-flight requests, the open
    // batch) are legal, but more ends than begins never are.
    if (spans_end > spans_begin) {
        std::fprintf(stderr,
                     "FAIL %s: %zu span ends for %zu span begins\n",
                     path.c_str(), spans_end, spans_begin);
        ok = false;
    }
    if (spans_begin == 0) {
        std::fprintf(stderr, "FAIL %s: no request/batch spans recorded\n",
                     path.c_str());
        ok = false;
    }

    std::size_t sample_rows = 0;
    const Value* samples = root.Find("samples");
    const Value* rows =
        samples != nullptr ? samples->Find("samples") : nullptr;
    if (rows != nullptr) {
        sample_rows = rows->items().size();
    }
    std::uint64_t dropped = 0;
    const Value* other = root.Find("otherData");
    const Value* dropped_node =
        other != nullptr ? other->Find("events_dropped") : nullptr;
    if (dropped_node != nullptr) {
        dropped = static_cast<std::uint64_t>(dropped_node->AsNumber());
    }

    // A trace stamped as engine-profiled must carry the engine lanes (at
    // minimum the whole-run summary span), and engine events must never
    // appear without the stamp — either way the exporter and the profiler
    // disagree about whether the flight recorder was on.
    const Value* engine_flag =
        other != nullptr ? other->Find("engine_profile") : nullptr;
    const bool engine_profiled =
        engine_flag != nullptr && engine_flag->AsBool();
    if (engine_profiled && engine_events == 0) {
        std::fprintf(stderr,
                     "FAIL %s: otherData.engine_profile set but no "
                     "engine-category events\n",
                     path.c_str());
        ok = false;
    }
    if (!engine_profiled && engine_events > 0) {
        std::fprintf(stderr,
                     "FAIL %s: %zu engine events without "
                     "otherData.engine_profile\n",
                     path.c_str(), engine_events);
        ok = false;
    }

    std::fprintf(stderr,
                 "trace %s: %zu events (%zu+%zu spans, %zu instants, "
                 "%zu counters, %zu complete, %zu metadata, %zu engine), "
                 "last ts %llu, %llu dropped, %zu sampler rows\n",
                 path.c_str(),
                 events->items().size(), spans_begin, spans_end, instants,
                 counters, complete, metadata, engine_events,
                 static_cast<unsigned long long>(last_ts),
                 static_cast<unsigned long long>(dropped), sample_rows);

    const Value* latency = root.Find("latency");
    const Value* all = latency != nullptr ? latency->Find("all") : nullptr;
    const Value* total = all != nullptr ? all->Find("total") : nullptr;
    if (total != nullptr) {
        std::fprintf(
            stderr,
            "latency(all.total): count=%.0f p50=%.0f p95=%.0f p99=%.0f "
            "max=%.0f dram cycles\n",
            total->Find("count")->AsNumber(),
            total->Find("p50")->AsNumber(), total->Find("p95")->AsNumber(),
            total->Find("p99")->AsNumber(), total->Find("max")->AsNumber());
    }
    std::fprintf(stderr, "bench_report: trace check %s\n",
                 ok ? "passed" : "FAILED");
    return ok ? 0 : 1;
}

} // namespace

int
main(int argc, char** argv)
{
    std::string dir = "bench/out";
    std::string out_path = "BENCH_results.json";
    std::string golden_dir;
    std::string prev_path;
    std::string trace_path;
    std::string summary_path;
    double wall_tolerance = 0.20;
    bool engine = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--dir" && i + 1 < argc) {
            dir = argv[++i];
        } else if (arg == "--out" && i + 1 < argc) {
            out_path = argv[++i];
        } else if (arg == "--check" && i + 1 < argc) {
            golden_dir = argv[++i];
        } else if (arg == "--prev" && i + 1 < argc) {
            prev_path = argv[++i];
        } else if (arg == "--trace" && i + 1 < argc) {
            trace_path = argv[++i];
        } else if (arg == "--summary" && i + 1 < argc) {
            summary_path = argv[++i];
        } else if (arg == "--wall-tolerance" && i + 1 < argc) {
            wall_tolerance = std::strtod(argv[++i], nullptr);
        } else if (arg == "--engine") {
            engine = true;
        } else if (arg == "--help" || arg == "-h") {
            std::fprintf(stderr,
                         "usage: %s [--dir DIR] [--out PATH] "
                         "[--check GOLDEN_DIR] [--prev REPORT] "
                         "[--summary PATH] [--trace FILE] [--engine] "
                         "[--wall-tolerance F]\n",
                         argv[0]);
            return 0;
        } else {
            std::fprintf(stderr, "bench_report: unknown option %s\n",
                         arg.c_str());
            return 2;
        }
    }

    if (!trace_path.empty()) {
        return ValidateTrace(trace_path);
    }

    const std::vector<fs::path> files = JsonFiles(dir);
    if (files.empty()) {
        std::fprintf(stderr, "bench_report: no .json files in %s\n",
                     dir.c_str());
        return 2;
    }

    Value benchmarks = Value::Array();
    double total_wall = 0.0;
    for (const fs::path& path : files) {
        Value root;
        if (!LoadJson(path, root)) {
            return 2;
        }
        total_wall += WallSeconds(root);
        Value entry = Value::Object();
        entry.Set("file", path.filename().string());
        entry.Set("env", std::move(*root.Find("env")));
        entry.Set("run", std::move(*root.Find("run")));
        benchmarks.Append(std::move(entry));
    }

    Value report = Value::Object();
    Value summary = Value::Object();
    summary.Set("benchmarks",
                static_cast<std::uint64_t>(benchmarks.items().size()));
    summary.Set("total_wall_seconds", total_wall);
    report.Set("summary", std::move(summary));
    report.Set("benchmarks", std::move(benchmarks));

    {
        std::ofstream out(out_path);
        if (!out) {
            std::fprintf(stderr, "bench_report: cannot write %s\n",
                         out_path.c_str());
            return 2;
        }
        out << report.Dump(2) << "\n";
    }
    std::fprintf(stderr, "bench_report: wrote %s (%zu benchmarks, "
                         "%.1fs total)\n",
                 out_path.c_str(), files.size(), total_wall);

    const std::vector<ParetoRow> pareto = CollectParetoRows(report);
    PrintParetoTable(pareto);

    std::vector<EngineRow> engine_rows;
    std::vector<AmdahlFit> engine_fits;
    if (engine) {
        engine_rows = CollectEngineRows(report);
        engine_fits = FitAmdahl(engine_rows);
        PrintEngineTable(engine_rows, engine_fits);
    }

    std::vector<SpeedupLine> speedups;
    if (!prev_path.empty()) {
        Value prev;
        if (!LoadJson(prev_path, prev)) {
            return 2;
        }
        speedups = PrintSpeedups(report, prev);
    }

    if (!summary_path.empty() &&
        !WriteSummary(summary_path, pareto, speedups)) {
        return 2;
    }
    if (engine && !summary_path.empty() &&
        !AppendEngineSummary(summary_path, engine_rows, engine_fits)) {
        return 2;
    }

    if (golden_dir.empty()) {
        return 0;
    }

    // Gate mode: every golden file must have a fresh, matching result.
    const std::vector<fs::path> golden_files = JsonFiles(golden_dir);
    if (golden_files.empty()) {
        std::fprintf(stderr, "bench_report: no golden files in %s\n",
                     golden_dir.c_str());
        return 2;
    }
    bool all_ok = true;
    for (const fs::path& golden_path : golden_files) {
        const std::string name = golden_path.filename().string();
        const fs::path result_path = fs::path(dir) / name;
        Value golden;
        if (!LoadJson(golden_path, golden)) {
            return 2;
        }
        if (!fs::is_regular_file(result_path)) {
            std::fprintf(stderr, "FAIL %s: no result in %s\n",
                         name.c_str(), dir.c_str());
            all_ok = false;
            continue;
        }
        Value result;
        if (!LoadJson(result_path, result)) {
            return 2;
        }
        all_ok &= CheckAgainstGolden(name, result, golden, wall_tolerance);
    }
    std::fprintf(stderr, "bench_report: golden check %s\n",
                 all_ok ? "passed" : "FAILED");
    return all_ok ? 0 : 1;
}
