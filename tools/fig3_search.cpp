/**
 * @file
 * Randomized constraint search for the Figure 3 request layout.
 *
 * The paper's figure reports per-thread batch-completion times for FCFS
 * [4,4,5,7], FR-FCFS [5.5,3,4.5,4.5] and PAR-BS [1,2,4,5.5] on a concrete
 * 4-thread / 4-bank batch whose exact request placement the text only
 * describes qualitatively.  This tool fixes the analytically derived
 * "heavy" bank (5 requests of thread 4 in a 2+3 row split, plus one
 * request each of threads 1 and 2) and samples the remaining three banks
 * under the paper's structural constraints until all twelve completion
 * times match.  The found layout is hardcoded in
 * src/core/abstract_batch.cc (Figure3Batch) and verified by
 * tests/core/abstract_batch_test.cc.
 */
#include <cstdio>
#include <vector>
#include "core/abstract_batch.hh"
#include "common/rng.hh"
using namespace parbs;
using namespace parbs::abstract;
static bool close2(double a,double b){return a>b-1e-9&&a<b+1e-9;}
int main() {
    Rng rng(777);
    const double F[4]={4,4,5,7}, R[4]={5.5,3,4.5,4.5}, P[4]={1,2,4,5.5};
    // Fixed heavy bank (derived analytically).
    std::vector<AbstractRequest> heavy = {
        {3,1},{1,10},{3,2},{0,20},{3,2},{3,1},{3,2}};
    for (long iter=0; iter<100'000'000; ++iter) {
        AbstractBatch b; b.num_threads=4; b.banks.resize(4);
        b.banks[0]=heavy;
        // T1 (idx0): 2 more requests in banks 1,2 or 1,3 or 2,3
        unsigned skip = 1 + rng.NextBelow(3); // bank without T1
        std::vector<std::vector<AbstractRequest>> pend(4);
        for (unsigned bank=1; bank<4; ++bank)
            if (bank!=skip) pend[bank].push_back({0,(unsigned)(20+bank)});
        // T2 (idx1): 3 more: a pair in one bank + maybe single, or singles
        // totals: T2 extra in {2,3}; T3 extra 4-6, <=2/bank; T4 extra 0-3
        unsigned t2n = 2 + rng.NextBelow(2);
        {
            std::vector<unsigned> cnt(4,0); cnt[0]=1;
            for (unsigned i=0;i<t2n;++i){
                unsigned bank=1+rng.NextBelow(3);
                if (cnt[bank]>=2){--i;continue;}
                // row: pair same or different randomly
                unsigned row = 30 + bank*2 + (cnt[bank]>0 ? rng.NextBelow(2) : 0);
                cnt[bank]++;
                pend[bank].push_back({1,row});
            }
        }
        unsigned t3n = 4 + rng.NextBelow(3);
        {
            std::vector<unsigned> cnt(4,0); cnt[0]=2; // T3 absent from heavy actually; allow none there
            for (unsigned i=0;i<t3n;++i){
                unsigned bank=1+rng.NextBelow(3);
                if (cnt[bank]>=2){--i;continue;}
                unsigned row = 40 + bank*2 + (cnt[bank]>0 ? rng.NextBelow(2) : 0);
                cnt[bank]++;
                pend[bank].push_back({2,row});
            }
        }
        unsigned t4n = rng.NextBelow(4);
        {
            std::vector<unsigned> cnt(4,0);
            for (unsigned i=0;i<t4n;++i){
                unsigned bank=1+rng.NextBelow(3);
                if (cnt[bank]>=2) continue;
                unsigned row = 50 + bank*2 + (cnt[bank]>0 ? rng.NextBelow(2) : 0);
                cnt[bank]++;
                pend[bank].push_back({3,row});
            }
        }
        for (unsigned bank=1;bank<4;++bank){ rng.Shuffle(pend[bank]); b.banks[bank]=pend[bank]; }
        auto rf=ScheduleBatch(b,AbstractPolicy::kFcfs);
        bool ok=true;
        for(int t=0;t<4;++t) if(!close2(rf.completion[t],F[t])){ok=false;break;}
        if(!ok)continue;
        auto rr=ScheduleBatch(b,AbstractPolicy::kFrFcfs);
        for(int t=0;t<4&&ok;++t) if(!close2(rr.completion[t],R[t]))ok=false;
        if(!ok)continue;
        auto rp=ScheduleBatch(b,AbstractPolicy::kParBs);
        for(int t=0;t<4&&ok;++t) if(!close2(rp.completion[t],P[t]))ok=false;
        if(!ok)continue;
        std::printf("FOUND iter %ld\n",iter);
        for(unsigned bank=0;bank<4;++bank){
            std::printf("bank%u:",bank);
            for(auto&r:b.banks[bank]) std::printf(" {%u,%u}",r.thread,r.row);
            std::printf("\n");
        }
        return 0;
    }
    std::printf("not found\n");
    return 1;
}
