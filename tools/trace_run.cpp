/**
 * @file
 * Single traced simulation run: builds one System with observability
 * enabled, runs a canonical workload, and writes the Chrome trace-event
 * document to an exact output path — the "open a run in chrome://tracing"
 * entry point (EXPERIMENTS.md "Tracing a run").
 *
 *   trace_run --out run.json [--cores N] [--cycles N]
 *             [--scheduler NAME] [--interval N] [--seed N]
 *             [--engine] [--channel-jobs N]
 *
 * --engine turns on the engine flight recorder (DESIGN.md §5h): the
 * written trace gains the synthetic "engine" process with coordinator /
 * worker / window lanes.  The wall-timed window spans only exist when the
 * run is sharded, so pair it with --channel-jobs (0 = all hardware
 * threads); a serial run still records the deterministic counters and the
 * whole-run summary span.
 *
 * NAME is any registry display name (FR-FCFS, FCFS, NFQ, STFM, PAR-BS,
 * BLISS, ...) matched case-insensitively with punctuation ignored, so
 * the historical lowercase spellings (parbs, frfcfs, ...) keep working.
 *
 * Unlike the experiment binaries (which derive one file per
 * workload/scheduler from a stem), this writes exactly the path given by
 * --out, or by PARBS_TRACE when --out is omitted.  The run is fully
 * deterministic in (cores, cycles, scheduler, interval, seed).
 */

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "sched/factory.hh"
#include "sim/experiment.hh"
#include "sim/system.hh"
#include "sim/workloads.hh"

namespace {

int
Usage(const char* argv0, int status)
{
    std::fprintf(stderr,
                 "usage: %s --out PATH [--cores N] [--cycles N] "
                 "[--scheduler NAME] [--interval N] [--seed N] "
                 "[--engine] [--channel-jobs N]\n"
                 "NAME: any registered scheduler (FR-FCFS, FCFS, NFQ, STFM, "
                 "PAR-BS, BLISS, ...); case and punctuation are ignored, so "
                 "parbs, frfcfs, bliss also work.\n"
                 "PARBS_TRACE is used when --out is omitted.\n",
                 argv0);
    return status;
}

/**
 * Resolves @p name against the factory registry, comparing display names
 * case-insensitively with punctuation stripped so both "PAR-BS" and the
 * historical lowercase "parbs" spelling work — a newly registered
 * scheduler (e.g. BLISS) is accepted with no tool change.
 */
bool
ParseScheduler(const std::string& name, parbs::SchedulerKind& kind)
{
    auto canon = [](const std::string& s) {
        std::string out;
        for (char c : s) {
            if (std::isalnum(static_cast<unsigned char>(c))) {
                out += static_cast<char>(
                    std::tolower(static_cast<unsigned char>(c)));
            }
        }
        return out;
    };
    for (const parbs::SchedulerKind candidate :
         parbs::AllSchedulerKinds()) {
        if (canon(parbs::SchedulerKindName(candidate)) == canon(name)) {
            kind = candidate;
            return true;
        }
    }
    return false;
}

/** The paper's canonical mixed workload for the given core count. */
parbs::WorkloadSpec
WorkloadFor(std::uint32_t cores)
{
    if (cores == 4) {
        return parbs::CaseStudy1();
    }
    if (cores == 8) {
        return parbs::EightCoreMixed();
    }
    if (cores == 16) {
        return parbs::SixteenCoreSamples().front();
    }
    // Uncommon core counts: replicate the Case Study III benchmark.
    return parbs::Copies("lbm", cores);
}

} // namespace

int
main(int argc, char** argv)
{
    std::string out_path;
    std::uint32_t cores = 4;
    parbs::CpuCycle cycles = 500'000;
    parbs::SchedulerKind kind = parbs::SchedulerKind::kParBs;
    parbs::DramCycle interval = 1024;
    std::uint64_t seed = 1;
    bool engine = false;
    unsigned channel_jobs = 1;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--out" && i + 1 < argc) {
            out_path = argv[++i];
        } else if (arg == "--cores" && i + 1 < argc) {
            cores = static_cast<std::uint32_t>(
                std::strtoul(argv[++i], nullptr, 10));
        } else if (arg == "--cycles" && i + 1 < argc) {
            cycles = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--scheduler" && i + 1 < argc) {
            if (!ParseScheduler(argv[++i], kind)) {
                std::fprintf(stderr, "trace_run: unknown scheduler %s\n",
                             argv[i]);
                return 2;
            }
        } else if (arg == "--interval" && i + 1 < argc) {
            interval = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--seed" && i + 1 < argc) {
            seed = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--engine") {
            engine = true;
        } else if (arg == "--channel-jobs" && i + 1 < argc) {
            channel_jobs = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10));
        } else if (arg == "--help" || arg == "-h") {
            return Usage(argv[0], 0);
        } else {
            std::fprintf(stderr, "trace_run: unknown option %s\n",
                         arg.c_str());
            return 2;
        }
    }
    if (out_path.empty()) {
        const char* env = std::getenv("PARBS_TRACE");
        if (env != nullptr && env[0] != '\0') {
            out_path = env;
        } else {
            return Usage(argv[0], 2);
        }
    }

    parbs::ExperimentConfig experiment;
    experiment.cores = cores;
    experiment.run_cycles = cycles;
    experiment.seed = seed;
    experiment.channel_jobs = channel_jobs;

    parbs::SchedulerConfig scheduler;
    scheduler.kind = kind;

    parbs::SystemConfig system_config =
        experiment.MakeSystemConfig(scheduler);
    system_config.observability.trace = true;
    system_config.observability.sample_interval = interval;
    system_config.observability.engine_profile = engine;

    const parbs::WorkloadSpec workload = WorkloadFor(cores);
    parbs::ExperimentRunner runner(experiment);
    parbs::System system(system_config,
                         runner.MakeTraces(workload, system_config));
    system.Run(cycles);

    std::ofstream out(out_path);
    if (!out) {
        std::fprintf(stderr, "trace_run: cannot write %s\n",
                     out_path.c_str());
        return 2;
    }
    system.WriteTrace(out, workload.name);

    const parbs::obs::Observability& obs = *system.observability();
    std::fprintf(stderr,
                 "trace_run: %s: workload %s, scheduler %s, %llu cpu "
                 "cycles\n",
                 out_path.c_str(), workload.name.c_str(),
                 parbs::SchedulerConfigName(scheduler).c_str(),
                 static_cast<unsigned long long>(cycles));
    std::fprintf(stderr,
                 "trace_run: %zu events held (%llu dropped), %zu sampler "
                 "rows, %llu reads in the latency anatomy\n",
                 obs.tracer().size(),
                 static_cast<unsigned long long>(obs.tracer().dropped()),
                 obs.sampler().samples().size(),
                 static_cast<unsigned long long>(
                     obs.latency().recorded_reads()));
    return 0;
}
