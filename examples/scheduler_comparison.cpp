/**
 * @file
 * Compare all five DRAM schedulers on any workload composed from the
 * Table 3 benchmark profiles.
 *
 * Usage: scheduler_comparison [benchmark ...]
 *   e.g. scheduler_comparison mcf libquantum omnetpp hmmer
 * Default: the paper's Case Study I mix.  Core count follows the number of
 * benchmarks given (rounded up to 4/8/16).
 */

#include <iostream>

#include "sim/experiment.hh"
#include "stats/table.hh"

int
main(int argc, char** argv)
{
    using namespace parbs;

    WorkloadSpec workload;
    if (argc > 1) {
        workload.name = "custom";
        for (int i = 1; i < argc; ++i) {
            try {
                workload.benchmarks.emplace_back(
                    FindProfile(argv[i]).name);
            } catch (const ConfigError& e) {
                std::cerr << e.what() << "\nKnown benchmarks:";
                for (const auto& profile : SpecProfiles()) {
                    std::cerr << " " << profile.name;
                }
                std::cerr << "\n";
                return 2;
            }
        }
    } else {
        workload = CaseStudy1();
    }

    ExperimentConfig config;
    config.cores = workload.benchmarks.size() <= 4    ? 4
                   : workload.benchmarks.size() <= 8  ? 8
                                                      : 16;
    if (workload.benchmarks.size() > 16) {
        std::cerr << "at most 16 benchmarks supported\n";
        return 2;
    }
    config.run_cycles = 2'000'000;
    ExperimentRunner runner(config);

    std::cout << "Workload:";
    for (const auto& benchmark : workload.benchmarks) {
        std::cout << " " << benchmark;
    }
    std::cout << "\n\n";

    std::vector<std::string> header{"scheduler"};
    for (const auto& benchmark : workload.benchmarks) {
        header.push_back("slow:" + benchmark.substr(
                             benchmark.find('.') == std::string::npos
                                 ? 0
                                 : benchmark.find('.') + 1));
    }
    header.insert(header.end(), {"unfair", "WS", "HS"});
    Table table(std::move(header));
    for (const auto& scheduler : ComparisonSchedulers()) {
        const SharedRun run = runner.RunShared(workload, scheduler);
        std::vector<std::string> row{run.scheduler};
        for (double slowdown : run.metrics.memory_slowdown) {
            row.push_back(Table::Num(slowdown));
        }
        row.push_back(Table::Num(run.metrics.unfairness));
        row.push_back(Table::Num(run.metrics.weighted_speedup));
        row.push_back(Table::Num(run.metrics.hmean_speedup));
        table.AddRow(std::move(row));
    }
    std::cout << table.Render();
    return 0;
}
