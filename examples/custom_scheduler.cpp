/**
 * @file
 * Extending the library with a new scheduler through the public API.
 *
 * The paper presents request batching as "a simple and flexible framework
 * that can be used to enhance the fairness of existing scheduling
 * algorithms" — any within-batch policy plugs in.  This example implements
 * a scheduler from scratch *outside* the library — "BLP-first", which
 * (after marked status and row hits) prioritizes the thread currently
 * occupying the fewest banks, a live-heuristic alternative to Max-Total
 * ranking — injects it via SystemConfig::scheduler_factory, and races it
 * against the built-in lineup on Case Study I.
 */

#include <iostream>

#include "sched/parbs_sched.hh"
#include "sim/experiment.hh"
#include "sim/system.hh"
#include "stats/table.hh"

namespace {

using namespace parbs;

/** A user-defined scheduler: batching plus a live bank-usage heuristic. */
class BlpFirstScheduler : public ParBsScheduler {
  public:
    BlpFirstScheduler() : ParBsScheduler(MakeConfig()) {}

    std::string name() const override { return "BLP-first (custom)"; }

  protected:
    static ParBsConfig
    MakeConfig()
    {
        ParBsConfig config;
        // Disable the built-in ranking; Better() below supplies its own
        // heuristic in the RANK slot.
        config.ranking = RankingPolicy::kNoRankFrFcfs;
        return config;
    }

    /**
     * Opt back out of the per-bank pick memo ParBsScheduler enables:
     * Better() below reads the *live* ReqsInBankPerThread counters, which
     * change on any bank's arrivals and completions without this bank's
     * chain generation moving — a memoized winner could silently go stale.
     * This is the contract every PickMemoStable() == true scheduler signs:
     * the order may depend only on the candidates, the bank's row state,
     * and scheduler state announced through InvalidateBankPicks().
     */
    bool PickMemoStable() const override { return false; }

    bool
    Better(const Candidate& a, const Candidate& b,
           DramCycle now) const override
    {
        const MemRequest& ra = *a.request;
        const MemRequest& rb = *b.request;
        if (ra.marked != rb.marked) {
            return ra.marked; // Keep the batching guarantee.
        }
        if (a.row_hit != b.row_hit) {
            return a.row_hit;
        }
        const std::uint32_t banks_a = BanksInUse(ra.thread);
        const std::uint32_t banks_b = BanksInUse(rb.thread);
        if (banks_a != banks_b) {
            return banks_a < banks_b; // Fewest banks in use first.
        }
        return ra.id < rb.id;
    }

  private:
    std::uint32_t
    BanksInUse(ThreadId thread) const
    {
        std::uint32_t banks = 0;
        for (std::uint32_t bank = 0; bank < context_.NumBanks(); ++bank) {
            if (context_.read_queue->ReqsInBankPerThread(thread, bank) >
                0) {
                banks += 1;
            }
        }
        return banks;
    }
};

} // namespace

int
main()
{
    ExperimentConfig config;
    config.cores = 4;
    config.run_cycles = 2'000'000;
    ExperimentRunner runner(config);
    const WorkloadSpec workload = CaseStudy1();

    std::cout << "Custom scheduler (BLP-first) vs the built-in lineup on "
              << workload.name << "\n\n";

    Table table({"scheduler", "unfairness", "weighted-sp", "hmean-sp"});
    for (const auto& scheduler : ComparisonSchedulers()) {
        const SharedRun run = runner.RunShared(workload, scheduler);
        table.AddRow({run.scheduler, Table::Num(run.metrics.unfairness),
                      Table::Num(run.metrics.weighted_speedup),
                      Table::Num(run.metrics.hmean_speedup)});
    }

    // Inject the unregistered scheduler through the factory seam and
    // compute the same metrics by hand.
    {
        SchedulerConfig donor;
        SystemConfig system_config =
            runner.config().MakeSystemConfig(donor);
        system_config.scheduler_factory = [] {
            return std::make_unique<BlpFirstScheduler>();
        };
        System system(system_config,
                      runner.MakeTraces(workload, system_config));
        system.Run(config.run_cycles);

        std::vector<ThreadMeasurement> shared;
        std::vector<ThreadMeasurement> alone;
        for (ThreadId t = 0; t < workload.benchmarks.size(); ++t) {
            shared.push_back(system.Measure(t));
            alone.push_back(runner.AloneBaseline(workload.benchmarks[t]));
        }
        const WorkloadMetrics metrics = ComputeMetrics(shared, alone);
        table.AddRow({"BLP-first (custom)", Table::Num(metrics.unfairness),
                      Table::Num(metrics.weighted_speedup),
                      Table::Num(metrics.hmean_speedup)});
    }

    std::cout << table.Render() << "\n"
              << "BlpFirstScheduler lives entirely in this example: it "
                 "subclasses ParBsScheduler,\noverrides Better(), and is "
                 "injected via SystemConfig::scheduler_factory.\n";
    return 0;
}
