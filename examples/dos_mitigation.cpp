/**
 * @file
 * Memory-performance-attack mitigation demo (the paper's motivation cites
 * Moscibroda & Mutlu, USENIX Security 2007: a "memory performance hog"
 * can deny service to co-scheduled threads under FR-FCFS).
 *
 * The attacker streams row hits into a handful of banks at maximum
 * intensity; the victim is an ordinary application.  Under FR-FCFS the
 * attacker's row hits continuously capture the banks; PAR-BS's request
 * batching bounds the damage.  The demo also reports the victim's
 * worst-case request latency — the paper's Table 4 metric on which PAR-BS
 * dominates the QoS schedulers.
 */

#include <iostream>

#include "dram/address_mapper.hh"
#include "sim/system.hh"
#include "stats/table.hh"
#include "trace/spec_profiles.hh"
#include "trace/synthetic.hh"

int
main()
{
    using namespace parbs;

    // The attacker: an extreme streaming kernel — far more intensive than
    // any Table 3 benchmark, perfect row locality, camped on few banks.
    SyntheticParams attacker;
    attacker.mpki = 200.0;
    attacker.row_run_length = 32.0;
    attacker.burst_banks = 2.0;
    attacker.bank_switch_prob = 0.05;
    attacker.write_fraction = 0.0;

    const SyntheticParams victim = FindProfile("483.xalancbmk").synth;

    std::cout << "Memory performance hog vs xalancbmk (2 cores sharing one "
                 "channel)\n\n";
    Table table({"scheduler", "victim slowdown", "victim WC latency (cpu)",
                 "attacker slowdown"});

    for (const SchedulerKind kind :
         {SchedulerKind::kFrFcfs, SchedulerKind::kNfq, SchedulerKind::kStfm,
          SchedulerKind::kParBs}) {
        SystemConfig config = SystemConfig::Baseline(4);
        config.scheduler.kind = kind;

        // Alone baseline for the victim.
        dram::AddressMapper mapper(config.geometry, config.xor_bank_hash);
        auto alone_traces = std::vector<std::unique_ptr<TraceSource>>{};
        alone_traces.push_back(std::make_unique<SyntheticTraceSource>(
            victim, mapper, 0, 4, 7));
        System alone(config, std::move(alone_traces));
        alone.Run(2'000'000);
        const ThreadMeasurement victim_alone = alone.Measure(0);

        // Attacker alone baseline (core 0 of its own system; the trace's
        // partition slot 1 matches its address range in the shared run).
        auto attacker_alone_traces =
            std::vector<std::unique_ptr<TraceSource>>{};
        attacker_alone_traces.push_back(
            std::make_unique<SyntheticTraceSource>(attacker, mapper, 1, 4,
                                                   13));
        System attacker_alone_sys(config, std::move(attacker_alone_traces));
        attacker_alone_sys.Run(2'000'000);

        // Shared run: victim on core 0, attacker on core 1.
        auto traces = std::vector<std::unique_ptr<TraceSource>>{};
        traces.push_back(std::make_unique<SyntheticTraceSource>(
            victim, mapper, 0, 4, 7));
        traces.push_back(std::make_unique<SyntheticTraceSource>(
            attacker, mapper, 1, 4, 13));
        System shared(config, std::move(traces));
        shared.Run(2'000'000);

        const ThreadMeasurement victim_shared = shared.Measure(0);
        const ThreadMeasurement attacker_shared = shared.Measure(1);
        const ThreadMeasurement attacker_base =
            attacker_alone_sys.Measure(0);

        const double victim_slowdown =
            MemorySlowdown(victim_shared, victim_alone);
        const double attacker_slowdown =
            MemorySlowdown(attacker_shared, attacker_base);
        table.AddRow({std::string(SchedulerKindName(kind)),
                      Table::Num(victim_slowdown),
                      std::to_string(victim_shared.worst_case_latency),
                      Table::Num(attacker_slowdown)});
    }
    std::cout << table.Render() << "\n"
              << "Request batching bounds how long the attacker's row-hit "
                 "stream can delay the\nvictim's requests: compare the "
                 "victim's slowdown and worst-case latency under\nFR-FCFS "
                 "vs PAR-BS.\n";
    return 0;
}
