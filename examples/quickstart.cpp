/**
 * @file
 * Quickstart: build the paper's baseline 4-core system, run the Case Study
 * I workload under PAR-BS, and print the per-thread measurements plus the
 * fairness / throughput metrics.
 *
 * Usage: quickstart [cpu_cycles]
 */

#include <cstdlib>
#include <iostream>

#include "sim/experiment.hh"
#include "stats/table.hh"

int
main(int argc, char** argv)
{
    using namespace parbs;

    ExperimentConfig config;
    config.cores = 4;
    config.run_cycles = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                 : 2'000'000;

    ExperimentRunner runner(config);

    // The memory-intensive workload of Case Study I (Figure 5).
    const WorkloadSpec workload = CaseStudy1();

    SchedulerConfig scheduler;
    scheduler.kind = SchedulerKind::kParBs;
    scheduler.parbs.marking_cap = 5;

    std::cout << "Running " << workload.name << " (" << config.cores
              << " cores, " << config.run_cycles << " CPU cycles) under "
              << SchedulerConfigName(scheduler) << "...\n\n";

    const SharedRun run = runner.RunShared(workload, scheduler);

    Table table({"benchmark", "slowdown", "MCPI", "IPC", "RB hit", "BLP",
                 "AST/req"});
    for (std::size_t t = 0; t < run.benchmarks.size(); ++t) {
        table.AddRow({run.benchmarks[t],
                      Table::Num(run.metrics.memory_slowdown[t]),
                      Table::Num(run.shared[t].mcpi),
                      Table::Num(run.shared[t].ipc),
                      Table::Num(run.shared[t].row_hit_rate),
                      Table::Num(run.shared[t].blp),
                      Table::Num(run.shared[t].ast_per_req, 0)});
    }
    std::cout << table.Render() << "\n";

    std::cout << "Unfairness (max/min slowdown): "
              << Table::Num(run.metrics.unfairness) << "\n"
              << "Weighted speedup:              "
              << Table::Num(run.metrics.weighted_speedup) << "\n"
              << "Hmean speedup:                 "
              << Table::Num(run.metrics.hmean_speedup) << "\n";
    return 0;
}
