/**
 * @file
 * Replaying memory traces from files (the bring-your-own-traces path).
 *
 * Usage:
 *   trace_replay <trace-file> [trace-file ...]     # one file per core
 *   trace_replay --demo                            # generate + replay
 *
 * Trace format (see src/trace/file_trace.hh):
 *     <compute-instructions> <R|W> <address> [D]
 *
 * With --demo the example synthesizes two short traces — a streaming
 * thread and a pointer-chasing thread — saves them to a temp directory,
 * and replays them under FR-FCFS and PAR-BS.
 */

#include <cstdio>
#include <iostream>

#include "sim/config.hh"
#include "sim/system.hh"
#include "stats/table.hh"
#include "trace/file_trace.hh"

namespace {

using namespace parbs;

std::vector<std::string>
WriteDemoTraces()
{
    const std::string dir = "/tmp";
    std::vector<std::string> paths;

    // A streaming thread: sequential lines through rows of one region.
    {
        std::vector<TraceEntry> entries;
        for (Addr line = 0; line < 4000; ++line) {
            entries.push_back({20, 0x100000 + line * 64, false, false});
        }
        const std::string path = dir + "/parbs_demo_stream.trace";
        SaveTraceFile(path, entries);
        paths.push_back(path);
    }
    // A pointer chaser: dependent reads striding over rows and banks.
    {
        std::vector<TraceEntry> entries;
        Addr addr = 0x4000000;
        for (int i = 0; i < 2000; ++i) {
            entries.push_back({50, addr, false, true});
            addr += 64 * 131; // Large prime-ish stride: conflicts galore.
        }
        const std::string path = dir + "/parbs_demo_chase.trace";
        SaveTraceFile(path, entries);
        paths.push_back(path);
    }
    return paths;
}

} // namespace

int
main(int argc, char** argv)
{
    std::vector<std::string> paths;
    if (argc == 2 && std::string(argv[1]) == "--demo") {
        paths = WriteDemoTraces();
        std::cout << "Wrote demo traces:\n";
        for (const auto& path : paths) {
            std::cout << "  " << path << "\n";
        }
        std::cout << "\n";
    } else if (argc > 1) {
        paths.assign(argv + 1, argv + argc);
    } else {
        std::cerr << "usage: trace_replay <trace-file>... | --demo\n";
        return 2;
    }
    if (paths.size() > 16) {
        std::cerr << "at most 16 traces supported\n";
        return 2;
    }

    Table table({"scheduler", "core", "IPC", "MCPI", "RB hit", "BLP",
                 "AST/req", "requests"});
    for (const SchedulerKind kind :
         {SchedulerKind::kFrFcfs, SchedulerKind::kParBs}) {
        SystemConfig config = SystemConfig::Baseline(
            paths.size() <= 4 ? 4 : paths.size() <= 8 ? 8 : 16);
        config.scheduler.kind = kind;

        std::vector<std::unique_ptr<TraceSource>> traces;
        std::unique_ptr<System> system;
        try {
            for (const auto& path : paths) {
                traces.push_back(std::make_unique<FileTraceSource>(
                    FileTraceSource::FromFile(path, /*loop=*/true)));
            }
            system = std::make_unique<System>(config, std::move(traces));
            // A trace address beyond the configured geometry surfaces here.
            system->Run(2'000'000);
        } catch (const ConfigError& e) {
            std::cerr << e.what() << "\n";
            return 2;
        }
        for (ThreadId t = 0; t < paths.size(); ++t) {
            const ThreadMeasurement m = system->Measure(t);
            table.AddRow({std::string(SchedulerKindName(kind)),
                          std::to_string(t), Table::Num(m.ipc),
                          Table::Num(m.mcpi), Table::Num(m.row_hit_rate),
                          Table::Num(m.blp), Table::Num(m.ast_per_req, 0),
                          std::to_string(m.requests)});
        }
    }
    std::cout << table.Render();
    return 0;
}
