/**
 * @file
 * Quality-of-service demo (Section 5): the system software assigns thread
 * priorities — including the purely opportunistic level "L" — and PAR-BS
 * enforces them through priority-based marking and within-batch
 * prioritization.
 *
 * Scenario: an interactive, latency-sensitive thread (omnetpp) shares the
 * memory system with three background batch jobs.  We compare: no
 * priorities; omnetpp at priority 1 with the batch jobs at 2 and 4; and
 * the batch jobs demoted to opportunistic service.
 */

#include <iostream>

#include "sim/experiment.hh"
#include "stats/table.hh"

int
main()
{
    using namespace parbs;

    ExperimentConfig config;
    config.cores = 4;
    config.run_cycles = 2'000'000;
    ExperimentRunner runner(config);

    WorkloadSpec workload;
    workload.name = "qos-demo";
    workload.benchmarks = {"471.omnetpp", "462.libquantum", "429.mcf",
                           "matlab"};

    SchedulerConfig parbs;
    parbs.kind = SchedulerKind::kParBs;

    struct Scenario {
        std::string name;
        std::vector<ThreadPriority> priorities;
    };
    const std::vector<Scenario> scenarios{
        {"equal priorities (1,1,1,1)", {1, 1, 1, 1}},
        {"tiered (1,2,2,4)", {1, 2, 2, 4}},
        {"opportunistic background (1,L,L,L)",
         {1, kOpportunisticPriority, kOpportunisticPriority,
          kOpportunisticPriority}},
    };

    std::cout << "PAR-BS priority enforcement; foreground thread: "
                 "omnetpp\n\n";
    Table table({"scenario", "omnetpp slowdown", "libquantum", "mcf",
                 "matlab", "weighted-sp"});
    for (const Scenario& scenario : scenarios) {
        const SharedRun run =
            runner.RunShared(workload, parbs, &scenario.priorities);
        table.AddRow({scenario.name,
                      Table::Num(run.metrics.memory_slowdown[0]),
                      Table::Num(run.metrics.memory_slowdown[1]),
                      Table::Num(run.metrics.memory_slowdown[2]),
                      Table::Num(run.metrics.memory_slowdown[3]),
                      Table::Num(run.metrics.weighted_speedup)});
    }
    std::cout << table.Render() << "\n"
              << "Lower slowdown = closer to running alone.  Opportunistic "
                 "threads are only serviced\nwhen their banks have no "
                 "marked requests, so the foreground thread approaches "
                 "its\nalone-run performance.\n";
    return 0;
}
