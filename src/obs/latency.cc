#include "obs/latency.hh"

#include "common/assert.hh"
#include "common/json.hh"
#include "mem/request.hh"

namespace parbs::obs {

namespace {

// Reads at the default timing resolve in a few tens of DRAM cycles when
// unqueued; width 8 x 512 buckets covers [0, 4096) per component, with the
// overflow bucket catching pathological stalls (still counted and reported).
constexpr std::uint64_t kBucketWidth = 8;
constexpr std::size_t kBucketCount = 512;

json::Value HistogramJson(const Histogram& histogram) {
    const Histogram::Summary summary = histogram.PercentileSummary();
    json::Value out = json::Value::Object();
    out.Set("count", histogram.count());
    out.Set("mean", histogram.Mean());
    out.Set("p50", summary.p50);
    out.Set("p95", summary.p95);
    out.Set("p99", summary.p99);
    out.Set("p999", summary.p999);
    out.Set("max", summary.max);
    out.Set("overflow", histogram.overflow());
    return out;
}

} // namespace

LatencyAnatomy::ThreadHistograms::ThreadHistograms()
    : queueing(kBucketWidth, kBucketCount),
      service(kBucketWidth, kBucketCount),
      bus(kBucketWidth, kBucketCount),
      total(kBucketWidth, kBucketCount),
      recovery(kBucketWidth, kBucketCount)
{
}

LatencyAnatomy::LatencyAnatomy(std::uint32_t num_threads)
    : threads_(num_threads)
{
}

void
LatencyAnatomy::RecordRead(const MemRequest& request)
{
    PARBS_ASSERT(!request.is_write, "latency anatomy records reads only");
    PARBS_ASSERT(request.first_command_cycle != kNeverCycle &&
                     request.burst_issue_cycle != kNeverCycle &&
                     request.completion_cycle != kNeverCycle,
                 "request retired without full timestamp anatomy");
    PARBS_ASSERT(request.thread < threads_.size(),
                 "request thread out of range");
    const std::uint64_t queueing =
        request.first_command_cycle - request.arrival_dram;
    const std::uint64_t service =
        request.burst_issue_cycle - request.first_command_cycle;
    const std::uint64_t bus =
        request.completion_cycle - request.burst_issue_cycle;
    // first_attempt_completion is kNeverCycle only when RAS is disabled
    // (the field is set at the first burst issue); treat that as tax 0.
    const std::uint64_t recovery =
        request.first_attempt_completion == kNeverCycle
            ? 0
            : request.completion_cycle - request.first_attempt_completion;
    ThreadHistograms& thread = threads_[request.thread];
    thread.queueing.Add(queueing);
    thread.service.Add(service);
    thread.bus.Add(bus);
    thread.total.Add(request.Latency());
    thread.recovery.Add(recovery);
    all_.queueing.Add(queueing);
    all_.service.Add(service);
    all_.bus.Add(bus);
    all_.total.Add(request.Latency());
    all_.recovery.Add(recovery);
    recorded_reads_ += 1;
}

void
LatencyAnatomy::Merge(const LatencyAnatomy& other)
{
    PARBS_ASSERT(threads_.size() == other.threads_.size(),
                 "merging latency anatomies with different thread counts");
    auto merge_set = [](ThreadHistograms& into, const ThreadHistograms& from) {
        into.queueing.Merge(from.queueing);
        into.service.Merge(from.service);
        into.bus.Merge(from.bus);
        into.total.Merge(from.total);
        into.recovery.Merge(from.recovery);
    };
    for (std::size_t t = 0; t < threads_.size(); ++t) {
        merge_set(threads_[t], other.threads_[t]);
    }
    merge_set(all_, other.all_);
    recorded_reads_ += other.recorded_reads_;
}

void
LatencyAnatomy::Clear()
{
    auto clear_set = [](ThreadHistograms& h) {
        h.queueing.Clear();
        h.service.Clear();
        h.bus.Clear();
        h.total.Clear();
        h.recovery.Clear();
    };
    for (ThreadHistograms& h : threads_) {
        clear_set(h);
    }
    clear_set(all_);
    recorded_reads_ = 0;
}

json::Value
LatencyAnatomy::ToJson() const
{
    json::Value out = json::Value::Object();
    auto components = [](const ThreadHistograms& h) {
        json::Value component = json::Value::Object();
        component.Set("queueing", HistogramJson(h.queueing));
        component.Set("service", HistogramJson(h.service));
        component.Set("bus", HistogramJson(h.bus));
        component.Set("total", HistogramJson(h.total));
        component.Set("recovery", HistogramJson(h.recovery));
        return component;
    };
    out.Set("all", components(all_));
    json::Value threads = json::Value::Array();
    for (const ThreadHistograms& h : threads_) {
        threads.Append(components(h));
    }
    out.Set("threads", std::move(threads));
    return out;
}

} // namespace parbs::obs
