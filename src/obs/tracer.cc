#include "obs/tracer.hh"

#include <cassert>
#include <sstream>

#include "dram/command.hh"
#include "dram/error_model.hh"

namespace parbs::obs {

const char* EventKindName(EventKind kind) {
    switch (kind) {
    case EventKind::kRequestArrive: return "req-arrive";
    case EventKind::kRequestFirstIssue: return "req-first-issue";
    case EventKind::kRequestBurst: return "req-burst";
    case EventKind::kRequestRetire: return "req-retire";
    case EventKind::kCommand: return "cmd";
    case EventKind::kBatchFormed: return "batch-formed";
    case EventKind::kBatchComplete: return "batch-complete";
    case EventKind::kThreadRank: return "thread-rank";
    case EventKind::kMarkCapSkip: return "mark-cap-skip";
    case EventKind::kBlacklist: return "blacklist";
    case EventKind::kPriorityChange: return "priority-change";
    case EventKind::kWeightChange: return "weight-change";
    case EventKind::kWriteDrainEnter: return "write-drain-enter";
    case EventKind::kWriteDrainExit: return "write-drain-exit";
    case EventKind::kFastPathSkip: return "fast-path-skip";
    case EventKind::kEccCorrected: return "ecc-corrected";
    case EventKind::kEccUncorrectable: return "ecc-uncorrectable";
    case EventKind::kEccRetry: return "ecc-retry";
    case EventKind::kRowRetired: return "row-retired";
    case EventKind::kScrubIssue: return "scrub-issue";
    case EventKind::kScrubComplete: return "scrub-complete";
    case EventKind::kMachineCheck: return "machine-check";
    }
    return "unknown";
}

Tracer::Tracer(std::size_t capacity) {
    assert(capacity > 0 && "tracer ring capacity must be positive");
    events_.resize(capacity);
}

std::vector<TraceEvent> Tracer::Snapshot() const {
    std::vector<TraceEvent> out;
    out.reserve(size_);
    for (std::size_t i = 0; i < size_; ++i) {
        out.push_back(events_[(head_ + i) % events_.size()]);
    }
    return out;
}

namespace {

void FormatEvent(std::ostringstream& out, const TraceEvent& event) {
    out << "    cycle " << event.cycle << "  ch" << int{event.channel} << "  "
        << EventKindName(event.kind);
    if (event.thread != kInvalidThread) out << "  thread=" << event.thread;
    if (event.bank != kNoFlatBank) out << "  bank=" << event.bank;
    switch (event.kind) {
    case EventKind::kCommand:
        out << "  " << dram::CommandName(static_cast<dram::CommandType>(event.a))
            << "  row=" << event.b;
        break;
    case EventKind::kRequestArrive:
        out << "  req=" << event.a << (event.b != 0 ? "  write" : "  read");
        break;
    case EventKind::kRequestFirstIssue:
        out << "  req=" << event.a << "  first="
            << dram::CommandName(static_cast<dram::CommandType>(event.b));
        break;
    case EventKind::kRequestBurst:
        out << "  req=" << event.a << "  done=" << event.b;
        break;
    case EventKind::kRequestRetire:
        out << "  req=" << event.a << "  latency=" << event.b;
        break;
    case EventKind::kBatchFormed:
        out << "  batch=" << event.a << "  marked=" << event.b;
        break;
    case EventKind::kBatchComplete:
        out << "  batch=" << event.a << "  duration=" << event.b;
        break;
    case EventKind::kThreadRank:
        out << "  rank=" << event.a;
        break;
    case EventKind::kMarkCapSkip:
        out << "  req=" << event.a;
        break;
    case EventKind::kBlacklist:
        out << (event.a != 0 ? "  set" : "  cleared");
        break;
    case EventKind::kPriorityChange:
        out << "  priority=" << event.a;
        break;
    case EventKind::kWeightChange:
        out << "  milli_weight=" << event.a;
        break;
    case EventKind::kWriteDrainEnter:
    case EventKind::kWriteDrainExit:
        out << "  write_queue=" << event.a;
        break;
    case EventKind::kFastPathSkip:
        out << "  span=" << event.a;
        break;
    case EventKind::kEccCorrected:
        out << "  req=" << event.a << "  row=" << event.b;
        break;
    case EventKind::kEccUncorrectable:
        out << "  req=" << event.a << "  retries=" << event.b;
        break;
    case EventKind::kEccRetry:
        out << "  req=" << event.a << "  retry=" << event.b;
        break;
    case EventKind::kRowRetired:
        out << "  row=" << event.a << "  remap_used=" << event.b;
        break;
    case EventKind::kScrubIssue:
        out << "  row=" << event.a << "  done=" << event.b;
        break;
    case EventKind::kScrubComplete:
        out << "  row=" << event.a << "  outcome="
            << dram::EccOutcomeName(static_cast<dram::EccOutcome>(event.b));
        break;
    case EventKind::kMachineCheck:
        out << "  row=" << event.a << "  remap_capacity=" << event.b;
        break;
    }
    out << "\n";
}

} // namespace

std::string Tracer::FormatTail(ThreadId thread, std::uint32_t bank,
                               std::size_t max_events) const {
    // Walk newest-to-oldest collecting matches, then print oldest-first.
    std::vector<const TraceEvent*> matched;
    matched.reserve(max_events);
    for (std::size_t i = size_; i-- > 0 && matched.size() < max_events;) {
        const TraceEvent& event = events_[(head_ + i) % events_.size()];
        // An event belongs to the stall story if it touched the filtered
        // thread or the filtered bank; sentinel filters match everything.
        const bool match =
            (thread == kInvalidThread && bank == kNoFlatBank) ||
            (thread != kInvalidThread && event.thread == thread) ||
            (bank != kNoFlatBank && event.bank == bank);
        if (match) matched.push_back(&event);
    }
    std::ostringstream out;
    out << "  recent trace events (" << matched.size() << " shown, "
        << dropped_ << " dropped from ring):\n";
    for (std::size_t i = matched.size(); i-- > 0;) {
        FormatEvent(out, *matched[i]);
    }
    return out.str();
}

} // namespace parbs::obs
