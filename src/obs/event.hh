/**
 * @file
 * The cycle-resolved observability event schema (DESIGN.md §5f).
 *
 * Every interesting simulator transition — request lifecycle, DRAM command
 * issue, PAR-BS batch lifecycle, scheduler knob changes, controller mode
 * changes — is describable as one fixed-size TraceEvent.  Events are plain
 * data: the hot emission path copies 40 bytes into a ring buffer and does
 * nothing else; all interpretation (Chrome trace-event export, watchdog
 * tail dumps) happens offline at export time.
 *
 * The schema is deliberately lossy-friendly: every field is a scalar, so a
 * bounded ring can drop the oldest events under overload without breaking
 * any later event's meaning.
 */

#ifndef PARBS_OBS_EVENT_HH
#define PARBS_OBS_EVENT_HH

#include <cstdint>
#include <limits>

#include "common/types.hh"

namespace parbs::obs {

/** Sentinel for "no bank associated with this event". */
inline constexpr std::uint32_t kNoFlatBank =
    std::numeric_limits<std::uint32_t>::max();

/** What happened.  The payload fields `a` / `b` are kind-specific. */
enum class EventKind : std::uint8_t {
    // --- Request lifecycle (controller) ---------------------------------
    kRequestArrive,     ///< a = request id, b = 1 if write
    kRequestFirstIssue, ///< a = request id, b = first command type
    kRequestBurst,      ///< a = request id, b = burst completion cycle
    kRequestRetire,     ///< a = request id, b = latency (DRAM cycles)

    // --- DRAM commands (controller / channel) ---------------------------
    kCommand, ///< a = dram::CommandType, b = row (thread may be unset)

    // --- Scheduler (via SchedulerObserver) ------------------------------
    kBatchFormed,   ///< a = batch id, b = marked request count
    kBatchComplete, ///< a = batch id, b = duration (DRAM cycles)
    kThreadRank,    ///< thread re-ranked; a = new rank
    kMarkCapSkip,   ///< marking cap exhausted for (thread, bank); a = req id
    kBlacklist,     ///< BLISS blacklist bit changed; a = 1 set, 0 cleared
    kPriorityChange,///< a = new ThreadPriority
    kWeightChange,  ///< a = new weight in 1/1000ths

    // --- Controller mode changes ----------------------------------------
    kWriteDrainEnter, ///< a = write queue occupancy at the high watermark
    kWriteDrainExit,  ///< a = write queue occupancy at the low watermark
    kFastPathSkip,    ///< cycle = first skipped cycle, a = span length

    // --- RAS: ECC, retry, retirement, patrol scrub (mem/ras.hh) ---------
    kEccCorrected,    ///< a = request id, b = row
    kEccUncorrectable,///< a = request id, b = retries consumed so far
    kEccRetry,        ///< a = request id, b = retry count after requeue
    kRowRetired,      ///< a = row, b = remap-table occupancy after
    kScrubIssue,      ///< a = row, b = burst completion cycle
    kScrubComplete,   ///< a = row, b = dram::EccOutcome
    kMachineCheck,    ///< a = row, b = remap-table capacity (exhausted)
};

/** Short stable name for an event kind ("req-arrive", "cmd", ...). */
const char* EventKindName(EventKind kind);

/** One observability event.  Fixed-size, trivially copyable. */
struct TraceEvent {
    /** DRAM cycle the event occurred (for kFastPathSkip: span start). */
    DramCycle cycle = 0;
    EventKind kind = EventKind::kCommand;
    /** Channel / controller index the event originated from. */
    std::uint8_t channel = 0;
    /** Originating thread, or kInvalidThread when not request-bound. */
    ThreadId thread = kInvalidThread;
    /** Controller-local flat bank, or kNoFlatBank. */
    std::uint32_t bank = kNoFlatBank;
    /** Kind-specific payload (see EventKind). */
    std::uint64_t a = 0;
    std::uint64_t b = 0;
};

} // namespace parbs::obs

#endif // PARBS_OBS_EVENT_HH
