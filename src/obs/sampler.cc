#include "obs/sampler.hh"

#include "common/json.hh"
#include "mem/controller.hh"

namespace parbs::obs {

IntervalSampler::IntervalSampler(DramCycle interval)
    : interval_(interval), next_sample_(interval)
{
}

void
IntervalSampler::PrepareChannels(
    const std::vector<std::unique_ptr<Controller>>& controllers)
{
    if (!baselines_.empty()) {
        return;
    }
    baselines_.resize(controllers.size());
    for (std::size_t c = 0; c < controllers.size(); ++c) {
        const std::uint32_t threads = controllers[c]->num_threads();
        const std::uint32_t banks =
            controllers[c]->read_queue().num_banks();
        baselines_[c].blp_sum.assign(threads, 0);
        baselines_[c].blp_cycles.assign(threads, 0);
        baselines_[c].activations.assign(banks, 0);
    }
}

ControllerSample
IntervalSampler::SampleChannel(const Controller& controller,
                               std::size_t channel)
{
    ControllerBaseline& base = baselines_[channel];
    ControllerSample out;
    out.read_queue = static_cast<std::uint32_t>(controller.pending_reads());
    out.write_queue =
        static_cast<std::uint32_t>(controller.pending_writes());

    // Row-hit rate over the interval, from the per-thread service-class
    // counters (each retired read is classified exactly once).
    std::uint64_t hits = 0;
    std::uint64_t total = 0;
    const std::uint32_t threads = controller.num_threads();
    for (ThreadId thread = 0; thread < threads; ++thread) {
        const ControllerThreadStats& stats =
            controller.thread_stats(thread);
        hits += stats.read_row_hits;
        total += stats.read_row_hits + stats.read_row_closed +
                 stats.read_row_conflicts;
    }
    const std::uint64_t d_hits = hits - base.row_hits;
    const std::uint64_t d_total = total - base.row_total;
    out.row_hit_rate = d_total == 0 ? 0.0
                                    : static_cast<double>(d_hits) /
                                          static_cast<double>(d_total);
    base.row_hits = hits;
    base.row_total = total;

    const std::uint64_t bus_busy = controller.channel().bus_busy_cycles();
    out.bus_utilization = static_cast<double>(bus_busy - base.bus_busy) /
                          static_cast<double>(interval_);
    base.bus_busy = bus_busy;

    const std::uint64_t commands = controller.total_commands_issued();
    out.commands = commands - base.commands;
    base.commands = commands;

    out.batch_outstanding = controller.scheduler().BatchOutstanding();

    out.thread_blp.reserve(threads);
    for (ThreadId thread = 0; thread < threads; ++thread) {
        const ControllerThreadStats& stats =
            controller.thread_stats(thread);
        const std::uint64_t d_sum = stats.blp_sum - base.blp_sum[thread];
        const std::uint64_t d_cycles =
            stats.blp_cycles - base.blp_cycles[thread];
        out.thread_blp.push_back(d_cycles == 0
                                     ? 0.0
                                     : static_cast<double>(d_sum) /
                                           static_cast<double>(d_cycles));
        base.blp_sum[thread] = stats.blp_sum;
        base.blp_cycles[thread] = stats.blp_cycles;
    }

    const RequestQueue& reads = controller.read_queue();
    const std::uint32_t banks = reads.num_banks();
    const std::uint32_t banks_per_rank =
        banks / controller.channel().num_ranks();
    out.bank_queued.reserve(banks);
    out.bank_activations.reserve(banks);
    for (std::uint32_t bank = 0; bank < banks; ++bank) {
        out.bank_queued.push_back(reads.QueuedInBank(bank));
        const std::uint64_t activations =
            controller.channel()
                .bank(bank / banks_per_rank, bank % banks_per_rank)
                .activations();
        out.bank_activations.push_back(activations -
                                       base.activations[bank]);
        base.activations[bank] = activations;
    }

    if (const RasEngine* ras = controller.ras()) {
        const RasStats& stats = ras->stats();
        out.ecc_corrected = stats.corrected - base.ecc_corrected;
        out.ecc_uncorrectable = stats.uncorrectable - base.ecc_uncorrectable;
        out.ecc_retries = stats.retries - base.ecc_retries;
        out.scrub_reads = stats.scrub_reads - base.scrub_reads;
        out.rows_retired = stats.rows_retired - base.rows_retired;
        out.remap_used = ras->remap_used();
        base.ecc_corrected = stats.corrected;
        base.ecc_uncorrectable = stats.uncorrectable;
        base.ecc_retries = stats.retries;
        base.scrub_reads = stats.scrub_reads;
        base.rows_retired = stats.rows_retired;
    }
    return out;
}

void
IntervalSampler::AppendRow(DramCycle cycle, std::vector<ControllerSample> row)
{
    Sample sample;
    sample.cycle = cycle;
    sample.controllers = std::move(row);
    samples_.push_back(std::move(sample));
    next_sample_ = cycle + interval_;
}

void
IntervalSampler::TakeSample(
    DramCycle now, const std::vector<std::unique_ptr<Controller>>& ctrls)
{
    PrepareChannels(ctrls);
    Sample sample;
    sample.cycle = now;
    sample.controllers.reserve(ctrls.size());
    for (std::size_t c = 0; c < ctrls.size(); ++c) {
        sample.controllers.push_back(SampleChannel(*ctrls[c], c));
    }
    samples_.push_back(std::move(sample));
}

json::Value
IntervalSampler::ToJson() const
{
    json::Value out = json::Value::Object();
    out.Set("interval", interval_);
    json::Value rows = json::Value::Array();
    for (const Sample& sample : samples_) {
        json::Value row = json::Value::Object();
        row.Set("cycle", sample.cycle);
        json::Value controllers = json::Value::Array();
        for (const ControllerSample& cs : sample.controllers) {
            json::Value entry = json::Value::Object();
            entry.Set("read_queue", std::uint64_t{cs.read_queue});
            entry.Set("write_queue", std::uint64_t{cs.write_queue});
            entry.Set("row_hit_rate", cs.row_hit_rate);
            entry.Set("bus_utilization", cs.bus_utilization);
            entry.Set("commands", cs.commands);
            entry.Set("batch_outstanding", cs.batch_outstanding);
            json::Value blp = json::Value::Array();
            for (double value : cs.thread_blp) {
                blp.Append(value);
            }
            entry.Set("thread_blp", std::move(blp));
            json::Value queued = json::Value::Array();
            for (std::uint32_t value : cs.bank_queued) {
                queued.Append(std::uint64_t{value});
            }
            entry.Set("bank_queued", std::move(queued));
            json::Value acts = json::Value::Array();
            for (std::uint64_t value : cs.bank_activations) {
                acts.Append(value);
            }
            entry.Set("bank_activations", std::move(acts));
            entry.Set("ecc_corrected", cs.ecc_corrected);
            entry.Set("ecc_uncorrectable", cs.ecc_uncorrectable);
            entry.Set("ecc_retries", cs.ecc_retries);
            entry.Set("scrub_reads", cs.scrub_reads);
            entry.Set("rows_retired", cs.rows_retired);
            entry.Set("remap_used", cs.remap_used);
            controllers.Append(std::move(entry));
        }
        row.Set("controllers", std::move(controllers));
        rows.Append(std::move(row));
    }
    out.Set("samples", std::move(rows));
    return out;
}

} // namespace parbs::obs
