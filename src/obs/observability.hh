/**
 * @file
 * The observability bundle: configuration, ownership, and export.
 *
 * One Observability object per System owns the event tracer, the interval
 * sampler, the latency anatomy, and one SchedulerTraceAdapter per channel
 * (the SchedulerObserver implementation that forwards scheduler policy
 * events into the tracer).  The System wires raw pointers from here into
 * its controllers and schedulers; when no Observability exists those
 * pointers are null and every emission site is one not-taken branch
 * (DESIGN.md §5f has the zero-overhead-when-off argument).
 *
 * Export is Chrome trace-event JSON (the `chrome://tracing` / Perfetto
 * format): each channel is a process, each core / the scheduler / each
 * bank is a track, requests are async spans keyed by request id, DRAM
 * commands are instants on their bank's track, batches are spans on the
 * scheduler track, and sampler rows become counter events.  The document
 * also carries the raw sampler table and the latency-anatomy report under
 * top-level keys (ignored by trace viewers, consumed by bench_report).
 */

#ifndef PARBS_OBS_OBSERVABILITY_HH
#define PARBS_OBS_OBSERVABILITY_HH

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.hh"
#include "obs/latency.hh"
#include "obs/sampler.hh"
#include "obs/tracer.hh"
#include "sched/observer.hh"

namespace parbs {
namespace json {
class Value;
}
} // namespace parbs

namespace parbs::obs {

/** Observability knobs, carried inside SystemConfig. */
struct ObservabilityConfig {
    /** Master switch: event tracing + latency anatomy. */
    bool trace = false;
    /** Ring capacity in events (newest win once full). */
    std::size_t trace_ring_capacity = std::size_t{1} << 18;
    /** Sampler period in DRAM cycles; 0 disables the time series. */
    DramCycle sample_interval = 0;
    /** Engine flight recorder (DESIGN.md §5h): phase timings + window
     *  counters.  Independent of `trace` — a profiled bench run needs no
     *  event ring, and a trace needs no engine lanes. */
    bool engine_profile = false;

    bool Enabled() const { return trace; }

    /** @throws ConfigError on nonsensical values. */
    void Validate() const;
};

/** Run identity stamped into the exported trace document. */
struct TraceMeta {
    std::string scheduler;
    std::string workload;
    std::uint32_t cores = 0;
    std::uint64_t seed = 0;
    std::uint32_t cpu_to_dram_ratio = 0;
};

/** Forwards one channel's scheduler policy events into the tracer. */
class SchedulerTraceAdapter final : public SchedulerObserver {
  public:
    SchedulerTraceAdapter(Tracer& tracer, std::uint8_t channel)
        : tracer_(&tracer), channel_(channel)
    {
    }

    /**
     * Redirects subsequent events to @p tracer (never null).  The sharded
     * System points each channel's adapter at that channel's staging
     * tracer for the duration of a run, and back at the main ring after,
     * so scheduler events merge in their serial emission order.
     */
    void SetTracer(Tracer* tracer) { tracer_ = tracer; }

    void OnBatchFormed(DramCycle now, std::uint64_t batch_id,
                       std::uint64_t marked) override;
    void OnBatchComplete(DramCycle now, std::uint64_t batch_id,
                         DramCycle duration) override;
    void OnThreadRanked(DramCycle now, ThreadId thread,
                        std::uint32_t rank) override;
    void OnMarkingCapHit(DramCycle now, ThreadId thread, std::uint32_t bank,
                         RequestId request_id) override;
    void OnThreadBlacklisted(DramCycle now, ThreadId thread,
                             bool blacklisted) override;
    void OnPriorityChanged(ThreadId thread, ThreadPriority priority) override;
    void OnWeightChanged(ThreadId thread, double weight) override;

  private:
    Tracer* tracer_;
    std::uint8_t channel_;
};

/** Owns every observability component of one System. */
class Observability {
  public:
    Observability(const ObservabilityConfig& config,
                  std::uint32_t num_threads, std::uint32_t num_channels);

    Tracer& tracer() { return tracer_; }
    const Tracer& tracer() const { return tracer_; }
    LatencyAnatomy& latency() { return latency_; }
    const LatencyAnatomy& latency() const { return latency_; }
    IntervalSampler& sampler() { return sampler_; }
    const IntervalSampler& sampler() const { return sampler_; }
    SchedulerTraceAdapter& adapter(std::uint32_t channel) {
        return *adapters_[channel];
    }

    /** The complete Chrome trace-event document for this run. */
    json::Value TraceDocument(const TraceMeta& meta) const;

    /** Serializes TraceDocument to @p out (2-space indent, deterministic). */
    void WriteTrace(std::ostream& out, const TraceMeta& meta) const;

  private:
    Tracer tracer_;
    LatencyAnatomy latency_;
    IntervalSampler sampler_;
    std::vector<std::unique_ptr<SchedulerTraceAdapter>> adapters_;
    std::uint32_t num_threads_;
    std::uint32_t num_channels_;
};

} // namespace parbs::obs

#endif // PARBS_OBS_OBSERVABILITY_HH
