/**
 * @file
 * Flight recorder for the simulation engine itself (DESIGN.md §5h).
 *
 * The PR 5 observability layer sees requests and banks; this profiler sees
 * the machinery that simulates them: how long each participant of the
 * channel team spends in each engine phase, how full the lookahead windows
 * run, and how evenly the request stream spreads across the channel
 * shards.  Its measurements split into two strictly separated families:
 *
 * - **Deterministic counters** — window count and tick histogram, per-
 *   channel arrivals and per-window arrival imbalance, queue occupancy
 *   sampled at window closes — are pure functions of the simulated
 *   schedule and must stay byte-identical across `--jobs`,
 *   `--channel-jobs`, and `core_jobs` (the serial engine replicates the
 *   sharded engine's window accounting so both report the same numbers).
 *   They export under the bench JSON `run` subtree.
 *
 * - **Volatile wall-clock timings** — per-participant ticks in each phase
 *   (core frontend, coordinator serial tail, channel work, barrier and
 *   park waits, publish, merge) via a TSC-style clock sampled only at
 *   phase boundaries.  They export under `env`, and per-window records
 *   feed Chrome trace lanes on a synthetic "engine" process.
 *
 * Thread-safety: each participant writes only its own cache-line-padded
 * slot; the coordinator reads and folds the slots only between team
 * barriers (the same alternating-phases argument as the channel shards),
 * so no access is ever concurrent and no atomics sit on the hot path.
 */

#ifndef PARBS_OBS_ENGINE_PROFILER_HH
#define PARBS_OBS_ENGINE_PROFILER_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/types.hh"
#include "stats/histogram.hh"

namespace parbs {
namespace json {
class Value;
}
} // namespace parbs

namespace parbs::obs {

class EngineProfiler {
  public:
    /** Engine phases, one accumulator per (participant, phase). */
    enum class Phase : std::uint8_t {
        kCoreFrontend = 0, ///< Per-participant core frontend block.
        kCoreJoin,         ///< Lockstep cycle join (coordinator) / release
                           ///< wait (worker) in the parallel core phase.
        kCoreIssue,        ///< Coordinator serial tail: thread-order issue.
        kCoreSweep,        ///< Un-crewed serial core sweep of a window.
        kChannelWork,      ///< Controller catch-up for owned channels.
        kBarrierJoin,      ///< Coordinator spin on the team done counter.
        kWorkerPark,       ///< Worker wait between windows.
        kPublish,          ///< Notification schedule rebuild (k-way merge).
        kMerge,            ///< Rest of the window merge (proxies, obs).
    };
    static constexpr std::size_t kPhaseCount = 9;

    static const char* PhaseName(Phase phase);

    /**
     * @param participants team size the volatile slots are built for (1 on
     *        the serial engine)
     * @param num_channels channel count for the per-shard counters
     * @param lookahead_window the engine's window bound, in DRAM cycles
     */
    EngineProfiler(unsigned participants, std::uint32_t num_channels,
                   DramCycle lookahead_window);

    /** Cheap monotonic tick source: TSC on x86, steady_clock elsewhere.
     *  Unit is calibrated against steady_clock at export time. */
    static std::uint64_t Now();

    unsigned participants() const { return participants_; }
    DramCycle lookahead_window() const { return lookahead_window_; }

    // --- volatile side (wall clock; sharded engine only) ------------------

    /** Folds @p ticks into (participant, phase); called only by the thread
     *  owning @p participant's slot. */
    void AddPhaseTicks(unsigned participant, Phase phase,
                       std::uint64_t ticks);

    /** Marks the wall-clock start of the next engine window (coordinator
     *  only; no-op if a window is already open). */
    void BeginWindowWall();

    /** Coordinator's current phase, for watchdog stall dumps (relaxed —
     *  a stale read is fine, a torn one impossible). */
    void SetCurrentPhase(Phase phase);
    const char* CurrentPhaseName() const;

    // --- deterministic side (simulated schedule; both engines) ------------

    /** A request was accepted into @p channel's queue. */
    void OnArrival(std::uint32_t channel)
    {
        window_arrivals_[channel] += 1;
    }

    /**
     * Closes the window [@p from, @p to) of controller ticks:
     * folds the per-window arrival counts into the imbalance histogram,
     * samples @p occupancy (per-channel queued requests at the close,
     * identical between shard proxies and real queues at this point), and
     * — when a wall window is open — snapshots the volatile slot scratch
     * into a bounded per-window record for the trace lanes.
     */
    void OnWindowClose(DramCycle from, DramCycle to,
                       std::span<const std::uint64_t> occupancy);

    // --- export -----------------------------------------------------------

    /** Deterministic counters; byte-identical across every parallelism
     *  setting.  Bench JSON `run.engine` payload. */
    json::Value DeterministicJson() const;

    /** Volatile phase timings, clock calibration, and summary fractions.
     *  Bench JSON `env.engine` payload. */
    json::Value TimingJson() const;

    /**
     * Appends the engine lanes to a Chrome trace document produced by
     * Observability::TraceDocument: process/thread metadata, per-window
     * phase spans, and per-window counter tracks on a synthetic engine
     * process.  Engine timestamps are wall-clock microseconds since
     * profiler construction (the simulation tracks use DRAM cycles); the
     * document's otherData records both the flag and the clock note.
     */
    void AppendToTraceDocument(json::Value& document) const;

  private:
    /** Per-participant accumulators, cache-line padded; `window` holds the
     *  scratch since the last window close, folded by the coordinator. */
    struct alignas(64) Slot {
        std::uint64_t ticks[kPhaseCount] = {};
        std::uint64_t samples[kPhaseCount] = {};
        std::uint64_t window[kPhaseCount] = {};
    };

    /** One closed window's volatile snapshot (trace lanes only). */
    struct WindowRecord {
        DramCycle from = 0;
        DramCycle to = 0;
        std::uint64_t arrivals = 0;
        std::uint64_t imbalance = 0;
        std::uint64_t occupancy = 0;
        /** Wall ticks since construction. */
        std::uint64_t wall_begin = 0;
        std::uint64_t wall_end = 0;
        std::uint64_t core_ticks = 0;
        std::uint64_t publish_ticks = 0;
        std::uint64_t merge_ticks = 0;
        /** Per-participant kChannelWork + kCoreFrontend ticks. */
        std::vector<std::uint64_t> work_ticks;
    };

    static constexpr std::uint64_t kNoWall = ~std::uint64_t{0};
    static constexpr std::size_t kMaxWindowRecords = 4096;

    /** Export-time ticks-per-second calibration against steady_clock. */
    double TicksPerSecond() const;

    unsigned participants_;
    DramCycle lookahead_window_;

    // Deterministic accumulators.
    std::uint64_t windows_ = 0;
    std::uint64_t arrivals_ = 0;
    Histogram window_ticks_;
    Histogram imbalance_;
    Histogram occupancy_;
    std::vector<std::uint64_t> window_arrivals_; ///< Per-window scratch.
    std::vector<std::uint64_t> channel_arrivals_;
    std::vector<std::uint64_t> occupancy_hiwater_;

    // Volatile state.
    std::unique_ptr<Slot[]> slots_;
    std::uint64_t construct_ticks_;
    std::chrono::steady_clock::time_point construct_time_;
    std::uint64_t wall_open_ = kNoWall;
    std::vector<WindowRecord> records_;
    std::uint64_t records_dropped_ = 0;
    std::atomic<std::uint8_t> current_phase_;
};

} // namespace parbs::obs

#endif // PARBS_OBS_ENGINE_PROFILER_HH
