#include "obs/engine_profiler.hh"

#include <algorithm>
#include <string>

#include "common/assert.hh"
#include "common/json.hh"

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
#endif

namespace parbs::obs {

namespace {

/** Synthetic Chrome-trace process for the engine lanes; the simulation
 *  processes are the channel indices, far below this. */
constexpr std::uint64_t kEnginePid = 10000;
/** Lane holding one span per engine window. */
constexpr std::uint64_t kWindowLane = 999;

/** Deterministic histogram rendering: every field is a pure function of
 *  the recorded samples (mean divides two exact integer accumulators). */
json::Value
HistogramJson(const Histogram& histogram)
{
    const Histogram::Summary summary = histogram.PercentileSummary();
    json::Value out = json::Value::Object();
    out.Set("count", histogram.count());
    out.Set("mean", histogram.Mean());
    out.Set("min", histogram.min());
    out.Set("p50", summary.p50);
    out.Set("p95", summary.p95);
    out.Set("p99", summary.p99);
    out.Set("p999", summary.p999);
    out.Set("max", summary.max);
    out.Set("overflow", histogram.overflow());
    return out;
}

/** Same shape as the exporter in observability.cc (anonymous there). */
json::Value
MakeEvent(const char* ph, const std::string& name, const char* cat,
          std::uint64_t pid, std::uint64_t tid, double ts)
{
    json::Value event = json::Value::Object();
    event.Set("ph", ph);
    event.Set("name", name);
    event.Set("cat", cat);
    event.Set("pid", pid);
    event.Set("tid", tid);
    event.Set("ts", ts);
    return event;
}

json::Value
MetadataEvent(const char* kind, std::uint64_t pid, std::uint64_t tid,
              const std::string& name)
{
    json::Value event = json::Value::Object();
    event.Set("ph", "M");
    event.Set("name", kind);
    event.Set("pid", pid);
    if (std::string(kind) == "thread_name") {
        event.Set("tid", tid);
    }
    json::Value args = json::Value::Object();
    args.Set("name", name);
    event.Set("args", std::move(args));
    return event;
}

} // namespace

const char*
EngineProfiler::PhaseName(Phase phase)
{
    switch (phase) {
    case Phase::kCoreFrontend: return "core_frontend";
    case Phase::kCoreJoin: return "core_join";
    case Phase::kCoreIssue: return "core_issue";
    case Phase::kCoreSweep: return "core_sweep";
    case Phase::kChannelWork: return "channel_work";
    case Phase::kBarrierJoin: return "barrier_join";
    case Phase::kWorkerPark: return "worker_park";
    case Phase::kPublish: return "publish";
    case Phase::kMerge: return "merge";
    }
    return "unknown";
}

EngineProfiler::EngineProfiler(unsigned participants,
                               std::uint32_t num_channels,
                               DramCycle lookahead_window)
    : participants_(participants),
      lookahead_window_(lookahead_window),
      // Window lengths are bounded by the lookahead window (a handful of
      // DRAM cycles); imbalance by the per-window arrival burst; occupancy
      // by the queue capacities.  Overflow buckets catch outliers loudly.
      window_ticks_(1, 32),
      imbalance_(1, 64),
      occupancy_(4, 64),
      window_arrivals_(num_channels, 0),
      channel_arrivals_(num_channels, 0),
      occupancy_hiwater_(num_channels, 0),
      slots_(std::make_unique<Slot[]>(participants)),
      construct_ticks_(Now()),
      construct_time_(std::chrono::steady_clock::now()),
      current_phase_(static_cast<std::uint8_t>(kPhaseCount))
{
    PARBS_ASSERT(participants_ >= 1 && num_channels >= 1,
                 "engine profiler needs participants and channels");
}

std::uint64_t
EngineProfiler::Now()
{
#if defined(__x86_64__) || defined(__i386__)
    return __rdtsc();
#else
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
#endif
}

void
EngineProfiler::AddPhaseTicks(unsigned participant, Phase phase,
                              std::uint64_t ticks)
{
    PARBS_ASSERT(participant < participants_,
                 "profiler participant out of range");
    Slot& slot = slots_[participant];
    const auto index = static_cast<std::size_t>(phase);
    slot.ticks[index] += ticks;
    slot.samples[index] += 1;
    slot.window[index] += ticks;
}

void
EngineProfiler::BeginWindowWall()
{
    if (wall_open_ == kNoWall) {
        wall_open_ = Now() - construct_ticks_;
    }
}

void
EngineProfiler::SetCurrentPhase(Phase phase)
{
    current_phase_.store(static_cast<std::uint8_t>(phase),
                         std::memory_order_relaxed);
}

const char*
EngineProfiler::CurrentPhaseName() const
{
    const std::uint8_t raw = current_phase_.load(std::memory_order_relaxed);
    if (raw >= kPhaseCount) {
        return "idle";
    }
    return PhaseName(static_cast<Phase>(raw));
}

void
EngineProfiler::OnWindowClose(DramCycle from, DramCycle to,
                              std::span<const std::uint64_t> occupancy)
{
    PARBS_ASSERT(to > from, "window close with no ticks");
    PARBS_ASSERT(occupancy.size() == window_arrivals_.size(),
                 "occupancy sample has the wrong channel count");
    windows_ += 1;
    window_ticks_.Add(to - from);

    std::uint64_t lo = ~std::uint64_t{0};
    std::uint64_t hi = 0;
    std::uint64_t total = 0;
    for (std::size_t channel = 0; channel < window_arrivals_.size();
         ++channel) {
        const std::uint64_t count = window_arrivals_[channel];
        lo = std::min(lo, count);
        hi = std::max(hi, count);
        total += count;
        channel_arrivals_[channel] += count;
        window_arrivals_[channel] = 0;
    }
    arrivals_ += total;
    imbalance_.Add(hi - lo);

    std::uint64_t occupancy_total = 0;
    for (std::size_t channel = 0; channel < occupancy.size(); ++channel) {
        occupancy_.Add(occupancy[channel]);
        occupancy_hiwater_[channel] =
            std::max(occupancy_hiwater_[channel], occupancy[channel]);
        occupancy_total += occupancy[channel];
    }

    if (wall_open_ == kNoWall) {
        return; // Serial engine: deterministic accounting only.
    }
    const bool keep = records_.size() < kMaxWindowRecords;
    if (keep) {
        WindowRecord record;
        record.from = from;
        record.to = to;
        record.arrivals = total;
        record.imbalance = hi - lo;
        record.occupancy = occupancy_total;
        record.wall_begin = wall_open_;
        record.wall_end = Now() - construct_ticks_;
        Slot& coordinator = slots_[0];
        record.core_ticks =
            coordinator
                .window[static_cast<std::size_t>(Phase::kCoreFrontend)] +
            coordinator.window[static_cast<std::size_t>(Phase::kCoreJoin)] +
            coordinator.window[static_cast<std::size_t>(Phase::kCoreIssue)] +
            coordinator.window[static_cast<std::size_t>(Phase::kCoreSweep)];
        record.publish_ticks =
            coordinator.window[static_cast<std::size_t>(Phase::kPublish)];
        record.merge_ticks =
            coordinator.window[static_cast<std::size_t>(Phase::kMerge)];
        record.work_ticks.reserve(participants_);
        for (unsigned p = 0; p < participants_; ++p) {
            record.work_ticks.push_back(
                slots_[p].window[static_cast<std::size_t>(
                    Phase::kChannelWork)] +
                (p == 0 ? 0
                        : slots_[p].window[static_cast<std::size_t>(
                              Phase::kCoreFrontend)]));
        }
        records_.push_back(std::move(record));
    } else {
        records_dropped_ += 1;
    }
    // The slots' window scratch is folded (or dropped) — reset it.  The
    // workers are parked between windows, so this never races a writer.
    for (unsigned p = 0; p < participants_; ++p) {
        std::fill(std::begin(slots_[p].window), std::end(slots_[p].window),
                  std::uint64_t{0});
    }
    wall_open_ = kNoWall;
}

double
EngineProfiler::TicksPerSecond() const
{
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      construct_time_)
            .count();
    const double ticks =
        static_cast<double>(Now() - construct_ticks_);
    if (elapsed <= 1e-6 || ticks <= 0.0) {
        return 0.0;
    }
    return ticks / elapsed;
}

json::Value
EngineProfiler::DeterministicJson() const
{
    json::Value out = json::Value::Object();
    out.Set("lookahead_window", std::uint64_t{lookahead_window_});
    out.Set("windows", windows_);
    out.Set("arrivals", arrivals_);
    out.Set("window_ticks", HistogramJson(window_ticks_));
    out.Set("arrival_imbalance", HistogramJson(imbalance_));
    out.Set("occupancy", HistogramJson(occupancy_));
    json::Value channels = json::Value::Array();
    for (std::size_t channel = 0; channel < channel_arrivals_.size();
         ++channel) {
        json::Value entry = json::Value::Object();
        entry.Set("arrivals", channel_arrivals_[channel]);
        entry.Set("occupancy_hiwater", occupancy_hiwater_[channel]);
        channels.Append(std::move(entry));
    }
    out.Set("channels", std::move(channels));
    return out;
}

json::Value
EngineProfiler::TimingJson() const
{
    const double tps = TicksPerSecond();
    auto seconds = [tps](std::uint64_t ticks) {
        return tps > 0.0 ? static_cast<double>(ticks) / tps : 0.0;
    };

    json::Value out = json::Value::Object();
    json::Value clock = json::Value::Object();
#if defined(__x86_64__) || defined(__i386__)
    clock.Set("source", "rdtsc");
#else
    clock.Set("source", "steady_clock");
#endif
    clock.Set("ticks_per_second", tps);
    out.Set("clock", std::move(clock));
    out.Set("participants", std::uint64_t{participants_});

    json::Value phases = json::Value::Array();
    for (unsigned p = 0; p < participants_; ++p) {
        const Slot& slot = slots_[p];
        for (std::size_t index = 0; index < kPhaseCount; ++index) {
            if (slot.samples[index] == 0) {
                continue;
            }
            json::Value entry = json::Value::Object();
            entry.Set("participant", std::uint64_t{p});
            entry.Set("phase", PhaseName(static_cast<Phase>(index)));
            entry.Set("ticks", slot.ticks[index]);
            entry.Set("samples", slot.samples[index]);
            entry.Set("seconds", seconds(slot.ticks[index]));
            phases.Append(std::move(entry));
        }
    }
    out.Set("phases", std::move(phases));

    // Convenience summaries (bench_report recomputes them from `phases`).
    const Slot& coordinator = slots_[0];
    std::uint64_t coordinator_total = 0;
    for (std::size_t index = 0; index < kPhaseCount; ++index) {
        coordinator_total += coordinator.ticks[index];
    }
    const std::uint64_t tail =
        coordinator.ticks[static_cast<std::size_t>(Phase::kCoreIssue)] +
        coordinator.ticks[static_cast<std::size_t>(Phase::kPublish)] +
        coordinator.ticks[static_cast<std::size_t>(Phase::kMerge)];
    out.Set("serial_tail_fraction",
            coordinator_total == 0
                ? 0.0
                : static_cast<double>(tail) /
                      static_cast<double>(coordinator_total));

    double utilization_sum = 0.0;
    unsigned workers = 0;
    for (unsigned p = 1; p < participants_; ++p) {
        const Slot& slot = slots_[p];
        const std::uint64_t busy =
            slot.ticks[static_cast<std::size_t>(Phase::kChannelWork)] +
            slot.ticks[static_cast<std::size_t>(Phase::kCoreFrontend)];
        const std::uint64_t idle =
            slot.ticks[static_cast<std::size_t>(Phase::kWorkerPark)] +
            slot.ticks[static_cast<std::size_t>(Phase::kCoreJoin)];
        if (busy + idle > 0) {
            utilization_sum += static_cast<double>(busy) /
                               static_cast<double>(busy + idle);
            workers += 1;
        }
    }
    out.Set("worker_utilization",
            workers == 0 ? 0.0 : utilization_sum / workers);
    out.Set("windows_recorded", static_cast<std::uint64_t>(records_.size()));
    out.Set("windows_dropped", records_dropped_);
    return out;
}

void
EngineProfiler::AppendToTraceDocument(json::Value& document) const
{
    json::Value* events = document.Find("traceEvents");
    PARBS_ASSERT(events != nullptr,
                 "trace document has no traceEvents array");
    const double tps = TicksPerSecond();
    auto us = [tps](std::uint64_t ticks) {
        return tps > 0.0 ? static_cast<double>(ticks) / tps * 1e6 : 0.0;
    };

    events->Append(MetadataEvent("process_name", kEnginePid, 0, "engine"));
    events->Append(MetadataEvent("thread_name", kEnginePid, 0,
                                 "participant 0 (coordinator)"));
    for (unsigned p = 1; p < participants_; ++p) {
        events->Append(MetadataEvent("thread_name", kEnginePid, p,
                                     "worker " + std::to_string(p)));
    }
    events->Append(
        MetadataEvent("thread_name", kEnginePid, kWindowLane, "windows"));

    // Whole-run summary span: present even when the serial engine recorded
    // no per-window wall times, so an engine-profiled trace always carries
    // at least one "engine" event for validators to find.
    {
        json::Value summary = MakeEvent("X", "engine", "engine", kEnginePid,
                                        kWindowLane, 0.0);
        summary.Set("dur", us(Now() - construct_ticks_));
        json::Value args = json::Value::Object();
        args.Set("windows", windows_);
        args.Set("arrivals", arrivals_);
        args.Set("windows_recorded",
                 static_cast<std::uint64_t>(records_.size()));
        args.Set("windows_dropped", records_dropped_);
        summary.Set("args", std::move(args));
        events->Append(std::move(summary));
    }

    for (const WindowRecord& record : records_) {
        const double begin = us(record.wall_begin);
        {
            json::Value window =
                MakeEvent("X", "window", "engine", kEnginePid, kWindowLane,
                          begin);
            window.Set("dur", us(record.wall_end) - begin);
            json::Value args = json::Value::Object();
            args.Set("from", std::uint64_t{record.from});
            args.Set("to", std::uint64_t{record.to});
            args.Set("arrivals", record.arrivals);
            window.Set("args", std::move(args));
            events->Append(std::move(window));
        }
        // Coordinator lane: the window's phases laid out sequentially from
        // the window's wall start (approximate placement, exact durations).
        double cursor = begin;
        const std::uint64_t coordinator_work =
            record.work_ticks.empty() ? 0 : record.work_ticks[0];
        const struct {
            const char* name;
            std::uint64_t ticks;
        } spans[] = {{"core", record.core_ticks},
                     {"channels", coordinator_work},
                     {"publish", record.publish_ticks},
                     {"merge", record.merge_ticks}};
        for (const auto& span : spans) {
            if (span.ticks == 0) {
                continue;
            }
            json::Value event = MakeEvent("X", span.name, "engine",
                                          kEnginePid, 0, cursor);
            event.Set("dur", us(span.ticks));
            events->Append(std::move(event));
            cursor += us(span.ticks);
        }
        for (unsigned p = 1; p < record.work_ticks.size(); ++p) {
            if (record.work_ticks[p] == 0) {
                continue;
            }
            json::Value event = MakeEvent("X", "work", "engine", kEnginePid,
                                          p, begin);
            event.Set("dur", us(record.work_ticks[p]));
            events->Append(std::move(event));
        }
        {
            json::Value counter =
                MakeEvent("C", "engine window", "engine", kEnginePid, 0,
                          us(record.wall_end));
            json::Value args = json::Value::Object();
            args.Set("arrivals", record.arrivals);
            args.Set("imbalance", record.imbalance);
            args.Set("occupancy", record.occupancy);
            counter.Set("args", std::move(args));
            events->Append(std::move(counter));
        }
    }

    json::Value* other = document.Find("otherData");
    PARBS_ASSERT(other != nullptr, "trace document has no otherData");
    other->Set("engine_profile", true);
    other->Set("engine_clock_note",
               "engine pid ts unit = 1 us wall clock since run start");
}

} // namespace parbs::obs
