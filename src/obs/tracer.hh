/**
 * @file
 * Bounded ring-buffer event tracer.
 *
 * The tracer is the single sink for all TraceEvents in a System.  It is
 * deliberately dumb: Emit() copies the event into a preallocated ring and
 * overwrites the oldest entry once full (counting drops).  There is no
 * locking — a System and all of its controllers run on one thread; the
 * parallel harness gives each concurrent run its own System and therefore
 * its own tracer.
 *
 * Gating contract: instrumented components hold a raw `Tracer*` that is
 * null when observability is off.  The only cost on the disabled path is
 * one predictable branch per would-be event.
 */

#ifndef PARBS_OBS_TRACER_HH
#define PARBS_OBS_TRACER_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/event.hh"

namespace parbs::obs {

class Tracer {
  public:
    /** @param capacity  Ring size in events; must be > 0. */
    explicit Tracer(std::size_t capacity);

    /** Record one event, overwriting the oldest once the ring is full. */
    void Emit(const TraceEvent& event) {
        if (event.cycle > latest_cycle_) latest_cycle_ = event.cycle;
        if (size_ < events_.size()) {
            events_[size_] = event;
            size_ += 1;
        } else {
            events_[head_] = event;
            head_ = (head_ + 1) % events_.size();
            dropped_ += 1;
        }
    }

    /** Number of events currently held (<= capacity). */
    std::size_t size() const { return size_; }
    std::size_t capacity() const { return events_.size(); }
    /** Events overwritten because the ring was full. */
    std::uint64_t dropped() const { return dropped_; }
    /** Largest cycle seen on any emitted event (0 if none). */
    DramCycle latest_cycle() const { return latest_cycle_; }

    /** Copy of the held events in emission order (oldest first). */
    std::vector<TraceEvent> Snapshot() const;

    /**
     * Direct access to the @p index-th held event in emission order.
     * @pre index < size() and the ring has not wrapped (dropped() == 0) —
     * the sharded System's staging tracers are sized so a window can never
     * wrap and assert dropped() == 0 at every merge (DESIGN.md §5g).
     */
    const TraceEvent& event(std::size_t index) const {
        return events_[index];
    }

    /** Forgets all held events and the drop count; capacity is kept.  The
     *  latest-cycle stamp is preserved (it orders post-run knob events). */
    void Clear() {
        head_ = 0;
        size_ = 0;
        dropped_ = 0;
    }

    /**
     * Human-readable dump of the most recent events matching a (thread,
     * bank) filter, newest last, for watchdog stall reports.  An event
     * matches if its thread equals @p thread or its bank equals @p bank;
     * passing kInvalidThread / kNoFlatBank as a filter value matches every
     * event on that axis.
     */
    std::string FormatTail(ThreadId thread, std::uint32_t bank,
                           std::size_t max_events) const;

  private:
    std::vector<TraceEvent> events_;
    std::size_t head_ = 0; ///< index of the oldest event once wrapped
    std::size_t size_ = 0;
    std::uint64_t dropped_ = 0;
    DramCycle latest_cycle_ = 0;
};

} // namespace parbs::obs

#endif // PARBS_OBS_TRACER_HH
