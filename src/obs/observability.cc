#include "obs/observability.hh"

#include "common/assert.hh"
#include "common/json.hh"
#include "dram/command.hh"
#include "dram/error_model.hh"

namespace parbs::obs {

namespace {

/** Synthetic track (tid) ids inside each channel's process. */
constexpr std::uint64_t kSchedulerTrack = 900;
constexpr std::uint64_t kBankTrackBase = 1000;

} // namespace

void
ObservabilityConfig::Validate() const
{
    if (trace && trace_ring_capacity == 0) {
        PARBS_FATAL("observability: trace_ring_capacity must be nonzero");
    }
}

void
SchedulerTraceAdapter::OnBatchFormed(DramCycle now, std::uint64_t batch_id,
                                     std::uint64_t marked)
{
    tracer_->Emit({now, EventKind::kBatchFormed, channel_, kInvalidThread,
                  kNoFlatBank, batch_id, marked});
}

void
SchedulerTraceAdapter::OnBatchComplete(DramCycle now, std::uint64_t batch_id,
                                       DramCycle duration)
{
    tracer_->Emit({now, EventKind::kBatchComplete, channel_, kInvalidThread,
                  kNoFlatBank, batch_id, duration});
}

void
SchedulerTraceAdapter::OnThreadRanked(DramCycle now, ThreadId thread,
                                      std::uint32_t rank)
{
    tracer_->Emit({now, EventKind::kThreadRank, channel_, thread, kNoFlatBank,
                  rank, 0});
}

void
SchedulerTraceAdapter::OnMarkingCapHit(DramCycle now, ThreadId thread,
                                       std::uint32_t bank,
                                       RequestId request_id)
{
    tracer_->Emit({now, EventKind::kMarkCapSkip, channel_, thread, bank,
                  request_id, 0});
}

void
SchedulerTraceAdapter::OnThreadBlacklisted(DramCycle now, ThreadId thread,
                                           bool blacklisted)
{
    tracer_->Emit({now, EventKind::kBlacklist, channel_, thread, kNoFlatBank,
                  blacklisted ? std::uint64_t{1} : std::uint64_t{0}, 0});
}

void
SchedulerTraceAdapter::OnPriorityChanged(ThreadId thread,
                                         ThreadPriority priority)
{
    // Knob setters carry no cycle (they are called from outside the DRAM
    // tick, typically at setup); stamp with the latest traced cycle.
    tracer_->Emit({tracer_->latest_cycle(), EventKind::kPriorityChange,
                  channel_, thread, kNoFlatBank, priority, 0});
}

void
SchedulerTraceAdapter::OnWeightChanged(ThreadId thread, double weight)
{
    tracer_->Emit({tracer_->latest_cycle(), EventKind::kWeightChange, channel_,
                  thread, kNoFlatBank,
                  static_cast<std::uint64_t>(weight * 1000.0), 0});
}

Observability::Observability(const ObservabilityConfig& config,
                             std::uint32_t num_threads,
                             std::uint32_t num_channels)
    : tracer_(config.trace_ring_capacity),
      latency_(num_threads),
      sampler_(config.sample_interval),
      num_threads_(num_threads),
      num_channels_(num_channels)
{
    config.Validate();
    adapters_.reserve(num_channels);
    for (std::uint32_t channel = 0; channel < num_channels; ++channel) {
        adapters_.push_back(std::make_unique<SchedulerTraceAdapter>(
            tracer_, static_cast<std::uint8_t>(channel)));
    }
}

namespace {

json::Value
MakeEvent(const char* ph, const std::string& name, const char* cat,
          std::uint64_t pid, std::uint64_t tid, DramCycle ts)
{
    // ts is the DRAM cycle, exported 1 cycle == 1 us: trace viewers require
    // integer-friendly microsecond timestamps, and an exact integer mapping
    // keeps the file byte-deterministic.
    json::Value event = json::Value::Object();
    event.Set("ph", ph);
    event.Set("name", name);
    event.Set("cat", cat);
    event.Set("pid", pid);
    event.Set("tid", tid);
    event.Set("ts", ts);
    return event;
}

json::Value
MetadataEvent(const char* kind, std::uint64_t pid, std::uint64_t tid,
              const std::string& name)
{
    json::Value event = json::Value::Object();
    event.Set("ph", "M");
    event.Set("name", kind);
    event.Set("pid", pid);
    if (std::string(kind) == "thread_name") {
        event.Set("tid", tid);
    }
    json::Value args = json::Value::Object();
    args.Set("name", name);
    event.Set("args", std::move(args));
    return event;
}

} // namespace

json::Value
Observability::TraceDocument(const TraceMeta& meta) const
{
    json::Value events = json::Value::Array();

    // Track naming first, so viewers label every row.
    for (std::uint32_t channel = 0; channel < num_channels_; ++channel) {
        events.Append(MetadataEvent("process_name", channel, 0,
                                    "channel " + std::to_string(channel)));
        for (std::uint32_t thread = 0; thread < num_threads_; ++thread) {
            events.Append(
                MetadataEvent("thread_name", channel, thread,
                              "core " + std::to_string(thread)));
        }
        events.Append(MetadataEvent("thread_name", channel, kSchedulerTrack,
                                    "scheduler"));
    }

    for (const TraceEvent& event : tracer_.Snapshot()) {
        const std::uint64_t pid = event.channel;
        const std::uint64_t thread_track =
            event.thread == kInvalidThread ? kSchedulerTrack : event.thread;
        switch (event.kind) {
        case EventKind::kRequestArrive: {
            json::Value out = MakeEvent("b", "req", "request", pid,
                                        thread_track, event.cycle);
            out.Set("id", event.a);
            json::Value args = json::Value::Object();
            args.Set("bank", std::uint64_t{event.bank});
            args.Set("write", event.b != 0);
            out.Set("args", std::move(args));
            events.Append(std::move(out));
            break;
        }
        case EventKind::kRequestRetire: {
            json::Value out = MakeEvent("e", "req", "request", pid,
                                        thread_track, event.cycle);
            out.Set("id", event.a);
            json::Value args = json::Value::Object();
            args.Set("latency", event.b);
            out.Set("args", std::move(args));
            events.Append(std::move(out));
            break;
        }
        case EventKind::kRequestFirstIssue: {
            json::Value out = MakeEvent("i", "first-issue", "request", pid,
                                        thread_track, event.cycle);
            out.Set("s", "t");
            json::Value args = json::Value::Object();
            args.Set("req", event.a);
            args.Set("cmd", dram::CommandName(
                                static_cast<dram::CommandType>(event.b)));
            out.Set("args", std::move(args));
            events.Append(std::move(out));
            break;
        }
        case EventKind::kRequestBurst: {
            json::Value out = MakeEvent("i", "burst", "request", pid,
                                        thread_track, event.cycle);
            out.Set("s", "t");
            json::Value args = json::Value::Object();
            args.Set("req", event.a);
            args.Set("done", event.b);
            out.Set("args", std::move(args));
            events.Append(std::move(out));
            break;
        }
        case EventKind::kCommand: {
            json::Value out = MakeEvent(
                "i",
                dram::CommandName(static_cast<dram::CommandType>(event.a)),
                "dram", pid,
                event.bank == kNoFlatBank ? kBankTrackBase
                                          : kBankTrackBase + event.bank,
                event.cycle);
            out.Set("s", "t");
            json::Value args = json::Value::Object();
            args.Set("row", event.b);
            if (event.thread != kInvalidThread) {
                args.Set("thread", std::uint64_t{event.thread});
            }
            out.Set("args", std::move(args));
            events.Append(std::move(out));
            break;
        }
        case EventKind::kBatchFormed: {
            json::Value out = MakeEvent("b", "batch", "batch", pid,
                                        kSchedulerTrack, event.cycle);
            out.Set("id", event.a);
            json::Value args = json::Value::Object();
            args.Set("marked", event.b);
            out.Set("args", std::move(args));
            events.Append(std::move(out));
            break;
        }
        case EventKind::kBatchComplete: {
            json::Value out = MakeEvent("e", "batch", "batch", pid,
                                        kSchedulerTrack, event.cycle);
            out.Set("id", event.a);
            json::Value args = json::Value::Object();
            args.Set("duration", event.b);
            out.Set("args", std::move(args));
            events.Append(std::move(out));
            break;
        }
        case EventKind::kThreadRank: {
            json::Value out = MakeEvent("i", "rank", "sched", pid,
                                        kSchedulerTrack, event.cycle);
            out.Set("s", "t");
            json::Value args = json::Value::Object();
            args.Set("thread", std::uint64_t{event.thread});
            args.Set("rank", event.a);
            out.Set("args", std::move(args));
            events.Append(std::move(out));
            break;
        }
        case EventKind::kMarkCapSkip: {
            json::Value out = MakeEvent("i", "mark-cap", "sched", pid,
                                        kSchedulerTrack, event.cycle);
            out.Set("s", "t");
            json::Value args = json::Value::Object();
            args.Set("thread", std::uint64_t{event.thread});
            args.Set("bank", std::uint64_t{event.bank});
            args.Set("req", event.a);
            out.Set("args", std::move(args));
            events.Append(std::move(out));
            break;
        }
        case EventKind::kBlacklist: {
            json::Value out = MakeEvent("i", "blacklist", "sched", pid,
                                        kSchedulerTrack, event.cycle);
            out.Set("s", "t");
            json::Value args = json::Value::Object();
            args.Set("thread", std::uint64_t{event.thread});
            args.Set("set", event.a != 0);
            out.Set("args", std::move(args));
            events.Append(std::move(out));
            break;
        }
        case EventKind::kPriorityChange:
        case EventKind::kWeightChange: {
            const bool priority = event.kind == EventKind::kPriorityChange;
            json::Value out = MakeEvent(
                "i", priority ? "priority" : "weight", "sched", pid,
                kSchedulerTrack, event.cycle);
            out.Set("s", "t");
            json::Value args = json::Value::Object();
            args.Set("thread", std::uint64_t{event.thread});
            args.Set(priority ? "priority" : "milli_weight", event.a);
            out.Set("args", std::move(args));
            events.Append(std::move(out));
            break;
        }
        case EventKind::kWriteDrainEnter:
        case EventKind::kWriteDrainExit: {
            const bool enter = event.kind == EventKind::kWriteDrainEnter;
            json::Value out =
                MakeEvent("i", enter ? "write-drain-enter"
                                     : "write-drain-exit",
                          "ctrl", pid, kSchedulerTrack, event.cycle);
            out.Set("s", "t");
            json::Value args = json::Value::Object();
            args.Set("write_queue", event.a);
            out.Set("args", std::move(args));
            events.Append(std::move(out));
            break;
        }
        case EventKind::kFastPathSkip: {
            json::Value out = MakeEvent("X", "fast-path-skip", "ctrl", pid,
                                        kSchedulerTrack, event.cycle);
            out.Set("dur", event.a);
            events.Append(std::move(out));
            break;
        }
        case EventKind::kEccCorrected:
        case EventKind::kEccUncorrectable:
        case EventKind::kEccRetry: {
            const char* name =
                event.kind == EventKind::kEccCorrected ? "ecc-corrected"
                : event.kind == EventKind::kEccUncorrectable
                    ? "ecc-uncorrectable"
                    : "ecc-retry";
            json::Value out =
                MakeEvent("i", name, "ras", pid, thread_track, event.cycle);
            out.Set("s", "t");
            json::Value args = json::Value::Object();
            args.Set("req", event.a);
            if (event.bank != kNoFlatBank) {
                args.Set("bank", std::uint64_t{event.bank});
            }
            args.Set(event.kind == EventKind::kEccCorrected ? "row"
                                                            : "retries",
                     event.b);
            out.Set("args", std::move(args));
            events.Append(std::move(out));
            break;
        }
        case EventKind::kRowRetired:
        case EventKind::kMachineCheck: {
            const bool retired = event.kind == EventKind::kRowRetired;
            json::Value out =
                MakeEvent("i", retired ? "row-retired" : "machine-check",
                          "ras", pid, kSchedulerTrack, event.cycle);
            out.Set("s", "t");
            json::Value args = json::Value::Object();
            args.Set("row", event.a);
            if (event.bank != kNoFlatBank) {
                args.Set("bank", std::uint64_t{event.bank});
            }
            args.Set(retired ? "remap_used" : "remap_capacity", event.b);
            out.Set("args", std::move(args));
            events.Append(std::move(out));
            break;
        }
        case EventKind::kScrubIssue:
        case EventKind::kScrubComplete: {
            const bool issue = event.kind == EventKind::kScrubIssue;
            json::Value out = MakeEvent(
                "i", issue ? "scrub-issue" : "scrub-complete", "ras", pid,
                event.bank == kNoFlatBank ? kBankTrackBase
                                          : kBankTrackBase + event.bank,
                event.cycle);
            out.Set("s", "t");
            json::Value args = json::Value::Object();
            args.Set("row", event.a);
            if (issue) {
                args.Set("done", event.b);
            } else {
                args.Set("outcome",
                         dram::EccOutcomeName(
                             static_cast<dram::EccOutcome>(event.b)));
            }
            out.Set("args", std::move(args));
            events.Append(std::move(out));
            break;
        }
        }
    }

    // Sampler rows as counter tracks, one counter set per channel.
    for (const Sample& sample : sampler_.samples()) {
        for (std::size_t channel = 0; channel < sample.controllers.size();
             ++channel) {
            const ControllerSample& cs = sample.controllers[channel];
            json::Value out = MakeEvent("C", "queues", "sampler", channel, 0,
                                        sample.cycle);
            json::Value args = json::Value::Object();
            args.Set("read", std::uint64_t{cs.read_queue});
            args.Set("write", std::uint64_t{cs.write_queue});
            out.Set("args", std::move(args));
            events.Append(std::move(out));

            json::Value util = MakeEvent("C", "utilization", "sampler",
                                         channel, 0, sample.cycle);
            json::Value util_args = json::Value::Object();
            util_args.Set("bus", cs.bus_utilization);
            util_args.Set("row_hit_rate", cs.row_hit_rate);
            util.Set("args", std::move(util_args));
            events.Append(std::move(util));
        }
    }

    json::Value doc = json::Value::Object();
    doc.Set("traceEvents", std::move(events));
    doc.Set("displayTimeUnit", "ms");

    json::Value other = json::Value::Object();
    other.Set("scheduler", meta.scheduler);
    other.Set("workload", meta.workload);
    other.Set("cores", std::uint64_t{meta.cores});
    other.Set("seed", meta.seed);
    other.Set("cpu_to_dram_ratio", std::uint64_t{meta.cpu_to_dram_ratio});
    other.Set("clock_note", "ts unit = 1 DRAM cycle");
    other.Set("events_dropped", tracer_.dropped());
    doc.Set("otherData", std::move(other));

    doc.Set("samples", sampler_.ToJson());
    doc.Set("latency", latency_.ToJson());
    return doc;
}

void
Observability::WriteTrace(std::ostream& out, const TraceMeta& meta) const
{
    out << TraceDocument(meta).Dump(2) << "\n";
}

} // namespace parbs::obs
