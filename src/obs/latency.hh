/**
 * @file
 * Request latency anatomy: where did each read's cycles go?
 *
 * A read's life splits into three back-to-back components, all in DRAM
 * cycles:
 *
 *   queueing : arrival            -> first command issued for it
 *   service  : first command      -> column (data) command issued
 *   bus      : column command     -> data burst complete
 *
 * queueing + service + bus == total latency (arrival -> completion) by
 * construction — the identity also holds for ECC-retried reads, whose
 * timestamps describe the final (successful) attempt.  A fourth overlay
 * component, `recovery`, is the RAS recovery tax: final completion minus
 * the first attempt's burst completion (0 for reads that completed cleanly
 * the first time).  It is a subset of queueing+service, not an addend.
 * Each component feeds a per-thread stats::Histogram so the exporter can
 * report p50/p95/p99/max per thread and, aggregated, per scheduler.  Writes are posted (retired fire-and-forget), so only reads
 * are recorded — matching what the paper's latency metrics measure.
 */

#ifndef PARBS_OBS_LATENCY_HH
#define PARBS_OBS_LATENCY_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "stats/histogram.hh"

namespace parbs {
struct MemRequest;
namespace json {
class Value;
}
} // namespace parbs

namespace parbs::obs {

class LatencyAnatomy {
  public:
    explicit LatencyAnatomy(std::uint32_t num_threads);

    /** Record one completed read.  @pre request has all timestamps set. */
    void RecordRead(const MemRequest& request);

    /**
     * Folds @p other into this anatomy.  @pre same thread count.  All
     * underlying aggregates are commutative (Histogram::Merge), so folding
     * the sharded System's per-channel staging anatomies in channel order
     * at each window barrier reproduces the serial recording exactly.
     */
    void Merge(const LatencyAnatomy& other);

    /** Forgets all recorded reads (staging reuse). */
    void Clear();

    std::uint32_t num_threads() const {
        return static_cast<std::uint32_t>(threads_.size());
    }
    std::uint64_t recorded_reads() const { return recorded_reads_; }

    const Histogram& Queueing(ThreadId thread) const {
        return threads_[thread].queueing;
    }
    const Histogram& Service(ThreadId thread) const {
        return threads_[thread].service;
    }
    const Histogram& Bus(ThreadId thread) const {
        return threads_[thread].bus;
    }
    const Histogram& Total(ThreadId thread) const {
        return threads_[thread].total;
    }
    const Histogram& Recovery(ThreadId thread) const {
        return threads_[thread].recovery;
    }

    /**
     * JSON report: per-thread and whole-run ("all") objects, each holding
     * queueing/service/bus/total/recovery components with count, mean,
     * p50, p95, p99, max, and overflow-bucket count.
     */
    json::Value ToJson() const;

  private:
    struct ThreadHistograms {
        Histogram queueing;
        Histogram service;
        Histogram bus;
        Histogram total;
        Histogram recovery;
        ThreadHistograms();
    };

    std::vector<ThreadHistograms> threads_;
    ThreadHistograms all_;
    std::uint64_t recorded_reads_ = 0;
};

} // namespace parbs::obs

#endif // PARBS_OBS_LATENCY_HH
