/**
 * @file
 * Interval time-series sampler: every N DRAM cycles, snapshot per-controller
 * and per-bank counters into an in-memory table.
 *
 * All sampled sources are monotonic counters already maintained by the hot
 * path (controller thread stats, channel bus occupancy, bank activation
 * counts), so sampling is pure reads — a run with the sampler attached is
 * cycle-for-cycle identical to one without.  Rates (row-hit rate, bus
 * utilization, per-thread BLP) are computed per interval from deltas, which
 * is what makes the series diagnosable: a phase change shows up in the
 * interval it happens, not diluted into the end-of-run aggregate.
 *
 * The first sample lands at cycle `interval`, so an interval longer than
 * the run yields an empty series and interval 0 disables sampling.
 */

#ifndef PARBS_OBS_SAMPLER_HH
#define PARBS_OBS_SAMPLER_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.hh"

namespace parbs {
class Controller;
namespace json {
class Value;
}
} // namespace parbs

namespace parbs::obs {

/** One controller's state at one sample point. */
struct ControllerSample {
    std::uint32_t read_queue = 0;
    std::uint32_t write_queue = 0;
    /** Read row-hit rate over the interval (0 when no reads retired). */
    double row_hit_rate = 0.0;
    /** Data-bus busy fraction over the interval. */
    double bus_utilization = 0.0;
    /** DRAM commands issued during the interval. */
    std::uint64_t commands = 0;
    /** Scheduler's open-batch occupancy at the sample point (PAR-BS). */
    std::uint64_t batch_outstanding = 0;
    /** Average BLP per thread over the interval (busy cycles only). */
    std::vector<double> thread_blp;
    /** Queued (schedulable) read requests per bank at the sample point. */
    std::vector<std::uint32_t> bank_queued;
    /** ACTIVATEs per bank during the interval. */
    std::vector<std::uint64_t> bank_activations;

    // --- RAS activity over the interval (all zero when RAS is off) ------
    /** ECC-corrected demand reads. */
    std::uint64_t ecc_corrected = 0;
    /** Uncorrectable demand-read failures. */
    std::uint64_t ecc_uncorrectable = 0;
    /** Controller-issued ECC retries. */
    std::uint64_t ecc_retries = 0;
    /** Patrol-scrub reads issued. */
    std::uint64_t scrub_reads = 0;
    /** Rows retired into the remap table. */
    std::uint64_t rows_retired = 0;
    /** Remap-table occupancy at the sample point (point-in-time). */
    std::uint64_t remap_used = 0;
};

/** One row of the time series. */
struct Sample {
    DramCycle cycle = 0;
    std::vector<ControllerSample> controllers;
};

class IntervalSampler {
  public:
    /** @param interval sample period in DRAM cycles (0 disables). */
    explicit IntervalSampler(DramCycle interval);

    DramCycle interval() const { return interval_; }

    /** Called once per DRAM cycle; samples when the period elapses. */
    void Tick(DramCycle now,
              const std::vector<std::unique_ptr<Controller>>& controllers) {
        if (interval_ == 0 || now != next_sample_) {
            return;
        }
        TakeSample(now, controllers);
        next_sample_ += interval_;
    }

    const std::vector<Sample>& samples() const { return samples_; }

    /** The cycle the next row is due at (first row lands at `interval`). */
    DramCycle next_sample() const { return next_sample_; }

    /**
     * Pre-sizes the per-channel baselines so SampleChannel never has to
     * allocate.  The sharded System calls this before its workers start;
     * the serial path reaches the same state lazily on the first sample.
     */
    void PrepareChannels(
        const std::vector<std::unique_ptr<Controller>>& controllers);

    /**
     * Samples one channel and advances that channel's baselines.  Reads
     * only @p controller's counters and writes only baselines_[channel],
     * so concurrent calls for *distinct* channels are safe once
     * PrepareChannels has run — the decomposition the sharded System's
     * window-aligned aggregation relies on.  Row assembly (AppendRow)
     * stays on the coordinating thread.
     */
    ControllerSample SampleChannel(const Controller& controller,
                                   std::size_t channel);

    /**
     * Appends one fully-assembled row (channel order) taken at @p cycle
     * and schedules the next sample, exactly as Tick would have.
     * @pre cycle == next_sample().
     */
    void AppendRow(DramCycle cycle, std::vector<ControllerSample> row);

    /** Table form: {"interval": N, "samples": [...]} for bench_report. */
    json::Value ToJson() const;

  private:
    /** Last-seen values of the monotonic sources, for interval deltas. */
    struct ControllerBaseline {
        std::uint64_t row_hits = 0;
        std::uint64_t row_total = 0;
        std::uint64_t bus_busy = 0;
        std::uint64_t commands = 0;
        std::vector<std::uint64_t> blp_sum;
        std::vector<std::uint64_t> blp_cycles;
        std::vector<std::uint64_t> activations;
        std::uint64_t ecc_corrected = 0;
        std::uint64_t ecc_uncorrectable = 0;
        std::uint64_t ecc_retries = 0;
        std::uint64_t scrub_reads = 0;
        std::uint64_t rows_retired = 0;
    };

    void TakeSample(DramCycle now,
                    const std::vector<std::unique_ptr<Controller>>& ctrls);

    DramCycle interval_;
    DramCycle next_sample_;
    std::vector<Sample> samples_;
    std::vector<ControllerBaseline> baselines_;
};

} // namespace parbs::obs

#endif // PARBS_OBS_SAMPLER_HH
