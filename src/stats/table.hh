/**
 * @file
 * Aligned plain-text table rendering for the benchmark harness, which
 * regenerates the paper's tables/figure data as console output.
 */

#ifndef PARBS_STATS_TABLE_HH
#define PARBS_STATS_TABLE_HH

#include <string>
#include <vector>

namespace parbs {

/** A right-padded text table with a header row. */
class Table {
  public:
    explicit Table(std::vector<std::string> header);

    /** Adds a data row; short rows are padded with empty cells. */
    void AddRow(std::vector<std::string> row);

    /** Convenience: formats doubles to @p precision decimals. */
    static std::string Num(double value, int precision = 2);

    /** Renders the table with a separator under the header. */
    std::string Render() const;

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace parbs

#endif // PARBS_STATS_TABLE_HH
