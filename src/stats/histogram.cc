#include "stats/histogram.hh"

#include <algorithm>
#include <sstream>

#include "common/assert.hh"

namespace parbs {

Histogram::Histogram(std::uint64_t bucket_width, std::size_t bucket_count)
    : bucket_width_(bucket_width), buckets_(bucket_count + 1, 0)
{
    PARBS_ASSERT(bucket_width > 0 && bucket_count > 0,
                 "histogram needs positive dimensions");
}

void
Histogram::Add(std::uint64_t value)
{
    std::size_t index = static_cast<std::size_t>(value / bucket_width_);
    if (index >= buckets_.size() - 1) {
        index = buckets_.size() - 1; // Overflow bucket.
    }
    buckets_[index] += 1;
    if (count_ == 0 || value < min_) {
        min_ = value;
    }
    max_ = std::max(max_, value);
    sum_ += value;
    count_ += 1;
}

void
Histogram::Merge(const Histogram& other)
{
    PARBS_ASSERT(bucket_width_ == other.bucket_width_ &&
                     buckets_.size() == other.buckets_.size(),
                 "merging histograms with different bucket shapes");
    if (other.count_ == 0) {
        return;
    }
    if (count_ == 0 || other.min_ < min_) {
        min_ = other.min_;
    }
    max_ = std::max(max_, other.max_);
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        buckets_[i] += other.buckets_[i];
    }
    sum_ += other.sum_;
    count_ += other.count_;
}

void
Histogram::Clear()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    count_ = 0;
    sum_ = 0;
    min_ = 0;
    max_ = 0;
}

double
Histogram::Mean() const
{
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) /
                             static_cast<double>(count_);
}

std::uint64_t
Histogram::Percentile(double fraction) const
{
    PARBS_ASSERT(count_ > 0, "percentile of an empty histogram");
    PARBS_ASSERT(fraction > 0.0 && fraction <= 1.0,
                 "percentile fraction out of range");
    // Rank of the requested percentile: ceil(fraction * count), with an
    // epsilon guard so exactly-representable products (0.95 * 100) do not
    // round up past their true rank.  Plain round-half-up under-ranked
    // tail percentiles: with count = 1600 and two overflow samples, p99.9
    // needs sample 1599 (overflow) but rounded to 1598 (regular bucket).
    const double exact = fraction * static_cast<double>(count_);
    std::uint64_t needed = static_cast<std::uint64_t>(exact);
    if (static_cast<double>(needed) + 1e-9 < exact) {
        needed += 1;
    }
    std::uint64_t running = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        running += buckets_[i];
        if (running >= needed) {
            if (i == buckets_.size() - 1) {
                return max_;
            }
            // The bucket's inclusive upper edge, clamped to the observed
            // maximum: a reported percentile must never exceed any sample
            // (an all-zero histogram reports 0, not bucket_width - 1).
            return std::min(
                (static_cast<std::uint64_t>(i) + 1) * bucket_width_ - 1,
                max_);
        }
    }
    return max_;
}

Histogram::Summary
Histogram::PercentileSummary() const
{
    if (count_ == 0) {
        return {};
    }
    return {Percentile(0.50), Percentile(0.95), Percentile(0.99),
            Percentile(0.999), max_};
}

std::string
Histogram::Render() const
{
    std::ostringstream out;
    const std::uint64_t peak =
        *std::max_element(buckets_.begin(), buckets_.end());
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        if (buckets_[i] == 0) {
            continue;
        }
        const int bar_length =
            peak == 0 ? 0
                      : static_cast<int>(50.0 *
                                         static_cast<double>(buckets_[i]) /
                                         static_cast<double>(peak));
        out << (i == buckets_.size() - 1
                    ? std::string(">=") +
                          std::to_string(i * bucket_width_)
                    : std::to_string(i * bucket_width_) + "-" +
                          std::to_string((i + 1) * bucket_width_ - 1));
        out << "\t" << buckets_[i] << "\t" << std::string(bar_length, '#')
            << "\n";
    }
    return out.str();
}

} // namespace parbs
