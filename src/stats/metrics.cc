#include "stats/metrics.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/assert.hh"

namespace parbs {
namespace {

/**
 * Floor for the alone-run MCPI in the slowdown ratio.  Nearly-compute-bound
 * threads have an alone MCPI close to zero, which would make the slowdown
 * ratio numerically meaningless; the floor bounds the amplification while
 * preserving the paper's metric for every memory-sensitive thread.
 */
constexpr double kAloneMcpiFloor = 0.01;

} // namespace

double
MemorySlowdown(const ThreadMeasurement& shared, const ThreadMeasurement& alone)
{
    const double alone_mcpi = std::max(alone.mcpi, kAloneMcpiFloor);
    const double shared_mcpi = std::max(shared.mcpi, kAloneMcpiFloor);
    return std::max(1.0, shared_mcpi / alone_mcpi);
}

WorkloadMetrics
ComputeMetrics(const std::vector<ThreadMeasurement>& shared,
               const std::vector<ThreadMeasurement>& alone)
{
    PARBS_ASSERT(!shared.empty() && shared.size() == alone.size(),
                 "metrics require matching shared/alone measurements");
    WorkloadMetrics out;
    out.memory_slowdown.reserve(shared.size());

    double max_slowdown = 0.0;
    double min_slowdown = 0.0;
    double inv_speedup_sum = 0.0;
    double ast_sum = 0.0;
    std::uint64_t ast_count = 0;

    for (std::size_t i = 0; i < shared.size(); ++i) {
        const double slowdown = MemorySlowdown(shared[i], alone[i]);
        out.memory_slowdown.push_back(slowdown);
        if (i == 0 || slowdown > max_slowdown) {
            max_slowdown = slowdown;
        }
        if (i == 0 || slowdown < min_slowdown) {
            min_slowdown = slowdown;
        }

        const double alone_ipc = std::max(alone[i].ipc, 1e-9);
        const double speedup = shared[i].ipc / alone_ipc;
        out.weighted_speedup += speedup;
        inv_speedup_sum += 1.0 / std::max(speedup, 1e-9);

        if (shared[i].requests > 0) {
            ast_sum += shared[i].ast_per_req;
            ast_count += 1;
        }
        out.worst_case_latency =
            std::max(out.worst_case_latency, shared[i].worst_case_latency);
    }

    out.unfairness = min_slowdown > 0.0 ? max_slowdown / min_slowdown : 1.0;
    out.hmean_speedup =
        static_cast<double>(shared.size()) / std::max(inv_speedup_sum, 1e-9);
    out.avg_ast_per_req =
        ast_count == 0 ? 0.0 : ast_sum / static_cast<double>(ast_count);
    return out;
}

std::uint64_t
DramLatencyToCpuCycles(std::uint64_t dram_latency,
                       std::uint32_t cpu_to_dram_ratio,
                       std::uint32_t extra_read_latency_cpu)
{
    PARBS_ASSERT(cpu_to_dram_ratio > 0,
                 "CPU:DRAM clock ratio must be positive");
    PARBS_ASSERT(dram_latency <=
                     (std::numeric_limits<std::uint64_t>::max() -
                      extra_read_latency_cpu) /
                         cpu_to_dram_ratio,
                 "DRAM latency overflows the CPU-cycle domain");
    return dram_latency * cpu_to_dram_ratio + extra_read_latency_cpu;
}

double
GeometricMean(const std::vector<double>& values)
{
    PARBS_ASSERT(!values.empty(), "geometric mean of an empty set");
    double log_sum = 0.0;
    for (double v : values) {
        PARBS_ASSERT(v > 0.0, "geometric mean requires positive values");
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

double
ArithmeticMean(const std::vector<double>& values)
{
    PARBS_ASSERT(!values.empty(), "arithmetic mean of an empty set");
    double sum = 0.0;
    for (double v : values) {
        sum += v;
    }
    return sum / static_cast<double>(values.size());
}

} // namespace parbs
