/**
 * @file
 * A simple fixed-bucket histogram used for latency distributions in tests
 * and benchmark diagnostics.
 */

#ifndef PARBS_STATS_HISTOGRAM_HH
#define PARBS_STATS_HISTOGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

namespace parbs {

/** Linear-bucket histogram over [0, bucket_width * bucket_count). */
class Histogram {
  public:
    /**
     * @param bucket_width width of each bucket
     * @param bucket_count number of buckets; values beyond the last bucket
     *        are accumulated in an overflow bucket
     */
    Histogram(std::uint64_t bucket_width, std::size_t bucket_count);

    void Add(std::uint64_t value);

    /**
     * Folds @p other's samples into this histogram.  @pre identical bucket
     * shape.  Every aggregate (bucket counts, count, sum, min, max) is
     * commutative and associative, so merging per-worker histograms in any
     * order equals recording every sample into one histogram directly —
     * the property the sharded System's staging sinks rely on.
     */
    void Merge(const Histogram& other);

    /** Forgets all samples; the bucket shape is kept. */
    void Clear();

    std::uint64_t count() const { return count_; }
    std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
    std::uint64_t max() const { return max_; }
    double Mean() const;

    /** Smallest value v such that at least @p fraction of samples are <= v
     *  (bucket-granular). @pre 0 < fraction <= 1 and count() > 0. */
    std::uint64_t Percentile(double fraction) const;

    /** Samples that landed beyond the last regular bucket. */
    std::uint64_t overflow() const { return buckets_.back(); }

    /** Common percentile set, queried together for reporting. */
    struct Summary {
        std::uint64_t p50 = 0;
        std::uint64_t p95 = 0;
        std::uint64_t p99 = 0;
        std::uint64_t p999 = 0;
        std::uint64_t max = 0;
    };

    /** Percentile summary; all-zero when the histogram is empty. */
    Summary PercentileSummary() const;

    /** Multi-line ASCII rendering (for diagnostics). */
    std::string Render() const;

  private:
    std::uint64_t bucket_width_;
    std::vector<std::uint64_t> buckets_; ///< Last bucket is overflow.
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = 0;
    std::uint64_t max_ = 0;
};

} // namespace parbs

#endif // PARBS_STATS_HISTOGRAM_HH
