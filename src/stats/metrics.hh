/**
 * @file
 * The paper's evaluation metrics (Section 7.1).
 *
 * Memory slowdown of thread i:   MCPI_shared / MCPI_alone
 * Unfairness:                    max_i slowdown_i / min_j slowdown_j
 * Weighted speedup:              sum_i IPC_shared / IPC_alone
 * Hmean speedup:                 N / sum_i (1 / (IPC_shared / IPC_alone))
 *
 * plus the secondary metrics of Table 4 (average stall time per request and
 * worst-case request latency) and geometric-mean aggregation across
 * workloads.
 */

#ifndef PARBS_STATS_METRICS_HH
#define PARBS_STATS_METRICS_HH

#include <cstdint>
#include <vector>

namespace parbs {

/** Per-thread measurements from one simulation (shared or alone). */
struct ThreadMeasurement {
    double mcpi = 0.0; ///< Memory stall cycles per instruction.
    double ipc = 0.0;
    double ast_per_req = 0.0;  ///< Average stall time per DRAM request.
    double row_hit_rate = 0.0; ///< Fraction in [0, 1].
    double blp = 0.0;
    double mpki = 0.0;
    /** CPU cycles, converted from the DRAM-side maximum read latency via
     *  DramLatencyToCpuCycles — the one place the two clock domains meet. */
    std::uint64_t worst_case_latency = 0;
    std::uint64_t instructions = 0;
    std::uint64_t requests = 0;
};

/** Shared-run results joined with the matching alone-run baselines. */
struct WorkloadMetrics {
    std::vector<double> memory_slowdown; ///< Per thread.
    double unfairness = 1.0;
    double weighted_speedup = 0.0;
    double hmean_speedup = 0.0;
    double avg_ast_per_req = 0.0;
    std::uint64_t worst_case_latency = 0; ///< Max over threads, CPU cycles.
};

/**
 * Computes the paper's metrics from per-thread shared and alone runs.
 * @pre shared.size() == alone.size(), nonempty.
 */
WorkloadMetrics ComputeMetrics(const std::vector<ThreadMeasurement>& shared,
                               const std::vector<ThreadMeasurement>& alone);

/** Memory slowdown of one thread (clamped below at a small epsilon). */
double MemorySlowdown(const ThreadMeasurement& shared,
                      const ThreadMeasurement& alone);

/**
 * Converts a DRAM-side read latency to the CPU-cycle latency the core
 * observes: `dram_latency * cpu_to_dram_ratio + extra_read_latency_cpu`
 * (the fixed return path — interconnect + L2 fill — is paid once per read,
 * in CPU cycles).  This is the single authoritative CPU<->DRAM clock-domain
 * conversion; every "CPU cycles" latency in ThreadMeasurement /
 * WorkloadMetrics is produced by it.
 *
 * @pre cpu_to_dram_ratio > 0 and the product does not overflow (asserted).
 */
std::uint64_t DramLatencyToCpuCycles(std::uint64_t dram_latency,
                                     std::uint32_t cpu_to_dram_ratio,
                                     std::uint32_t extra_read_latency_cpu);

/** Geometric mean. @pre values nonempty, all positive. */
double GeometricMean(const std::vector<double>& values);

/** Arithmetic mean. @pre values nonempty. */
double ArithmeticMean(const std::vector<double>& values);

} // namespace parbs

#endif // PARBS_STATS_METRICS_HH
