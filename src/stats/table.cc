#include "stats/table.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace parbs {

Table::Table(std::vector<std::string> header) : header_(std::move(header))
{
}

void
Table::AddRow(std::vector<std::string> row)
{
    row.resize(header_.size());
    rows_.push_back(std::move(row));
}

std::string
Table::Num(double value, int precision)
{
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
    return buffer;
}

std::string
Table::Render() const
{
    std::vector<std::size_t> widths(header_.size(), 0);
    for (std::size_t c = 0; c < header_.size(); ++c) {
        widths[c] = header_[c].size();
    }
    for (const auto& row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            widths[c] = std::max(widths[c], row[c].size());
        }
    }

    auto render_row = [&](const std::vector<std::string>& row,
                          std::ostringstream& out) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            out << row[c];
            if (c + 1 < row.size()) {
                out << std::string(widths[c] - row[c].size() + 2, ' ');
            }
        }
        out << "\n";
    };

    std::ostringstream out;
    render_row(header_, out);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c) {
        total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    }
    out << std::string(total, '-') << "\n";
    for (const auto& row : rows_) {
        render_row(row, out);
    }
    return out.str();
}

} // namespace parbs
