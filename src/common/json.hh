/**
 * @file
 * Minimal JSON document model used by the benchmark harness: a value type
 * with insertion-ordered objects, a deterministic serializer, and a strict
 * parser.  Determinism matters — the `--jobs 1` vs `--jobs N` regression
 * test compares emitted bench results byte-for-byte, so object key order is
 * preserved and doubles are printed with shortest-round-trip formatting
 * (std::to_chars), which is identical across runs and thread counts.
 *
 * No external dependency: the container toolchain has no JSON library, and
 * the needs here (bench output, golden comparison) are small.
 */

#ifndef PARBS_COMMON_JSON_HH
#define PARBS_COMMON_JSON_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace parbs::json {

/** Exception thrown by Value::Parse on malformed input. */
class ParseError : public std::runtime_error {
  public:
    explicit ParseError(const std::string& what)
        : std::runtime_error(what)
    {
    }
};

/**
 * A JSON value: null, bool, number, string, array, or object.  Objects keep
 * their keys in insertion order; Set() on an existing key updates in place.
 */
class Value {
  public:
    enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

    Value() : kind_(Kind::kNull) {}
    Value(bool value) : kind_(Kind::kBool), bool_(value) {}
    Value(double value) : kind_(Kind::kNumber), number_(value) {}
    Value(std::int64_t value)
        : kind_(Kind::kNumber), number_(static_cast<double>(value))
    {
    }
    Value(std::uint64_t value)
        : kind_(Kind::kNumber), number_(static_cast<double>(value))
    {
    }
    Value(int value) : kind_(Kind::kNumber), number_(value) {}
    Value(std::string value)
        : kind_(Kind::kString), string_(std::move(value))
    {
    }
    Value(const char* value) : kind_(Kind::kString), string_(value) {}

    static Value Array() { return Value(Kind::kArray); }
    static Value Object() { return Value(Kind::kObject); }

    Kind kind() const { return kind_; }
    bool is_null() const { return kind_ == Kind::kNull; }

    /** @pre kind() matches; asserts otherwise. */
    bool AsBool() const;
    double AsNumber() const;
    const std::string& AsString() const;

    // --- Array operations -------------------------------------------------

    /** Appends an element. @pre kind() == kArray */
    Value& Append(Value value);

    /** Array elements. @pre kind() == kArray */
    const std::vector<Value>& items() const;
    std::vector<Value>& items();

    // --- Object operations ------------------------------------------------

    /** Sets @p key (appending or updating). @pre kind() == kObject */
    Value& Set(const std::string& key, Value value);

    /** @return the member value, or nullptr. @pre kind() == kObject */
    const Value* Find(const std::string& key) const;
    Value* Find(const std::string& key);

    /** Object members in insertion order. @pre kind() == kObject */
    const std::vector<std::pair<std::string, Value>>& members() const;

    // --- Serialization ----------------------------------------------------

    /**
     * Serializes the value.  @p indent 0 produces compact single-line
     * output; positive values pretty-print with that many spaces per level.
     * Output is deterministic: member order is insertion order and numbers
     * use shortest-round-trip formatting.
     */
    std::string Dump(int indent = 0) const;

    /** Parses a complete JSON document. @throws ParseError */
    static Value Parse(const std::string& text);

    /** Deep structural equality (numbers compare exactly). */
    bool operator==(const Value& other) const;
    bool operator!=(const Value& other) const { return !(*this == other); }

  private:
    explicit Value(Kind kind) : kind_(kind) {}

    void DumpTo(std::string& out, int indent, int depth) const;

    Kind kind_;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    std::vector<Value> array_;
    std::vector<std::pair<std::string, Value>> object_;
};

/** Shortest-round-trip decimal rendering of @p value (JSON number syntax). */
std::string FormatNumber(double value);

/** Escapes and quotes @p text as a JSON string literal. */
std::string Quote(const std::string& text);

} // namespace parbs::json

#endif // PARBS_COMMON_JSON_HH
