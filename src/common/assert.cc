#include "common/assert.hh"

#include <cstdio>
#include <cstdlib>

namespace parbs {
namespace detail {

void
AssertFail(const char* expr, const char* file, int line,
           const std::string& msg)
{
    std::fprintf(stderr, "parbs: internal assertion failed: %s\n  at %s:%d\n",
                 expr, file, line);
    if (!msg.empty()) {
        std::fprintf(stderr, "  %s\n", msg.c_str());
    }
    std::fflush(stderr);
    std::abort();
}

} // namespace detail
} // namespace parbs
