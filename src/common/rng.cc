#include "common/rng.hh"

#include <cmath>

namespace parbs {
namespace {

/** splitmix64 step, used only to expand the seed into generator state. */
std::uint64_t
SplitMix64(std::uint64_t& x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
Rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t s = seed;
    for (auto& word : state_) {
        word = SplitMix64(s);
    }
}

std::uint64_t
Rng::Next64()
{
    // xoshiro256** by Blackman & Vigna (public domain reference algorithm).
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
}

std::uint64_t
Rng::NextBelow(std::uint64_t bound)
{
    PARBS_ASSERT(bound > 0, "NextBelow requires a positive bound");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        std::uint64_t r = Next64();
        if (r >= threshold) {
            return r % bound;
        }
    }
}

std::uint64_t
Rng::NextInRange(std::uint64_t lo, std::uint64_t hi)
{
    PARBS_ASSERT(lo <= hi, "NextInRange requires lo <= hi");
    return lo + NextBelow(hi - lo + 1);
}

double
Rng::NextDouble()
{
    return static_cast<double>(Next64() >> 11) * 0x1.0p-53;
}

bool
Rng::NextBool(double p)
{
    if (p <= 0.0) {
        return false;
    }
    if (p >= 1.0) {
        return true;
    }
    return NextDouble() < p;
}

std::uint64_t
Rng::NextGeometric(double mean)
{
    if (mean <= 0.0) {
        return 0;
    }
    // Inverse-CDF sampling of a geometric distribution on {0,1,2,...} with
    // success probability p = 1/(mean+1), which has the requested mean.
    const double p = 1.0 / (mean + 1.0);
    double u = NextDouble();
    // Guard against log(0).
    if (u <= 0.0) {
        u = 0x1.0p-53;
    }
    double value = std::floor(std::log(u) / std::log1p(-p));
    if (value < 0.0) {
        value = 0.0;
    }
    return static_cast<std::uint64_t>(value);
}

Rng
Rng::Fork()
{
    return Rng(Next64());
}

} // namespace parbs
