/**
 * @file
 * Fundamental scalar types shared by every parbs subsystem.
 *
 * The simulator runs on two clock domains: the processor clock (4 GHz in the
 * baseline configuration) and the DRAM command clock (400 MHz for DDR2-800).
 * To keep the two from being mixed up accidentally, cycle counts are carried
 * in the semantically named aliases below.  Both are plain 64-bit unsigned
 * integers; the naming is documentation, not type safety — the hot simulation
 * loops stay free of wrapper-class overhead.
 */

#ifndef PARBS_COMMON_TYPES_HH
#define PARBS_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace parbs {

/** A point in time or duration measured in CPU clock cycles. */
using CpuCycle = std::uint64_t;

/** A point in time or duration measured in DRAM command-clock cycles. */
using DramCycle = std::uint64_t;

/** Identifier of a hardware thread / core (the paper uses one thread per core). */
using ThreadId = std::uint32_t;

/** Monotonically increasing identifier assigned to each memory request. */
using RequestId = std::uint64_t;

/** Physical memory address (byte-granular). */
using Addr = std::uint64_t;

/** Sentinel meaning "no time scheduled yet" / "never". */
inline constexpr std::uint64_t kNeverCycle =
    std::numeric_limits<std::uint64_t>::max();

/** Sentinel for an invalid / unassigned thread. */
inline constexpr ThreadId kInvalidThread =
    std::numeric_limits<ThreadId>::max();

/** Sentinel for "no row open" in a DRAM bank row-buffer. */
inline constexpr std::uint32_t kNoRow =
    std::numeric_limits<std::uint32_t>::max();

/**
 * System-software thread priority (Section 5 of the paper).
 *
 * Level 1 is the most important; larger numbers are less important.  Requests
 * from a thread at priority X are marked only every Xth batch.  The special
 * level kOpportunisticPriority is the paper's level "L": requests from such
 * threads are never marked and are serviced purely opportunistically.
 */
using ThreadPriority = std::uint32_t;

/** Highest (most important) priority level. */
inline constexpr ThreadPriority kHighestPriority = 1;

/** The paper's level "L": purely opportunistic service, never marked. */
inline constexpr ThreadPriority kOpportunisticPriority = 0;

} // namespace parbs

#endif // PARBS_COMMON_TYPES_HH
