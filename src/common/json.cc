#include "common/json.hh"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/assert.hh"

namespace parbs::json {
namespace {

[[noreturn]] void
Fail(std::size_t offset, const std::string& what)
{
    throw ParseError("json: at offset " + std::to_string(offset) + ": " +
                     what);
}

/** Recursive-descent parser over a borrowed string. */
class Parser {
  public:
    explicit Parser(const std::string& text) : text_(text) {}

    Value
    Document()
    {
        SkipSpace();
        Value value = ParseValue(0);
        SkipSpace();
        if (pos_ != text_.size()) {
            Fail(pos_, "trailing content after document");
        }
        return value;
    }

  private:
    static constexpr int kMaxDepth = 64;

    const std::string& text_;
    std::size_t pos_ = 0;

    char
    Peek() const
    {
        if (pos_ >= text_.size()) {
            Fail(pos_, "unexpected end of input");
        }
        return text_[pos_];
    }

    void
    Expect(char c)
    {
        if (Peek() != c) {
            Fail(pos_, std::string("expected '") + c + "'");
        }
        pos_ += 1;
    }

    void
    SkipSpace()
    {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r') {
                break;
            }
            pos_ += 1;
        }
    }

    bool
    Consume(const char* literal)
    {
        std::size_t n = 0;
        while (literal[n] != '\0') {
            n += 1;
        }
        if (text_.compare(pos_, n, literal) != 0) {
            return false;
        }
        pos_ += n;
        return true;
    }

    Value
    ParseValue(int depth)
    {
        if (depth > kMaxDepth) {
            Fail(pos_, "nesting too deep");
        }
        switch (Peek()) {
          case '{':
            return ParseObject(depth);
          case '[':
            return ParseArray(depth);
          case '"':
            return Value(ParseString());
          case 't':
            if (!Consume("true")) {
                Fail(pos_, "invalid literal");
            }
            return Value(true);
          case 'f':
            if (!Consume("false")) {
                Fail(pos_, "invalid literal");
            }
            return Value(false);
          case 'n':
            if (!Consume("null")) {
                Fail(pos_, "invalid literal");
            }
            return Value();
          default:
            return ParseNumber();
        }
    }

    Value
    ParseObject(int depth)
    {
        Expect('{');
        Value object = Value::Object();
        SkipSpace();
        if (Peek() == '}') {
            pos_ += 1;
            return object;
        }
        while (true) {
            SkipSpace();
            const std::string key = ParseString();
            SkipSpace();
            Expect(':');
            SkipSpace();
            object.Set(key, ParseValue(depth + 1));
            SkipSpace();
            if (Peek() == ',') {
                pos_ += 1;
                continue;
            }
            Expect('}');
            return object;
        }
    }

    Value
    ParseArray(int depth)
    {
        Expect('[');
        Value array = Value::Array();
        SkipSpace();
        if (Peek() == ']') {
            pos_ += 1;
            return array;
        }
        while (true) {
            SkipSpace();
            array.Append(ParseValue(depth + 1));
            SkipSpace();
            if (Peek() == ',') {
                pos_ += 1;
                continue;
            }
            Expect(']');
            return array;
        }
    }

    std::string
    ParseString()
    {
        Expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size()) {
                Fail(pos_, "unterminated string");
            }
            const char c = text_[pos_++];
            if (c == '"') {
                return out;
            }
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos_ >= text_.size()) {
                Fail(pos_, "unterminated escape");
            }
            const char esc = text_[pos_++];
            switch (esc) {
              case '"': out.push_back('"'); break;
              case '\\': out.push_back('\\'); break;
              case '/': out.push_back('/'); break;
              case 'b': out.push_back('\b'); break;
              case 'f': out.push_back('\f'); break;
              case 'n': out.push_back('\n'); break;
              case 'r': out.push_back('\r'); break;
              case 't': out.push_back('\t'); break;
              case 'u': {
                if (pos_ + 4 > text_.size()) {
                    Fail(pos_, "truncated \\u escape");
                }
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9') {
                        code |= static_cast<unsigned>(h - '0');
                    } else if (h >= 'a' && h <= 'f') {
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    } else if (h >= 'A' && h <= 'F') {
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    } else {
                        Fail(pos_ - 1, "invalid \\u escape digit");
                    }
                }
                // UTF-8 encode the BMP code point (surrogate pairs are not
                // needed for the harness's ASCII-plus output).
                if (code < 0x80) {
                    out.push_back(static_cast<char>(code));
                } else if (code < 0x800) {
                    out.push_back(static_cast<char>(0xC0 | (code >> 6)));
                    out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
                } else {
                    out.push_back(static_cast<char>(0xE0 | (code >> 12)));
                    out.push_back(
                        static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
                    out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
                }
                break;
              }
              default:
                Fail(pos_ - 1, "invalid escape character");
            }
        }
    }

    Value
    ParseNumber()
    {
        const std::size_t start = pos_;
        if (Peek() == '-') {
            pos_ += 1;
        }
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if ((c >= '0' && c <= '9') || c == '.' || c == 'e' ||
                c == 'E' || c == '+' || c == '-') {
                pos_ += 1;
            } else {
                break;
            }
        }
        if (pos_ == start) {
            Fail(start, "expected a value");
        }
        double value = 0.0;
        const auto [end, ec] = std::from_chars(
            text_.data() + start, text_.data() + pos_, value);
        if (ec != std::errc() ||
            end != text_.data() + pos_) {
            Fail(start, "malformed number");
        }
        return Value(value);
    }
};

} // namespace

bool
Value::AsBool() const
{
    PARBS_ASSERT(kind_ == Kind::kBool, "json: not a bool");
    return bool_;
}

double
Value::AsNumber() const
{
    PARBS_ASSERT(kind_ == Kind::kNumber, "json: not a number");
    return number_;
}

const std::string&
Value::AsString() const
{
    PARBS_ASSERT(kind_ == Kind::kString, "json: not a string");
    return string_;
}

Value&
Value::Append(Value value)
{
    PARBS_ASSERT(kind_ == Kind::kArray, "json: not an array");
    array_.push_back(std::move(value));
    return array_.back();
}

const std::vector<Value>&
Value::items() const
{
    PARBS_ASSERT(kind_ == Kind::kArray, "json: not an array");
    return array_;
}

std::vector<Value>&
Value::items()
{
    PARBS_ASSERT(kind_ == Kind::kArray, "json: not an array");
    return array_;
}

Value&
Value::Set(const std::string& key, Value value)
{
    PARBS_ASSERT(kind_ == Kind::kObject, "json: not an object");
    for (auto& [name, member] : object_) {
        if (name == key) {
            member = std::move(value);
            return member;
        }
    }
    object_.emplace_back(key, std::move(value));
    return object_.back().second;
}

const Value*
Value::Find(const std::string& key) const
{
    PARBS_ASSERT(kind_ == Kind::kObject, "json: not an object");
    for (const auto& [name, member] : object_) {
        if (name == key) {
            return &member;
        }
    }
    return nullptr;
}

Value*
Value::Find(const std::string& key)
{
    return const_cast<Value*>(
        static_cast<const Value*>(this)->Find(key));
}

const std::vector<std::pair<std::string, Value>>&
Value::members() const
{
    PARBS_ASSERT(kind_ == Kind::kObject, "json: not an object");
    return object_;
}

std::string
FormatNumber(double value)
{
    PARBS_ASSERT(std::isfinite(value), "json: non-finite number");
    // Integral values print without a fraction; everything else uses
    // std::to_chars' shortest round-trip form.  Both are deterministic.
    if (value == std::floor(value) && std::abs(value) < 1e15) {
        char buffer[32];
        const auto [end, ec] = std::to_chars(
            buffer, buffer + sizeof(buffer),
            static_cast<std::int64_t>(value));
        PARBS_ASSERT(ec == std::errc(), "json: integer format failure");
        return std::string(buffer, end);
    }
    char buffer[64];
    const auto [end, ec] =
        std::to_chars(buffer, buffer + sizeof(buffer), value);
    PARBS_ASSERT(ec == std::errc(), "json: double format failure");
    return std::string(buffer, end);
}

std::string
Quote(const std::string& text)
{
    std::string out;
    out.reserve(text.size() + 2);
    out.push_back('"');
    for (char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buffer[8];
                std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buffer;
            } else {
                out.push_back(c);
            }
        }
    }
    out.push_back('"');
    return out;
}

void
Value::DumpTo(std::string& out, int indent, int depth) const
{
    const std::string pad(static_cast<std::size_t>(indent) *
                              static_cast<std::size_t>(depth + 1),
                          ' ');
    const std::string close_pad(
        static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth),
        ' ');
    const char* newline = indent > 0 ? "\n" : "";
    const char* colon = indent > 0 ? ": " : ":";

    switch (kind_) {
      case Kind::kNull:
        out += "null";
        break;
      case Kind::kBool:
        out += bool_ ? "true" : "false";
        break;
      case Kind::kNumber:
        out += FormatNumber(number_);
        break;
      case Kind::kString:
        out += Quote(string_);
        break;
      case Kind::kArray: {
        if (array_.empty()) {
            out += "[]";
            break;
        }
        out += '[';
        out += newline;
        for (std::size_t i = 0; i < array_.size(); ++i) {
            out += pad;
            array_[i].DumpTo(out, indent, depth + 1);
            if (i + 1 < array_.size()) {
                out += ',';
            }
            out += newline;
        }
        out += close_pad;
        out += ']';
        break;
      }
      case Kind::kObject: {
        if (object_.empty()) {
            out += "{}";
            break;
        }
        out += '{';
        out += newline;
        for (std::size_t i = 0; i < object_.size(); ++i) {
            out += pad;
            out += Quote(object_[i].first);
            out += colon;
            object_[i].second.DumpTo(out, indent, depth + 1);
            if (i + 1 < object_.size()) {
                out += ',';
            }
            out += newline;
        }
        out += close_pad;
        out += '}';
        break;
      }
    }
}

std::string
Value::Dump(int indent) const
{
    std::string out;
    DumpTo(out, indent, 0);
    return out;
}

Value
Value::Parse(const std::string& text)
{
    return Parser(text).Document();
}

bool
Value::operator==(const Value& other) const
{
    if (kind_ != other.kind_) {
        return false;
    }
    switch (kind_) {
      case Kind::kNull:
        return true;
      case Kind::kBool:
        return bool_ == other.bool_;
      case Kind::kNumber:
        return number_ == other.number_;
      case Kind::kString:
        return string_ == other.string_;
      case Kind::kArray:
        return array_ == other.array_;
      case Kind::kObject:
        return object_ == other.object_;
    }
    return false;
}

} // namespace parbs::json
