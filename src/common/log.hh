/**
 * @file
 * Minimal leveled logging used for simulator status and debug traces.
 *
 * Logging is globally off by default so that benchmark harnesses and tests
 * stay quiet; examples turn on kInfo.  There is deliberately no per-module
 * filtering — the simulator's debug output is sparse enough that a global
 * level suffices, and the hot path only pays one branch when logging is off.
 */

#ifndef PARBS_COMMON_LOG_HH
#define PARBS_COMMON_LOG_HH

#include <sstream>
#include <string>

namespace parbs {

/** Severity levels, in increasing verbosity. */
enum class LogLevel {
    kOff = 0,
    kWarn = 1,
    kInfo = 2,
    kDebug = 3,
};

/** Sets the process-wide log level. */
void SetLogLevel(LogLevel level);

/** @return the current process-wide log level. */
LogLevel GetLogLevel();

namespace detail {

/** Writes one formatted log line to stderr. */
void EmitLogLine(LogLevel level, const std::string& message);

} // namespace detail
} // namespace parbs

/** Log at a given level; arguments are streamed (ostream syntax). */
#define PARBS_LOG(level, streamed)                                           \
    do {                                                                     \
        if (static_cast<int>(::parbs::GetLogLevel()) >=                      \
            static_cast<int>(level)) {                                       \
            std::ostringstream parbs_log_oss_;                               \
            parbs_log_oss_ << streamed;                                      \
            ::parbs::detail::EmitLogLine(level, parbs_log_oss_.str());       \
        }                                                                    \
    } while (false)

#define PARBS_WARN(streamed) PARBS_LOG(::parbs::LogLevel::kWarn, streamed)
#define PARBS_INFO(streamed) PARBS_LOG(::parbs::LogLevel::kInfo, streamed)
#define PARBS_DEBUG(streamed) PARBS_LOG(::parbs::LogLevel::kDebug, streamed)

#endif // PARBS_COMMON_LOG_HH
