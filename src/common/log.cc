#include "common/log.hh"

#include <atomic>
#include <cstdio>

namespace parbs {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kOff};

const char*
LevelName(LogLevel level)
{
    switch (level) {
      case LogLevel::kWarn:
        return "warn";
      case LogLevel::kInfo:
        return "info";
      case LogLevel::kDebug:
        return "debug";
      case LogLevel::kOff:
        break;
    }
    return "off";
}

} // namespace

void
SetLogLevel(LogLevel level)
{
    g_level.store(level, std::memory_order_relaxed);
}

LogLevel
GetLogLevel()
{
    return g_level.load(std::memory_order_relaxed);
}

namespace detail {

void
EmitLogLine(LogLevel level, const std::string& message)
{
    std::fprintf(stderr, "[parbs %s] %s\n", LevelName(level),
                 message.c_str());
}

} // namespace detail
} // namespace parbs
