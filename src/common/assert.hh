/**
 * @file
 * Error-reporting primitives, following the gem5 fatal/panic distinction:
 *
 *  - ConfigError (thrown by PARBS_FATAL / config validation) means the *user*
 *    supplied an impossible configuration.  Catchable; examples and tools
 *    print the message and exit cleanly.
 *  - PARBS_ASSERT aborts: an internal invariant was violated, i.e. a bug in
 *    the simulator itself.  Assertions stay enabled in release builds — the
 *    simulator is the product and silent state corruption is worse than the
 *    (negligible) checking cost.
 */

#ifndef PARBS_COMMON_ASSERT_HH
#define PARBS_COMMON_ASSERT_HH

#include <stdexcept>
#include <string>

namespace parbs {

/** Exception thrown when a user-supplied configuration is invalid. */
class ConfigError : public std::runtime_error {
  public:
    explicit ConfigError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

/** Prints an assertion-failure report to stderr and aborts. */
[[noreturn]] void AssertFail(const char* expr, const char* file, int line,
                             const std::string& msg);

} // namespace detail
} // namespace parbs

/** Abort with a message if @p expr is false.  Enabled in all build types. */
#define PARBS_ASSERT(expr, msg)                                              \
    do {                                                                     \
        if (!(expr)) {                                                       \
            ::parbs::detail::AssertFail(#expr, __FILE__, __LINE__, (msg));   \
        }                                                                    \
    } while (false)

/** Throw a ConfigError with the given message (user-fault error path). */
#define PARBS_FATAL(msg) throw ::parbs::ConfigError(msg)

#endif // PARBS_COMMON_ASSERT_HH
