/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All randomness in the simulator (synthetic trace generation, tie-breaking
 * in the Max-Total ranking, the random within-batch ranking variant, workload
 * mix selection) flows through Rng instances seeded from the experiment
 * configuration, so that a given configuration + seed reproduces bit-identical
 * results across runs and platforms.  std::mt19937 is deliberately avoided:
 * its distributions are not portable across standard-library implementations.
 *
 * The core generator is splitmix64-seeded xoshiro256**, which is small, fast,
 * and has no observable statistical defects at simulator scale.
 */

#ifndef PARBS_COMMON_RNG_HH
#define PARBS_COMMON_RNG_HH

#include <cstdint>
#include <vector>

#include "common/assert.hh"

namespace parbs {

/** Portable deterministic PRNG with the distributions the simulator needs. */
class Rng {
  public:
    /** Seeds the generator; any 64-bit value (including 0) is acceptable. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** @return the next raw 64-bit value. */
    std::uint64_t Next64();

    /** @return a uniformly distributed integer in [0, bound). @pre bound > 0 */
    std::uint64_t NextBelow(std::uint64_t bound);

    /** @return a uniformly distributed integer in [lo, hi]. @pre lo <= hi */
    std::uint64_t NextInRange(std::uint64_t lo, std::uint64_t hi);

    /** @return a uniform double in [0, 1). */
    double NextDouble();

    /** @return true with probability @p p (clamped to [0,1]). */
    bool NextBool(double p);

    /**
     * @return a geometrically distributed count with mean @p mean
     *         (support {0, 1, 2, ...}); mean <= 0 yields 0.
     */
    std::uint64_t NextGeometric(double mean);

    /** Fisher-Yates shuffle of @p items. */
    template <typename T>
    void
    Shuffle(std::vector<T>& items)
    {
        for (std::size_t i = items.size(); i > 1; --i) {
            std::size_t j = static_cast<std::size_t>(NextBelow(i));
            std::swap(items[i - 1], items[j]);
        }
    }

    /** Derives an independent child generator (for per-thread streams). */
    Rng Fork();

  private:
    std::uint64_t state_[4];
};

} // namespace parbs

#endif // PARBS_COMMON_RNG_HH
