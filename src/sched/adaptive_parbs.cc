#include "sched/adaptive_parbs.hh"

#include <algorithm>

#include "common/assert.hh"

namespace parbs {

void
AdaptiveCapConfig::Validate() const
{
    if (min_cap == 0 || min_cap > max_cap) {
        PARBS_FATAL("adaptive cap: need 0 < min_cap <= max_cap");
    }
    if (initial_cap < min_cap || initial_cap > max_cap) {
        PARBS_FATAL("adaptive cap: initial_cap outside [min, max]");
    }
    if (window_reads == 0) {
        PARBS_FATAL("adaptive cap: window_reads must be nonzero");
    }
    if (hit_low < 0.0 || hit_low > 1.0) {
        PARBS_FATAL("adaptive cap: hit_low must be in [0, 1]");
    }
}

namespace {

ParBsConfig
WithCap(ParBsConfig base, std::uint32_t cap)
{
    base.marking_cap = cap;
    return base;
}

} // namespace

AdaptiveParBsScheduler::AdaptiveParBsScheduler(
    const AdaptiveCapConfig& adapt, ParBsConfig base)
    : ParBsScheduler(WithCap(base, adapt.initial_cap)), adapt_(adapt)
{
    adapt_.Validate();
}

std::string
AdaptiveParBsScheduler::name() const
{
    return "PAR-BS(adaptive-cap)";
}

void
AdaptiveParBsScheduler::OnRequestComplete(const MemRequest& request,
                                          DramCycle now)
{
    ParBsScheduler::OnRequestComplete(request, now);
    if (request.is_write) {
        return;
    }
    window_reads_ += 1;
    if (request.service_class_valid &&
        request.service_class == dram::RowBufferState::kHit) {
        window_hits_ += 1;
    }
    window_worst_latency_ =
        std::max(window_worst_latency_, request.Latency());
    if (window_reads_ >= adapt_.window_reads) {
        MaybeAdapt();
    }
}

std::vector<std::pair<std::string, double>>
AdaptiveParBsScheduler::Stats() const
{
    auto stats = ParBsScheduler::Stats();
    stats.emplace_back("adaptations", static_cast<double>(adaptations_));
    return stats;
}

void
AdaptiveParBsScheduler::MaybeAdapt()
{
    const double hit_rate =
        static_cast<double>(window_hits_) /
        static_cast<double>(std::max<std::uint32_t>(1, window_reads_));

    std::uint32_t cap = config_.marking_cap;
    if (window_worst_latency_ > adapt_.latency_high &&
        cap > adapt_.min_cap) {
        cap -= 1; // Unmarked requests are waiting too long: tighten.
        adaptations_ += 1;
    } else if (hit_rate < adapt_.hit_low && cap < adapt_.max_cap) {
        cap += 1; // Batch boundaries are breaking row streams: loosen.
        adaptations_ += 1;
    }
    config_.marking_cap = cap;

    window_reads_ = 0;
    window_hits_ = 0;
    window_worst_latency_ = 0;
}

} // namespace parbs
