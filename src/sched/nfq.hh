/**
 * @file
 * NFQ: Network-Fair-Queueing based memory scheduling (Nesbit et al.,
 * MICRO-39 [28]) — the paper's FQ-VFTF configuration with the
 * priority-inversion-prevention optimization.
 *
 * Each thread owns a per-bank virtual clock.  A request's virtual finish
 * time (VFT) is
 *
 *     VFT = max(thread's previous VFT in this bank, arrival time)
 *           + nominal_service_time / weight
 *
 * and the scheduler services the ready request with the earliest VFT,
 * which apportions each bank's bandwidth in proportion to thread weights.
 * The priority-inversion-prevention optimization lets row-hit requests go
 * first, but only while the open row is younger than tRAS, so a stream of
 * row hits cannot capture a bank indefinitely.
 *
 * The `max(..., arrival time)` term is the source of the *idleness problem*
 * the PAR-BS paper describes: a thread that was idle re-enters with a
 * near-present VFT and leapfrogs backlogged threads whose clocks have run
 * ahead.  Because each bank's clock is independent ("without any
 * coordination among banks"), NFQ also destroys intra-thread bank-level
 * parallelism — the behaviour Case Studies I and II highlight.
 */

#ifndef PARBS_SCHED_NFQ_HH
#define PARBS_SCHED_NFQ_HH

#include <cstdint>
#include <vector>

#include "sched/scheduler.hh"

namespace parbs {

/** NFQ / FQ-VFTF scheduler. */
class NfqScheduler : public ComparatorScheduler {
  public:
    NfqScheduler() = default;

    std::string name() const override { return "NFQ"; }

    void Attach(const SchedulerContext& context) override;
    void OnRequestQueued(MemRequest& request, DramCycle now) override;

    /** Virtual clock of (thread, controller-local bank) — test hook. */
    std::uint64_t VirtualClock(ThreadId thread, std::uint32_t bank) const;

  protected:
    // NFQ deliberately does NOT opt into the per-bank pick memo
    // (PickMemoStable stays false): Better() compares `now` against
    // row_open_since + tRAS for the priority-inversion-prevention rule, so
    // the winner can change with the passage of time alone.  Selection
    // still runs over the per-bank chains — just re-walked each cycle.
    bool Better(const Candidate& a, const Candidate& b,
                DramCycle now) const override;

  private:
    /** [thread * num_banks + bank] last virtual finish time. */
    std::vector<std::uint64_t> virtual_clock_;

    std::uint32_t FlatBank(const MemRequest& request) const;
    std::uint64_t NominalServiceTime() const;
};

} // namespace parbs

#endif // PARBS_SCHED_NFQ_HH
