#include "sched/scheduler.hh"

#include "common/assert.hh"

namespace parbs {

void
Scheduler::Attach(const SchedulerContext& context)
{
    PARBS_ASSERT(context.read_queue != nullptr,
                 "scheduler attached without a read queue");
    PARBS_ASSERT(context.num_threads > 0,
                 "scheduler attached with zero threads");
    context_ = context;
    priorities_.assign(context.num_threads, kHighestPriority);
    weights_.assign(context.num_threads, 1.0);
}

void
Scheduler::OnRequestQueued(MemRequest&, DramCycle)
{
}

void
Scheduler::OnCommandIssued(const MemRequest&, const dram::Command&, DramCycle)
{
}

void
Scheduler::OnRequestComplete(const MemRequest&, DramCycle)
{
}

void
Scheduler::OnDramCycle(DramCycle)
{
}

std::vector<std::pair<std::string, double>>
Scheduler::Stats() const
{
    return {};
}

void
Scheduler::SetThreadPriority(ThreadId thread, ThreadPriority priority)
{
    PARBS_ASSERT(thread < priorities_.size(),
                 "SetThreadPriority before Attach or out of range");
    priorities_[thread] = priority;
}

void
Scheduler::SetThreadWeight(ThreadId thread, double weight)
{
    PARBS_ASSERT(thread < weights_.size(),
                 "SetThreadWeight before Attach or out of range");
    if (weight <= 0.0) {
        PARBS_FATAL("thread weight must be positive");
    }
    weights_[thread] = weight;
}

ThreadPriority
Scheduler::thread_priority(ThreadId thread) const
{
    PARBS_ASSERT(thread < priorities_.size(), "thread id out of range");
    return priorities_[thread];
}

double
Scheduler::thread_weight(ThreadId thread) const
{
    PARBS_ASSERT(thread < weights_.size(), "thread id out of range");
    return weights_[thread];
}

MemRequest*
ComparatorScheduler::Pick(const std::vector<Candidate>& candidates,
                          DramCycle now)
{
    PARBS_ASSERT(!candidates.empty(), "Pick called with no candidates");
    const Candidate* best = nullptr;
    for (const Candidate& candidate : candidates) {
        if (best == nullptr) {
            best = &candidate;
            continue;
        }
        // Reads block the processing cores directly, so every evaluated
        // scheduler services them in preference to writes.
        const bool a_read = !candidate.request->is_write;
        const bool b_read = !best->request->is_write;
        if (a_read != b_read) {
            if (a_read) {
                best = &candidate;
            }
            continue;
        }
        if (Better(candidate, *best, now)) {
            best = &candidate;
        }
    }
    return best->request;
}

} // namespace parbs
