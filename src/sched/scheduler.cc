#include "sched/scheduler.hh"

#include "common/assert.hh"
#include "dram/channel.hh"

namespace parbs {

void
Scheduler::Attach(const SchedulerContext& context)
{
    PARBS_ASSERT(context.read_queue != nullptr,
                 "scheduler attached without a read queue");
    PARBS_ASSERT(context.num_threads > 0,
                 "scheduler attached with zero threads");
    context_ = context;
    priorities_.assign(context.num_threads, kHighestPriority);
    weights_.assign(context.num_threads, 1.0);
}

const dram::Bank&
Scheduler::BankState(std::uint32_t flat_bank) const
{
    PARBS_ASSERT(context_.channel != nullptr,
                 "per-bank pick needs a channel in the scheduler context");
    return context_.channel->bank(flat_bank / context_.banks_per_rank,
                                  flat_bank % context_.banks_per_rank);
}

Candidate
Scheduler::MakeCandidate(MemRequest& request, const dram::Bank& bank) const
{
    Candidate candidate;
    candidate.request = &request;
    candidate.next_command =
        bank.NextCommandFor(request.coords.row, request.is_write);
    candidate.row_hit = bank.open_row() == request.coords.row;
    candidate.row_open_since = bank.open_since();
    return candidate;
}

MemRequest*
Scheduler::PickInBank(const RequestQueue& queue, std::uint32_t bank,
                      DramCycle now)
{
    const RequestQueue::BankChain chain = queue.BankQueued(bank);
    if (chain.empty()) {
        return nullptr;
    }
    const dram::Bank& state = BankState(bank);
    bank_scratch_.clear();
    for (MemRequest* request : chain) {
        bank_scratch_.push_back(MakeCandidate(*request, state));
    }
    return Pick(bank_scratch_, now);
}

void
Scheduler::OnRequestQueued(MemRequest&, DramCycle)
{
}

void
Scheduler::OnCommandIssued(const MemRequest&, const dram::Command&, DramCycle)
{
}

void
Scheduler::OnRequestComplete(const MemRequest&, DramCycle)
{
}

void
Scheduler::OnDramCycle(DramCycle)
{
}

std::vector<std::pair<std::string, double>>
Scheduler::Stats() const
{
    return {};
}

void
Scheduler::SetThreadPriority(ThreadId thread, ThreadPriority priority)
{
    PARBS_ASSERT(thread < priorities_.size(),
                 "SetThreadPriority before Attach or out of range");
    priorities_[thread] = priority;
    if (observer_ != nullptr) {
        observer_->OnPriorityChanged(thread, priority);
    }
    OnSchedulingKnobChanged();
}

void
Scheduler::SetThreadWeight(ThreadId thread, double weight)
{
    PARBS_ASSERT(thread < weights_.size(),
                 "SetThreadWeight before Attach or out of range");
    if (weight <= 0.0) {
        PARBS_FATAL("thread weight must be positive");
    }
    weights_[thread] = weight;
    if (observer_ != nullptr) {
        observer_->OnWeightChanged(thread, weight);
    }
    OnSchedulingKnobChanged();
}

ThreadPriority
Scheduler::thread_priority(ThreadId thread) const
{
    PARBS_ASSERT(thread < priorities_.size(), "thread id out of range");
    return priorities_[thread];
}

double
Scheduler::thread_weight(ThreadId thread) const
{
    PARBS_ASSERT(thread < weights_.size(), "thread id out of range");
    return weights_[thread];
}

void
ComparatorScheduler::Attach(const SchedulerContext& context)
{
    Scheduler::Attach(context);
    pick_memo_.assign(static_cast<std::size_t>(context.NumBanks()) * 2,
                      PickMemo{});
    pick_epoch_ = 1;
    memo_counters_ = PickMemoCounters{};
}

MemRequest*
ComparatorScheduler::Pick(std::span<const Candidate> candidates,
                          DramCycle now)
{
    PARBS_ASSERT(!candidates.empty(), "Pick called with no candidates");
    const Candidate* best = nullptr;
    for (const Candidate& candidate : candidates) {
        if (best == nullptr) {
            best = &candidate;
            continue;
        }
        // Reads block the processing cores directly, so every evaluated
        // scheduler services them in preference to writes.
        const bool a_read = !candidate.request->is_write;
        const bool b_read = !best->request->is_write;
        if (a_read != b_read) {
            if (a_read) {
                best = &candidate;
            }
            continue;
        }
        if (Better(candidate, *best, now)) {
            best = &candidate;
        }
    }
    return best->request;
}

MemRequest*
ComparatorScheduler::PickInBank(const RequestQueue& queue, std::uint32_t bank,
                                DramCycle now)
{
    const RequestQueue::BankChain chain = queue.BankQueued(bank);
    if (chain.empty()) {
        return nullptr;
    }
    const dram::Bank& state = BankState(bank);
    if (!PickMemoStable()) {
        return PickFromChain(queue, bank, state, now);
    }

    const std::size_t queue_index =
        (context_.write_queue != nullptr && &queue == context_.write_queue)
            ? 1
            : 0;
    PickMemo& memo =
        pick_memo_[queue_index * context_.NumBanks() + bank];
    const std::uint64_t queue_gen = queue.BankGeneration(bank);
    const std::uint64_t row_gen = state.row_generation();
    if (memo.queue_gen != queue_gen || memo.row_gen != row_gen ||
        memo.epoch != pick_epoch_) {
        memo.winner = PickFromChain(queue, bank, state, now);
        memo.queue_gen = queue_gen;
        memo.row_gen = row_gen;
        memo.epoch = pick_epoch_;
        memo_counters_.misses += 1;
    } else {
        memo_counters_.hits += 1;
    }
    return memo.winner;
}

MemRequest*
ComparatorScheduler::PickFromChain(const RequestQueue& queue,
                                   std::uint32_t bank,
                                   const dram::Bank& state,
                                   DramCycle now) const
{
    // Equivalent to Pick() over the materialized chain: one queue holds one
    // kind of request, so the read-over-write arm of Pick() never fires and
    // the winner is the chain's first Better()-maximal candidate.
    Candidate best;
    for (MemRequest* request : queue.BankQueued(bank)) {
        Candidate candidate = MakeCandidate(*request, state);
        if (best.request == nullptr || Better(candidate, best, now)) {
            best = candidate;
        }
    }
    return best.request;
}

} // namespace parbs
