#include "sched/fcfs.hh"

namespace parbs {

bool
FcfsScheduler::Better(const Candidate& a, const Candidate& b,
                      DramCycle) const
{
    // Request ids are assigned in arrival order, so "older" == smaller id.
    return a.request->id < b.request->id;
}

} // namespace parbs
