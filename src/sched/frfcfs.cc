#include "sched/frfcfs.hh"

namespace parbs {

bool
FrFcfsScheduler::Better(const Candidate& a, const Candidate& b,
                        DramCycle) const
{
    if (a.row_hit != b.row_hit) {
        return a.row_hit;
    }
    return a.request->id < b.request->id;
}

} // namespace parbs
