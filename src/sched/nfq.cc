#include "sched/nfq.hh"

#include <algorithm>

#include "common/assert.hh"

namespace parbs {

void
NfqScheduler::Attach(const SchedulerContext& context)
{
    ComparatorScheduler::Attach(context);
    virtual_clock_.assign(
        static_cast<std::size_t>(context.num_threads) * context.NumBanks(),
        0);
}

std::uint64_t
NfqScheduler::NominalServiceTime() const
{
    // A representative bank service time: activate + column + burst.
    const dram::TimingParams& t = *context_.timing;
    return t.tRCD + t.tCL + t.tBURST;
}

void
NfqScheduler::OnRequestQueued(MemRequest& request, DramCycle now)
{
    if (request.is_write) {
        return; // Writes are drained outside the fair-queueing discipline.
    }
    const std::size_t index =
        static_cast<std::size_t>(request.thread) * context_.NumBanks() +
        FlatBank(request);
    // Virtual start: the later of the thread's clock in this bank and "now"
    // (the idleness-prone reset).  Virtual finish adds the nominal service
    // time inflated by the inverse of the thread's share.
    const std::uint64_t start = std::max<std::uint64_t>(
        virtual_clock_[index], now);
    const double share = weights_[request.thread];
    const std::uint64_t service = static_cast<std::uint64_t>(
        static_cast<double>(NominalServiceTime()) / share);
    request.virtual_finish_time = start + std::max<std::uint64_t>(1, service);
    virtual_clock_[index] = request.virtual_finish_time;
}

std::uint64_t
NfqScheduler::VirtualClock(ThreadId thread, std::uint32_t bank) const
{
    const std::size_t index =
        static_cast<std::size_t>(thread) * context_.NumBanks() + bank;
    PARBS_ASSERT(index < virtual_clock_.size(), "virtual clock out of range");
    return virtual_clock_[index];
}

bool
NfqScheduler::Better(const Candidate& a, const Candidate& b,
                     DramCycle now) const
{
    // Priority-inversion prevention: a row-hit may jump ahead of an earlier
    // virtual deadline, but only while its row has been open for less than
    // tRAS — bounding how long row locality can override fairness.
    auto protected_hit = [this, now](const Candidate& c) {
        return c.row_hit && c.row_open_since != kNeverCycle &&
               now < c.row_open_since + context_.timing->tRAS;
    };
    const bool a_hit = protected_hit(a);
    const bool b_hit = protected_hit(b);
    if (a_hit != b_hit) {
        return a_hit;
    }
    // FQ-VFTF: earliest virtual finish time first.
    if (a.request->virtual_finish_time != b.request->virtual_finish_time) {
        return a.request->virtual_finish_time <
               b.request->virtual_finish_time;
    }
    return a.request->id < b.request->id;
}

std::uint32_t
NfqScheduler::FlatBank(const MemRequest& request) const
{
    return request.coords.rank * context_.banks_per_rank +
           request.coords.bank;
}

} // namespace parbs
