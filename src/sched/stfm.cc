#include "sched/stfm.hh"

#include <algorithm>

#include "common/assert.hh"

namespace parbs {

StfmScheduler::StfmScheduler(const StfmConfig& config) : config_(config)
{
    if (config_.alpha < 1.0) {
        PARBS_FATAL("STFM alpha must be >= 1.0");
    }
    if (config_.interval_length == 0) {
        PARBS_FATAL("STFM interval length must be nonzero");
    }
}

void
StfmScheduler::Attach(const SchedulerContext& context)
{
    ComparatorScheduler::Attach(context);
    t_shared_.assign(context.num_threads, 0.0);
    t_interference_.assign(context.num_threads, 0.0);
}

void
StfmScheduler::OnDramCycle(DramCycle now)
{
    // T_shared: cycles during which the thread has outstanding reads (the
    // controller-side approximation of processor memory stall time).
    for (ThreadId thread = 0; thread < context_.num_threads; ++thread) {
        if (context_.read_queue->ReqsPerThread(thread) > 0) {
            t_shared_[thread] += 1.0;
        }
    }
    // Periodic aging keeps the estimates adaptive to phase changes.
    if (now != 0 && now % config_.interval_length == 0) {
        for (ThreadId thread = 0; thread < context_.num_threads; ++thread) {
            t_shared_[thread] *= 0.5;
            t_interference_[thread] *= 0.5;
        }
    }
    UpdateMode();
    cycles_observed_ += 1;
    if (fairness_mode_) {
        cycles_in_fairness_mode_ += 1;
    }
}

void
StfmScheduler::OnCommandIssued(const MemRequest& request,
                               const dram::Command& command, DramCycle)
{
    // Interference accrues to other threads waiting on the bank this
    // command occupies, amortized by each waiter's bank-level parallelism
    // (a waiter using k banks only loses ~1/k of the delay in stall time).
    if (command.type != dram::CommandType::kRead &&
        command.type != dram::CommandType::kWrite) {
        return;
    }
    const dram::TimingParams& t = *context_.timing;
    const double cost = static_cast<double>(t.tRCD + t.tCL + t.tBURST);
    const std::uint32_t bank =
        request.coords.rank * context_.banks_per_rank + request.coords.bank;

    for (ThreadId other = 0; other < context_.num_threads; ++other) {
        if (other == request.thread) {
            continue;
        }
        if (context_.read_queue->ReqsInBankPerThread(other, bank) == 0) {
            continue;
        }
        std::uint32_t banks_in_use = 0;
        for (std::uint32_t b = 0; b < context_.NumBanks(); ++b) {
            if (context_.read_queue->ReqsInBankPerThread(other, b) > 0) {
                banks_in_use += 1;
            }
        }
        t_interference_[other] +=
            cost / static_cast<double>(std::max<std::uint32_t>(
                       1, banks_in_use));
    }
}

double
StfmScheduler::EstimatedSlowdown(ThreadId thread) const
{
    PARBS_ASSERT(thread < t_shared_.size(), "thread id out of range");
    const double shared = t_shared_[thread];
    const double alone = shared - t_interference_[thread];
    if (shared <= 0.0 || alone <= 1.0) {
        // No signal yet, or the estimate says (almost) all stall time is
        // interference; clamp as the real hardware proposal does.
        return shared > 0.0 ? shared : 1.0;
    }
    return shared / alone;
}

double
StfmScheduler::EffectiveSlowdown(ThreadId thread) const
{
    // A thread with weight w should converge to a slowdown w times smaller;
    // scaling the measured slowdown by w makes the fairness mode push
    // bandwidth toward heavy threads until that holds.
    return EstimatedSlowdown(thread) * weights_[thread];
}

double
StfmScheduler::EstimatedUnfairness() const
{
    double max_slowdown = 0.0;
    double min_slowdown = 0.0;
    bool any = false;
    for (ThreadId thread = 0; thread < context_.num_threads; ++thread) {
        if (context_.read_queue->ReqsPerThread(thread) == 0) {
            continue;
        }
        const double s = EffectiveSlowdown(thread);
        if (!any || s > max_slowdown) {
            max_slowdown = s;
        }
        if (!any || s < min_slowdown) {
            min_slowdown = s;
        }
        any = true;
    }
    if (!any || min_slowdown <= 0.0) {
        return 1.0;
    }
    return max_slowdown / min_slowdown;
}

std::vector<std::pair<std::string, double>>
StfmScheduler::Stats() const
{
    std::vector<std::pair<std::string, double>> stats{
        {"estimated_unfairness", EstimatedUnfairness()},
        {"fairness_mode_fraction",
         cycles_observed_ == 0
             ? 0.0
             : static_cast<double>(cycles_in_fairness_mode_) /
                   static_cast<double>(cycles_observed_)},
    };
    for (ThreadId thread = 0; thread < context_.num_threads; ++thread) {
        stats.emplace_back("slowdown_t" + std::to_string(thread),
                           EstimatedSlowdown(thread));
    }
    return stats;
}

void
StfmScheduler::UpdateMode()
{
    const bool old_mode = fairness_mode_;
    const ThreadId old_slowest = slowest_thread_;
    fairness_mode_ = EstimatedUnfairness() > config_.alpha;
    slowest_thread_ = kInvalidThread;
    if (fairness_mode_) {
        double max_slowdown = -1.0;
        for (ThreadId thread = 0; thread < context_.num_threads; ++thread) {
            if (context_.read_queue->ReqsPerThread(thread) == 0) {
                continue;
            }
            const double s = EffectiveSlowdown(thread);
            if (s > max_slowdown) {
                max_slowdown = s;
                slowest_thread_ = thread;
            }
        }
    }
    // The comparator's only inputs beyond the candidates changed: every
    // memoized per-bank winner may now be wrong.
    if (fairness_mode_ != old_mode || slowest_thread_ != old_slowest) {
        InvalidateBankPicks();
    }
}

bool
StfmScheduler::Better(const Candidate& a, const Candidate& b,
                      DramCycle) const
{
    if (fairness_mode_ && slowest_thread_ != kInvalidThread) {
        // Fairness mode: requests of the most-slowed thread first.
        const bool a_slowest = a.request->thread == slowest_thread_;
        const bool b_slowest = b.request->thread == slowest_thread_;
        if (a_slowest != b_slowest) {
            return a_slowest;
        }
    }
    // Baseline policy (and intra-thread order): FR-FCFS.
    if (a.row_hit != b.row_hit) {
        return a.row_hit;
    }
    return a.request->id < b.request->id;
}

} // namespace parbs
