#include "sched/factory.hh"

#include "common/assert.hh"
#include "sched/batch_variants.hh"
#include "sched/fcfs.hh"
#include "sched/frfcfs.hh"
#include "sched/nfq.hh"

namespace parbs {

const char*
SchedulerKindName(SchedulerKind kind)
{
    switch (kind) {
      case SchedulerKind::kFcfs:
        return "FCFS";
      case SchedulerKind::kFrFcfs:
        return "FR-FCFS";
      case SchedulerKind::kNfq:
        return "NFQ";
      case SchedulerKind::kStfm:
        return "STFM";
      case SchedulerKind::kParBs:
        return "PAR-BS";
      case SchedulerKind::kParBsStatic:
        return "PAR-BS(static)";
      case SchedulerKind::kParBsEslot:
        return "PAR-BS(eslot)";
      case SchedulerKind::kParBsAdaptive:
        return "PAR-BS(adaptive-cap)";
      case SchedulerKind::kBliss:
        return "BLISS";
    }
    return "?";
}

std::span<const SchedulerKind>
AllSchedulerKinds()
{
    static constexpr SchedulerKind kAll[] = {
        SchedulerKind::kFcfs,         SchedulerKind::kFrFcfs,
        SchedulerKind::kNfq,          SchedulerKind::kStfm,
        SchedulerKind::kParBs,        SchedulerKind::kParBsStatic,
        SchedulerKind::kParBsEslot,   SchedulerKind::kParBsAdaptive,
        SchedulerKind::kBliss,
    };
    return kAll;
}

bool
ParseSchedulerKind(const std::string& name, SchedulerKind& out)
{
    for (const SchedulerKind kind : AllSchedulerKinds()) {
        if (name == SchedulerKindName(kind)) {
            out = kind;
            return true;
        }
    }
    return false;
}

std::unique_ptr<Scheduler>
MakeScheduler(const SchedulerConfig& config)
{
    switch (config.kind) {
      case SchedulerKind::kFcfs:
        return std::make_unique<FcfsScheduler>();
      case SchedulerKind::kFrFcfs:
        return std::make_unique<FrFcfsScheduler>();
      case SchedulerKind::kNfq:
        return std::make_unique<NfqScheduler>();
      case SchedulerKind::kStfm:
        return std::make_unique<StfmScheduler>(config.stfm);
      case SchedulerKind::kParBs:
        return std::make_unique<ParBsScheduler>(config.parbs);
      case SchedulerKind::kParBsStatic:
        return std::make_unique<StaticBatchScheduler>(
            config.parbs, config.static_batch_duration);
      case SchedulerKind::kParBsEslot:
        return std::make_unique<EslotBatchScheduler>(config.parbs);
      case SchedulerKind::kParBsAdaptive:
        return std::make_unique<AdaptiveParBsScheduler>(config.adaptive,
                                                        config.parbs);
      case SchedulerKind::kBliss:
        return std::make_unique<BlissScheduler>(config.bliss);
    }
    PARBS_FATAL("unknown scheduler kind");
}

std::string
SchedulerConfigName(const SchedulerConfig& config)
{
    return MakeScheduler(config)->name();
}

} // namespace parbs
