/**
 * @file
 * Alternative batching schemes from Section 4.4 / Figure 12.
 *
 * - Time-based static batching: a new marking pass runs every
 *   Batch-Duration DRAM cycles regardless of whether the previous batch has
 *   completed; already-marked requests stay marked.  No strict
 *   starvation-freedom guarantee.
 *
 * - Empty-slot (Eslot) batching: full batching, plus requests that arrive
 *   while a batch is in progress may join it immediately as long as their
 *   thread has not yet used its Marking-Cap allotment for that bank.
 */

#ifndef PARBS_SCHED_BATCH_VARIANTS_HH
#define PARBS_SCHED_BATCH_VARIANTS_HH

#include "sched/parbs_sched.hh"

namespace parbs {

/** Time-based static batching (Section 4.4, "st-<duration>" in Fig. 12). */
class StaticBatchScheduler : public ParBsScheduler {
  public:
    /**
     * @param config PAR-BS knobs (cap, ranking policy, seed)
     * @param batch_duration marking interval in DRAM cycles
     */
    StaticBatchScheduler(const ParBsConfig& config,
                         DramCycle batch_duration);

    std::string name() const override;
    void OnDramCycle(DramCycle now) override;

    DramCycle batch_duration() const { return batch_duration_; }

  private:
    DramCycle batch_duration_;
    DramCycle next_marking_cycle_ = 0;

    /** Marks additional requests, keeping existing marks (static policy). */
    void MarkStatic(DramCycle now);
};

/** Empty-slot batching (Section 4.4, "eslot" in Fig. 12). */
class EslotBatchScheduler : public ParBsScheduler {
  public:
    explicit EslotBatchScheduler(const ParBsConfig& config = {});

    std::string name() const override;
    void OnRequestQueued(MemRequest& request, DramCycle now) override;
};

} // namespace parbs

#endif // PARBS_SCHED_BATCH_VARIANTS_HH
