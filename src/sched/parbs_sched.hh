/**
 * @file
 * PAR-BS: Parallelism-Aware Batch Scheduling (the paper's contribution).
 *
 * Two components:
 *
 *  1. Request batching (Rule 1).  When no marked requests remain in the
 *     request buffer, a new batch forms: up to Marking-Cap outstanding
 *     read requests per thread per bank are marked.  Marked requests are
 *     strictly prioritized over unmarked ones, which bounds how long any
 *     request can be delayed (starvation freedom).
 *
 *  2. Parallelism-aware within-batch scheduling (Rules 2 and 3).  At batch
 *     formation threads are ranked shortest-job-first by the Max-Total rule
 *     (lowest max-bank-load first, total-load as tie-breaker); within a
 *     batch requests are prioritized by:
 *         BS (marked first) > PRIORITY (Section 5) > RH (row-hit first)
 *         > RANK (higher-ranked thread first) > FCFS (oldest first).
 *     Ranking the same way in every bank services each thread's requests in
 *     parallel across banks, preserving its bank-level parallelism.
 *
 * System-software support (Section 5): a thread at priority level X has its
 * requests marked only every Xth batch; threads at the opportunistic level
 * "L" are never marked and lose every priority comparison.
 *
 * The Figure 13 design alternatives (Total-Max / random / round-robin
 * ranking, and no-rank FR-FCFS / FCFS within a batch) are selected through
 * ParBsConfig::ranking; the Figure 12 batching alternatives (time-based
 * static batching, empty-slot batching) are subclasses in
 * sched/batch_variants.hh.
 */

#ifndef PARBS_SCHED_PARBS_SCHED_HH
#define PARBS_SCHED_PARBS_SCHED_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "sched/scheduler.hh"

namespace parbs {

/** Within-batch thread-ranking policy (Figure 13). */
enum class RankingPolicy : std::uint8_t {
    kMaxTotal,    ///< Paper default: Max rule, Total rule tie-break (SJF).
    kTotalMax,    ///< Total rule first, Max rule tie-break.
    kRandom,      ///< Random ranks each batch (non-SJF control).
    kRoundRobin,  ///< Ranks rotate by one each batch (non-SJF control).
    kNoRankFrFcfs,///< No ranking: FR-FCFS within the batch.
    kNoRankFcfs,  ///< No ranking and no row-hit rule: FCFS within the batch.
};

/** @return a short name for a ranking policy ("max-total", ...). */
const char* RankingPolicyName(RankingPolicy policy);

/** PAR-BS configuration. */
struct ParBsConfig {
    /**
     * Marking-Cap: max marked requests per thread per bank in one batch.
     * 0 means "no cap" (the paper's `no-c` configuration).  The paper's
     * recommended value, used in its evaluation, is 5.
     */
    std::uint32_t marking_cap = 5;
    RankingPolicy ranking = RankingPolicy::kMaxTotal;
    /** Seed for random tie-breaking / the random ranking policy. */
    std::uint64_t seed = 0x5eedULL;
};

/** Aggregate batching behaviour counters (Section 8.1.2 reports these). */
struct BatchStats {
    std::uint64_t batches_formed = 0;
    std::uint64_t marked_total = 0;
    /** Sum of batch durations, DRAM cycles (completed batches only). */
    std::uint64_t duration_sum = 0;
    std::uint64_t batches_completed = 0;

    double
    AverageBatchSize() const
    {
        return batches_formed == 0 ? 0.0
                                   : static_cast<double>(marked_total) /
                                         static_cast<double>(batches_formed);
    }

    double
    AverageBatchDuration() const
    {
        return batches_completed == 0
                   ? 0.0
                   : static_cast<double>(duration_sum) /
                         static_cast<double>(batches_completed);
    }
};

/** The Parallelism-Aware Batch Scheduler. */
class ParBsScheduler : public ComparatorScheduler {
  public:
    explicit ParBsScheduler(const ParBsConfig& config = {});

    std::string name() const override;

    void Attach(const SchedulerContext& context) override;
    void OnDramCycle(DramCycle now) override;
    void OnRequestComplete(const MemRequest& request, DramCycle now) override;

    // --- Introspection (tests / stats) -----------------------------------

    /** Number of marked requests currently outstanding. */
    std::uint64_t marked_outstanding() const { return marked_outstanding_; }

    /** The watchdog's view of the open batch: marked requests remaining. */
    std::uint64_t BatchOutstanding() const override
    {
        return marked_outstanding_;
    }

    /** Rank of @p thread in the current batch (0 = highest; threads with no
     *  marked requests get the worst rank, num_threads). */
    std::uint32_t ThreadRank(ThreadId thread) const;

    const BatchStats& batch_stats() const { return batch_stats_; }

    const ParBsConfig& config() const { return config_; }

    /** Batching diagnostics: batches formed, average size/duration,
     *  currently outstanding marked requests. */
    std::vector<std::pair<std::string, double>> Stats() const override;

  protected:
    bool Better(const Candidate& a, const Candidate& b,
                DramCycle now) const override;

    /**
     * Better() reads marked bits, priorities, row-hit status, and rank_of_.
     * Marked bits change only at batch formation / late-join marking (which
     * call InvalidateBankPicks or happen together with a chain-generation
     * bump), rank_of_ only in ComputeRanking, priorities only through the
     * knob hook — so memoized per-bank picks stay sound.
     */
    bool PickMemoStable() const override { return true; }

    /** Marks eligible requests for a new batch and recomputes ranks.
     *  @return number of requests marked. */
    std::uint64_t FormBatch(DramCycle now);

    /** @return true if @p thread participates in the next batch
     *  (priority-based marking, Section 5). */
    bool ThreadMarkable(ThreadId thread) const;

    /** Recomputes the per-thread ranking from the marked request set. */
    void ComputeRanking();

    ParBsConfig config_;
    Rng rng_;

    std::uint64_t marked_outstanding_ = 0;
    /** Rank per thread; lower is higher-ranked. */
    std::vector<std::uint32_t> rank_of_;
    /** Whether each thread participates in the *current* batch (cached at
     *  formation time; consulted by empty-slot late marking). */
    std::vector<char> markable_now_;
    /** Marked requests per (thread, bank) in the current batch; marking
     *  counts, not outstanding counts (empty-slot batching needs these). */
    std::vector<std::uint32_t> marked_in_batch_;

    BatchStats batch_stats_;
    DramCycle batch_start_cycle_ = 0;
    bool batch_open_ = false;

    std::uint32_t FlatBank(const MemRequest& request) const;
    std::uint32_t& MarkedInBatch(ThreadId thread, std::uint32_t bank);
};

} // namespace parbs

#endif // PARBS_SCHED_PARBS_SCHED_HH
