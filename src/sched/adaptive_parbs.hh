/**
 * @file
 * Adaptive Marking-Cap PAR-BS — the extension the paper sketches in
 * Section 8.3.1: "Note that it is possible to improve our mechanism by
 * making the Marking-Cap adaptive."
 *
 * The cap trades row-buffer locality and intensive-thread throughput
 * (which want a large cap) against the delay of unmarked late-arriving
 * requests (which wants a small cap).  This controller observes both
 * signals over fixed windows of completed reads and nudges the cap by one
 * each window:
 *
 *   - if the worst read latency in the window exceeds `latency_high`
 *     (unmarked requests are being postponed too long), decrease the cap;
 *   - else if the window's row-buffer hit rate fell below `hit_low`
 *     (batch boundaries are breaking row streams), increase the cap.
 *
 * The cap stays within [min_cap, max_cap].  All thresholds are
 * configurable; the defaults were chosen on the Figure 11 workloads.
 */

#ifndef PARBS_SCHED_ADAPTIVE_PARBS_HH
#define PARBS_SCHED_ADAPTIVE_PARBS_HH

#include "sched/parbs_sched.hh"

namespace parbs {

/** Adaptive-cap controller parameters. */
struct AdaptiveCapConfig {
    std::uint32_t initial_cap = 5;
    std::uint32_t min_cap = 2;
    std::uint32_t max_cap = 20;
    /** Completed reads per adaptation window. */
    std::uint32_t window_reads = 256;
    /** Worst in-window read latency (DRAM cycles) that triggers a cap
     *  decrease. */
    DramCycle latency_high = 1500;
    /** In-window row-hit rate below which the cap increases. */
    double hit_low = 0.40;

    /** @throws ConfigError on inconsistent bounds. */
    void Validate() const;
};

/** PAR-BS with a feedback-controlled Marking-Cap. */
class AdaptiveParBsScheduler : public ParBsScheduler {
  public:
    explicit AdaptiveParBsScheduler(const AdaptiveCapConfig& adapt = {},
                                    ParBsConfig base = {});

    std::string name() const override;

    void OnRequestComplete(const MemRequest& request,
                           DramCycle now) override;

    std::uint32_t current_cap() const { return config_.marking_cap; }

    /** Number of cap adjustments performed so far (diagnostics). */
    std::uint64_t adaptations() const { return adaptations_; }

    /** Adds the controller state to the PAR-BS batching diagnostics. */
    std::vector<std::pair<std::string, double>> Stats() const override;

  private:
    AdaptiveCapConfig adapt_;

    std::uint32_t window_reads_ = 0;
    std::uint32_t window_hits_ = 0;
    DramCycle window_worst_latency_ = 0;
    std::uint64_t adaptations_ = 0;

    void MaybeAdapt();
};

} // namespace parbs

#endif // PARBS_SCHED_ADAPTIVE_PARBS_HH
