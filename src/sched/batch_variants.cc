#include "sched/batch_variants.hh"

#include <algorithm>

#include "common/assert.hh"

namespace parbs {

StaticBatchScheduler::StaticBatchScheduler(const ParBsConfig& config,
                                           DramCycle batch_duration)
    : ParBsScheduler(config), batch_duration_(batch_duration)
{
    if (batch_duration_ == 0) {
        PARBS_FATAL("static batching requires a nonzero Batch-Duration");
    }
}

std::string
StaticBatchScheduler::name() const
{
    return "PAR-BS(st-" + std::to_string(batch_duration_) + ")";
}

void
StaticBatchScheduler::OnDramCycle(DramCycle now)
{
    // Deliberately does NOT call the base: batches form on a fixed period,
    // not when the previous batch completes.
    if (now >= next_marking_cycle_) {
        MarkStatic(now);
        next_marking_cycle_ = now + batch_duration_;
    }
}

void
StaticBatchScheduler::MarkStatic(DramCycle now)
{
    // Re-derive per-(thread, bank) marked counts from requests still marked
    // from previous intervals: those marks persist and consume cap slots.
    std::fill(marked_in_batch_.begin(), marked_in_batch_.end(), 0);
    for (const MemRequest* request : context_.read_queue->requests()) {
        if (request->marked) {
            MarkedInBatch(request->thread, FlatBank(*request)) += 1;
        }
    }
    for (ThreadId thread = 0; thread < context_.num_threads; ++thread) {
        markable_now_[thread] = ThreadMarkable(thread) ? 1 : 0;
    }

    std::uint64_t newly_marked = 0;
    for (MemRequest* request : context_.read_queue->requests()) {
        if (request->state != RequestState::kQueued || request->marked) {
            continue;
        }
        if (!markable_now_[request->thread]) {
            continue;
        }
        std::uint32_t& used =
            MarkedInBatch(request->thread, FlatBank(*request));
        if (config_.marking_cap != 0 && used >= config_.marking_cap) {
            continue;
        }
        request->marked = true;
        used += 1;
        newly_marked += 1;
    }

    marked_outstanding_ += newly_marked;
    if (newly_marked > 0) {
        batch_stats_.batches_formed += 1;
        batch_stats_.marked_total += newly_marked;
        batch_stats_.duration_sum += batch_duration_;
        batch_stats_.batches_completed += 1;
        batch_start_cycle_ = now;
        ComputeRanking();
        // Marked bits and ranks changed under the memoized picks' feet.
        InvalidateBankPicks();
    }
}

EslotBatchScheduler::EslotBatchScheduler(const ParBsConfig& config)
    : ParBsScheduler(config)
{
}

std::string
EslotBatchScheduler::name() const
{
    return "PAR-BS(eslot)";
}

void
EslotBatchScheduler::OnRequestQueued(MemRequest& request, DramCycle now)
{
    ParBsScheduler::OnRequestQueued(request, now);
    if (request.is_write || !batch_open_) {
        return;
    }
    if (!markable_now_[request.thread]) {
        return;
    }
    std::uint32_t& used = MarkedInBatch(request.thread, FlatBank(request));
    if (config_.marking_cap != 0 && used >= config_.marking_cap) {
        return;
    }
    // Late-join: the thread still has empty slots in the current batch.
    request.marked = true;
    used += 1;
    marked_outstanding_ += 1;
    batch_stats_.marked_total += 1;
}

} // namespace parbs
