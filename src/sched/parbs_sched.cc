#include "sched/parbs_sched.hh"

#include <algorithm>
#include <numeric>

#include "common/assert.hh"

namespace parbs {

const char*
RankingPolicyName(RankingPolicy policy)
{
    switch (policy) {
      case RankingPolicy::kMaxTotal:
        return "max-total";
      case RankingPolicy::kTotalMax:
        return "total-max";
      case RankingPolicy::kRandom:
        return "random";
      case RankingPolicy::kRoundRobin:
        return "round-robin";
      case RankingPolicy::kNoRankFrFcfs:
        return "no-rank-frfcfs";
      case RankingPolicy::kNoRankFcfs:
        return "no-rank-fcfs";
    }
    return "?";
}

ParBsScheduler::ParBsScheduler(const ParBsConfig& config)
    : config_(config), rng_(config.seed)
{
}

std::string
ParBsScheduler::name() const
{
    if (config_.ranking == RankingPolicy::kMaxTotal &&
        config_.marking_cap == 5) {
        return "PAR-BS";
    }
    std::string out = "PAR-BS(";
    out += RankingPolicyName(config_.ranking);
    out += ",cap=";
    out += config_.marking_cap == 0 ? "none"
                                    : std::to_string(config_.marking_cap);
    out += ")";
    return out;
}

void
ParBsScheduler::Attach(const SchedulerContext& context)
{
    ComparatorScheduler::Attach(context);
    rank_of_.assign(context.num_threads, context.num_threads);
    markable_now_.assign(context.num_threads, 0);
    marked_in_batch_.assign(
        static_cast<std::size_t>(context.num_threads) * context.NumBanks(),
        0);
}

void
ParBsScheduler::OnDramCycle(DramCycle now)
{
    // Rule 1: a new batch forms when no marked requests remain.
    if (marked_outstanding_ == 0) {
        FormBatch(now);
    }
}

void
ParBsScheduler::OnRequestComplete(const MemRequest& request, DramCycle)
{
    if (request.marked) {
        PARBS_ASSERT(marked_outstanding_ > 0,
                     "marked request completed with zero outstanding");
        marked_outstanding_ -= 1;
    }
}

std::vector<std::pair<std::string, double>>
ParBsScheduler::Stats() const
{
    return {
        {"batches_formed",
         static_cast<double>(batch_stats_.batches_formed)},
        {"avg_batch_size", batch_stats_.AverageBatchSize()},
        {"avg_batch_duration", batch_stats_.AverageBatchDuration()},
        {"marked_outstanding", static_cast<double>(marked_outstanding_)},
        {"marking_cap", static_cast<double>(config_.marking_cap)},
    };
}

std::uint32_t
ParBsScheduler::ThreadRank(ThreadId thread) const
{
    PARBS_ASSERT(thread < rank_of_.size(), "thread id out of range");
    return rank_of_[thread];
}

bool
ParBsScheduler::Better(const Candidate& a, const Candidate& b,
                       DramCycle) const
{
    const MemRequest& ra = *a.request;
    const MemRequest& rb = *b.request;

    // 1. BS — marked requests first.
    if (ra.marked != rb.marked) {
        return ra.marked;
    }

    // 1.5 PRIORITY — higher-priority threads first (Section 5).  The
    // opportunistic level sorts after every numbered level.
    auto priority_key = [this](ThreadId thread) -> std::uint64_t {
        const ThreadPriority p = priorities_[thread];
        return p == kOpportunisticPriority
                   ? std::numeric_limits<std::uint64_t>::max()
                   : p;
    };
    const std::uint64_t pa = priority_key(ra.thread);
    const std::uint64_t pb = priority_key(rb.thread);
    if (pa != pb) {
        return pa < pb;
    }

    // 2. RH — row-hit first (skipped by the FCFS-within-batch variant).
    if (config_.ranking != RankingPolicy::kNoRankFcfs &&
        a.row_hit != b.row_hit) {
        return a.row_hit;
    }

    // 3. RANK — higher-ranked threads first (skipped by no-rank variants).
    if (config_.ranking != RankingPolicy::kNoRankFcfs &&
        config_.ranking != RankingPolicy::kNoRankFrFcfs &&
        rank_of_[ra.thread] != rank_of_[rb.thread]) {
        return rank_of_[ra.thread] < rank_of_[rb.thread];
    }

    // 4. FCFS — oldest first.
    return ra.id < rb.id;
}

bool
ParBsScheduler::ThreadMarkable(ThreadId thread) const
{
    const ThreadPriority priority = priorities_[thread];
    if (priority == kOpportunisticPriority) {
        return false; // Level "L": never marked.
    }
    // A thread at priority X is marked every Xth batch.
    return batch_stats_.batches_formed % priority == 0;
}

std::uint64_t
ParBsScheduler::FormBatch(DramCycle now)
{
    // Close out the previous batch's duration accounting.
    if (batch_open_) {
        batch_stats_.duration_sum += now - batch_start_cycle_;
        batch_stats_.batches_completed += 1;
        batch_open_ = false;
        if (observer_ != nullptr) {
            observer_->OnBatchComplete(now, batch_stats_.batches_formed,
                                       now - batch_start_cycle_);
        }
    }

    std::fill(marked_in_batch_.begin(), marked_in_batch_.end(), 0);
    for (ThreadId thread = 0; thread < context_.num_threads; ++thread) {
        markable_now_[thread] = ThreadMarkable(thread) ? 1 : 0;
    }

    std::uint64_t marked = 0;
    for (MemRequest* request : context_.read_queue->requests()) {
        if (request->state != RequestState::kQueued || request->marked) {
            continue;
        }
        if (!markable_now_[request->thread]) {
            continue;
        }
        std::uint32_t& used = MarkedInBatch(request->thread,
                                            FlatBank(*request));
        if (config_.marking_cap != 0 && used >= config_.marking_cap) {
            if (observer_ != nullptr) {
                observer_->OnMarkingCapHit(now, request->thread,
                                           FlatBank(*request), request->id);
            }
            continue;
        }
        // The queue is arrival-ordered, so this marks the oldest requests.
        request->marked = true;
        used += 1;
        marked += 1;
    }

    if (marked == 0) {
        return 0; // Nothing to batch; do not consume a batch slot.
    }

    marked_outstanding_ = marked;
    batch_stats_.batches_formed += 1;
    batch_stats_.marked_total += marked;
    batch_start_cycle_ = now;
    batch_open_ = true;

    ComputeRanking();
    if (observer_ != nullptr) {
        observer_->OnBatchFormed(now, batch_stats_.batches_formed, marked);
        for (ThreadId thread = 0; thread < context_.num_threads; ++thread) {
            observer_->OnThreadRanked(now, thread, rank_of_[thread]);
        }
    }
    // Marked bits and ranks changed under the memoized picks' feet.
    InvalidateBankPicks();
    return marked;
}

void
ParBsScheduler::ComputeRanking()
{
    const std::uint32_t num_threads = context_.num_threads;
    const std::uint32_t num_banks = context_.NumBanks();

    struct Load {
        ThreadId thread;
        std::uint32_t max_bank_load = 0;
        std::uint32_t total_load = 0;
        std::uint64_t tiebreak = 0;
    };
    std::vector<Load> loads;
    loads.reserve(num_threads);
    for (ThreadId thread = 0; thread < num_threads; ++thread) {
        Load load;
        load.thread = thread;
        for (std::uint32_t bank = 0; bank < num_banks; ++bank) {
            const std::uint32_t count =
                marked_in_batch_[static_cast<std::size_t>(thread) *
                                     num_banks +
                                 bank];
            load.total_load += count;
            load.max_bank_load = std::max(load.max_bank_load, count);
        }
        load.tiebreak = rng_.Next64();
        loads.push_back(load);
    }

    // Threads with no marked requests always get the worst rank.
    auto key_less = [this](const Load& a, const Load& b) {
        const bool a_empty = a.total_load == 0;
        const bool b_empty = b.total_load == 0;
        if (a_empty != b_empty) {
            return b_empty;
        }
        switch (config_.ranking) {
          case RankingPolicy::kMaxTotal:
            if (a.max_bank_load != b.max_bank_load) {
                return a.max_bank_load < b.max_bank_load;
            }
            if (a.total_load != b.total_load) {
                return a.total_load < b.total_load;
            }
            break;
          case RankingPolicy::kTotalMax:
            if (a.total_load != b.total_load) {
                return a.total_load < b.total_load;
            }
            if (a.max_bank_load != b.max_bank_load) {
                return a.max_bank_load < b.max_bank_load;
            }
            break;
          case RankingPolicy::kRandom:
          case RankingPolicy::kRoundRobin:
          case RankingPolicy::kNoRankFrFcfs:
          case RankingPolicy::kNoRankFcfs:
            break;
        }
        return a.tiebreak < b.tiebreak;
    };

    if (config_.ranking == RankingPolicy::kRoundRobin) {
        // Rotate the rank order by one position each batch.
        const std::uint64_t shift = batch_stats_.batches_formed;
        for (ThreadId thread = 0; thread < num_threads; ++thread) {
            rank_of_[thread] = static_cast<std::uint32_t>(
                (thread + shift) % num_threads);
        }
        return;
    }

    std::sort(loads.begin(), loads.end(), key_less);
    for (std::uint32_t position = 0; position < loads.size(); ++position) {
        rank_of_[loads[position].thread] =
            loads[position].total_load == 0 ? num_threads : position;
    }
}

std::uint32_t
ParBsScheduler::FlatBank(const MemRequest& request) const
{
    return request.coords.rank * context_.banks_per_rank +
           request.coords.bank;
}

std::uint32_t&
ParBsScheduler::MarkedInBatch(ThreadId thread, std::uint32_t bank)
{
    return marked_in_batch_[static_cast<std::size_t>(thread) *
                                context_.NumBanks() +
                            bank];
}

} // namespace parbs
