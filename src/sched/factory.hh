/**
 * @file
 * Uniform construction of every scheduler the paper evaluates, so that the
 * experiment harness and examples can sweep algorithms from configuration.
 */

#ifndef PARBS_SCHED_FACTORY_HH
#define PARBS_SCHED_FACTORY_HH

#include <memory>
#include <span>
#include <string>

#include "sched/adaptive_parbs.hh"
#include "sched/bliss.hh"
#include "sched/parbs_sched.hh"
#include "sched/scheduler.hh"
#include "sched/stfm.hh"

namespace parbs {

/** The scheduling algorithms available to the simulator. */
enum class SchedulerKind : std::uint8_t {
    kFcfs,
    kFrFcfs,
    kNfq,
    kStfm,
    kParBs,
    kParBsStatic, ///< PAR-BS with time-based static batching (Fig. 12).
    kParBsEslot,  ///< PAR-BS with empty-slot batching (Fig. 12).
    kParBsAdaptive, ///< PAR-BS with a feedback-controlled Marking-Cap.
    kBliss,       ///< Blacklisting scheduler (Subramanian et al. [1504.00390]).
};

/** Short display name ("FR-FCFS", "PAR-BS", ...). */
const char* SchedulerKindName(SchedulerKind kind);

/**
 * Every scheduler kind, in declaration order — the factory registry.
 * Sweep consumers (fault fuzzing, the replay-invariance tests, CLI
 * parsers) enumerate this instead of hard-coding names, so a new policy
 * is fuzzed and parseable the moment it is added here.
 */
std::span<const SchedulerKind> AllSchedulerKinds();

/**
 * Parses a display name (as produced by SchedulerKindName, e.g. "BLISS",
 * "PAR-BS") against the registry.  @return false if @p name matches no
 * registered kind.
 */
bool ParseSchedulerKind(const std::string& name, SchedulerKind& out);

/** Complete scheduler selection + parameters. */
struct SchedulerConfig {
    SchedulerKind kind = SchedulerKind::kParBs;
    /** PAR-BS knobs (used by the three PAR-BS variants). */
    ParBsConfig parbs;
    /** STFM knobs. */
    StfmConfig stfm;
    /** Batch-Duration for kParBsStatic, DRAM cycles. */
    DramCycle static_batch_duration = 3200;
    /** Adaptive-cap controller knobs for kParBsAdaptive. */
    AdaptiveCapConfig adaptive;
    /** BLISS knobs. */
    BlissConfig bliss;
};

/** Builds a fresh scheduler instance from @p config. */
std::unique_ptr<Scheduler> MakeScheduler(const SchedulerConfig& config);

/** Display name including variant decorations (delegates to the instance). */
std::string SchedulerConfigName(const SchedulerConfig& config);

} // namespace parbs

#endif // PARBS_SCHED_FACTORY_HH
