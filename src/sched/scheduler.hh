/**
 * @file
 * The DRAM scheduling framework.
 *
 * Each DRAM cycle the controller computes the set of *ready* candidates —
 * requests whose next DRAM command passes every bank / rank / bus timing
 * check — and asks the scheduler to pick one.  A scheduler is therefore a
 * prioritizer plus lifecycle hooks; the paper's Rule 1 (batch formation),
 * Rule 2 (request prioritization) and Rule 3 (thread ranking) map directly
 * onto OnDramCycle / Better / batch-formation code in ParBsScheduler.
 *
 * Selection is two-level (DESIGN.md §5e): the controller asks the scheduler
 * for each bank's best request via PickInBank() — which walks the request
 * buffer's per-bank chain and, for comparator schedulers whose order is
 * stable between invalidations, memoizes the winner — and then for the best
 * among the ready per-bank winners via Pick().
 *
 * Thread weights (NFQ, STFM) and thread priorities (PAR-BS, Section 5) are
 * part of the common interface so the benchmark harness can configure any
 * scheduler uniformly.
 */

#ifndef PARBS_SCHED_SCHEDULER_HH
#define PARBS_SCHED_SCHEDULER_HH

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"
#include "dram/command.hh"
#include "mem/request.hh"
#include "mem/request_queue.hh"
#include "sched/observer.hh"

namespace parbs {

namespace dram {
class Bank;
class Channel;
} // namespace dram

/** Environment handed to a scheduler when it is attached to a controller. */
struct SchedulerContext {
    const RequestQueue* read_queue = nullptr;
    /** The write buffer; lets a scheduler tell which queue a per-bank pick
     *  is for (may be null in harnesses that drive Pick() directly). */
    const RequestQueue* write_queue = nullptr;
    /** Live bank state, used by PickInBank() to derive row-hit status and
     *  next commands (may be null in harnesses that drive Pick() directly;
     *  PickInBank() requires it). */
    const dram::Channel* channel = nullptr;
    std::uint32_t num_threads = 0;
    std::uint32_t num_ranks = 0;
    std::uint32_t banks_per_rank = 0;
    /** DRAM timing the scheduler may reason about (e.g. NFQ's tRAS rule). */
    const dram::TimingParams* timing = nullptr;

    std::uint32_t NumBanks() const { return num_ranks * banks_per_rank; }
};

/** A schedulable request together with its next command and row-hit status. */
struct Candidate {
    MemRequest* request = nullptr;
    dram::CommandType next_command = dram::CommandType::kActivate;
    /** True if the request's row is currently open in its bank. */
    bool row_hit = false;
    /** Cycle the bank's current row was opened (kNeverCycle if closed);
     *  NFQ's priority-inversion prevention uses this against tRAS. */
    DramCycle row_open_since = kNeverCycle;
};

/** Abstract DRAM scheduler. */
class Scheduler {
  public:
    virtual ~Scheduler() = default;

    /** Human-readable algorithm name, e.g. "PAR-BS". */
    virtual std::string name() const = 0;

    /** Binds the scheduler to a controller's queues and configuration. */
    virtual void Attach(const SchedulerContext& context);

    /**
     * Selects the request to service among @p candidates (non-empty); the
     * controller then issues that request's next command.  May return
     * nullptr to deliberately leave the cycle idle (strict-order policies
     * such as FCFS do this while the oldest request's command is not yet
     * ready).
     */
    virtual MemRequest* Pick(std::span<const Candidate> candidates,
                             DramCycle now) = 0;

    /**
     * The scheduler's best request among @p bank's queued requests in
     * @p queue, or nullptr to leave the bank idle.  The default walks the
     * queue's per-bank chain, materializes candidates into a reused scratch
     * buffer, and delegates to Pick(); ComparatorScheduler overrides it
     * with a memoized chain walk.  Requires context.channel.
     *
     * Must agree with Pick() run over the same candidates: the controller's
     * verify_indexed_selection mode cross-checks exactly that.
     */
    virtual MemRequest* PickInBank(const RequestQueue& queue,
                                   std::uint32_t bank, DramCycle now);

    /**
     * True if Pick() is a pure function of (candidates, now, scheduler
     * state) — no RNG draws or other side effects.  The controller's
     * verify_indexed_selection cross-check re-runs selection and is only
     * sound for deterministic schedulers; fault-injection wrappers that
     * draw random numbers in Pick() return false.
     */
    virtual bool DeterministicPick() const { return true; }

    // --- Lifecycle hooks -------------------------------------------------

    /** A new request entered the read or write queue. */
    virtual void OnRequestQueued(MemRequest& request, DramCycle now);

    /** A DRAM command was issued on behalf of @p request. */
    virtual void OnCommandIssued(const MemRequest& request,
                                 const dram::Command& command, DramCycle now);

    /** @p request finished its data burst and leaves the buffer. */
    virtual void OnRequestComplete(const MemRequest& request, DramCycle now);

    /** Called once per DRAM cycle before candidates are gathered. */
    virtual void OnDramCycle(DramCycle now);

    // --- System-software knobs (Section 5) -------------------------------

    /**
     * Sets a thread's priority level (1 = highest; kOpportunisticPriority =
     * the paper's level "L").  Meaningful for PAR-BS; other schedulers may
     * approximate priorities through weights.
     */
    void SetThreadPriority(ThreadId thread, ThreadPriority priority);

    /** Sets a thread's bandwidth weight (NFQ shares / STFM weights). */
    void SetThreadWeight(ThreadId thread, double weight);

    /**
     * Attaches the policy-event observer (null to detach).  The base class
     * reports knob changes; schedulers with batch semantics additionally
     * report batch / rank / marking events through the same observer.
     */
    void SetObserver(SchedulerObserver* observer) { observer_ = observer; }
    SchedulerObserver* observer() const { return observer_; }

    ThreadPriority thread_priority(ThreadId thread) const;
    double thread_weight(ThreadId thread) const;

    /**
     * Named diagnostic statistics (algorithm-specific): batch counts,
     * slowdown estimates, adaptive state...  Intended for logging and
     * debugging; keys are stable within a scheduler class.
     */
    virtual std::vector<std::pair<std::string, double>> Stats() const;

    /**
     * Requests outstanding in the scheduler's current service unit (PAR-BS:
     * the open batch's marked requests); 0 for schedulers without batching
     * semantics.  The forward-progress watchdog derives the batch-completion
     * bound (the paper's starvation-freedom guarantee) from this.
     */
    virtual std::uint64_t BatchOutstanding() const { return 0; }

    /**
     * Pick-memo accounting for the engine flight recorder (DESIGN.md §5h).
     * Deterministic: counts follow the selection sequence, which is
     * bit-identical across every parallelism setting.  All-zero for
     * schedulers without a memo (including comparator schedulers that opt
     * out via PickMemoStable, e.g. NFQ).
     */
    struct PickMemoCounters {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t invalidations = 0;
    };
    virtual PickMemoCounters MemoCounters() const { return {}; }

  protected:
    /**
     * Notification that a thread priority or weight changed; comparator
     * schedulers use it to invalidate memoized per-bank picks whose order
     * may depend on the knobs.
     */
    virtual void OnSchedulingKnobChanged() {}

    /** Live state of controller-local flat @p bank (requires channel). */
    const dram::Bank& BankState(std::uint32_t flat_bank) const;

    /** Builds the Candidate record for @p request from live bank state. */
    Candidate MakeCandidate(MemRequest& request,
                            const dram::Bank& bank) const;

    SchedulerContext context_;
    std::vector<ThreadPriority> priorities_;
    std::vector<double> weights_;
    /** Policy-event sink; null when observability is off. */
    SchedulerObserver* observer_ = nullptr;

  private:
    /** Reused candidate scratch for the default PickInBank(). */
    std::vector<Candidate> bank_scratch_;
};

/**
 * Convenience base for schedulers expressible as a strict-weak-order over
 * candidates.  Implements Pick() as "best under Better(), with DRAM reads
 * preferred over DRAM writes" — every scheduler in the paper prioritizes
 * reads over writes because reads block the cores (Section 7.2).
 *
 * PickInBank() memoizes the per-bank winner for schedulers that declare
 * their order stable (PickMemoStable()): the cached pick is reused while
 * the bank's chain generation, the bank's row generation, and the
 * scheduler's pick epoch are all unchanged, making steady-state selection
 * O(1) per bank instead of O(queued-in-bank).
 */
class ComparatorScheduler : public Scheduler {
  public:
    void Attach(const SchedulerContext& context) override;

    MemRequest* Pick(std::span<const Candidate> candidates,
                     DramCycle now) final;

    MemRequest* PickInBank(const RequestQueue& queue, std::uint32_t bank,
                           DramCycle now) override;

    PickMemoCounters MemoCounters() const override
    {
        return memo_counters_;
    }

  protected:
    /**
     * @return true if @p a should be serviced in preference to @p b.
     * Both candidates are of the same kind (both reads or both writes).
     */
    virtual bool Better(const Candidate& a, const Candidate& b,
                        DramCycle now) const = 0;

    /**
     * Opt-in for the per-bank pick memo.  A subclass may return true only
     * if Better() is a pure function of the candidates and of scheduler
     * state whose every change is announced via InvalidateBankPicks() —
     * in particular it must not read `now` or any per-cycle mutable state.
     * Defaults to false (always re-walk the chain), which is always
     * correct.
     */
    virtual bool PickMemoStable() const { return false; }

    /**
     * Declares every memoized per-bank pick stale.  Subclasses call this
     * whenever comparator-visible state changes outside the request buffer
     * (batch formation, re-marking, ranking or fairness-mode updates).
     */
    void InvalidateBankPicks()
    {
        pick_epoch_ += 1;
        memo_counters_.invalidations += 1;
    }

    void OnSchedulingKnobChanged() override { InvalidateBankPicks(); }

  private:
    /** Winner cache for one (queue, bank); validity is generation-keyed. */
    struct PickMemo {
        MemRequest* winner = nullptr;
        /** Matching RequestQueue::BankGeneration (0 = never valid). */
        std::uint64_t queue_gen = 0;
        /** Matching dram::Bank::row_generation (0 = never valid). */
        std::uint64_t row_gen = 0;
        /** Matching pick_epoch_ (0 = never valid). */
        std::uint64_t epoch = 0;
    };

    /** Best queued request of @p bank by Better(), via the bank chain. */
    MemRequest* PickFromChain(const RequestQueue& queue, std::uint32_t bank,
                              const dram::Bank& state, DramCycle now) const;

    /** [queue_index * NumBanks + bank]; queue 0 = reads, 1 = writes. */
    std::vector<PickMemo> pick_memo_;
    std::uint64_t pick_epoch_ = 1;
    PickMemoCounters memo_counters_;
};

} // namespace parbs

#endif // PARBS_SCHED_SCHEDULER_HH
