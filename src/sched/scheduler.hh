/**
 * @file
 * The DRAM scheduling framework.
 *
 * Each DRAM cycle the controller computes the set of *ready* candidates —
 * requests whose next DRAM command passes every bank / rank / bus timing
 * check — and asks the scheduler to pick one.  A scheduler is therefore a
 * prioritizer plus lifecycle hooks; the paper's Rule 1 (batch formation),
 * Rule 2 (request prioritization) and Rule 3 (thread ranking) map directly
 * onto OnDramCycle / Better / batch-formation code in ParBsScheduler.
 *
 * Thread weights (NFQ, STFM) and thread priorities (PAR-BS, Section 5) are
 * part of the common interface so the benchmark harness can configure any
 * scheduler uniformly.
 */

#ifndef PARBS_SCHED_SCHEDULER_HH
#define PARBS_SCHED_SCHEDULER_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"
#include "dram/command.hh"
#include "mem/request.hh"
#include "mem/request_queue.hh"

namespace parbs {

/** Environment handed to a scheduler when it is attached to a controller. */
struct SchedulerContext {
    const RequestQueue* read_queue = nullptr;
    std::uint32_t num_threads = 0;
    std::uint32_t num_ranks = 0;
    std::uint32_t banks_per_rank = 0;
    /** DRAM timing the scheduler may reason about (e.g. NFQ's tRAS rule). */
    const dram::TimingParams* timing = nullptr;

    std::uint32_t NumBanks() const { return num_ranks * banks_per_rank; }
};

/** A schedulable request together with its next command and row-hit status. */
struct Candidate {
    MemRequest* request = nullptr;
    dram::CommandType next_command = dram::CommandType::kActivate;
    /** True if the request's row is currently open in its bank. */
    bool row_hit = false;
    /** Cycle the bank's current row was opened (kNeverCycle if closed);
     *  NFQ's priority-inversion prevention uses this against tRAS. */
    DramCycle row_open_since = kNeverCycle;
};

/** Abstract DRAM scheduler. */
class Scheduler {
  public:
    virtual ~Scheduler() = default;

    /** Human-readable algorithm name, e.g. "PAR-BS". */
    virtual std::string name() const = 0;

    /** Binds the scheduler to a controller's queues and configuration. */
    virtual void Attach(const SchedulerContext& context);

    /**
     * Selects the request to service among @p candidates (non-empty); the
     * controller then issues that request's next command.  May return
     * nullptr to deliberately leave the cycle idle (strict-order policies
     * such as FCFS do this while the oldest request's command is not yet
     * ready).
     */
    virtual MemRequest* Pick(const std::vector<Candidate>& candidates,
                             DramCycle now) = 0;

    // --- Lifecycle hooks -------------------------------------------------

    /** A new request entered the read or write queue. */
    virtual void OnRequestQueued(MemRequest& request, DramCycle now);

    /** A DRAM command was issued on behalf of @p request. */
    virtual void OnCommandIssued(const MemRequest& request,
                                 const dram::Command& command, DramCycle now);

    /** @p request finished its data burst and leaves the buffer. */
    virtual void OnRequestComplete(const MemRequest& request, DramCycle now);

    /** Called once per DRAM cycle before candidates are gathered. */
    virtual void OnDramCycle(DramCycle now);

    // --- System-software knobs (Section 5) -------------------------------

    /**
     * Sets a thread's priority level (1 = highest; kOpportunisticPriority =
     * the paper's level "L").  Meaningful for PAR-BS; other schedulers may
     * approximate priorities through weights.
     */
    void SetThreadPriority(ThreadId thread, ThreadPriority priority);

    /** Sets a thread's bandwidth weight (NFQ shares / STFM weights). */
    void SetThreadWeight(ThreadId thread, double weight);

    ThreadPriority thread_priority(ThreadId thread) const;
    double thread_weight(ThreadId thread) const;

    /**
     * Named diagnostic statistics (algorithm-specific): batch counts,
     * slowdown estimates, adaptive state...  Intended for logging and
     * debugging; keys are stable within a scheduler class.
     */
    virtual std::vector<std::pair<std::string, double>> Stats() const;

    /**
     * Requests outstanding in the scheduler's current service unit (PAR-BS:
     * the open batch's marked requests); 0 for schedulers without batching
     * semantics.  The forward-progress watchdog derives the batch-completion
     * bound (the paper's starvation-freedom guarantee) from this.
     */
    virtual std::uint64_t BatchOutstanding() const { return 0; }

  protected:
    SchedulerContext context_;
    std::vector<ThreadPriority> priorities_;
    std::vector<double> weights_;
};

/**
 * Convenience base for schedulers expressible as a strict-weak-order over
 * candidates.  Implements Pick() as "best under Better(), with DRAM reads
 * preferred over DRAM writes" — every scheduler in the paper prioritizes
 * reads over writes because reads block the cores (Section 7.2).
 */
class ComparatorScheduler : public Scheduler {
  public:
    MemRequest* Pick(const std::vector<Candidate>& candidates,
                     DramCycle now) final;

  protected:
    /**
     * @return true if @p a should be serviced in preference to @p b.
     * Both candidates are of the same kind (both reads or both writes).
     */
    virtual bool Better(const Candidate& a, const Candidate& b,
                        DramCycle now) const = 0;
};

} // namespace parbs

#endif // PARBS_SCHED_SCHEDULER_HH
