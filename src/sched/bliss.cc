#include "sched/bliss.hh"

#include <algorithm>

#include "common/assert.hh"

namespace parbs {

BlissScheduler::BlissScheduler(const BlissConfig& config) : config_(config)
{
    if (config_.blacklist_threshold == 0) {
        PARBS_FATAL("BLISS blacklist threshold must be nonzero");
    }
    if (config_.clearing_interval == 0) {
        PARBS_FATAL("BLISS clearing interval must be nonzero");
    }
}

std::string
BlissScheduler::name() const
{
    if (config_.blacklist_threshold == 4 &&
        config_.clearing_interval == 10000) {
        return "BLISS";
    }
    std::string out = "BLISS(n=";
    out += std::to_string(config_.blacklist_threshold);
    out += ",clear=";
    out += std::to_string(config_.clearing_interval);
    out += ")";
    return out;
}

void
BlissScheduler::Attach(const SchedulerContext& context)
{
    ComparatorScheduler::Attach(context);
    blacklisted_.assign(context.num_threads, 0);
    last_served_ = kInvalidThread;
    streak_ = 0;
}

void
BlissScheduler::OnDramCycle(DramCycle now)
{
    // Interval clearing: blacklisting is a rolling penalty.  Keyed on the
    // channel's own cycle counter, so clears land on the same cycle under
    // any --jobs / --channel-jobs value (the sharded determinism contract).
    if (now == 0 || now % config_.clearing_interval != 0) {
        return;
    }
    clearings_ += 1;
    bool any = false;
    for (std::size_t thread = 0; thread < blacklisted_.size(); ++thread) {
        if (blacklisted_[thread]) {
            any = true;
            blacklisted_[thread] = 0;
            if (observer_ != nullptr) {
                observer_->OnThreadBlacklisted(
                    now, static_cast<ThreadId>(thread), false);
            }
        }
    }
    // Comparator-visible state changed: every memoized per-bank winner
    // chosen while a bit was set may now be wrong.
    if (any) {
        InvalidateBankPicks();
    }
}

void
BlissScheduler::OnCommandIssued(const MemRequest& request,
                                const dram::Command& command, DramCycle now)
{
    // Only data commands count as "served": an ACTIVATE/PRECHARGE pair on
    // behalf of a row miss still serves one request, and counting it twice
    // would halve the effective threshold for row-miss traffic.
    if (command.type != dram::CommandType::kRead &&
        command.type != dram::CommandType::kWrite) {
        return;
    }
    if (request.thread == last_served_) {
        streak_ += 1;
    } else {
        last_served_ = request.thread;
        streak_ = 1;
    }
    if (streak_ < config_.blacklist_threshold) {
        return;
    }
    // The streak restarts after a blacklisting so a monopolizing thread is
    // re-penalized every threshold commands after an interval clear.
    streak_ = 0;
    PARBS_ASSERT(request.thread < blacklisted_.size(),
                 "thread id out of range");
    if (!blacklisted_[request.thread]) {
        blacklisted_[request.thread] = 1;
        blacklist_events_ += 1;
        if (observer_ != nullptr) {
            observer_->OnThreadBlacklisted(now, request.thread, true);
        }
        InvalidateBankPicks();
    }
}

bool
BlissScheduler::Blacklisted(ThreadId thread) const
{
    PARBS_ASSERT(thread < blacklisted_.size(), "thread id out of range");
    return blacklisted_[thread] != 0;
}

std::uint32_t
BlissScheduler::BlacklistedCount() const
{
    return static_cast<std::uint32_t>(
        std::count(blacklisted_.begin(), blacklisted_.end(), char{1}));
}

std::vector<std::pair<std::string, double>>
BlissScheduler::Stats() const
{
    return {
        {"blacklist_events", static_cast<double>(blacklist_events_)},
        {"blacklist_clearings", static_cast<double>(clearings_)},
        {"blacklisted_now", static_cast<double>(BlacklistedCount())},
        {"blacklist_threshold",
         static_cast<double>(config_.blacklist_threshold)},
    };
}

bool
BlissScheduler::Better(const Candidate& a, const Candidate& b,
                       DramCycle) const
{
    // Two priority levels (the whole point: no full ranking), then FR-FCFS.
    const bool a_black = blacklisted_[a.request->thread] != 0;
    const bool b_black = blacklisted_[b.request->thread] != 0;
    if (a_black != b_black) {
        return !a_black;
    }
    if (a.row_hit != b.row_hit) {
        return a.row_hit;
    }
    return a.request->id < b.request->id;
}

} // namespace parbs
