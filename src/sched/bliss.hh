/**
 * @file
 * BLISS: the Blacklisting Memory Scheduler (Subramanian, Lee, Seshadri,
 * Rastogi & Mutlu, arXiv 1504.00390) — the low-cost foil to PAR-BS's full
 * thread ranking.
 *
 * BLISS observes that most interference comes from a small set of
 * streaming applications that monopolize the row buffer, and that keeping
 * a single *blacklist bit* per thread is enough to break their streaks:
 *
 *  1. Blacklisting.  The controller remembers the thread that was served
 *     by the last data command and a counter of how many consecutive data
 *     commands went to it.  When the streak reaches BlacklistThreshold
 *     (paper value 4) the thread's blacklist bit is set and the streak
 *     restarts — intensive streamers tag themselves, light threads never
 *     reach the threshold.
 *
 *  2. Clearing.  All blacklist bits are cleared every ClearingInterval
 *     DRAM cycles (paper value 10000), so blacklisting is a rolling
 *     penalty, not a permanent demotion; combined with 1. this bounds how
 *     long any thread can be deprioritized (starvation freedom).
 *
 *  3. Arbitration.  Two priority levels over FR-FCFS order:
 *     non-blacklisted > blacklisted, then row-hit first, then oldest
 *     first.
 *
 * Hardware cost is one bit per thread plus three small registers — see
 * SchedulerHardwareCost() in core/hardware_cost.hh, which scores it
 * against PAR-BS's Table 1 state.
 *
 * Memoization (DESIGN.md §5e / §7): Better() reads only the blacklist
 * bits beyond the candidates, and every bit transition — a blacklisting
 * in OnCommandIssued() or an interval clear in OnDramCycle() — calls
 * InvalidateBankPicks(), so the per-bank pick memo stays sound and
 * selection stays O(banks).
 */

#ifndef PARBS_SCHED_BLISS_HH
#define PARBS_SCHED_BLISS_HH

#include <cstdint>
#include <vector>

#include "sched/scheduler.hh"

namespace parbs {

/** BLISS configuration (paper defaults). */
struct BlissConfig {
    /** Consecutive data commands from one thread that trigger its bit. */
    std::uint32_t blacklist_threshold = 4;
    /** Period at which all blacklist bits are cleared, DRAM cycles. */
    std::uint64_t clearing_interval = 10000;
};

/** The Blacklisting memory scheduler. */
class BlissScheduler : public ComparatorScheduler {
  public:
    explicit BlissScheduler(const BlissConfig& config = {});

    std::string name() const override;

    void Attach(const SchedulerContext& context) override;
    void OnDramCycle(DramCycle now) override;
    void OnCommandIssued(const MemRequest& request,
                         const dram::Command& command,
                         DramCycle now) override;

    // --- Introspection (tests / stats) -----------------------------------

    /** True if @p thread is currently blacklisted. */
    bool Blacklisted(ThreadId thread) const;

    /** Threads currently blacklisted. */
    std::uint32_t BlacklistedCount() const;

    const BlissConfig& config() const { return config_; }

    /** Blacklisting events, interval clears, and the live bit count. */
    std::vector<std::pair<std::string, double>> Stats() const override;

  protected:
    bool Better(const Candidate& a, const Candidate& b,
                DramCycle now) const override;

    /**
     * Better() reads only blacklisted_ beyond the candidates; every bit
     * set (OnCommandIssued) and every interval clear (OnDramCycle) calls
     * InvalidateBankPicks(), so memoized per-bank picks stay sound.
     */
    bool PickMemoStable() const override { return true; }

  private:
    BlissConfig config_;

    /** One blacklist bit per thread (char for vector<bool>-free speed). */
    std::vector<char> blacklisted_;
    /** Thread served by the most recent data command. */
    ThreadId last_served_ = kInvalidThread;
    /** Consecutive data commands served to last_served_. */
    std::uint32_t streak_ = 0;

    std::uint64_t blacklist_events_ = 0;
    std::uint64_t clearings_ = 0;
};

} // namespace parbs

#endif // PARBS_SCHED_BLISS_HH
