/**
 * @file
 * STFM: Stall-Time Fair Memory scheduling (Mutlu & Moscibroda, MICRO-40
 * [25]) — the strongest previously proposed scheduler the paper compares
 * against.
 *
 * STFM continuously estimates, per thread, the memory stall time the thread
 * experiences in the shared system (T_shared) and the stall time it would
 * have experienced running alone (T_alone = T_shared - T_interference,
 * where T_interference accumulates whenever another thread's request
 * occupies a bank this thread is waiting on, amortized by the waiting
 * thread's current bank-level parallelism).  The estimated slowdown is
 * S = T_shared / T_alone.  When the estimated unfairness max S / min S
 * exceeds alpha, the scheduler switches from FR-FCFS to a fairness mode
 * that prioritizes the most-slowed-down thread; otherwise it behaves as
 * FR-FCFS.  Estimates are periodically aged (IntervalLength).
 *
 * The PAR-BS paper's parameters are used by default: alpha = 1.10,
 * IntervalLength = 2^24.  Thread weights scale the effective slowdowns so
 * that heavier threads converge to proportionally smaller slowdowns.
 *
 * Faithfulness notes (documented in DESIGN.md): T_shared is approximated at
 * the controller as "cycles with at least one outstanding read", and bus
 * interference is folded into the nominal per-access interference cost.
 * These are exactly the kinds of estimation errors the PAR-BS paper points
 * to when explaining STFM's behaviour on high-BLP threads such as mcf.
 */

#ifndef PARBS_SCHED_STFM_HH
#define PARBS_SCHED_STFM_HH

#include <cstdint>
#include <vector>

#include "sched/scheduler.hh"

namespace parbs {

/** STFM configuration (paper defaults). */
struct StfmConfig {
    /** Unfairness threshold that triggers the fairness mode. */
    double alpha = 1.10;
    /** Aging period for the slowdown estimates, DRAM cycles. */
    std::uint64_t interval_length = std::uint64_t{1} << 24;
};

/** Stall-Time Fair Memory scheduler. */
class StfmScheduler : public ComparatorScheduler {
  public:
    explicit StfmScheduler(const StfmConfig& config = {});

    std::string name() const override { return "STFM"; }

    void Attach(const SchedulerContext& context) override;
    void OnDramCycle(DramCycle now) override;
    void OnCommandIssued(const MemRequest& request,
                         const dram::Command& command,
                         DramCycle now) override;

    /** Estimated slowdown of @p thread (>= 1); test/diagnostic hook. */
    double EstimatedSlowdown(ThreadId thread) const;

    /** Estimated unfairness across threads with outstanding requests. */
    double EstimatedUnfairness() const;

    /** True if the last Pick ran in fairness mode; test hook. */
    bool fairness_mode() const { return fairness_mode_; }

    /** Estimated unfairness, fairness-mode duty cycle, and per-thread
     *  slowdown estimates. */
    std::vector<std::pair<std::string, double>> Stats() const override;

  protected:
    bool Better(const Candidate& a, const Candidate& b,
                DramCycle now) const override;

    /** Better() reads only the (fairness mode, slowest thread) pair beyond
     *  the candidates; UpdateMode() invalidates memoized picks whenever
     *  that pair changes, so memoization is sound. */
    bool PickMemoStable() const override { return true; }

  private:
    StfmConfig config_;

    std::vector<double> t_shared_;
    std::vector<double> t_interference_;

    bool fairness_mode_ = false;
    ThreadId slowest_thread_ = kInvalidThread;

    std::uint64_t cycles_observed_ = 0;
    std::uint64_t cycles_in_fairness_mode_ = 0;

    /** Effective (weight-scaled) slowdown used for the fairness decision. */
    double EffectiveSlowdown(ThreadId thread) const;
    void UpdateMode();
};

} // namespace parbs

#endif // PARBS_SCHED_STFM_HH
