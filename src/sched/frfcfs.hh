/**
 * @file
 * FR-FCFS: first-ready first-come-first-serve DRAM scheduling
 * (Rixner et al. [33], Zuravleff & Robinson [44]).
 *
 * Among ready commands: (1) row-hit requests over others, (2) older over
 * younger.  This is the throughput-oriented baseline in every modern
 * controller and the paper's reference point for unfairness: threads with
 * high row-buffer locality and high memory intensity capture banks.
 */

#ifndef PARBS_SCHED_FRFCFS_HH
#define PARBS_SCHED_FRFCFS_HH

#include "sched/scheduler.hh"

namespace parbs {

/** First-ready FCFS scheduler (row-hit-first, then oldest-first). */
class FrFcfsScheduler : public ComparatorScheduler {
  public:
    std::string name() const override { return "FR-FCFS"; }

  protected:
    bool Better(const Candidate& a, const Candidate& b,
                DramCycle now) const override;

    /** Order depends only on row-hit status (bank row generation) and
     *  arrival id (chain generation), so per-bank picks are memoizable. */
    bool PickMemoStable() const override { return true; }
};

} // namespace parbs

#endif // PARBS_SCHED_FRFCFS_HH
