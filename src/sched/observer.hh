/**
 * @file
 * Scheduler-side observability hook.
 *
 * Schedulers announce policy-level transitions — batch lifecycle, thread
 * re-ranking, marking-cap exhaustion, knob changes — through this interface
 * instead of talking to the observability layer directly.  That keeps
 * `sched/` free of any `obs/` dependency, and it means every scheduler
 * (FCFS, FR-FCFS, NFQ, STFM, PAR-BS) emits knob events from the shared base
 * class with no per-scheduler forks; schedulers with richer lifecycles
 * (PAR-BS batching) emit the additional callbacks themselves.
 *
 * All methods are no-op defaults, and the observer pointer is null when
 * observability is off — emission sites are a null check plus a virtual
 * call that only happens on traced runs.
 */

#ifndef PARBS_SCHED_OBSERVER_HH
#define PARBS_SCHED_OBSERVER_HH

#include <cstdint>

#include "common/types.hh"

namespace parbs {

/** Receives scheduler policy events (implemented by obs/, tests). */
class SchedulerObserver {
  public:
    virtual ~SchedulerObserver() = default;

    /** A new batch was formed with @p marked marked requests. */
    virtual void OnBatchFormed(DramCycle /*now*/, std::uint64_t /*batch_id*/,
                               std::uint64_t /*marked*/)
    {
    }

    /** The previous batch fully drained after @p duration cycles. */
    virtual void OnBatchComplete(DramCycle /*now*/, std::uint64_t /*batch_id*/,
                                 DramCycle /*duration*/)
    {
    }

    /** @p thread received rank @p rank (0 = highest) at batch formation. */
    virtual void OnThreadRanked(DramCycle /*now*/, ThreadId /*thread*/,
                                std::uint32_t /*rank*/)
    {
    }

    /** Marking skipped @p request_id: (thread, bank) hit the marking cap. */
    virtual void OnMarkingCapHit(DramCycle /*now*/, ThreadId /*thread*/,
                                 std::uint32_t /*bank*/,
                                 RequestId /*request_id*/)
    {
    }

    /** @p thread's BLISS blacklist bit was set (true) or cleared (false). */
    virtual void OnThreadBlacklisted(DramCycle /*now*/, ThreadId /*thread*/,
                                     bool /*blacklisted*/)
    {
    }

    /** System software changed a thread's priority level. */
    virtual void OnPriorityChanged(ThreadId /*thread*/,
                                   ThreadPriority /*priority*/)
    {
    }

    /** System software changed a thread's bandwidth weight. */
    virtual void OnWeightChanged(ThreadId /*thread*/, double /*weight*/) {}
};

} // namespace parbs

#endif // PARBS_SCHED_OBSERVER_HH
