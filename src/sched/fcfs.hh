/**
 * @file
 * FCFS: first-come-first-serve DRAM scheduling.
 *
 * Requests are serviced strictly in per-bank arrival order, regardless of
 * row-buffer state: under the controller's request-level (two-level)
 * selection, the oldest request of each bank owns that bank until it
 * completes, so a younger request may not overtake it even while its next
 * command is timing-blocked.  Banks remain independent, so FCFS still
 * benefits from bank-level parallelism across banks.
 *
 * FCFS is the fairness-leaning but low-throughput baseline of the paper
 * (Section 3): it never exploits row-buffer locality, yet it still unfairly
 * favors memory-intensive threads, whose requests tend to be the oldest in
 * the buffer.
 */

#ifndef PARBS_SCHED_FCFS_HH
#define PARBS_SCHED_FCFS_HH

#include "sched/scheduler.hh"

namespace parbs {

/** First-come-first-serve scheduler (oldest request first). */
class FcfsScheduler : public ComparatorScheduler {
  public:
    std::string name() const override { return "FCFS"; }

  protected:
    bool Better(const Candidate& a, const Candidate& b,
                DramCycle now) const override;

    /** Order is pure arrival order, so per-bank picks are memoizable. */
    bool PickMemoStable() const override { return true; }
};

} // namespace parbs

#endif // PARBS_SCHED_FCFS_HH
