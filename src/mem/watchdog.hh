/**
 * @file
 * Forward-progress watchdog for the memory controller.
 *
 * PAR-BS's central guarantee (Section 4.1 of the paper) is starvation
 * freedom: batching bounds how long any request can be delayed.  The
 * simulator previously had no mechanism that would notice if that guarantee
 * — or forward progress in general — were silently broken by a scheduler or
 * model bug.  The watchdog runs three independent checks:
 *
 *  1. Request starvation: no buffered request may exceed a configurable
 *     age bound.
 *  2. Batch completion: when the attached scheduler exposes a batch
 *     (Scheduler::BatchOutstanding), the batch must drain within a bound
 *     derived from the number of marked requests and the worst-case
 *     per-request service time — a direct runtime check of the paper's
 *     starvation-freedom theorem at the Marking-Cap-derived bound.
 *  3. Global progress: while work is pending, the controller must issue
 *     *some* DRAM command within a bounded window (deadlock detection).
 *
 * A tripped check fails the run with a WatchdogError carrying a structured
 * diagnostic dump: queue contents, bank states, and scheduler state.
 */

#ifndef PARBS_MEM_WATCHDOG_HH
#define PARBS_MEM_WATCHDOG_HH

#include <cstdint>
#include <stdexcept>
#include <string>

#include "common/types.hh"
#include "dram/channel.hh"
#include "mem/request_queue.hh"

namespace parbs {

class RasEngine;
class Scheduler;

namespace obs {
class Tracer;
} // namespace obs

/** Watchdog knobs (all bounds in DRAM cycles; 0 derives a default). */
struct WatchdogConfig {
    bool enabled = false;
    /**
     * Maximum age of any buffered request.  0 derives
     * 4 x read-queue-capacity x (tRC + tBURST): generous enough for every
     * starvation-free scheduler, yet finite.
     */
    DramCycle starvation_bound = 0;
    /** Safety factor applied to the per-batch completion bound. */
    double batch_bound_factor = 4.0;
    /**
     * Longest tolerated window with pending work but no issued command.
     * 0 derives max(512, 4 x (tRFC + tRC)).
     */
    DramCycle no_progress_bound = 0;
    /** Cycles between watchdog sweeps (checks are O(queue occupancy)). */
    DramCycle check_interval = 64;

    /** @throws ConfigError on nonsensical values. */
    void Validate() const;
};

/** Thrown when a forward-progress check fails; what() holds the dump. */
class WatchdogError : public std::runtime_error {
  public:
    explicit WatchdogError(const std::string& what)
        : std::runtime_error(what)
    {
    }
};

/** Per-controller forward-progress checker. */
class ForwardProgressWatchdog {
  public:
    ForwardProgressWatchdog(const WatchdogConfig& config,
                            const dram::TimingParams& timing,
                            std::size_t read_queue_capacity);

    /**
     * Runs the checks (rate-limited to the configured interval).
     * @param last_command_cycle cycle the controller last issued any
     *        command (kNeverCycle if none yet)
     * @param tracer optional event tracer; when present, the failure dump
     *        appends the recent event history of the offending (thread,
     *        bank) so stall reports show the decision history.
     * @param ras optional RAS engine; when present, the dump includes the
     *        error/retry/scrub counters, remap-table occupancy, and any
     *        active per-bank retry backoff holds (a held bank can look
     *        stalled to a naive reader of the queue dump).
     * @throws WatchdogError with a diagnostic dump if a check trips.
     */
    void Check(DramCycle now, const RequestQueue& reads,
               const RequestQueue& writes, const Scheduler& scheduler,
               const dram::Channel& channel, DramCycle last_command_cycle,
               const obs::Tracer* tracer = nullptr,
               const RasEngine* ras = nullptr);

    DramCycle starvation_bound() const { return starvation_bound_; }
    DramCycle no_progress_bound() const { return no_progress_bound_; }

  private:
    /**
     * @p thread / @p flat_bank identify the offender for the tracer tail
     * filter (sentinels kInvalidThread / no-bank match every event).
     */
    [[noreturn]] void Fail(const std::string& reason, DramCycle now,
                           const RequestQueue& reads,
                           const RequestQueue& writes,
                           const Scheduler& scheduler,
                           const dram::Channel& channel,
                           const obs::Tracer* tracer, const RasEngine* ras,
                           ThreadId thread, std::uint32_t flat_bank);

    WatchdogConfig config_;
    DramCycle starvation_bound_;
    DramCycle no_progress_bound_;
    /** Worst-case single-request service time (conflict + burst). */
    DramCycle service_worst_;

    DramCycle next_check_ = 0;
    /** Batch tracking: deadline for the currently open batch. */
    DramCycle batch_deadline_ = kNeverCycle;
    std::uint64_t batch_size_ = 0;
    std::uint64_t prev_outstanding_ = 0;
};

/** Effective no-progress bound: the configured value or the derived
 *  default (shared with the System-level global progress detector). */
DramCycle ResolveNoProgressBound(const WatchdogConfig& config,
                                 const dram::TimingParams& timing);

/**
 * Formats one controller's full state (queues, bank states, scheduler
 * diagnostics) — shared by the watchdog failure path and any caller that
 * wants a structured dump.
 */
std::string FormatControllerDiagnostics(DramCycle now,
                                        const RequestQueue& reads,
                                        const RequestQueue& writes,
                                        const Scheduler& scheduler,
                                        const dram::Channel& channel,
                                        const RasEngine* ras = nullptr);

} // namespace parbs

#endif // PARBS_MEM_WATCHDOG_HH
