#include "mem/watchdog.hh"

#include <algorithm>
#include <sstream>

#include "common/assert.hh"
#include "mem/ras.hh"
#include "obs/tracer.hh"
#include "sched/scheduler.hh"

namespace parbs {
namespace {

constexpr std::size_t kMaxDumpedRequests = 32;

void
DumpQueue(std::ostream& out, const char* label, const RequestQueue& queue,
          DramCycle now)
{
    out << "  " << label << " queue (" << queue.size() << "/"
        << queue.capacity() << "):\n";
    std::size_t dumped = 0;
    for (const MemRequest* request : queue.requests()) {
        if (dumped++ == kMaxDumpedRequests) {
            out << "    ... " << (queue.size() - kMaxDumpedRequests)
                << " more\n";
            break;
        }
        out << "    id=" << request->id << " thread=" << request->thread
            << " rank=" << request->coords.rank
            << " bank=" << request->coords.bank
            << " row=" << request->coords.row << " state="
            << (request->state == RequestState::kQueued
                    ? "queued"
                    : request->state == RequestState::kInBurst ? "in-burst"
                                                               : "completed")
            << (request->marked ? " marked" : "")
            << " age=" << (now - request->arrival_dram) << "\n";
    }
}

} // namespace

void
WatchdogConfig::Validate() const
{
    if (!enabled) {
        return;
    }
    if (check_interval == 0) {
        PARBS_FATAL("watchdog: check_interval must be nonzero");
    }
    if (batch_bound_factor <= 0.0) {
        PARBS_FATAL("watchdog: batch_bound_factor must be positive");
    }
}

ForwardProgressWatchdog::ForwardProgressWatchdog(
    const WatchdogConfig& config, const dram::TimingParams& timing,
    std::size_t read_queue_capacity)
    : config_(config),
      service_worst_(timing.tRC() + timing.tBURST)
{
    config_.Validate();
    starvation_bound_ =
        config_.starvation_bound != 0
            ? config_.starvation_bound
            : 4 * static_cast<DramCycle>(std::max<std::size_t>(
                      read_queue_capacity, 1)) *
                  service_worst_;
    no_progress_bound_ = ResolveNoProgressBound(config_, timing);
}

DramCycle
ResolveNoProgressBound(const WatchdogConfig& config,
                       const dram::TimingParams& timing)
{
    return config.no_progress_bound != 0
               ? config.no_progress_bound
               : std::max<DramCycle>(512, 4 * (timing.tRFC + timing.tRC()));
}

void
ForwardProgressWatchdog::Check(DramCycle now, const RequestQueue& reads,
                               const RequestQueue& writes,
                               const Scheduler& scheduler,
                               const dram::Channel& channel,
                               DramCycle last_command_cycle,
                               const obs::Tracer* tracer,
                               const RasEngine* ras)
{
    // Batch accounting must observe every transition, so it runs before the
    // rate limiter; it is O(1).
    const std::uint64_t outstanding = scheduler.BatchOutstanding();
    if (outstanding == 0) {
        batch_deadline_ = kNeverCycle;
    } else if (outstanding > prev_outstanding_ ||
               batch_deadline_ == kNeverCycle) {
        // A growing marked set means a new batch formed (PAR-BS only marks
        // when no marked requests remain).
        batch_size_ = outstanding;
        const double span =
            config_.batch_bound_factor *
            static_cast<double>(outstanding * service_worst_ +
                                2 * channel.timing().tRFC + 100);
        batch_deadline_ = now + static_cast<DramCycle>(span);
    }
    prev_outstanding_ = outstanding;

    if (now < next_check_) {
        return;
    }
    next_check_ = now + config_.check_interval;

    if (batch_deadline_ != kNeverCycle && now > batch_deadline_) {
        std::ostringstream reason;
        reason << "batch overdue: " << outstanding << " of " << batch_size_
               << " marked requests still outstanding past the "
                  "Marking-Cap-derived completion bound (deadline cycle "
               << batch_deadline_
               << ") — PAR-BS starvation-freedom violated";
        Fail(reason.str(), now, reads, writes, scheduler, channel, tracer,
             ras, kInvalidThread, obs::kNoFlatBank);
    }

    // The buffers are arrival-ordered, so the front request has the
    // maximal age: checking it alone is equivalent to the old full-buffer
    // scan (which would have tripped on the front first anyway), at O(1).
    for (const RequestQueue* queue : {&reads, &writes}) {
        const MemRequest* request = queue->Oldest();
        if (request != nullptr) {
            const DramCycle age = now - request->arrival_dram;
            if (age > starvation_bound_) {
                std::ostringstream reason;
                reason << "request starvation: id=" << request->id
                       << " thread=" << request->thread << " ("
                       << (request->is_write ? "write" : "read")
                       << " rank=" << request->coords.rank
                       << " bank=" << request->coords.bank
                       << " row=" << request->coords.row << ") waited "
                       << age << " cycles (bound " << starvation_bound_
                       << ")";
                Fail(reason.str(), now, reads, writes, scheduler, channel,
                     tracer, ras, request->thread,
                     queue->FlatBank(*request));
            }
        }
    }

    if ((!reads.Empty() || !writes.Empty())) {
        const DramCycle last =
            last_command_cycle == kNeverCycle ? 0 : last_command_cycle;
        if (now > last + no_progress_bound_) {
            std::ostringstream reason;
            reason << "no forward progress: " << reads.size() << " reads / "
                   << writes.size()
                   << " writes pending but no DRAM command issued since "
                      "cycle "
                   << (last_command_cycle == kNeverCycle
                           ? std::string("<never>")
                           : std::to_string(last_command_cycle))
                   << " (bound " << no_progress_bound_ << ")";
            Fail(reason.str(), now, reads, writes, scheduler, channel,
                 tracer, ras, kInvalidThread, obs::kNoFlatBank);
        }
    }
}

void
ForwardProgressWatchdog::Fail(const std::string& reason, DramCycle now,
                              const RequestQueue& reads,
                              const RequestQueue& writes,
                              const Scheduler& scheduler,
                              const dram::Channel& channel,
                              const obs::Tracer* tracer,
                              const RasEngine* ras, ThreadId thread,
                              std::uint32_t flat_bank)
{
    std::ostringstream out;
    out << "watchdog: " << reason << "\n"
        << FormatControllerDiagnostics(now, reads, writes, scheduler,
                                       channel, ras);
    if (tracer != nullptr) {
        out << tracer->FormatTail(thread, flat_bank, 256);
    }
    throw WatchdogError(out.str());
}

std::string
FormatControllerDiagnostics(DramCycle now, const RequestQueue& reads,
                            const RequestQueue& writes,
                            const Scheduler& scheduler,
                            const dram::Channel& channel,
                            const RasEngine* ras)
{
    std::ostringstream out;
    out << "controller diagnostics at dram cycle " << now << ":\n";
    DumpQueue(out, "read", reads, now);
    DumpQueue(out, "write", writes, now);
    out << "  bank states (bus free at " << channel.bus_free_at() << "):\n";
    for (std::uint32_t r = 0; r < channel.num_ranks(); ++r) {
        const dram::Rank& rank = channel.rank(r);
        for (std::uint32_t b = 0; b < rank.num_banks(); ++b) {
            const dram::Bank& bank = rank.bank(b);
            out << "    rank " << r << " bank " << b << ": ";
            if (bank.IsOpen()) {
                out << "row " << bank.open_row() << " open since "
                    << bank.open_since();
            } else {
                out << "closed";
            }
            out << " next-ACT@"
                << bank.EarliestIssue(dram::CommandType::kActivate) << "\n";
        }
        out << "    rank " << r << " next refresh due @"
            << rank.next_refresh_due() << "\n";
    }
    out << "  scheduler " << scheduler.name() << ":";
    for (const auto& [key, value] : scheduler.Stats()) {
        out << " " << key << "=" << value;
    }
    out << " batch_outstanding=" << scheduler.BatchOutstanding() << "\n";
    if (ras != nullptr) {
        ras->DumpState(out, now);
    }
    return out.str();
}

} // namespace parbs
