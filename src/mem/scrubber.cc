#include "mem/scrubber.hh"

#include "common/assert.hh"

namespace parbs {

Scrubber::Scrubber(const dram::Geometry& geometry, DramCycle interval,
                   std::size_t demote_reads)
    : interval_(interval),
      demote_reads_(demote_reads),
      num_ranks_(geometry.ranks_per_channel),
      banks_per_rank_(geometry.banks_per_rank),
      rows_per_bank_(geometry.rows_per_bank)
{
    PARBS_ASSERT(interval_ > 0, "scrubber needs a nonzero interval");
}

void
Scrubber::AdvanceCursor()
{
    if (++row_ < rows_per_bank_) {
        return;
    }
    row_ = 0;
    if (++bank_ < banks_per_rank_) {
        return;
    }
    bank_ = 0;
    if (++rank_ < num_ranks_) {
        return;
    }
    rank_ = 0;
    sweeps_ += 1;
}

void
Scrubber::BeginRead(DramCycle completion, dram::EccOutcome outcome)
{
    PARBS_ASSERT(!in_flight_, "scrub read already in flight");
    in_flight_ = true;
    completion_ = completion;
    outcome_ = outcome;
}

void
Scrubber::FinishRead(DramCycle now)
{
    PARBS_ASSERT(in_flight_, "no scrub read to finish");
    in_flight_ = false;
    completion_ = kNeverCycle;
    next_due_ = now + interval_;
    AdvanceCursor();
}

} // namespace parbs
