#include "mem/request_queue.hh"

#include <algorithm>

#include "common/assert.hh"

namespace parbs {

RequestQueue::RequestQueue(std::size_t capacity, std::uint32_t num_threads,
                           std::uint32_t num_ranks,
                           std::uint32_t banks_per_rank)
    : capacity_(capacity),
      num_threads_(num_threads),
      banks_per_rank_(banks_per_rank),
      num_banks_(num_ranks * banks_per_rank),
      per_thread_bank_(static_cast<std::size_t>(num_threads) * num_banks_, 0),
      per_thread_(num_threads, 0),
      chain_head_(num_banks_, nullptr),
      chain_tail_(num_banks_, nullptr),
      queued_in_bank_(num_banks_, 0),
      bank_gen_(num_banks_, 1)
{
    PARBS_ASSERT(num_threads > 0, "request queue needs at least one thread");
    PARBS_ASSERT(num_banks_ > 0, "request queue needs at least one bank");
}

bool
RequestQueue::Full() const
{
    return capacity_ != 0 && requests_.size() >= capacity_;
}

MemRequest&
RequestQueue::Add(RequestPtr request)
{
    PARBS_ASSERT(!Full(), "request queue overflow");
    PARBS_ASSERT(request->thread < num_threads_,
                 "request thread id out of range");
    MemRequest& ref = *request;
    per_thread_bank_[static_cast<std::size_t>(ref.thread) * num_banks_ +
                     FlatBank(ref)] += 1;
    per_thread_[ref.thread] += 1;
    requests_.push_back(std::move(request));
    view_.push_back(&ref);
    if (ref.state == RequestState::kQueued) {
        Link(ref);
    }
    return ref;
}

RequestPtr
RequestQueue::Remove(RequestId id)
{
    auto it = std::find_if(requests_.begin(), requests_.end(),
                           [id](const auto& r) { return r->id == id; });
    PARBS_ASSERT(it != requests_.end(),
                 "removing a request that is not in the buffer");
    RequestPtr out = std::move(*it);
    view_.erase(view_.begin() + (it - requests_.begin()));
    requests_.erase(it);
    per_thread_bank_[static_cast<std::size_t>(out->thread) * num_banks_ +
                     FlatBank(*out)] -= 1;
    per_thread_[out->thread] -= 1;
    if (out->bank_linked) {
        Unlink(*out);
    }
    return out;
}

void
RequestQueue::BeginService(MemRequest& request)
{
    PARBS_ASSERT(request.bank_linked,
                 "BeginService on a request not in its bank chain");
    Unlink(request);
}

RequestQueue::BankChain
RequestQueue::BankQueued(std::uint32_t bank) const
{
    PARBS_ASSERT(bank < num_banks_, "bank index out of range");
    return BankChain(chain_head_[bank]);
}

std::uint32_t
RequestQueue::QueuedInBank(std::uint32_t bank) const
{
    PARBS_ASSERT(bank < num_banks_, "bank index out of range");
    return queued_in_bank_[bank];
}

std::uint64_t
RequestQueue::BankGeneration(std::uint32_t bank) const
{
    PARBS_ASSERT(bank < num_banks_, "bank index out of range");
    return bank_gen_[bank];
}

void
RequestQueue::CheckIndex() const
{
    std::vector<std::uint32_t> thread_bank(per_thread_bank_.size(), 0);
    std::vector<std::uint32_t> thread_total(per_thread_.size(), 0);
    std::vector<std::uint32_t> queued(num_banks_, 0);
    for (const MemRequest* request : view_) {
        thread_bank[static_cast<std::size_t>(request->thread) * num_banks_ +
                    FlatBank(*request)] += 1;
        thread_total[request->thread] += 1;
        if (request->state == RequestState::kQueued) {
            queued[FlatBank(*request)] += 1;
            PARBS_ASSERT(request->bank_linked,
                         "queued request missing from its bank chain");
        } else {
            PARBS_ASSERT(!request->bank_linked,
                         "non-queued request still in a bank chain");
        }
    }
    PARBS_ASSERT(thread_bank == per_thread_bank_,
                 "per-(thread,bank) counters diverged from buffer contents");
    PARBS_ASSERT(thread_total == per_thread_,
                 "per-thread counters diverged from buffer contents");
    PARBS_ASSERT(queued == queued_in_bank_,
                 "per-bank queued counts diverged from buffer contents");

    for (std::uint32_t bank = 0; bank < num_banks_; ++bank) {
        // The chain must hold exactly the queued requests of this bank, in
        // arrival order (ids are assigned in arrival order by the cores;
        // the flat view preserves it, so walk both in lockstep).
        const MemRequest* prev = nullptr;
        std::uint32_t chained = 0;
        std::size_t cursor = 0;
        for (const MemRequest* request : BankQueued(bank)) {
            PARBS_ASSERT(FlatBank(*request) == bank,
                         "bank chain holds a foreign request");
            PARBS_ASSERT(request->state == RequestState::kQueued,
                         "bank chain holds a non-queued request");
            PARBS_ASSERT(request->bank_prev == prev,
                         "bank chain back-links corrupted");
            while (cursor < view_.size() && view_[cursor] != request) {
                cursor += 1;
            }
            PARBS_ASSERT(cursor < view_.size(),
                         "bank chain order diverged from arrival order");
            prev = request;
            chained += 1;
        }
        PARBS_ASSERT(chain_tail_[bank] == prev,
                     "bank chain tail pointer corrupted");
        PARBS_ASSERT(chained == queued_in_bank_[bank],
                     "bank chain length diverged from queued count");
    }
}

std::uint32_t
RequestQueue::ReqsInBankPerThread(ThreadId thread, std::uint32_t bank) const
{
    PARBS_ASSERT(thread < num_threads_ && bank < num_banks_,
                 "occupancy query out of range");
    return per_thread_bank_[static_cast<std::size_t>(thread) * num_banks_ +
                            bank];
}

std::uint32_t
RequestQueue::ReqsPerThread(ThreadId thread) const
{
    PARBS_ASSERT(thread < num_threads_, "occupancy query out of range");
    return per_thread_[thread];
}

std::uint32_t
RequestQueue::FlatBank(const MemRequest& request) const
{
    return request.coords.rank * banks_per_rank_ + request.coords.bank;
}

void
RequestQueue::Link(MemRequest& request)
{
    const std::uint32_t bank = FlatBank(request);
    PARBS_ASSERT(bank < num_banks_, "request bank out of range");
    request.bank_prev = chain_tail_[bank];
    request.bank_next = nullptr;
    if (chain_tail_[bank] != nullptr) {
        chain_tail_[bank]->bank_next = &request;
    } else {
        chain_head_[bank] = &request;
    }
    chain_tail_[bank] = &request;
    request.bank_linked = true;
    queued_in_bank_[bank] += 1;
    bank_gen_[bank] += 1;
}

void
RequestQueue::Unlink(MemRequest& request)
{
    const std::uint32_t bank = FlatBank(request);
    if (request.bank_prev != nullptr) {
        request.bank_prev->bank_next = request.bank_next;
    } else {
        chain_head_[bank] = request.bank_next;
    }
    if (request.bank_next != nullptr) {
        request.bank_next->bank_prev = request.bank_prev;
    } else {
        chain_tail_[bank] = request.bank_prev;
    }
    request.bank_prev = nullptr;
    request.bank_next = nullptr;
    request.bank_linked = false;
    PARBS_ASSERT(queued_in_bank_[bank] > 0, "queued-in-bank underflow");
    queued_in_bank_[bank] -= 1;
    bank_gen_[bank] += 1;
}

} // namespace parbs
