#include "mem/request_queue.hh"

#include <algorithm>

#include "common/assert.hh"

namespace parbs {

RequestQueue::RequestQueue(std::size_t capacity, std::uint32_t num_threads,
                           std::uint32_t num_ranks,
                           std::uint32_t banks_per_rank)
    : capacity_(capacity),
      num_threads_(num_threads),
      banks_per_rank_(banks_per_rank),
      num_banks_(num_ranks * banks_per_rank),
      per_thread_bank_(static_cast<std::size_t>(num_threads) * num_banks_, 0),
      per_thread_(num_threads, 0)
{
    PARBS_ASSERT(num_threads > 0, "request queue needs at least one thread");
    PARBS_ASSERT(num_banks_ > 0, "request queue needs at least one bank");
}

bool
RequestQueue::Full() const
{
    return capacity_ != 0 && requests_.size() >= capacity_;
}

MemRequest&
RequestQueue::Add(std::unique_ptr<MemRequest> request)
{
    PARBS_ASSERT(!Full(), "request queue overflow");
    PARBS_ASSERT(request->thread < num_threads_,
                 "request thread id out of range");
    MemRequest& ref = *request;
    per_thread_bank_[static_cast<std::size_t>(ref.thread) * num_banks_ +
                     FlatBank(ref)] += 1;
    per_thread_[ref.thread] += 1;
    requests_.push_back(std::move(request));
    view_.push_back(&ref);
    return ref;
}

std::unique_ptr<MemRequest>
RequestQueue::Remove(RequestId id)
{
    auto it = std::find_if(requests_.begin(), requests_.end(),
                           [id](const auto& r) { return r->id == id; });
    PARBS_ASSERT(it != requests_.end(),
                 "removing a request that is not in the buffer");
    std::unique_ptr<MemRequest> out = std::move(*it);
    requests_.erase(it);
    per_thread_bank_[static_cast<std::size_t>(out->thread) * num_banks_ +
                     FlatBank(*out)] -= 1;
    per_thread_[out->thread] -= 1;
    RebuildView();
    return out;
}

std::uint32_t
RequestQueue::ReqsInBankPerThread(ThreadId thread, std::uint32_t bank) const
{
    PARBS_ASSERT(thread < num_threads_ && bank < num_banks_,
                 "occupancy query out of range");
    return per_thread_bank_[static_cast<std::size_t>(thread) * num_banks_ +
                            bank];
}

std::uint32_t
RequestQueue::ReqsPerThread(ThreadId thread) const
{
    PARBS_ASSERT(thread < num_threads_, "occupancy query out of range");
    return per_thread_[thread];
}

std::uint32_t
RequestQueue::FlatBank(const MemRequest& request) const
{
    return request.coords.rank * banks_per_rank_ + request.coords.bank;
}

void
RequestQueue::RebuildView()
{
    view_.clear();
    view_.reserve(requests_.size());
    for (const auto& r : requests_) {
        view_.push_back(r.get());
    }
}

} // namespace parbs
