#include "mem/controller.hh"

#include <algorithm>
#include <sstream>

#include "common/assert.hh"
#include "obs/latency.hh"
#include "obs/tracer.hh"

namespace parbs {

void
ControllerConfig::Validate() const
{
    if (read_queue_capacity == 0 || write_queue_capacity == 0) {
        PARBS_FATAL("controller: queue capacities must be nonzero");
    }
    if (write_drain_low > write_drain_high ||
        write_drain_high > write_queue_capacity) {
        PARBS_FATAL("controller: write drain watermarks must satisfy "
                    "low <= high <= capacity");
    }
    if (verify_sample_period == 0) {
        PARBS_FATAL("controller: verify_sample_period must be >= 1");
    }
    watchdog.Validate();
    ras.Validate();
}

Controller::Controller(const ControllerConfig& config,
                       const dram::TimingParams& timing,
                       const dram::Geometry& geometry,
                       std::uint32_t num_threads,
                       std::unique_ptr<Scheduler> scheduler)
    : config_(config),
      channel_(timing, geometry),
      num_threads_(num_threads),
      scheduler_(std::move(scheduler)),
      read_queue_(config.read_queue_capacity, num_threads,
                  geometry.ranks_per_channel, geometry.banks_per_rank),
      write_queue_(config.write_queue_capacity, num_threads,
                   geometry.ranks_per_channel, geometry.banks_per_rank),
      stats_(num_threads),
      in_service_(static_cast<std::size_t>(num_threads) *
                      geometry.ranks_per_channel * geometry.banks_per_rank,
                  0),
      busy_banks_(num_threads, 0)
{
    PARBS_ASSERT(scheduler_ != nullptr, "controller needs a scheduler");
    config_.Validate();
    if (config_.protocol_check) {
        channel_.EnableProtocolCheck();
    }
    if (config_.ras.enabled) {
        ras_ = std::make_unique<RasEngine>(config_.ras, geometry);
        if (config_.ras.scrub_interval > 0) {
            scrubber_ = std::make_unique<Scrubber>(
                geometry, config_.ras.scrub_interval,
                config_.ras.scrub_demote_reads);
            // The skip-ahead bound does not model the scrub clock, and
            // scrub decisions happen exactly on the idle cycles the fast
            // path would skip: force the full per-cycle scan.
            config_.fast_path = false;
        }
    }
    if (config_.watchdog.enabled) {
        watchdog_ = std::make_unique<ForwardProgressWatchdog>(
            config_.watchdog, channel_.timing(),
            config_.read_queue_capacity);
    }
    SchedulerContext context;
    context.read_queue = &read_queue_;
    context.write_queue = &write_queue_;
    context.channel = &channel_;
    context.num_threads = num_threads;
    context.num_ranks = geometry.ranks_per_channel;
    context.banks_per_rank = geometry.banks_per_rank;
    context.timing = &channel_.timing();
    scheduler_->Attach(context);
}

void
Controller::SetReadCompleteCallback(ReadCompleteCallback callback)
{
    read_complete_ = std::move(callback);
}

void
Controller::AttachObservability(obs::Tracer* tracer,
                                obs::LatencyAnatomy* latency,
                                std::uint8_t channel_id)
{
    tracer_ = tracer;
    latency_obs_ = latency;
    channel_id_ = channel_id;
}

void
Controller::Enqueue(RequestPtr request, DramCycle now)
{
    PARBS_ASSERT(request != nullptr, "null request enqueued");
    request->arrival_dram = now;
    request->state = RequestState::kQueued;
    MemRequest& ref = request->is_write
                          ? write_queue_.Add(std::move(request))
                          : read_queue_.Add(std::move(request));
    // A new candidate may be ready immediately: drop the skip-ahead bound.
    next_select_cycle_ = 0;
    if (tracer_ != nullptr) {
        tracer_->Emit({now, obs::EventKind::kRequestArrive, channel_id_,
                       ref.thread, FlatBank(ref), ref.id,
                       ref.is_write ? 1u : 0u});
    }
    scheduler_->OnRequestQueued(ref, now);
}

void
Controller::Tick(DramCycle now)
{
    // Retirement fast path: in-burst completion cycles are known at issue
    // time, so the scan is pointless before the earliest of them.
    if (!config_.fast_path || now >= next_retire_check_) {
        RetireFinished(now);
    }
    scheduler_->OnDramCycle(now);

    bool issued = HandleRefresh(now);
    if (!issued) {
        // Selection fast path: while the cached bound proves no queued
        // command can pass its timing checks, the whole two-level scan is
        // skipped.  The bound stays valid because bank / rank / bus timers
        // move only when a command issues and the candidate set grows only
        // on arrival — both reset next_select_cycle_.  Skipping a cycle
        // that issues nothing is observationally identical to scanning it:
        // Pick() is side-effect-free across all schedulers, and the write-
        // drain watermark state is kept cycle-exact by RetireFinished
        // (retirement is the only event that changes queue sizes during a
        // skip window; see the note there).
        if (!config_.fast_path || now >= next_select_cycle_) {
            fast_stats_.select_scans += 1;
            if (tracer_ != nullptr) {
                FlushSkipSpan();
            }
            UpdateWriteDrain(now);

            MemRequest* chosen = nullptr;
            if (write_drain_active_) {
                chosen = SelectRequest(write_queue_, now);
            }
            if (chosen == nullptr) {
                chosen = SelectRequest(read_queue_, now);
            }
            if (chosen == nullptr && !write_drain_active_) {
                chosen = SelectRequest(write_queue_, now);
            }
            if (chosen != nullptr) {
                IssueFor(*chosen, now);
            } else if (scrubber_ != nullptr && TryScrub(now)) {
                // Patrol scrub used the otherwise-idle cycle.
            } else if (config_.fast_path) {
                next_select_cycle_ = NextReadyBound(now);
            }
        } else {
            fast_stats_.select_skips += 1;
            if (tracer_ != nullptr) {
                if (skip_span_len_ == 0) {
                    skip_span_start_ = now;
                }
                skip_span_len_ += 1;
            }
            if (config_.verify_fast_path) {
                PARBS_ASSERT(!AnyCommandReady(now),
                             "fast path skipped a cycle with a ready "
                             "command");
            }
        }
    }

    if (watchdog_) {
        watchdog_->Check(now, read_queue_, write_queue_, *scheduler_,
                         channel_, last_command_cycle_, tracer_,
                         ras_.get());
    }

    SampleBlp();
}

void
Controller::RetireFinished(DramCycle now)
{
    fast_stats_.retire_scans += 1;
    // The in-burst FIFOs hold completions in order, so retirement is a
    // front-pop per completed request instead of a full-buffer scan.  The
    // pop order (completion order, reads before writes) matches the old
    // scan: per-queue completion cycles are distinct and the check runs
    // every cycle one is due, so at most one request per queue retires per
    // call.
    while (!inburst_reads_.empty() && inburst_reads_.front().done <= now) {
        const InFlight entry = inburst_reads_.front();
        inburst_reads_.pop_front();
        RequestPtr request = read_queue_.Remove(entry.id);
        PARBS_ASSERT(request->state == RequestState::kInBurst,
                     "retire FIFO out of sync with request state");
        if (entry.ecc_fail) {
            // The burst arrived but ECC flagged it uncorrectable: the data
            // never reaches the core.  Requeue for a bounded retry instead
            // of retiring (may throw MachineCheckError past the budget).
            RetryFailedRead(std::move(request), now);
            continue;
        }
        request->state = RequestState::kCompleted;
        LeaveService(*request);
        if (tracer_ != nullptr) {
            tracer_->Emit({now, obs::EventKind::kRequestRetire, channel_id_,
                           request->thread, FlatBank(*request), request->id,
                           request->Latency()});
        }
        if (latency_obs_ != nullptr) {
            latency_obs_->RecordRead(*request);
        }

        ControllerThreadStats& stats = stats_[request->thread];
        stats.reads_completed += 1;
        const DramCycle latency = request->Latency();
        stats.read_latency_sum += latency;
        stats.read_latency_max = std::max(stats.read_latency_max, latency);
        switch (request->service_class) {
          case dram::RowBufferState::kHit:
            stats.read_row_hits += 1;
            break;
          case dram::RowBufferState::kClosed:
            stats.read_row_closed += 1;
            break;
          case dram::RowBufferState::kConflict:
            stats.read_row_conflicts += 1;
            break;
        }

        scheduler_->OnRequestComplete(*request, now);
        if (read_complete_) {
            read_complete_(*request, now);
        }
    }

    while (!inburst_writes_.empty() &&
           inburst_writes_.front().done <= now) {
        const RequestId id = inburst_writes_.front().id;
        inburst_writes_.pop_front();
        RequestPtr request = write_queue_.Remove(id);
        PARBS_ASSERT(request->state == RequestState::kInBurst,
                     "retire FIFO out of sync with request state");
        request->state = RequestState::kCompleted;
        stats_[request->thread].writes_completed += 1;
        if (tracer_ != nullptr) {
            tracer_->Emit({now, obs::EventKind::kRequestRetire, channel_id_,
                           request->thread, FlatBank(*request), request->id,
                           request->Latency()});
        }
        scheduler_->OnRequestComplete(*request, now);
    }

    if (scrubber_ != nullptr && scrubber_->in_flight() &&
        scrubber_->completion() <= now) {
        FinishScrub(now);
    }

    // Keep the write-drain hysteresis exact across skipped selection scans:
    // the watermark state is path-dependent (a dip to the low watermark must
    // turn draining off even if the queue refills before the next scan), and
    // during a skip window retirement is the only event that changes queue
    // sizes.  Updating here — at the same point in the cycle the per-cycle
    // scan would have sampled — reproduces the cycle-exact state machine;
    // between size changes the update is a no-op, and arrivals already force
    // a scan on their next cycle.
    UpdateWriteDrain(now);

    RecomputeNextRetire();
}

void
Controller::UpdateWriteDrain(DramCycle now)
{
    // Write-drain hysteresis: strict read priority by default (the paper's
    // policy), forced drain only as overflow protection.
    if (write_queue_.size() >= config_.write_drain_high) {
        if (!write_drain_active_ && tracer_ != nullptr) {
            tracer_->Emit({now, obs::EventKind::kWriteDrainEnter,
                           channel_id_, kInvalidThread, obs::kNoFlatBank,
                           write_queue_.size(), 0});
        }
        write_drain_active_ = true;
    } else if (write_queue_.size() <= config_.write_drain_low) {
        if (write_drain_active_ && tracer_ != nullptr) {
            tracer_->Emit({now, obs::EventKind::kWriteDrainExit, channel_id_,
                           kInvalidThread, obs::kNoFlatBank,
                           write_queue_.size(), 0});
        }
        write_drain_active_ = false;
    }
}

void
Controller::FlushSkipSpan()
{
    if (skip_span_len_ == 0) {
        return;
    }
    tracer_->Emit({skip_span_start_, obs::EventKind::kFastPathSkip,
                   channel_id_, kInvalidThread, obs::kNoFlatBank,
                   skip_span_len_, 0});
    skip_span_len_ = 0;
}

void
Controller::PendingRetires(DramCycle limit, std::vector<PendingRead>& reads,
                           std::vector<DramCycle>& writes) const
{
    for (const InFlight& entry : inburst_reads_) {
        if (entry.done >= limit) {
            break;
        }
        // A failed read re-enters the queue at its completion cycle
        // instead of departing, so it is neither a retire for the sharded
        // occupancy proxies nor a core notification.
        if (entry.ecc_fail) {
            continue;
        }
        reads.push_back({entry.done, entry.thread, entry.id});
    }
    for (const InFlight& entry : inburst_writes_) {
        if (entry.done >= limit) {
            break;
        }
        writes.push_back(entry.done);
    }
}

void
Controller::RecomputeNextRetire()
{
    // The FIFO fronts are the earliest in-flight completions.
    next_retire_check_ = kNeverCycle;
    if (!inburst_reads_.empty()) {
        next_retire_check_ =
            std::min(next_retire_check_, inburst_reads_.front().done);
    }
    if (!inburst_writes_.empty()) {
        next_retire_check_ =
            std::min(next_retire_check_, inburst_writes_.front().done);
    }
    if (scrubber_ != nullptr && scrubber_->in_flight()) {
        next_retire_check_ =
            std::min(next_retire_check_, scrubber_->completion());
    }
}

bool
Controller::HandleRefresh(DramCycle now)
{
    if (!config_.enable_refresh || channel_.timing().tREFI == 0) {
        return false;
    }
    for (std::uint32_t r = 0; r < channel_.num_ranks(); ++r) {
        dram::Rank& rank = channel_.rank(r);
        if (!rank.RefreshDue(now)) {
            continue;
        }
        if (rank.CanRefresh(now)) {
            dram::Command refresh{dram::CommandType::kRefresh, r, 0, 0};
            channel_.Issue(refresh, now);
            RecordCommand(dram::CommandType::kRefresh, now, kInvalidThread,
                          obs::kNoFlatBank, 0);
            return true;
        }
        // Quiesce: precharge one open bank that is ready for it.
        for (std::uint32_t b : rank.OpenBanks()) {
            dram::Command precharge{dram::CommandType::kPrecharge, r, b, 0};
            if (channel_.CanIssue(precharge, now)) {
                channel_.Issue(precharge, now);
                RecordCommand(dram::CommandType::kPrecharge, now,
                              kInvalidThread,
                              r * channel_.rank(0).num_banks() + b, 0);
                return true;
            }
        }
        // Nothing issuable yet (e.g. tRAS pending); the candidate filter
        // below keeps new traffic away from this rank so it drains.
    }
    return false;
}

MemRequest*
Controller::SelectRequest(const RequestQueue& queue, DramCycle now)
{
    MemRequest* chosen = config_.indexed_selection
                             ? SelectIndexed(queue, now)
                             : SelectScan(queue, now);
    // Cross-check: both paths must agree on every pick.  Sound only for
    // deterministic schedulers — a chaos wrapper draws fresh randomness on
    // each Pick(), so re-running selection would change its stream.  Above
    // period 1 the check samples every Nth decision: divergence is a
    // deterministic function of controller state, so sampling delays
    // detection but never misses a diverged run (see ControllerConfig).
    if (config_.verify_indexed_selection && scheduler_->DeterministicPick() &&
        (++verify_decisions_ % config_.verify_sample_period) == 0) {
        MemRequest* reference = config_.indexed_selection
                                    ? SelectScan(queue, now)
                                    : SelectIndexed(queue, now);
        PARBS_ASSERT(chosen == reference,
                     "indexed selection diverged from the full-scan path");
    }
    return chosen;
}

Controller::BankIssueOptions
Controller::BankCouldIssue(const dram::Bank& bank, std::uint32_t rank,
                           std::uint32_t bank_in_rank, bool is_write_queue,
                           DramCycle now) const
{
    // Timing legality does not depend on the row, so probe with row 0.
    BankIssueOptions options;
    if (!bank.IsOpen()) {
        // Every candidate's next command is kActivate.
        options.activate = channel_.CanIssue(
            {dram::CommandType::kActivate, rank, bank_in_rank, 0}, now);
        return options;
    }
    // A row is open: candidates are row hits (column command; the queue is
    // homogeneous, so the type is fixed) or conflicts (kPrecharge).
    const dram::CommandType column = is_write_queue
                                         ? dram::CommandType::kWrite
                                         : dram::CommandType::kRead;
    options.column = channel_.CanIssue({column, rank, bank_in_rank, 0}, now);
    options.precharge = channel_.CanIssue(
        {dram::CommandType::kPrecharge, rank, bank_in_rank, 0}, now);
    return options;
}

MemRequest*
Controller::SelectIndexed(const RequestQueue& queue, DramCycle now)
{
    if (queue.Empty()) {
        return nullptr;
    }
    const bool refresh_active =
        config_.enable_refresh && channel_.timing().tREFI != 0;
    const bool is_write_queue = &queue == &write_queue_;
    const std::uint32_t banks_per_rank = channel_.rank(0).num_banks();

    finalists_.clear();
    for (std::uint32_t bank = 0; bank < queue.num_banks(); ++bank) {
        if (queue.QueuedInBank(bank) == 0) {
            continue;
        }
        const std::uint32_t rank = bank / banks_per_rank;
        const std::uint32_t bank_in_rank = bank % banks_per_rank;
        // A rank with an overdue refresh accepts no new commands until the
        // refresh has been performed (starvation-free refresh guarantee).
        if (refresh_active && channel_.rank(rank).RefreshDue(now)) {
            continue;
        }
        // A bank under a retry-backoff hold issues nothing until it
        // expires (the hold only delays, so the skip-ahead bound — which
        // ignores holds — stays a conservative lower bound).
        if (ras_ != nullptr && ras_->BankHoldUntil(bank) > now) {
            continue;
        }
        const dram::Bank& state = channel_.bank(rank, bank_in_rank);
        // Skipping a timing-blocked bank cannot change the outcome: the
        // bank winner's next command is one of the probed types, so it
        // would fail the Allows() finalist check below anyway (and Pick()
        // is side-effect-free for every deterministic scheduler).
        const BankIssueOptions options =
            BankCouldIssue(state, rank, bank_in_rank, is_write_queue, now);
        if (!options.Any()) {
            continue;
        }
        MemRequest* winner = scheduler_->PickInBank(queue, bank, now);
        if (winner == nullptr) {
            continue;
        }
        Candidate candidate;
        candidate.request = winner;
        candidate.next_command =
            state.NextCommandFor(winner->coords.row, winner->is_write);
        candidate.row_hit = state.open_row() == winner->coords.row;
        candidate.row_open_since = state.open_since();
        // Legality per type was already probed above; no repeat CanIssue.
        if (options.Allows(candidate.next_command)) {
            finalists_.push_back(candidate);
        }
    }
    if (finalists_.empty()) {
        return nullptr;
    }
    return scheduler_->Pick(finalists_, now);
}

MemRequest*
Controller::SelectScan(const RequestQueue& queue, DramCycle now)
{
    if (queue.Empty()) {
        return nullptr;
    }
    const bool refresh_active =
        config_.enable_refresh && channel_.timing().tREFI != 0;

    // Level 1: group queued requests by bank.
    per_bank_.resize(queue.num_banks());
    for (auto& bank_candidates : per_bank_) {
        bank_candidates.clear();
    }
    for (MemRequest* request : queue.requests()) {
        if (request->state != RequestState::kQueued) {
            continue;
        }
        // A rank with an overdue refresh accepts no new commands until the
        // refresh has been performed (starvation-free refresh guarantee).
        if (refresh_active &&
            channel_.rank(request->coords.rank).RefreshDue(now)) {
            continue;
        }
        // Retry-backoff hold: mirrors the indexed path's bank skip.
        if (ras_ != nullptr && ras_->BankHoldUntil(FlatBank(*request)) > now) {
            continue;
        }
        const dram::Bank& bank =
            channel_.bank(request->coords.rank, request->coords.bank);
        Candidate candidate;
        candidate.request = request;
        candidate.next_command =
            bank.NextCommandFor(request->coords.row, request->is_write);
        candidate.row_hit = bank.open_row() == request->coords.row;
        candidate.row_open_since = bank.open_since();
        per_bank_[FlatBank(*request)].push_back(candidate);
    }

    // Level 2: each bank's scheduler-chosen request becomes a finalist if
    // its next command passes every timing check *now*.
    finalists_.clear();
    for (const auto& bank_candidates : per_bank_) {
        if (bank_candidates.empty()) {
            continue;
        }
        MemRequest* winner = scheduler_->Pick(bank_candidates, now);
        if (winner == nullptr) {
            continue;
        }
        const Candidate* candidate = nullptr;
        for (const Candidate& c : bank_candidates) {
            if (c.request == winner) {
                candidate = &c;
                break;
            }
        }
        PARBS_ASSERT(candidate != nullptr,
                     "scheduler picked a request outside the bank pool");
        dram::Command command{candidate->next_command,
                              winner->coords.rank, winner->coords.bank,
                              winner->coords.row};
        if (channel_.CanIssue(command, now)) {
            finalists_.push_back(*candidate);
        }
    }
    if (finalists_.empty()) {
        return nullptr;
    }
    return scheduler_->Pick(finalists_, now);
}

void
Controller::IssueFor(MemRequest& request, DramCycle now)
{
    const dram::Bank& bank =
        channel_.bank(request.coords.rank, request.coords.bank);
    const dram::CommandType type =
        bank.NextCommandFor(request.coords.row, request.is_write);
    dram::Command command{type, request.coords.rank, request.coords.bank,
                          request.coords.row};
    const DramCycle done = channel_.Issue(command, now);
    RecordCommand(type, now, request.thread, FlatBank(request),
                  request.coords.row);

    if (request.first_command_cycle == kNeverCycle) {
        request.first_command_cycle = now;
        if (tracer_ != nullptr) {
            tracer_->Emit({now, obs::EventKind::kRequestFirstIssue,
                           channel_id_, request.thread, FlatBank(request),
                           request.id, static_cast<std::uint64_t>(type)});
        }
        // The first command tells us what the row-buffer looked like when
        // service began: column command => hit, ACTIVATE => closed,
        // PRECHARGE => conflict.  An ECC retry keeps its first-attempt
        // class — the stats describe demand service, not recovery.
        if (!request.service_class_valid) {
            switch (type) {
              case dram::CommandType::kRead:
              case dram::CommandType::kWrite:
                request.service_class = dram::RowBufferState::kHit;
                break;
              case dram::CommandType::kActivate:
                request.service_class = dram::RowBufferState::kClosed;
                break;
              case dram::CommandType::kPrecharge:
                request.service_class = dram::RowBufferState::kConflict;
                break;
              case dram::CommandType::kRefresh:
                PARBS_ASSERT(false, "refresh issued for a request");
                break;
            }
            request.service_class_valid = true;
        }
        if (!request.is_write) {
            EnterService(request);
        }
    }

    if (type == dram::CommandType::kRead ||
        type == dram::CommandType::kWrite) {
        // Leaving kQueued: drop the request from its bank's chain so the
        // indexed gather never visits in-burst requests.
        (request.is_write ? write_queue_ : read_queue_)
            .BeginService(request);
        request.state = RequestState::kInBurst;
        request.burst_issue_cycle = now;
        request.completion_cycle = done;
        if (request.first_attempt_completion == kNeverCycle) {
            request.first_attempt_completion = done;
        }
        // ECC verdict, drawn when the read burst issues: a deterministic
        // function of (seed, channel, rank, bank, row, access index), so
        // the outcome is independent of scheduler and worker count.
        bool ecc_fail = false;
        if (ras_ != nullptr && type == dram::CommandType::kRead) {
            const dram::EccOutcome outcome = ras_->ClassifyRead(
                request.coords.rank, request.coords.bank,
                request.coords.row);
            if (outcome == dram::EccOutcome::kCorrectable) {
                ras_->stats().corrected += 1;
                if (tracer_ != nullptr) {
                    tracer_->Emit({now, obs::EventKind::kEccCorrected,
                                   channel_id_, request.thread,
                                   FlatBank(request), request.id,
                                   request.coords.row});
                }
            } else if (outcome == dram::EccOutcome::kUncorrectable) {
                ecc_fail = true;
            }
        }
        if (tracer_ != nullptr) {
            tracer_->Emit({now, obs::EventKind::kRequestBurst, channel_id_,
                           request.thread, FlatBank(request), request.id,
                           done});
        }
        auto& fifo = request.is_write ? inburst_writes_ : inburst_reads_;
        PARBS_ASSERT(fifo.empty() || fifo.back().done <= done,
                     "in-burst completions must be pushed in order");
        fifo.push_back({done, request.id, request.thread, ecc_fail});
        next_retire_check_ = std::min(next_retire_check_, done);
    }

    scheduler_->OnCommandIssued(request, command, now);
}

void
Controller::RetryFailedRead(RequestPtr request, DramCycle now)
{
    LeaveService(*request);
    const std::uint32_t flat = FlatBank(*request);
    ras_->stats().uncorrectable += 1;
    if (tracer_ != nullptr) {
        tracer_->Emit({now, obs::EventKind::kEccUncorrectable, channel_id_,
                       request->thread, flat, request->id,
                       request->retries});
    }
    request->retries += 1;
    if (request->retries > config_.ras.retry_budget) {
        // Budget exhausted: give up on the physical row (post-package-
        // repair style) so the final retry reads the remapped, clean row.
        // Throws MachineCheckError when the remap table is full.
        RetireRow(request->thread, request->coords.rank,
                  request->coords.bank, request->coords.row, now);
        request->retries = 0;
    }
    ras_->stats().retries += 1;
    request->state = RequestState::kQueued;
    request->first_command_cycle = kNeverCycle;
    request->burst_issue_cycle = kNeverCycle;
    request->completion_cycle = kNeverCycle;
    MemRequest& ref = read_queue_.Add(std::move(request));
    ras_->HoldBank(flat, now + config_.ras.retry_backoff);
    if (tracer_ != nullptr) {
        tracer_->Emit({now, obs::EventKind::kEccRetry, channel_id_,
                       ref.thread, flat, ref.id, ref.retries});
    }
    // The requeued candidate (and later the hold expiry) may be ready
    // before any cached bound predicted.
    next_select_cycle_ = 0;
}

void
Controller::RetireRow(ThreadId thread, std::uint32_t rank,
                      std::uint32_t bank, std::uint32_t row, DramCycle now)
{
    if (ras_->IsRetired(rank, bank, row)) {
        return;
    }
    const std::uint32_t flat = rank * channel_.rank(0).num_banks() + bank;
    if (!ras_->TryRetireRow(rank, bank, row)) {
        ras_->stats().machine_checks += 1;
        if (tracer_ != nullptr) {
            tracer_->Emit({now, obs::EventKind::kMachineCheck, channel_id_,
                           thread, flat, row, ras_->remap_capacity()});
        }
        std::ostringstream message;
        message << "machine check: uncorrectable DRAM error at channel "
                << static_cast<unsigned>(channel_id_) << " rank " << rank
                << " bank " << bank << " row " << row
                << " with the remap table full (" << ras_->remap_used()
                << "/" << ras_->remap_capacity()
                << " rows retired) at cycle " << now;
        throw MachineCheckError(message.str());
    }
    ras_->stats().rows_retired += 1;
    if (tracer_ != nullptr) {
        tracer_->Emit({now, obs::EventKind::kRowRetired, channel_id_,
                       thread, flat, row, ras_->remap_used()});
    }
}

bool
Controller::TryScrub(DramCycle now)
{
    Scrubber& scrub = *scrubber_;
    if (scrub.in_flight() || now < scrub.next_due()) {
        return false;
    }
    // Forced demotion under queue pressure: scrub stands down while the
    // write drain runs or demand reads pile up (DESIGN.md §6).
    if (write_drain_active_ ||
        read_queue_.size() >= scrub.demote_reads()) {
        return false;
    }
    // Skip remapped rows — their physical row no longer holds data.  A
    // consecutive retired run is at most remap_used() long, so the walk
    // is bounded; if every row is retired there is nothing to scrub.
    std::size_t skipped = 0;
    while (ras_->IsRetired(scrub.rank(), scrub.bank(), scrub.row())) {
        if (skipped++ > ras_->remap_used()) {
            return false;
        }
        scrub.AdvanceCursor();
    }
    const std::uint32_t rank = scrub.rank();
    const std::uint32_t bank_in_rank = scrub.bank();
    // Like demand selection, never step in front of an overdue refresh.
    if (config_.enable_refresh && channel_.timing().tREFI != 0 &&
        channel_.rank(rank).RefreshDue(now)) {
        return false;
    }
    const dram::Bank& bank = channel_.bank(rank, bank_in_rank);
    const dram::CommandType type =
        bank.NextCommandFor(scrub.row(), /*is_write=*/false);
    dram::Command command{type, rank, bank_in_rank, scrub.row()};
    if (!channel_.CanIssue(command, now)) {
        return false;
    }
    const DramCycle done = channel_.Issue(command, now);
    const std::uint32_t flat =
        rank * channel_.rank(0).num_banks() + bank_in_rank;
    RecordCommand(type, now, kInvalidThread, flat, scrub.row());
    if (type == dram::CommandType::kRead) {
        const dram::EccOutcome outcome =
            ras_->ClassifyScrub(rank, bank_in_rank, scrub.row());
        ras_->stats().scrub_reads += 1;
        scrub.BeginRead(done, outcome);
        if (tracer_ != nullptr) {
            tracer_->Emit({now, obs::EventKind::kScrubIssue, channel_id_,
                           kInvalidThread, flat, scrub.row(), done});
        }
        next_retire_check_ = std::min(next_retire_check_, done);
    }
    return true;
}

void
Controller::FinishScrub(DramCycle now)
{
    Scrubber& scrub = *scrubber_;
    const std::uint32_t flat =
        scrub.rank() * channel_.rank(0).num_banks() + scrub.bank();
    if (tracer_ != nullptr) {
        tracer_->Emit({now, obs::EventKind::kScrubComplete, channel_id_,
                       kInvalidThread, flat, scrub.row(),
                       static_cast<std::uint64_t>(scrub.outcome())});
    }
    switch (scrub.outcome()) {
      case dram::EccOutcome::kClean:
        break;
      case dram::EccOutcome::kCorrectable:
        ras_->stats().scrub_corrected += 1;
        break;
      case dram::EccOutcome::kUncorrectable:
        ras_->stats().scrub_uncorrectable += 1;
        // Proactive retirement: the patrol found the bad row before
        // demand traffic did (may throw MachineCheckError at capacity).
        RetireRow(kInvalidThread, scrub.rank(), scrub.bank(), scrub.row(),
                  now);
        break;
    }
    scrub.FinishRead(now);
}

const ControllerThreadStats&
Controller::thread_stats(ThreadId thread) const
{
    PARBS_ASSERT(thread < stats_.size(), "thread id out of range");
    return stats_[thread];
}

std::uint64_t
Controller::commands_issued(dram::CommandType type) const
{
    return commands_by_type_[static_cast<int>(type)];
}

std::uint64_t
Controller::total_commands_issued() const
{
    std::uint64_t total = 0;
    for (std::uint64_t count : commands_by_type_) {
        total += count;
    }
    return total;
}

void
Controller::EnableProtocolCheck(const dram::TimingParams& reference,
                                dram::ProtocolChecker::Mode mode)
{
    channel_.EnableProtocolCheck(&reference, mode);
}

std::string
Controller::Diagnostics(DramCycle now) const
{
    return FormatControllerDiagnostics(now, read_queue_, write_queue_,
                                       *scheduler_, channel_, ras_.get());
}

void
Controller::RecordCommand(dram::CommandType type, DramCycle now,
                          ThreadId thread, std::uint32_t flat_bank,
                          std::uint32_t row)
{
    commands_by_type_[static_cast<int>(type)] += 1;
    last_command_cycle_ = now;
    // Every issue moves bank / rank / bus timers (and may close or open a
    // row), so any cached readiness bound is stale.
    next_select_cycle_ = 0;
    if (tracer_ != nullptr) {
        FlushSkipSpan();
        tracer_->Emit({now, obs::EventKind::kCommand, channel_id_, thread,
                       flat_bank, static_cast<std::uint64_t>(type), row});
    }
}

DramCycle
Controller::NextReadyBound(DramCycle now) const
{
    // One walk over the per-bank chains serves both the selection
    // skip-ahead bound and (via AnyCommandReady) the fast-path verifier:
    // the chains hold exactly the queued requests, so the bound equals the
    // old full-buffer scan's, while empty banks and in-burst requests cost
    // nothing.
    const bool refresh_active =
        config_.enable_refresh && channel_.timing().tREFI != 0;
    const std::uint32_t banks_per_rank = channel_.rank(0).num_banks();
    DramCycle bound = kNeverCycle;
    for (const RequestQueue* queue : {&read_queue_, &write_queue_}) {
        for (std::uint32_t bank = 0; bank < queue->num_banks(); ++bank) {
            if (queue->QueuedInBank(bank) == 0) {
                continue;
            }
            const std::uint32_t rank = bank / banks_per_rank;
            // A rank with an overdue refresh accepts no new commands until
            // the refresh issues — and issuing it resets the cache, so the
            // bank contributes nothing to the bound until then.
            if (refresh_active && channel_.rank(rank).RefreshDue(now)) {
                continue;
            }
            const dram::Bank& state =
                channel_.bank(rank, bank % banks_per_rank);
            const std::uint32_t bank_in_rank = bank % banks_per_rank;
            // EarliestIssue depends only on the command *type* (the bank,
            // rank and bus timers are row-independent), so the per-request
            // minimum within one bank collapses to at most two probes: a
            // closed bank needs kActivate for every request; an open bank
            // needs the column command iff any request targets the open
            // row and kPrecharge iff any request misses it.  The chain
            // walk is plain row compares with an early exit — no channel
            // probes — so the bound stays bit-exact with the old
            // per-request scan at O(banks) probes total.
            if (!state.IsOpen()) {
                bound = std::min(
                    bound, channel_.EarliestIssue(
                               {dram::CommandType::kActivate, rank,
                                bank_in_rank, 0}));
                continue;
            }
            bool any_hit = false;
            bool any_miss = false;
            for (const MemRequest* request : queue->BankQueued(bank)) {
                (request->coords.row == state.open_row() ? any_hit
                                                         : any_miss) = true;
                if (any_hit && any_miss) {
                    break;
                }
            }
            if (any_hit) {
                // Queues are homogeneous (reads vs writes), so the column
                // command type is a property of the queue, not the request.
                const dram::CommandType column =
                    queue == &write_queue_ ? dram::CommandType::kWrite
                                           : dram::CommandType::kRead;
                bound = std::min(bound,
                                 channel_.EarliestIssue({column, rank,
                                                         bank_in_rank,
                                                         state.open_row()}));
            }
            if (any_miss) {
                bound = std::min(
                    bound, channel_.EarliestIssue(
                               {dram::CommandType::kPrecharge, rank,
                                bank_in_rank, 0}));
            }
        }
    }
    return bound;
}

std::uint32_t
Controller::FlatBank(const MemRequest& request) const
{
    return request.coords.rank * channel_.rank(0).num_banks() +
           request.coords.bank;
}

void
Controller::EnterService(const MemRequest& request)
{
    const std::size_t index =
        static_cast<std::size_t>(request.thread) * read_queue_.num_banks() +
        FlatBank(request);
    if (in_service_[index]++ == 0) {
        busy_banks_[request.thread] += 1;
    }
}

void
Controller::LeaveService(const MemRequest& request)
{
    const std::size_t index =
        static_cast<std::size_t>(request.thread) * read_queue_.num_banks() +
        FlatBank(request);
    PARBS_ASSERT(in_service_[index] > 0, "in-service underflow");
    if (--in_service_[index] == 0) {
        PARBS_ASSERT(busy_banks_[request.thread] > 0,
                     "busy-bank underflow");
        busy_banks_[request.thread] -= 1;
    }
}

void
Controller::SampleBlp()
{
    for (std::uint32_t thread = 0; thread < num_threads_; ++thread) {
        if (busy_banks_[thread] > 0) {
            stats_[thread].blp_sum += busy_banks_[thread];
            stats_[thread].blp_cycles += 1;
        }
    }
}

} // namespace parbs
