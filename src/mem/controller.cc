#include "mem/controller.hh"

#include <algorithm>

#include "common/assert.hh"

namespace parbs {

void
ControllerConfig::Validate() const
{
    if (read_queue_capacity == 0 || write_queue_capacity == 0) {
        PARBS_FATAL("controller: queue capacities must be nonzero");
    }
    if (write_drain_low > write_drain_high ||
        write_drain_high > write_queue_capacity) {
        PARBS_FATAL("controller: write drain watermarks must satisfy "
                    "low <= high <= capacity");
    }
    watchdog.Validate();
}

Controller::Controller(const ControllerConfig& config,
                       const dram::TimingParams& timing,
                       const dram::Geometry& geometry,
                       std::uint32_t num_threads,
                       std::unique_ptr<Scheduler> scheduler)
    : config_(config),
      channel_(timing, geometry),
      num_threads_(num_threads),
      scheduler_(std::move(scheduler)),
      read_queue_(config.read_queue_capacity, num_threads,
                  geometry.ranks_per_channel, geometry.banks_per_rank),
      write_queue_(config.write_queue_capacity, num_threads,
                   geometry.ranks_per_channel, geometry.banks_per_rank),
      stats_(num_threads),
      in_service_(static_cast<std::size_t>(num_threads) *
                      geometry.ranks_per_channel * geometry.banks_per_rank,
                  0),
      busy_banks_(num_threads, 0)
{
    PARBS_ASSERT(scheduler_ != nullptr, "controller needs a scheduler");
    config_.Validate();
    if (config_.protocol_check) {
        channel_.EnableProtocolCheck();
    }
    if (config_.watchdog.enabled) {
        watchdog_ = std::make_unique<ForwardProgressWatchdog>(
            config_.watchdog, channel_.timing(),
            config_.read_queue_capacity);
    }
    SchedulerContext context;
    context.read_queue = &read_queue_;
    context.num_threads = num_threads;
    context.num_ranks = geometry.ranks_per_channel;
    context.banks_per_rank = geometry.banks_per_rank;
    context.timing = &channel_.timing();
    scheduler_->Attach(context);
}

void
Controller::SetReadCompleteCallback(ReadCompleteCallback callback)
{
    read_complete_ = std::move(callback);
}

void
Controller::Enqueue(std::unique_ptr<MemRequest> request, DramCycle now)
{
    PARBS_ASSERT(request != nullptr, "null request enqueued");
    request->arrival_dram = now;
    request->state = RequestState::kQueued;
    MemRequest& ref = request->is_write
                          ? write_queue_.Add(std::move(request))
                          : read_queue_.Add(std::move(request));
    // A new candidate may be ready immediately: drop the skip-ahead bound.
    next_select_cycle_ = 0;
    scheduler_->OnRequestQueued(ref, now);
}

void
Controller::Tick(DramCycle now)
{
    // Retirement fast path: in-burst completion cycles are known at issue
    // time, so the scan is pointless before the earliest of them.
    if (!config_.fast_path || now >= next_retire_check_) {
        RetireFinished(now);
    }
    scheduler_->OnDramCycle(now);

    bool issued = HandleRefresh(now);
    if (!issued) {
        // Selection fast path: while the cached bound proves no queued
        // command can pass its timing checks, the whole two-level scan is
        // skipped.  The bound stays valid because bank / rank / bus timers
        // move only when a command issues and the candidate set grows only
        // on arrival — both reset next_select_cycle_.  Skipping a cycle
        // that issues nothing is observationally identical to scanning it:
        // Pick() is side-effect-free across all schedulers, and the write-
        // drain watermark state is kept cycle-exact by RetireFinished
        // (retirement is the only event that changes queue sizes during a
        // skip window; see the note there).
        if (!config_.fast_path || now >= next_select_cycle_) {
            fast_stats_.select_scans += 1;
            UpdateWriteDrain();

            MemRequest* chosen = nullptr;
            if (write_drain_active_) {
                chosen = SelectRequest(write_queue_, now);
            }
            if (chosen == nullptr) {
                chosen = SelectRequest(read_queue_, now);
            }
            if (chosen == nullptr && !write_drain_active_) {
                chosen = SelectRequest(write_queue_, now);
            }
            if (chosen != nullptr) {
                IssueFor(*chosen, now);
            } else if (config_.fast_path) {
                next_select_cycle_ = NextReadyBound(now);
            }
        } else {
            fast_stats_.select_skips += 1;
            if (config_.verify_fast_path) {
                PARBS_ASSERT(!AnyCommandReady(now),
                             "fast path skipped a cycle with a ready "
                             "command");
            }
        }
    }

    if (watchdog_) {
        watchdog_->Check(now, read_queue_, write_queue_, *scheduler_,
                         channel_, last_command_cycle_);
    }

    SampleBlp();
}

void
Controller::RetireFinished(DramCycle now)
{
    fast_stats_.retire_scans += 1;
    // Collect first, then remove: removal invalidates the queue's view.
    std::vector<RequestId> done_reads;
    std::vector<RequestId> done_writes;
    for (const MemRequest* request : read_queue_.requests()) {
        if (request->state == RequestState::kInBurst &&
            request->completion_cycle <= now) {
            done_reads.push_back(request->id);
        }
    }
    for (const MemRequest* request : write_queue_.requests()) {
        if (request->state == RequestState::kInBurst &&
            request->completion_cycle <= now) {
            done_writes.push_back(request->id);
        }
    }

    for (RequestId id : done_reads) {
        std::unique_ptr<MemRequest> request = read_queue_.Remove(id);
        request->state = RequestState::kCompleted;
        LeaveService(*request);

        ControllerThreadStats& stats = stats_[request->thread];
        stats.reads_completed += 1;
        const DramCycle latency = request->Latency();
        stats.read_latency_sum += latency;
        stats.read_latency_max = std::max(stats.read_latency_max, latency);
        switch (request->service_class) {
          case dram::RowBufferState::kHit:
            stats.read_row_hits += 1;
            break;
          case dram::RowBufferState::kClosed:
            stats.read_row_closed += 1;
            break;
          case dram::RowBufferState::kConflict:
            stats.read_row_conflicts += 1;
            break;
        }

        scheduler_->OnRequestComplete(*request, now);
        if (read_complete_) {
            read_complete_(*request);
        }
    }

    for (RequestId id : done_writes) {
        std::unique_ptr<MemRequest> request = write_queue_.Remove(id);
        request->state = RequestState::kCompleted;
        stats_[request->thread].writes_completed += 1;
        scheduler_->OnRequestComplete(*request, now);
    }

    // Keep the write-drain hysteresis exact across skipped selection scans:
    // the watermark state is path-dependent (a dip to the low watermark must
    // turn draining off even if the queue refills before the next scan), and
    // during a skip window retirement is the only event that changes queue
    // sizes.  Updating here — at the same point in the cycle the per-cycle
    // scan would have sampled — reproduces the cycle-exact state machine;
    // between size changes the update is a no-op, and arrivals already force
    // a scan on their next cycle.
    UpdateWriteDrain();

    RecomputeNextRetire();
}

void
Controller::UpdateWriteDrain()
{
    // Write-drain hysteresis: strict read priority by default (the paper's
    // policy), forced drain only as overflow protection.
    if (write_queue_.size() >= config_.write_drain_high) {
        write_drain_active_ = true;
    } else if (write_queue_.size() <= config_.write_drain_low) {
        write_drain_active_ = false;
    }
}

void
Controller::RecomputeNextRetire()
{
    next_retire_check_ = kNeverCycle;
    for (const MemRequest* request : read_queue_.requests()) {
        if (request->state == RequestState::kInBurst) {
            next_retire_check_ =
                std::min(next_retire_check_, request->completion_cycle);
        }
    }
    for (const MemRequest* request : write_queue_.requests()) {
        if (request->state == RequestState::kInBurst) {
            next_retire_check_ =
                std::min(next_retire_check_, request->completion_cycle);
        }
    }
}

bool
Controller::HandleRefresh(DramCycle now)
{
    if (!config_.enable_refresh || channel_.timing().tREFI == 0) {
        return false;
    }
    for (std::uint32_t r = 0; r < channel_.num_ranks(); ++r) {
        dram::Rank& rank = channel_.rank(r);
        if (!rank.RefreshDue(now)) {
            continue;
        }
        if (rank.CanRefresh(now)) {
            dram::Command refresh{dram::CommandType::kRefresh, r, 0, 0};
            channel_.Issue(refresh, now);
            RecordCommand(dram::CommandType::kRefresh, now);
            return true;
        }
        // Quiesce: precharge one open bank that is ready for it.
        for (std::uint32_t b : rank.OpenBanks()) {
            dram::Command precharge{dram::CommandType::kPrecharge, r, b, 0};
            if (channel_.CanIssue(precharge, now)) {
                channel_.Issue(precharge, now);
                RecordCommand(dram::CommandType::kPrecharge, now);
                return true;
            }
        }
        // Nothing issuable yet (e.g. tRAS pending); the candidate filter
        // below keeps new traffic away from this rank so it drains.
    }
    return false;
}

MemRequest*
Controller::SelectRequest(const RequestQueue& queue, DramCycle now)
{
    if (queue.Empty()) {
        return nullptr;
    }
    const bool refresh_active =
        config_.enable_refresh && channel_.timing().tREFI != 0;

    // Level 1: group queued requests by bank.
    per_bank_.resize(queue.num_banks());
    for (auto& bank_candidates : per_bank_) {
        bank_candidates.clear();
    }
    for (MemRequest* request : queue.requests()) {
        if (request->state != RequestState::kQueued) {
            continue;
        }
        // A rank with an overdue refresh accepts no new commands until the
        // refresh has been performed (starvation-free refresh guarantee).
        if (refresh_active &&
            channel_.rank(request->coords.rank).RefreshDue(now)) {
            continue;
        }
        const dram::Bank& bank =
            channel_.bank(request->coords.rank, request->coords.bank);
        Candidate candidate;
        candidate.request = request;
        candidate.next_command =
            bank.NextCommandFor(request->coords.row, request->is_write);
        candidate.row_hit = bank.open_row() == request->coords.row;
        candidate.row_open_since = bank.open_since();
        per_bank_[FlatBank(*request)].push_back(candidate);
    }

    // Level 2: each bank's scheduler-chosen request becomes a finalist if
    // its next command passes every timing check *now*.
    finalists_.clear();
    for (const auto& bank_candidates : per_bank_) {
        if (bank_candidates.empty()) {
            continue;
        }
        MemRequest* winner = scheduler_->Pick(bank_candidates, now);
        if (winner == nullptr) {
            continue;
        }
        const Candidate* candidate = nullptr;
        for (const Candidate& c : bank_candidates) {
            if (c.request == winner) {
                candidate = &c;
                break;
            }
        }
        PARBS_ASSERT(candidate != nullptr,
                     "scheduler picked a request outside the bank pool");
        dram::Command command{candidate->next_command,
                              winner->coords.rank, winner->coords.bank,
                              winner->coords.row};
        if (channel_.CanIssue(command, now)) {
            finalists_.push_back(*candidate);
        }
    }
    if (finalists_.empty()) {
        return nullptr;
    }
    return scheduler_->Pick(finalists_, now);
}

void
Controller::IssueFor(MemRequest& request, DramCycle now)
{
    const dram::Bank& bank =
        channel_.bank(request.coords.rank, request.coords.bank);
    const dram::CommandType type =
        bank.NextCommandFor(request.coords.row, request.is_write);
    dram::Command command{type, request.coords.rank, request.coords.bank,
                          request.coords.row};
    const DramCycle done = channel_.Issue(command, now);
    RecordCommand(type, now);

    if (request.first_command_cycle == kNeverCycle) {
        request.first_command_cycle = now;
        // The first command tells us what the row-buffer looked like when
        // service began: column command => hit, ACTIVATE => closed,
        // PRECHARGE => conflict.
        switch (type) {
          case dram::CommandType::kRead:
          case dram::CommandType::kWrite:
            request.service_class = dram::RowBufferState::kHit;
            break;
          case dram::CommandType::kActivate:
            request.service_class = dram::RowBufferState::kClosed;
            break;
          case dram::CommandType::kPrecharge:
            request.service_class = dram::RowBufferState::kConflict;
            break;
          case dram::CommandType::kRefresh:
            PARBS_ASSERT(false, "refresh issued for a request");
            break;
        }
        request.service_class_valid = true;
        if (!request.is_write) {
            EnterService(request);
        }
    }

    if (type == dram::CommandType::kRead ||
        type == dram::CommandType::kWrite) {
        request.state = RequestState::kInBurst;
        request.completion_cycle = done;
        next_retire_check_ = std::min(next_retire_check_, done);
    }

    scheduler_->OnCommandIssued(request, command, now);
}

const ControllerThreadStats&
Controller::thread_stats(ThreadId thread) const
{
    PARBS_ASSERT(thread < stats_.size(), "thread id out of range");
    return stats_[thread];
}

std::uint64_t
Controller::commands_issued(dram::CommandType type) const
{
    return commands_by_type_[static_cast<int>(type)];
}

std::uint64_t
Controller::total_commands_issued() const
{
    std::uint64_t total = 0;
    for (std::uint64_t count : commands_by_type_) {
        total += count;
    }
    return total;
}

void
Controller::EnableProtocolCheck(const dram::TimingParams& reference,
                                dram::ProtocolChecker::Mode mode)
{
    channel_.EnableProtocolCheck(&reference, mode);
}

std::string
Controller::Diagnostics(DramCycle now) const
{
    return FormatControllerDiagnostics(now, read_queue_, write_queue_,
                                       *scheduler_, channel_);
}

void
Controller::RecordCommand(dram::CommandType type, DramCycle now)
{
    commands_by_type_[static_cast<int>(type)] += 1;
    last_command_cycle_ = now;
    // Every issue moves bank / rank / bus timers (and may close or open a
    // row), so any cached readiness bound is stale.
    next_select_cycle_ = 0;
}

DramCycle
Controller::NextReadyBound(DramCycle now) const
{
    const bool refresh_active =
        config_.enable_refresh && channel_.timing().tREFI != 0;
    DramCycle bound = kNeverCycle;
    for (const RequestQueue* queue : {&read_queue_, &write_queue_}) {
        for (const MemRequest* request : queue->requests()) {
            if (request->state != RequestState::kQueued) {
                continue;
            }
            // A rank with an overdue refresh accepts no new commands until
            // the refresh issues — and issuing it resets the cache, so the
            // request contributes nothing to the bound until then.
            if (refresh_active &&
                channel_.rank(request->coords.rank).RefreshDue(now)) {
                continue;
            }
            const dram::Bank& bank =
                channel_.bank(request->coords.rank, request->coords.bank);
            const dram::Command command{
                bank.NextCommandFor(request->coords.row, request->is_write),
                request->coords.rank, request->coords.bank,
                request->coords.row};
            bound = std::min(bound, channel_.EarliestIssue(command));
        }
    }
    return bound;
}

bool
Controller::AnyCommandReady(DramCycle now) const
{
    const bool refresh_active =
        config_.enable_refresh && channel_.timing().tREFI != 0;
    for (const RequestQueue* queue : {&read_queue_, &write_queue_}) {
        for (const MemRequest* request : queue->requests()) {
            if (request->state != RequestState::kQueued) {
                continue;
            }
            if (refresh_active &&
                channel_.rank(request->coords.rank).RefreshDue(now)) {
                continue;
            }
            const dram::Bank& bank =
                channel_.bank(request->coords.rank, request->coords.bank);
            const dram::Command command{
                bank.NextCommandFor(request->coords.row, request->is_write),
                request->coords.rank, request->coords.bank,
                request->coords.row};
            if (channel_.CanIssue(command, now)) {
                return true;
            }
        }
    }
    return false;
}

std::uint32_t
Controller::FlatBank(const MemRequest& request) const
{
    return request.coords.rank * channel_.rank(0).num_banks() +
           request.coords.bank;
}

void
Controller::EnterService(const MemRequest& request)
{
    const std::size_t index =
        static_cast<std::size_t>(request.thread) * read_queue_.num_banks() +
        FlatBank(request);
    if (in_service_[index]++ == 0) {
        busy_banks_[request.thread] += 1;
    }
}

void
Controller::LeaveService(const MemRequest& request)
{
    const std::size_t index =
        static_cast<std::size_t>(request.thread) * read_queue_.num_banks() +
        FlatBank(request);
    PARBS_ASSERT(in_service_[index] > 0, "in-service underflow");
    if (--in_service_[index] == 0) {
        PARBS_ASSERT(busy_banks_[request.thread] > 0,
                     "busy-bank underflow");
        busy_banks_[request.thread] -= 1;
    }
}

void
Controller::SampleBlp()
{
    for (std::uint32_t thread = 0; thread < num_threads_; ++thread) {
        if (busy_banks_[thread] > 0) {
            stats_[thread].blp_sum += busy_banks_[thread];
            stats_[thread].blp_cycles += 1;
        }
    }
}

} // namespace parbs
