/**
 * @file
 * Controller-side RAS (reliability / availability / serviceability):
 * configuration, the per-channel recovery engine, and the structured
 * machine-check error.
 *
 * The engine overlays recovery *policy* state on the stateless device
 * error model (dram/error_model.hh):
 *
 *  - per-row read-access counters keying the transient draws (purely a
 *    function of each channel's tick order, hence identical between the
 *    serial and sharded engines);
 *  - the remap table of retired rows (post-package-repair style): a
 *    retired row is served from spare capacity and never errors again;
 *    the table has a hard capacity — exhaustion is a MachineCheckError;
 *  - per-bank retry backoff holds: after an uncorrectable read the bank
 *    is held for `retry_backoff` cycles so the retry does not spin on a
 *    row that needs time (and so other banks' traffic proceeds).
 *
 * The Controller drives every transition (see DESIGN.md §6 for the
 * retry/retirement state machine); this class only keeps the books.
 */

#ifndef PARBS_MEM_RAS_HH
#define PARBS_MEM_RAS_HH

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/types.hh"
#include "dram/error_model.hh"
#include "dram/timing.hh"

namespace parbs {

/**
 * Structured machine check: an uncorrectable error survived the retry
 * budget and the remap table has no spare capacity left.  Deliberately a
 * catchable exception (never an abort) so harnesses degrade gracefully —
 * the fault-injection driver treats it as its own defense class.
 */
class MachineCheckError : public std::runtime_error {
  public:
    explicit MachineCheckError(const std::string& what)
        : std::runtime_error(what)
    {
    }
};

/** RAS knobs, carried inside ControllerConfig (paper-less defaults: off). */
struct RasConfig {
    /** Master switch; when false no RAS state is allocated at all. */
    bool enabled = false;

    // --- device error model -----------------------------------------------
    /** Per-read probability of a transient error. */
    double transient_error_rate = 0.0;
    /** Fraction of transient errors that exceed SEC-DED correction. */
    double transient_uncorrectable = 0.1;
    /** Fraction of rows permanently stuck (uncorrectable until retired). */
    double stuck_row_fraction = 0.0;
    /** Error-model seed; 0 means "derive from the system seed". */
    std::uint64_t seed = 0;
    /** Channel index, stamped by the System (decorrelates channels). */
    std::uint32_t channel = 0;

    // --- recovery policy --------------------------------------------------
    /** Uncorrectable-read retries before the row is retired. */
    std::uint32_t retry_budget = 3;
    /** Per-bank hold after an uncorrectable read, DRAM cycles (>= 1). */
    DramCycle retry_backoff = 16;
    /** Remap-table capacity (retired rows); exhaustion is a machine check. */
    std::uint32_t remap_capacity = 64;

    // --- patrol scrub -----------------------------------------------------
    /** Cycles between patrol-scrub reads; 0 disables scrubbing. */
    DramCycle scrub_interval = 0;
    /** Scrub stands down while this many demand reads are queued. */
    std::size_t scrub_demote_reads = 16;

    /** @throws ConfigError on out-of-range rates or a zero backoff. */
    void Validate() const;
};

/** Monotone RAS event counters (reported in stats, sampler, watchdog). */
struct RasStats {
    std::uint64_t corrected = 0;          ///< Demand reads corrected in flight.
    std::uint64_t uncorrectable = 0;      ///< Demand reads that failed ECC.
    std::uint64_t retries = 0;            ///< Controller-issued read retries.
    std::uint64_t rows_retired = 0;       ///< Rows moved to the remap table.
    std::uint64_t machine_checks = 0;     ///< Remap-capacity exhaustions.
    std::uint64_t scrub_reads = 0;        ///< Patrol-scrub reads issued.
    std::uint64_t scrub_corrected = 0;    ///< Scrub reads corrected.
    std::uint64_t scrub_uncorrectable = 0;///< Scrub reads that failed ECC.
};

/** Per-channel RAS bookkeeping (see file comment). */
class RasEngine {
  public:
    RasEngine(const RasConfig& config, const dram::Geometry& geometry);

    const RasConfig& config() const { return config_; }

    /**
     * ECC outcome of a demand read of (rank, bank, row), consuming one
     * per-row access draw.  Remapped (retired) rows are always clean;
     * stuck rows are always uncorrectable; otherwise the transient draw
     * decides.
     */
    dram::EccOutcome ClassifyRead(std::uint32_t rank, std::uint32_t bank,
                                  std::uint32_t row);

    /** Same classification for a patrol-scrub read (same draw stream). */
    dram::EccOutcome
    ClassifyScrub(std::uint32_t rank, std::uint32_t bank, std::uint32_t row)
    {
        return ClassifyRead(rank, bank, row);
    }

    /** @return true if (rank, bank, row) is in the remap table. */
    bool IsRetired(std::uint32_t rank, std::uint32_t bank,
                   std::uint32_t row) const;

    /**
     * Moves a row into the remap table.
     * @return false when the table is at capacity (caller raises the
     *         machine check); true on success (or if already retired).
     */
    bool TryRetireRow(std::uint32_t rank, std::uint32_t bank,
                      std::uint32_t row);

    std::size_t remap_used() const { return retired_.size(); }
    std::uint32_t remap_capacity() const { return config_.remap_capacity; }

    /** Starts (or extends) a retry-backoff hold on @p flat_bank. */
    void HoldBank(std::uint32_t flat_bank, DramCycle until);

    /** First cycle @p flat_bank accepts demand selection again (0 = free). */
    DramCycle BankHoldUntil(std::uint32_t flat_bank) const
    {
        return hold_until_[flat_bank];
    }

    RasStats& stats() { return stats_; }
    const RasStats& stats() const { return stats_; }

    /** One-line counter summary ("corrected=... remap=2/64 ...") for the
     *  stats dump and the watchdog diagnostics. */
    std::string Summary() const;

    /** Appends the watchdog diagnostic block: the summary line plus every
     *  bank hold still pending at @p now. */
    void DumpState(std::ostream& out, DramCycle now) const;

  private:
    RasConfig config_;
    dram::ErrorModel model_;
    std::uint32_t banks_per_rank_;
    std::uint32_t rows_per_bank_;

    /** Read-access draw index per (rank, bank, row). */
    std::vector<std::uint32_t> access_counts_;
    /** Retired rows, keyed by the packed (rank, bank, row) coordinate. */
    std::unordered_set<std::uint64_t> retired_;
    /** Retry-backoff expiry per flat bank (0 = no hold). */
    std::vector<DramCycle> hold_until_;

    RasStats stats_;

    std::uint64_t
    Key(std::uint32_t rank, std::uint32_t bank, std::uint32_t row) const
    {
        return (static_cast<std::uint64_t>(rank * banks_per_rank_ + bank) <<
                32) |
               row;
    }
};

} // namespace parbs

#endif // PARBS_MEM_RAS_HH
