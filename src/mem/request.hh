/**
 * @file
 * The memory request record that flows from the cores through the memory
 * request buffer, the scheduler, and the DRAM device model.
 *
 * Scheduler-visible bookkeeping that the paper keeps per request (Table 1:
 * the Marked bit, thread ID, and the priority components) lives directly in
 * this struct; schedulers that need more (e.g. NFQ's virtual finish time)
 * also stash it here so the hot scheduling loop avoids hash-map lookups.
 */

#ifndef PARBS_MEM_REQUEST_HH
#define PARBS_MEM_REQUEST_HH

#include <cstddef>
#include <cstdint>

#include "common/types.hh"
#include "dram/address_mapper.hh"
#include "dram/command.hh"

namespace parbs {

/** Lifecycle of a request inside the controller. */
enum class RequestState : std::uint8_t {
    kQueued,    ///< Waiting in the request buffer; schedulable.
    kInBurst,   ///< Column command issued; data burst in flight.
    kCompleted, ///< Data transferred; about to be retired from the buffer.
};

/**
 * One DRAM read or write request.
 *
 * Field order is deliberate: the members a scheduler's per-cycle candidate
 * walk touches — the bank-chain link, thread id, row coordinates, arrival
 * cycle, the marked / state / priority bits, and NFQ's virtual finish time
 * — are packed into the first cache line, so walking a bank chain at
 * 256-core occupancies costs one line per request instead of two.  The
 * static_asserts below pin that contract.
 */
struct MemRequest {
    // --- Scheduler-hot: first cache line --------------------------------

    /**
     * Intrusive forward link of the per-(rank,bank) chain of *queued*
     * requests, kept in arrival order by RequestQueue.  A request is on
     * its bank's chain exactly while it is schedulable (state == kQueued
     * and still buffered); the links let the controller gather candidates
     * bank by bank in O(queued-in-bank) and unlink in O(1).
     */
    MemRequest* bank_next = nullptr;

    ThreadId thread = kInvalidThread;
    dram::DecodedAddr coords;

    /** PAR-BS: request belongs to the current batch. */
    bool marked = false;
    bool is_write = false;
    RequestState state = RequestState::kQueued;
    /** True while the request is linked into its bank chain. */
    bool bank_linked = false;

    DramCycle arrival_dram = 0;
    /** NFQ: virtual finish time of this request (0 = not yet computed). */
    std::uint64_t virtual_finish_time = 0;
    RequestId id = 0;

    // --- Warm: retirement / issue bookkeeping ---------------------------

    /** Backward chain link (touched only on unlink). */
    MemRequest* bank_prev = nullptr;

    Addr addr = 0;
    /** Arrival time at the controller, CPU clock domain. */
    CpuCycle arrival_cpu = 0;

    /** Cycle the first DRAM command for this request was issued. */
    DramCycle first_command_cycle = kNeverCycle;
    /** Cycle the column (data) command was issued (valid once in kInBurst). */
    DramCycle burst_issue_cycle = kNeverCycle;
    /** Cycle the data burst completes (valid once in kInBurst). */
    DramCycle completion_cycle = kNeverCycle;

    /**
     * Row-buffer status observed when the first command for this request
     * was issued (the paper's hit / closed / conflict categories); used for
     * the row-buffer hit-rate statistics.  Kept across ECC retries (it
     * describes first service, not the final attempt).
     */
    dram::RowBufferState service_class = dram::RowBufferState::kClosed;
    bool service_class_valid = false;

    // --- RAS bookkeeping (mem/ras.hh) -----------------------------------

    /** Uncorrectable-ECC retries consumed so far (reset after retirement). */
    std::uint32_t retries = 0;
    /**
     * Completion cycle of the *first* burst attempt, kept across retries:
     * completion_cycle - first_attempt_completion is the request's recovery
     * tax (0 for reads that completed cleanly on the first attempt).
     */
    DramCycle first_attempt_completion = kNeverCycle;

    /** @return latency from arrival to completion, in DRAM cycles.
     *  @pre the request has completed. */
    DramCycle
    Latency() const
    {
        return completion_cycle - arrival_dram;
    }
};

// The scheduler-hot layout contract: everything a candidate walk reads
// lives in the first 64 bytes (see the struct comment).
static_assert(offsetof(MemRequest, bank_next) == 0,
              "chain link must lead the request layout");
static_assert(offsetof(MemRequest, coords) + sizeof(dram::DecodedAddr) <= 64 &&
                  offsetof(MemRequest, marked) < 64 &&
                  offsetof(MemRequest, state) < 64 &&
                  offsetof(MemRequest, arrival_dram) + sizeof(DramCycle) <= 64 &&
                  offsetof(MemRequest, virtual_finish_time) +
                          sizeof(std::uint64_t) <= 64 &&
                  offsetof(MemRequest, id) + sizeof(RequestId) <= 64,
              "scheduler-hot fields must stay within the first cache line");

} // namespace parbs

#endif // PARBS_MEM_REQUEST_HH
