#include "mem/ras.hh"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "common/assert.hh"

namespace parbs {

void
RasConfig::Validate() const
{
    if (!enabled) {
        return;
    }
    dram::ErrorModelConfig model;
    model.transient_error_rate = transient_error_rate;
    model.transient_uncorrectable = transient_uncorrectable;
    model.stuck_row_fraction = stuck_row_fraction;
    model.Validate();
    if (retry_backoff == 0) {
        // A zero backoff would let a failed read re-issue on its retire
        // cycle, which the sharded retire schedule cannot represent.
        PARBS_FATAL("ras: retry_backoff must be >= 1 DRAM cycle");
    }
}

RasEngine::RasEngine(const RasConfig& config, const dram::Geometry& geometry)
    : config_(config),
      model_([&] {
          dram::ErrorModelConfig model;
          model.seed = config.seed;
          model.channel = config.channel;
          model.transient_error_rate = config.transient_error_rate;
          model.transient_uncorrectable = config.transient_uncorrectable;
          model.stuck_row_fraction = config.stuck_row_fraction;
          return model;
      }()),
      banks_per_rank_(geometry.banks_per_rank),
      rows_per_bank_(geometry.rows_per_bank),
      access_counts_(static_cast<std::size_t>(geometry.ranks_per_channel) *
                         geometry.banks_per_rank * geometry.rows_per_bank,
                     0),
      hold_until_(static_cast<std::size_t>(geometry.ranks_per_channel) *
                      geometry.banks_per_rank,
                  0)
{
    PARBS_ASSERT(config.enabled, "RasEngine built with RAS disabled");
    config_.Validate();
}

dram::EccOutcome
RasEngine::ClassifyRead(std::uint32_t rank, std::uint32_t bank,
                        std::uint32_t row)
{
    const std::size_t index =
        (static_cast<std::size_t>(rank) * banks_per_rank_ + bank) *
            rows_per_bank_ +
        row;
    const std::uint32_t access = access_counts_[index]++;
    if (IsRetired(rank, bank, row)) {
        // Remapped rows are served from spare capacity: no device faults.
        return dram::EccOutcome::kClean;
    }
    if (model_.RowStuck(rank, bank, row)) {
        return dram::EccOutcome::kUncorrectable;
    }
    return model_.ClassifyTransient(rank, bank, row, access);
}

bool
RasEngine::IsRetired(std::uint32_t rank, std::uint32_t bank,
                     std::uint32_t row) const
{
    return retired_.count(Key(rank, bank, row)) != 0;
}

bool
RasEngine::TryRetireRow(std::uint32_t rank, std::uint32_t bank,
                        std::uint32_t row)
{
    const std::uint64_t key = Key(rank, bank, row);
    if (retired_.count(key) != 0) {
        return true;
    }
    if (retired_.size() >= config_.remap_capacity) {
        return false;
    }
    retired_.insert(key);
    return true;
}

void
RasEngine::HoldBank(std::uint32_t flat_bank, DramCycle until)
{
    PARBS_ASSERT(flat_bank < hold_until_.size(),
                 "bank hold out of range");
    hold_until_[flat_bank] = std::max(hold_until_[flat_bank], until);
}

std::string
RasEngine::Summary() const
{
    std::ostringstream out;
    out << "corrected=" << stats_.corrected
        << " uncorrectable=" << stats_.uncorrectable
        << " retries=" << stats_.retries << " remap=" << retired_.size()
        << "/" << config_.remap_capacity
        << " machine_checks=" << stats_.machine_checks
        << " scrub_reads=" << stats_.scrub_reads
        << " scrub_corrected=" << stats_.scrub_corrected
        << " scrub_uncorrectable=" << stats_.scrub_uncorrectable;
    return out.str();
}

void
RasEngine::DumpState(std::ostream& out, DramCycle now) const
{
    out << "  ras: " << Summary() << "\n";
    for (std::size_t bank = 0; bank < hold_until_.size(); ++bank) {
        if (hold_until_[bank] > now) {
            out << "    bank " << bank << ": retry hold until cycle "
                << hold_until_[bank] << "\n";
        }
    }
}

} // namespace parbs
