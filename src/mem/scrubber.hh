/**
 * @file
 * Patrol-scrub state: the row cursor, the scrub clock, and the single
 * in-flight scrub read.
 *
 * The scrubber is a *passive* state machine — the Controller drives it
 * from its per-cycle loop (Controller::TryScrub), issuing real commands
 * through the channel so the protocol checker and bank/bus timing see
 * scrub traffic exactly like demand traffic.  Arbitration rules
 * (DESIGN.md §6): a scrub command may issue only on a cycle where demand
 * selection produced nothing, no refresh issued, the write drain is not
 * active, and fewer than `scrub_demote_reads` demand reads are queued —
 * i.e. scrub is the lowest-priority internal request class and demotes
 * itself under queue pressure.  Like refresh, it is controller-generated
 * and never enters the scheduler's request buffer.
 */

#ifndef PARBS_MEM_SCRUBBER_HH
#define PARBS_MEM_SCRUBBER_HH

#include <cstdint>

#include "common/types.hh"
#include "dram/error_model.hh"
#include "dram/timing.hh"

namespace parbs {

/** Patrol-scrub cursor + in-flight read (see file comment). */
class Scrubber {
  public:
    Scrubber(const dram::Geometry& geometry, DramCycle interval,
             std::size_t demote_reads);

    DramCycle interval() const { return interval_; }
    std::size_t demote_reads() const { return demote_reads_; }

    // --- cursor -----------------------------------------------------------
    std::uint32_t rank() const { return rank_; }
    std::uint32_t bank() const { return bank_; }
    std::uint32_t row() const { return row_; }

    /** Advances the cursor one row, wrapping row -> bank -> rank. */
    void AdvanceCursor();

    /** Completed full passes over the address space. */
    std::uint64_t sweeps() const { return sweeps_; }

    // --- scrub clock ------------------------------------------------------
    /** Earliest cycle the next scrub read may issue. */
    DramCycle next_due() const { return next_due_; }

    // --- in-flight read ---------------------------------------------------
    bool in_flight() const { return in_flight_; }
    DramCycle completion() const { return completion_; }
    dram::EccOutcome outcome() const { return outcome_; }

    /** Records the scrub read issued for the cursor row: its (pre-known)
     *  burst completion cycle and the ECC outcome drawn at issue. */
    void BeginRead(DramCycle completion, dram::EccOutcome outcome);

    /** Closes the in-flight read at @p now: re-arms the scrub clock one
     *  interval out and advances the cursor past the scrubbed row. */
    void FinishRead(DramCycle now);

  private:
    DramCycle interval_;
    std::size_t demote_reads_;

    std::uint32_t num_ranks_;
    std::uint32_t banks_per_rank_;
    std::uint32_t rows_per_bank_;

    std::uint32_t rank_ = 0;
    std::uint32_t bank_ = 0;
    std::uint32_t row_ = 0;
    std::uint64_t sweeps_ = 0;

    DramCycle next_due_ = 0;

    bool in_flight_ = false;
    DramCycle completion_ = kNeverCycle;
    dram::EccOutcome outcome_ = dram::EccOutcome::kClean;
};

} // namespace parbs

#endif // PARBS_MEM_SCRUBBER_HH
