/**
 * @file
 * The DRAM memory controller: request buffering, write handling, refresh,
 * per-cycle command selection via a pluggable Scheduler, and the per-thread
 * DRAM-side statistics (row-buffer hit rate, bank-level parallelism,
 * request latencies) used throughout the paper's evaluation.
 */

#ifndef PARBS_MEM_CONTROLLER_HH
#define PARBS_MEM_CONTROLLER_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hh"
#include "dram/channel.hh"
#include "mem/ras.hh"
#include "mem/request.hh"
#include "mem/request_queue.hh"
#include "mem/scrubber.hh"
#include "mem/watchdog.hh"
#include "sched/scheduler.hh"

namespace parbs {

namespace obs {
class Tracer;
class LatencyAnatomy;
} // namespace obs

/** Controller sizing and policy knobs (paper baseline in defaults). */
struct ControllerConfig {
    /** Memory request buffer entries (reads). */
    std::size_t read_queue_capacity = 128;
    /** Write data buffer entries. */
    std::size_t write_queue_capacity = 64;
    /**
     * Write-drain watermarks.  The paper's policy is strict read-over-write
     * priority; writes are serviced when no read command is ready.  As
     * overflow protection — real controllers must bound the write buffer —
     * once the write queue reaches `write_drain_high` writes win over reads
     * until it falls to `write_drain_low`.
     */
    std::size_t write_drain_high = 56;
    std::size_t write_drain_low = 24;
    /** Model auto-refresh (tREFI/tRFC).  Disabled if timing.tREFI == 0. */
    bool enable_refresh = true;
    /**
     * Re-validate every issued DRAM command against an independent shadow
     * model of the JEDEC constraints (see dram/protocol_checker.hh); a
     * violation throws ProtocolError with full command-history context.
     */
    bool protocol_check = false;
    /**
     * Per-cycle fast path: skip the candidate scan on cycles where the
     * cached next-event bound proves no command can become ready, and skip
     * the retirement scan until the earliest in-flight burst completes.
     * Exactness-preserving (the bound is derived from the same bank / rank
     * / bus timers CanIssue checks), so this is only ever disabled to
     * cross-check the fast path against the exhaustive per-cycle scan.
     */
    bool fast_path = true;
    /**
     * On every cycle the fast path skips, re-scan exhaustively and abort
     * if a ready command was skippable — the skip-ahead analogue of the
     * protocol checker, enabled alongside it in validation runs.
     */
    bool verify_fast_path = false;
    /**
     * Per-bank indexed selection (DESIGN.md §5e): gather candidates from
     * the request buffer's per-bank chains, skip banks whose timing FSM
     * cannot issue any candidate command this cycle, and let the scheduler
     * memoize per-bank winners.  Exactness-preserving (same winner as the
     * full-buffer scan every cycle), so this is only ever disabled to
     * cross-check or to benchmark the scan path.
     */
    bool indexed_selection = true;
    /**
     * Run *both* selection paths every selection cycle and abort if they
     * disagree — the selection analogue of verify_fast_path, enabled
     * alongside it in validation runs.  Skipped automatically for
     * schedulers whose Pick() is not deterministic (scheduler chaos).
     */
    bool verify_indexed_selection = false;
    /**
     * Cross-check every Nth selection decision instead of every one (1 =
     * exhaustive).  Divergence between the indexed and scan paths is a
     * deterministic function of the buffer/timing state, so once state
     * diverges it stays diverged and a sampled check still catches it —
     * sampling only delays detection, never changes results.  Validation
     * runs above 32 cores use this to keep PARBS_CHECK wall-clock sane.
     */
    std::uint32_t verify_sample_period = 1;
    /** Forward-progress watchdog (starvation / batch / deadlock bounds). */
    WatchdogConfig watchdog;
    /**
     * RAS: deterministic device error model, ECC outcome classification
     * with bounded retry + row retirement, and patrol scrubbing (DESIGN.md
     * §6).  Disabled by default; when disabled no RAS state is allocated
     * and every hook is one null-pointer branch (the PR 5 discipline).
     * Note: enabling the scrubber forces fast_path off — the skip-ahead
     * bound does not model the scrub clock, and scrub decisions are made
     * on idle cycles the fast path would otherwise skip.
     */
    RasConfig ras;

    /** @throws ConfigError on invalid sizing or watermarks. */
    void Validate() const;
};

/** Per-thread statistics gathered at the controller. */
struct ControllerThreadStats {
    std::uint64_t reads_completed = 0;
    std::uint64_t writes_completed = 0;

    /** Row-buffer outcome of the *first* command of each read request. */
    std::uint64_t read_row_hits = 0;
    std::uint64_t read_row_closed = 0;
    std::uint64_t read_row_conflicts = 0;

    /** Sum/max of read-request latency (arrival to data), DRAM cycles. */
    std::uint64_t read_latency_sum = 0;
    std::uint64_t read_latency_max = 0;

    /**
     * Bank-level parallelism accounting: `blp_sum` accumulates, for every
     * DRAM cycle in which this thread had at least one request in service,
     * the number of banks concurrently servicing the thread's requests
     * (the Section 7 definition, after Chou et al.'s MLP metric).
     */
    std::uint64_t blp_sum = 0;
    std::uint64_t blp_cycles = 0;

    double
    RowHitRate() const
    {
        const std::uint64_t total =
            read_row_hits + read_row_closed + read_row_conflicts;
        return total == 0 ? 0.0
                          : static_cast<double>(read_row_hits) /
                                static_cast<double>(total);
    }

    double
    AverageBlp() const
    {
        return blp_cycles == 0 ? 0.0
                               : static_cast<double>(blp_sum) /
                                     static_cast<double>(blp_cycles);
    }

    double
    AverageReadLatency() const
    {
        return reads_completed == 0
                   ? 0.0
                   : static_cast<double>(read_latency_sum) /
                         static_cast<double>(reads_completed);
    }
};

/**
 * One memory controller driving one channel.
 *
 * The controller is ticked at the DRAM command clock.  Each tick it retires
 * finished bursts, performs mandatory refreshes, gathers ready candidates,
 * and issues at most one command chosen by the scheduler.
 */
class Controller {
  public:
    /** Invoked when read data returns; @p now is the retiring DRAM cycle
     *  (the sharded System derives the CPU-side delivery time from it). */
    using ReadCompleteCallback =
        std::function<void(const MemRequest&, DramCycle now)>;

    Controller(const ControllerConfig& config,
               const dram::TimingParams& timing,
               const dram::Geometry& geometry, std::uint32_t num_threads,
               std::unique_ptr<Scheduler> scheduler);

    /** Registers the completion callback invoked when read data returns. */
    void SetReadCompleteCallback(ReadCompleteCallback callback);

    /** @return true if the read request buffer has space. */
    bool CanAcceptRead() const { return !read_queue_.Full(); }

    /** @return true if the write buffer has space. */
    bool CanAcceptWrite() const { return !write_queue_.Full(); }

    /**
     * Enqueues a request; the controller takes ownership.
     * @pre the corresponding CanAccept*() returned true.
     */
    void Enqueue(RequestPtr request, DramCycle now);

    /** Advances the controller and its channel by one DRAM cycle. */
    void Tick(DramCycle now);

    Scheduler& scheduler() { return *scheduler_; }
    const Scheduler& scheduler() const { return *scheduler_; }
    const dram::Channel& channel() const { return channel_; }

    const RequestQueue& read_queue() const { return read_queue_; }
    const RequestQueue& write_queue() const { return write_queue_; }
    std::uint32_t num_threads() const { return num_threads_; }

    /**
     * Attaches the observability sinks (DESIGN.md §5f).  Either pointer may
     * be null; both default to null, in which case every emission site
     * reduces to one predictable not-taken branch.  @p channel_id tags the
     * emitted events with this controller's channel index.
     */
    void AttachObservability(obs::Tracer* tracer,
                             obs::LatencyAnatomy* latency,
                             std::uint8_t channel_id);

    const ControllerThreadStats& thread_stats(ThreadId thread) const;

    /** Number of reads currently buffered (queued or in burst). */
    std::size_t pending_reads() const { return read_queue_.size(); }
    std::size_t pending_writes() const { return write_queue_.size(); }

    /**
     * One scheduled read retirement: its completion cycle plus the thread
     * and id the read-complete notification will carry.  The sharded
     * System turns these into core notifications *before* the retiring
     * tick runs (DESIGN.md §5g adaptive lookahead).
     */
    struct PendingRead {
        DramCycle done;
        ThreadId thread;
        RequestId id;
    };

    /**
     * Appends every in-burst request that will retire strictly before
     * @p limit, in retirement order, to the output vectors (reads and
     * writes separately).  This is the sharded System's retire schedule
     * (DESIGN.md §5g): with a lookahead window no longer than the shortest
     * burst latency, no command issued during the window can complete
     * inside it, so these prefixes are *exactly* the queue departures of
     * the next window — known before it runs.  Read entries additionally
     * carry the (thread, id) of the eventual completion notification;
     * ECC-failed reads are excluded (they requeue instead of notifying).
     */
    void PendingRetires(DramCycle limit, std::vector<PendingRead>& reads,
                        std::vector<DramCycle>& writes) const;

    /** Total DRAM commands issued, by type (ACT/PRE/RD/WR/REF). */
    std::uint64_t commands_issued(dram::CommandType type) const;

    /** Total DRAM commands issued, all types. */
    std::uint64_t total_commands_issued() const;

    /**
     * Enables shadow protocol checking against @p reference timing (which
     * may deliberately differ from the timing driving the device model —
     * the fault-injection seam).  The config flag covers the normal path.
     */
    void EnableProtocolCheck(
        const dram::TimingParams& reference,
        dram::ProtocolChecker::Mode mode = dram::ProtocolChecker::Mode::kThrow);

    /** @return the attached checker, or nullptr when checking is off. */
    const dram::ProtocolChecker* protocol_checker() const
    {
        return channel_.protocol_checker();
    }

    /** Structured state dump: queues, bank states, scheduler state. */
    std::string Diagnostics(DramCycle now) const;

    /** Fast-path effectiveness counters (micro_scheduler_cost / tests). */
    struct FastPathStats {
        /** Cycles that ran the full candidate scan. */
        std::uint64_t select_scans = 0;
        /** Cycles the cached next-event bound skipped the scan. */
        std::uint64_t select_skips = 0;
        /** Cycles that ran the retirement scan. */
        std::uint64_t retire_scans = 0;
    };

    const FastPathStats& fast_path_stats() const { return fast_stats_; }

    /** RAS engine (error/retry/retirement books), or null when disabled. */
    const RasEngine* ras() const { return ras_.get(); }

    /** Patrol scrubber, or null when scrubbing is off. */
    const Scrubber* scrubber() const { return scrubber_.get(); }

  private:
    ControllerConfig config_;
    dram::Channel channel_;
    std::uint32_t num_threads_;
    std::unique_ptr<Scheduler> scheduler_;

    RequestQueue read_queue_;
    RequestQueue write_queue_;

    ReadCompleteCallback read_complete_;

    bool write_drain_active_ = false;

    std::unique_ptr<ForwardProgressWatchdog> watchdog_;
    /** Cycle the last DRAM command (any type) was issued. */
    DramCycle last_command_cycle_ = kNeverCycle;

    /** RAS engine; null unless config.ras.enabled (the gating branch). */
    std::unique_ptr<RasEngine> ras_;
    /** Patrol scrubber; null unless RAS is on and scrub_interval > 0. */
    std::unique_ptr<Scrubber> scrubber_;

    /** Observability sinks; null when tracing is off (the gating branch). */
    obs::Tracer* tracer_ = nullptr;
    obs::LatencyAnatomy* latency_obs_ = nullptr;
    std::uint8_t channel_id_ = 0;
    /** Open fast-path skip span (traced runs only): start + length. */
    DramCycle skip_span_start_ = 0;
    std::uint64_t skip_span_len_ = 0;

    std::vector<ControllerThreadStats> stats_;
    std::uint64_t commands_by_type_[5] = {0, 0, 0, 0, 0};

    /** [thread * num_banks + flat_bank] count of in-service requests. */
    std::vector<std::uint32_t> in_service_;
    /** Number of banks with >= 1 in-service request, per thread. */
    std::vector<std::uint32_t> busy_banks_;

    /** Scratch buffers reused across cycles. */
    std::vector<std::vector<Candidate>> per_bank_;
    std::vector<Candidate> finalists_;

    /**
     * Next-event caches (see DESIGN.md "Hot-loop fast path").  Both are
     * conservative lower bounds on when the guarded scan can next do work;
     * kNeverCycle means "not until an invalidating event".
     *
     * `next_select_cycle_`: no queued request's next command can pass
     * CanIssue before this cycle.  Valid until a request arrives or any
     * command issues (both reset it to 0) — the only events that move the
     * bank / rank / bus timers or grow the candidate set.
     *
     * `next_retire_check_`: the earliest completion cycle among in-burst
     * requests; maintained at issue time and recomputed on retirement.
     */
    DramCycle next_select_cycle_ = 0;
    DramCycle next_retire_check_ = kNeverCycle;

    /**
     * One in-flight data burst: its (pre-known) completion cycle, the
     * request, and the ECC verdict drawn at issue time.  A failed read
     * (`ecc_fail`) never retires — at its completion cycle it re-enters
     * the read queue for a retry instead — so the sharded retire schedule
     * (PendingRetires) excludes it.
     */
    struct InFlight {
        DramCycle done;
        RequestId id;
        ThreadId thread;
        bool ecc_fail;
    };

    /**
     * In-burst requests per queue, in completion order.  Burst latency is
     * a per-queue constant (tCL+tBURST for reads, tCWL+tBURST for writes)
     * and commands issue on distinct cycles, so issue order is completion
     * order — retirement pops fronts instead of scanning the buffers.
     */
    std::deque<InFlight> inburst_reads_;
    std::deque<InFlight> inburst_writes_;

    FastPathStats fast_stats_;

    /** Selection decisions seen by the sampled verify cross-check. */
    std::uint64_t verify_decisions_ = 0;

    void RetireFinished(DramCycle now);
    /** @return true if a refresh-related command consumed this cycle. */
    bool HandleRefresh(DramCycle now);
    /**
     * Two-level request selection (Section 3: "a possibly two-level
     * scheduler"): for each bank, the scheduler picks its highest-priority
     * queued request; banks whose winner has a ready command produce a
     * finalist, and the scheduler picks among finalists.  A bank whose
     * top-priority request is still timing-blocked issues nothing — this
     * request-level prioritization is what lets a stream of row hits
     * capture a bank under FR-FCFS and lets PAR-BS's marked requests own
     * their banks.
     *
     * Dispatches to SelectIndexed or SelectScan per the config, and under
     * verify_indexed_selection runs both and asserts they agree.
     * @return the chosen request, or nullptr if nothing can issue.
     */
    MemRequest* SelectRequest(const RequestQueue& queue, DramCycle now);

    /**
     * Indexed selection (DESIGN.md §5e): walk the queue's per-bank chains,
     * skip refresh-blocked and timing-blocked banks (BankCouldIssue), ask
     * the scheduler for each remaining bank's memoized winner, and pick
     * among the ready winners.  O(banks + queued-in-contending-banks) per
     * cycle instead of O(buffered requests).
     */
    MemRequest* SelectIndexed(const RequestQueue& queue, DramCycle now);

    /** Reference selection: the original full-buffer scan. */
    MemRequest* SelectScan(const RequestQueue& queue, DramCycle now);

    /**
     * Per-command-type issue legality for one bank.  Timing legality is
     * row-independent, so one probe per type answers for every candidate
     * in the bank: kActivate when the bank is closed; the queue's column
     * command and kPrecharge when a row is open.
     */
    struct BankIssueOptions {
        bool activate = false;
        bool column = false;
        bool precharge = false;

        bool Any() const { return activate || column || precharge; }
        bool Allows(dram::CommandType type) const
        {
            switch (type) {
              case dram::CommandType::kActivate:
                return activate;
              case dram::CommandType::kRead:
              case dram::CommandType::kWrite:
                return column;
              case dram::CommandType::kPrecharge:
                return precharge;
              case dram::CommandType::kRefresh:
                return false;
            }
            return false;
        }
    };

    /**
     * Bank-ready prefilter: which commands a candidate from this queue
     * could need pass every timing check at @p now.  Exact: an all-false
     * return implies CanIssue is false for every candidate's next command
     * in this bank, because each candidate's next command is one of the
     * probed types, and the finalist check reduces to Allows() on the
     * winner's command type — no repeated channel probe.
     */
    BankIssueOptions BankCouldIssue(const dram::Bank& bank,
                                    std::uint32_t rank,
                                    std::uint32_t bank_in_rank,
                                    bool is_write_queue,
                                    DramCycle now) const;

    void IssueFor(MemRequest& request, DramCycle now);

    /**
     * Handles an uncorrectable read at its completion cycle: requeues the
     * request for a controller-issued retry under a per-bank backoff hold,
     * retiring the row first once the retry budget is exhausted.
     * @throws MachineCheckError if retirement finds the remap table full.
     */
    void RetryFailedRead(RequestPtr request, DramCycle now);

    /**
     * Moves (rank, bank, row) into the remap table with graceful-
     * degradation accounting.  @p thread tags the trace event
     * (kInvalidThread for scrub-triggered retirement).
     * @throws MachineCheckError when the table is at capacity.
     */
    void RetireRow(ThreadId thread, std::uint32_t rank, std::uint32_t bank,
                   std::uint32_t row, DramCycle now);

    /**
     * Issues at most one patrol-scrub command (DESIGN.md §6 arbitration:
     * only on cycles where demand selection produced nothing, no refresh
     * issued, no write drain, and the read queue sits below the demotion
     * watermark).  @return true if a command was issued.
     */
    bool TryScrub(DramCycle now);

    /** Closes the completed scrub read: classification bookkeeping and —
     *  for an uncorrectable row — proactive retirement. */
    void FinishScrub(DramCycle now);

    /**
     * Earliest cycle any currently-queued request's next command could
     * pass every timing check, assuming no arrivals and no issues in the
     * interim (either event resets the cache).  kNeverCycle if no queued
     * candidates exist (or all sit behind an overdue refresh, which must
     * issue — and therefore invalidate — first).  Walks the per-bank
     * chains, so empty banks cost nothing and in-burst requests are never
     * visited.
     */
    DramCycle NextReadyBound(DramCycle now) const;

    /**
     * @return true if any queued candidate passes CanIssue at @p now.
     * Exactly NextReadyBound(now) <= now by the channel's EarliestIssue
     * contract (CanIssue(cmd, t) == (t >= EarliestIssue(cmd)) until the
     * next issue).
     */
    bool AnyCommandReady(DramCycle now) const
    {
        return NextReadyBound(now) <= now;
    }

    /** Recomputes next_retire_check_ from the in-burst requests. */
    void RecomputeNextRetire();

    /**
     * Advances the write-drain watermark state machine from the current
     * write-queue size.  Called wherever the per-cycle loop used to sample
     * it: at every selection scan, and from RetireFinished so that a dip to
     * the low watermark inside a skip window is never missed (hysteresis is
     * path-dependent).  @p now is only used for event timestamps.
     */
    void UpdateWriteDrain(DramCycle now);

    /**
     * Counts an issued command and feeds the progress tracker; on traced
     * runs also emits a kCommand event.  @p thread / @p flat_bank / @p row
     * describe the command's target (sentinels for refresh).
     */
    void RecordCommand(dram::CommandType type, DramCycle now,
                       ThreadId thread, std::uint32_t flat_bank,
                       std::uint32_t row);

    /** Emits and closes the open fast-path skip span, if any. */
    void FlushSkipSpan();

    std::uint32_t FlatBank(const MemRequest& request) const;
    void EnterService(const MemRequest& request);
    void LeaveService(const MemRequest& request);
    void SampleBlp();
};

} // namespace parbs

#endif // PARBS_MEM_CONTROLLER_HH
