/**
 * @file
 * The memory request buffer: bounded storage for outstanding requests plus
 * the per-thread, per-bank occupancy counters that the paper's schedulers
 * consult (Table 1: ReqsInBankPerThread, ReqsPerThread).
 */

#ifndef PARBS_MEM_REQUEST_QUEUE_HH
#define PARBS_MEM_REQUEST_QUEUE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.hh"
#include "mem/request.hh"

namespace parbs {

/**
 * Bounded buffer of outstanding requests with O(1) occupancy queries.
 *
 * Requests stay in the buffer from arrival until their data burst completes
 * (the paper's request buffer holds requests "while they are waiting to be
 * serviced"); schedulers iterate the queued subset each cycle.
 */
class RequestQueue {
  public:
    /**
     * @param capacity maximum simultaneous requests (0 = unbounded)
     * @param num_threads number of threads whose counters to track
     * @param num_ranks ranks on this controller's channel
     * @param banks_per_rank banks in each rank
     */
    RequestQueue(std::size_t capacity, std::uint32_t num_threads,
                 std::uint32_t num_ranks, std::uint32_t banks_per_rank);

    std::size_t size() const { return requests_.size(); }
    std::size_t capacity() const { return capacity_; }
    bool Empty() const { return requests_.empty(); }
    bool Full() const;

    /** Adds a request. @pre !Full() */
    MemRequest& Add(std::unique_ptr<MemRequest> request);

    /**
     * Removes a completed request from the buffer.
     * @return ownership of the removed request.
     * @pre the request is present.
     */
    std::unique_ptr<MemRequest> Remove(RequestId id);

    /** All buffered requests, in arrival order (includes in-burst ones). */
    const std::vector<MemRequest*>& requests() const { return view_; }

    /** Paper counter: requests from @p thread to controller-local @p bank. */
    std::uint32_t ReqsInBankPerThread(ThreadId thread,
                                      std::uint32_t bank) const;

    /** Paper counter: total requests from @p thread in the buffer. */
    std::uint32_t ReqsPerThread(ThreadId thread) const;

    std::uint32_t num_threads() const { return num_threads_; }
    std::uint32_t num_banks() const { return num_banks_; }

    /** Controller-local flat bank index (rank-major) of a request. */
    std::uint32_t FlatBank(const MemRequest& request) const;

  private:
    std::size_t capacity_;
    std::uint32_t num_threads_;
    std::uint32_t banks_per_rank_;
    std::uint32_t num_banks_;

    std::vector<std::unique_ptr<MemRequest>> requests_;
    /** Cached raw-pointer view handed to schedulers (rebuilt on mutation). */
    std::vector<MemRequest*> view_;

    /** [thread * num_banks + bank] occupancy. */
    std::vector<std::uint32_t> per_thread_bank_;
    std::vector<std::uint32_t> per_thread_;

    void RebuildView();
};

} // namespace parbs

#endif // PARBS_MEM_REQUEST_QUEUE_HH
