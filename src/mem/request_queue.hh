/**
 * @file
 * The memory request buffer: bounded storage for outstanding requests plus
 * the per-thread, per-bank occupancy counters that the paper's schedulers
 * consult (Table 1: ReqsInBankPerThread, ReqsPerThread).
 *
 * Beyond the flat arrival-ordered view, the buffer maintains a per-bank
 * *index*: an intrusive, arrival-ordered chain of the queued (schedulable)
 * requests of every (rank, bank), plus per-bank occupancy counters and
 * modification generations.  The controller's per-cycle candidate
 * gathering and the schedulers' memoized per-bank picks (DESIGN.md §5e)
 * are built on this index, making selection cost proportional to the bank
 * count rather than buffer occupancy.
 */

#ifndef PARBS_MEM_REQUEST_QUEUE_HH
#define PARBS_MEM_REQUEST_QUEUE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.hh"
#include "mem/request.hh"
#include "mem/request_pool.hh"

namespace parbs {

/**
 * Bounded buffer of outstanding requests with O(1) occupancy queries.
 *
 * Requests stay in the buffer from arrival until their data burst completes
 * (the paper's request buffer holds requests "while they are waiting to be
 * serviced"); schedulers iterate the queued subset each cycle.
 */
class RequestQueue {
  public:
    /** Arrival-ordered forward range over one bank's queued requests. */
    class BankChain {
      public:
        class Iterator {
          public:
            explicit Iterator(MemRequest* request) : request_(request) {}
            MemRequest* operator*() const { return request_; }
            Iterator&
            operator++()
            {
                request_ = request_->bank_next;
                return *this;
            }
            bool
            operator!=(const Iterator& other) const
            {
                return request_ != other.request_;
            }

          private:
            MemRequest* request_;
        };

        explicit BankChain(MemRequest* head) : head_(head) {}
        Iterator begin() const { return Iterator(head_); }
        Iterator end() const { return Iterator(nullptr); }
        bool empty() const { return head_ == nullptr; }
        MemRequest* front() const { return head_; }

      private:
        MemRequest* head_;
    };

    /**
     * @param capacity maximum simultaneous requests (0 = unbounded)
     * @param num_threads number of threads whose counters to track
     * @param num_ranks ranks on this controller's channel
     * @param banks_per_rank banks in each rank
     */
    RequestQueue(std::size_t capacity, std::uint32_t num_threads,
                 std::uint32_t num_ranks, std::uint32_t banks_per_rank);

    std::size_t size() const { return requests_.size(); }
    std::size_t capacity() const { return capacity_; }
    bool Empty() const { return requests_.empty(); }
    bool Full() const;

    /** Adds a request. @pre !Full() */
    MemRequest& Add(RequestPtr request);

    /**
     * Removes a completed request from the buffer.
     * @return ownership of the removed request.
     * @pre the request is present.
     */
    RequestPtr Remove(RequestId id);

    /**
     * Unlinks @p request from its bank chain when service begins (state
     * left kQueued): the request stays buffered but is no longer a
     * scheduling candidate.  Called by the controller when the first
     * column command for the request issues.
     * @pre the request is in this buffer and currently linked.
     */
    void BeginService(MemRequest& request);

    /** All buffered requests, in arrival order (includes in-burst ones). */
    const std::vector<MemRequest*>& requests() const { return view_; }

    /** Oldest buffered request (front of arrival order), or nullptr. */
    MemRequest*
    Oldest() const
    {
        return view_.empty() ? nullptr : view_.front();
    }

    // --- Per-bank index --------------------------------------------------

    /** Queued (schedulable) requests of @p bank, in arrival order. */
    BankChain BankQueued(std::uint32_t bank) const;

    /** Number of queued requests in controller-local flat @p bank. */
    std::uint32_t QueuedInBank(std::uint32_t bank) const;

    /**
     * Monotonic modification generation of @p bank's chain: bumped on
     * every link/unlink.  Schedulers key memoized per-bank picks on it
     * (see ComparatorScheduler::PickInBank).
     */
    std::uint64_t BankGeneration(std::uint32_t bank) const;

    /**
     * Cross-checks the per-bank index, chains, and occupancy counters
     * against a from-scratch rebuild of the buffer contents; aborts on any
     * divergence.  O(size x banks) — validation/test hook only.
     */
    void CheckIndex() const;

    /** Paper counter: requests from @p thread to controller-local @p bank. */
    std::uint32_t ReqsInBankPerThread(ThreadId thread,
                                      std::uint32_t bank) const;

    /** Paper counter: total requests from @p thread in the buffer. */
    std::uint32_t ReqsPerThread(ThreadId thread) const;

    std::uint32_t num_threads() const { return num_threads_; }
    std::uint32_t num_banks() const { return num_banks_; }

    /** Controller-local flat bank index (rank-major) of a request. */
    std::uint32_t FlatBank(const MemRequest& request) const;

  private:
    std::size_t capacity_;
    std::uint32_t num_threads_;
    std::uint32_t banks_per_rank_;
    std::uint32_t num_banks_;

    std::vector<RequestPtr> requests_;
    /** Cached raw-pointer view handed to schedulers (kept on mutation). */
    std::vector<MemRequest*> view_;

    /** [thread * num_banks + bank] occupancy. */
    std::vector<std::uint32_t> per_thread_bank_;
    std::vector<std::uint32_t> per_thread_;

    /** Per-bank chain endpoints over the queued subset (arrival order). */
    std::vector<MemRequest*> chain_head_;
    std::vector<MemRequest*> chain_tail_;
    /** Per-bank queued (schedulable) request counts. */
    std::vector<std::uint32_t> queued_in_bank_;
    /** Per-bank chain modification generations (start at 1; 0 is never a
     *  valid generation, so zero-initialized memo slots read as stale). */
    std::vector<std::uint64_t> bank_gen_;

    void Link(MemRequest& request);
    void Unlink(MemRequest& request);
};

} // namespace parbs

#endif // PARBS_MEM_REQUEST_QUEUE_HH
