/**
 * @file
 * Slab allocation for MemRequest objects (DESIGN.md §5g, hot-path data
 * layout).  At 64–256-core occupancies the request buffers hold thousands
 * of live requests, and `make_unique` scatters them across the heap — the
 * per-bank chains of DESIGN.md §5e then pointer-chase a cache miss per
 * hop.  A RequestPool carves requests out of contiguous slabs and recycles
 * them LIFO, so a channel's working set stays packed in a few cache-warm
 * pages.
 *
 * Ownership stays `unique_ptr`-shaped: RequestPtr is a unique_ptr whose
 * deleter returns the request to its pool (or plain-deletes it when it was
 * not pool-allocated — `std::make_unique<MemRequest>()` converts
 * implicitly, so tests and benches that build requests by hand keep
 * working unchanged).
 *
 * Thread-safety: none, by design.  The System owns one pool per channel;
 * the sharded engine allocates on the coordinator (core issue) and
 * releases on the channel's worker (retirement), but the two phases are
 * separated by the team barrier and never touch a pool concurrently
 * (DESIGN.md §5g's alternating-phases argument).
 */

#ifndef PARBS_MEM_REQUEST_POOL_HH
#define PARBS_MEM_REQUEST_POOL_HH

#include <cstddef>
#include <memory>
#include <vector>

#include "mem/request.hh"

namespace parbs {

class RequestPool;

/** Deleter that returns a request to its pool; null pool means the request
 *  came from the global heap (e.g. make_unique) and is plain-deleted. */
struct RequestDeleter {
    RequestPool* pool = nullptr;

    RequestDeleter() = default;
    explicit RequestDeleter(RequestPool* p) : pool(p) {}
    /** Implicit from the default deleter so `unique_ptr<MemRequest>`
     *  (make_unique) converts into a RequestPtr. */
    RequestDeleter(std::default_delete<MemRequest>) {} // NOLINT(runtime/explicit)

    void operator()(MemRequest* request) const;
};

/** Owning pointer to a MemRequest, pool-aware. */
using RequestPtr = std::unique_ptr<MemRequest, RequestDeleter>;

/** A grow-only slab allocator of MemRequest objects with a LIFO freelist. */
class RequestPool {
  public:
    /** @param chunk_requests requests per slab (one allocation). */
    explicit RequestPool(std::size_t chunk_requests = 512)
        : chunk_(chunk_requests == 0 ? 1 : chunk_requests)
    {
    }

    RequestPool(const RequestPool&) = delete;
    RequestPool& operator=(const RequestPool&) = delete;

    /** @pre every request made from this pool has been released. */
    ~RequestPool() = default;

    /** @return a value-initialized request owned by this pool. */
    RequestPtr
    Make()
    {
        if (free_.empty()) {
            Grow();
        }
        MemRequest* slot = free_.back();
        free_.pop_back();
        live_ += 1;
        if (live_ > hiwater_) {
            hiwater_ = live_;
        }
        return RequestPtr(new (slot) MemRequest(), RequestDeleter(this));
    }

    /** Requests currently alive (made and not yet released). */
    std::size_t live() const { return live_; }
    /** Most requests ever alive at once.  Engine-shape dependent (the
     *  sharded engine's cores run a window ahead of retirement), so this
     *  reports under the bench `env` subtree, never `run`. */
    std::size_t hiwater() const { return hiwater_; }
    /** Requests the slabs can hold without growing. */
    std::size_t capacity() const { return slabs_.size() * chunk_; }

  private:
    friend struct RequestDeleter;

    void
    Release(MemRequest* request)
    {
        request->~MemRequest();
        free_.push_back(request);
        live_ -= 1;
    }

    void
    Grow()
    {
        // MemRequest's alignment is pointer-sized, which plain new[]
        // already guarantees (it aligns to max_align_t).
        static_assert(alignof(MemRequest) <= alignof(std::max_align_t));
        slabs_.push_back(
            std::make_unique<std::byte[]>(chunk_ * sizeof(MemRequest)));
        std::byte* base = slabs_.back().get();
        // Pushed in reverse so the LIFO freelist hands out ascending
        // addresses first — consecutive allocations stay adjacent.
        for (std::size_t i = chunk_; i-- > 0;) {
            free_.push_back(
                reinterpret_cast<MemRequest*>(base + i * sizeof(MemRequest)));
        }
    }

    std::size_t chunk_;
    std::size_t live_ = 0;
    std::size_t hiwater_ = 0;
    std::vector<std::unique_ptr<std::byte[]>> slabs_;
    std::vector<MemRequest*> free_;
};

inline void
RequestDeleter::operator()(MemRequest* request) const
{
    if (request == nullptr) {
        return;
    }
    if (pool != nullptr) {
        pool->Release(request);
    } else {
        delete request;
    }
}

} // namespace parbs

#endif // PARBS_MEM_REQUEST_POOL_HH
