/**
 * @file
 * Benchmark profiles reproducing Table 3 of the paper.
 *
 * Each profile couples the paper-reported characteristics of one benchmark
 * (SPEC CPU2006 plus the two Windows desktop applications) with synthetic
 * trace parameters tuned so that, run alone on the baseline 4-core system,
 * the generated trace lands in the same Table 3 category: memory
 * intensiveness (MCPI / L2 MPKI), row-buffer locality (RB hit rate), and
 * bank-level parallelism (BLP).
 *
 * Tuning rules (see DESIGN.md §3):
 *   - `mpki` is taken directly from Table 3.
 *   - `row_run_length` ~= 1 / (1 - paper RB hit rate), capped at the 32
 *     cache lines a 2 KB row holds.
 *   - `burst_banks` ~= paper BLP; threads with paper BLP <= 1.35 are
 *     generated with serialized (dependent) episodes.
 */

#ifndef PARBS_TRACE_SPEC_PROFILES_HH
#define PARBS_TRACE_SPEC_PROFILES_HH

#include <string_view>
#include <vector>

#include "trace/synthetic.hh"

namespace parbs {

/** One Table 3 row: paper-reported stats plus tuned generator parameters. */
struct BenchmarkProfile {
    std::string_view name;
    std::string_view type; ///< "INT", "FP", or "DSK" (desktop).
    /** Table 3 category: bit2 = MCPI high, bit1 = RB-hit high, bit0 = BLP
     *  high (category 7 = "111"). */
    int category;

    // Paper-reported characteristics (Table 3).
    double paper_mcpi;
    double paper_mpki;
    double paper_rb_hit; ///< Fraction in [0, 1].
    double paper_blp;
    double paper_ast_per_req; ///< Average stall time per DRAM request.

    /** Generator parameters calibrated to the above. */
    SyntheticParams synth;
};

/** All 28 Table 3 profiles, in the paper's order. */
const std::vector<BenchmarkProfile>& SpecProfiles();

/**
 * Looks a profile up by name (e.g. "mcf", "429.mcf", "libquantum").
 * Matching ignores the SPEC numeric prefix.
 * @throws ConfigError if no profile matches.
 */
const BenchmarkProfile& FindProfile(std::string_view name);

/** Profiles belonging to a Table 3 category (0..7). */
std::vector<const BenchmarkProfile*> ProfilesInCategory(int category);

} // namespace parbs

#endif // PARBS_TRACE_SPEC_PROFILES_HH
