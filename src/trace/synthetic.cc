#include "trace/synthetic.hh"

#include <algorithm>
#include <cmath>

#include "common/assert.hh"

namespace parbs {

void
SyntheticParams::Validate() const
{
    if (mpki <= 0.0) {
        PARBS_FATAL("synthetic trace: mpki must be positive");
    }
    if (row_run_length < 1.0) {
        PARBS_FATAL("synthetic trace: row_run_length must be >= 1");
    }
    if (burst_banks < 1.0) {
        PARBS_FATAL("synthetic trace: burst_banks must be >= 1");
    }
    if (write_fraction < 0.0 || write_fraction >= 1.0) {
        PARBS_FATAL("synthetic trace: write_fraction must be in [0, 1)");
    }
    if (dependent_fraction < 0.0 || dependent_fraction > 1.0) {
        PARBS_FATAL("synthetic trace: dependent_fraction must be in [0, 1]");
    }
    if (bank_switch_prob < 0.0 || bank_switch_prob > 1.0) {
        PARBS_FATAL("synthetic trace: bank_switch_prob must be in [0, 1]");
    }
    if (intra_episode_gap_cap < 0.0) {
        PARBS_FATAL("synthetic trace: intra_episode_gap_cap must be >= 0");
    }
}

SyntheticTraceSource::SyntheticTraceSource(const SyntheticParams& params,
                                           const dram::AddressMapper& mapper,
                                           ThreadId thread,
                                           std::uint32_t num_threads,
                                           std::uint64_t seed)
    : params_(params), mapper_(mapper), thread_(thread), rng_(seed)
{
    params_.Validate();
    const dram::Geometry& geometry = mapper_.geometry();
    PARBS_ASSERT(num_threads > 0, "num_threads must be positive");
    rows_per_thread_ = geometry.rows_per_bank / num_threads;
    if (rows_per_thread_ < 2) {
        PARBS_FATAL("synthetic trace: too many threads for the row space");
    }
    row_base_ = thread * rows_per_thread_;
    next_row_.assign(geometry.TotalBanks(), 0);
    bank_cursor_ = thread % geometry.TotalBanks();
}

std::optional<TraceEntry>
SyntheticTraceSource::Next()
{
    if (pending_.empty()) {
        GenerateEpisode();
    }
    PARBS_ASSERT(!pending_.empty(), "episode generation produced nothing");
    TraceEntry entry = pending_.front();
    pending_.pop_front();
    return entry;
}

std::uint32_t
SyntheticTraceSource::SampleCount(double mean, std::uint32_t lo,
                                  std::uint32_t hi)
{
    // Integer sample with expected value `mean`: floor(mean) plus a
    // Bernoulli trial on the fractional part, then clamped.
    const double base = std::floor(mean);
    const double frac = mean - base;
    std::uint64_t value = static_cast<std::uint64_t>(base);
    if (rng_.NextBool(frac)) {
        value += 1;
    }
    return static_cast<std::uint32_t>(
        std::clamp<std::uint64_t>(value, lo, hi));
}

void
SyntheticTraceSource::GenerateEpisode()
{
    const dram::Geometry& geometry = mapper_.geometry();
    const std::uint32_t total_banks = geometry.TotalBanks();
    const std::uint32_t lines_per_row = geometry.LinesPerRow();

    const std::uint32_t burst =
        SampleCount(params_.burst_banks, 1, total_banks);
    const std::uint32_t run =
        SampleCount(params_.row_run_length, 1, lines_per_row);
    const std::uint32_t accesses = burst * run;

    // Instruction-gap budget.  The average instruction distance between
    // accesses must come out at 1000/mpki (counting the access itself).
    // Bank-level parallelism only requires one access *per bank* of the
    // burst to co-reside in the instruction window, so the intra-episode
    // gap is capped at ~window/burst; the row run itself may unfold over
    // time (a steady stream), and the remaining budget is paid up front.
    const double per_access = std::max(0.0, 1000.0 / params_.mpki - 1.0);
    const double window_cap = 96.0 / static_cast<double>(burst);
    const double intra_mean = std::min(
        {per_access, params_.intra_episode_gap_cap, window_cap});
    const double inter_mean = std::max(
        0.0, static_cast<double>(accesses) * per_access -
                 static_cast<double>(accesses - 1) * intra_mean);

    // Pick `burst` distinct banks: consecutive flat indices from a starting
    // point (distinctness by construction).  With probability
    // bank_switch_prob the episode jumps to a random fresh spot; otherwise
    // it camps on the previous episode's banks (streaming behaviour).
    if (rng_.NextBool(params_.bank_switch_prob)) {
        bank_cursor_ = static_cast<std::uint32_t>(
            rng_.NextBelow(total_banks));
    }
    const std::uint32_t start = bank_cursor_;

    struct Stream {
        dram::DecodedAddr coords;
    };
    std::vector<Stream> streams;
    streams.reserve(burst);
    const std::uint32_t banks_per_rank = geometry.banks_per_rank;
    const std::uint32_t banks_per_channel =
        geometry.ranks_per_channel * banks_per_rank;
    for (std::uint32_t i = 0; i < burst; ++i) {
        const std::uint32_t flat = (start + i) % total_banks;
        Stream stream;
        stream.coords.channel = flat / banks_per_channel;
        stream.coords.rank = (flat % banks_per_channel) / banks_per_rank;
        stream.coords.bank = flat % banks_per_rank;
        stream.coords.row = row_base_ + next_row_[flat];
        next_row_[flat] = (next_row_[flat] + 1) % rows_per_thread_;
        stream.coords.column =
            run >= lines_per_row
                ? 0
                : static_cast<std::uint32_t>(
                      rng_.NextBelow(lines_per_row - run + 1));
        streams.push_back(stream);
    }

    // Interleave the streams column-by-column so the banks are touched in
    // parallel from the core's point of view.
    bool first = true;
    for (std::uint32_t k = 0; k < run; ++k) {
        for (Stream& stream : streams) {
            TraceEntry entry;
            dram::DecodedAddr coords = stream.coords;
            coords.column += k;
            entry.addr = mapper_.Encode(coords);
            entry.is_write = rng_.NextBool(params_.write_fraction);
            entry.depends_on_prev =
                rng_.NextBool(params_.dependent_fraction);
            if (first) {
                entry.compute_instructions = static_cast<std::uint32_t>(
                    std::min<std::uint64_t>(rng_.NextGeometric(inter_mean),
                                            1u << 20));
                first = false;
            } else {
                entry.compute_instructions = static_cast<std::uint32_t>(
                    std::min<std::uint64_t>(rng_.NextGeometric(intra_mean),
                                            1u << 20));
            }
            pending_.push_back(entry);
        }
    }
}

} // namespace parbs
