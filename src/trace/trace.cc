#include "trace/trace.hh"

namespace parbs {

VectorTraceSource::VectorTraceSource(std::vector<TraceEntry> entries)
    : entries_(std::move(entries))
{
}

std::optional<TraceEntry>
VectorTraceSource::Next()
{
    if (position_ >= entries_.size()) {
        return std::nullopt;
    }
    return entries_[position_++];
}

} // namespace parbs
