#include "trace/file_trace.hh"

#include <fstream>
#include <sstream>

#include "common/assert.hh"

namespace parbs {
namespace {

[[noreturn]] void
ParseError(const std::string& origin, std::size_t line,
           const std::string& what)
{
    PARBS_FATAL("trace " + origin + ":" + std::to_string(line) + ": " +
                what);
}

} // namespace

std::vector<TraceEntry>
ParseTrace(std::istream& in, const std::string& origin)
{
    std::vector<TraceEntry> entries;
    std::string line;
    std::size_t line_number = 0;
    while (std::getline(in, line)) {
        line_number += 1;
        // Strip comments and surrounding whitespace.
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos) {
            line.erase(hash);
        }
        std::istringstream fields(line);
        std::string compute_text;
        if (!(fields >> compute_text)) {
            continue; // Blank or comment-only line.
        }

        TraceEntry entry;
        try {
            std::size_t consumed = 0;
            const unsigned long compute =
                std::stoul(compute_text, &consumed, 0);
            if (consumed != compute_text.size()) {
                throw std::invalid_argument(compute_text);
            }
            entry.compute_instructions =
                static_cast<std::uint32_t>(compute);
        } catch (const std::exception&) {
            ParseError(origin, line_number,
                       "bad instruction count '" + compute_text + "'");
        }

        std::string kind;
        if (!(fields >> kind) || (kind != "R" && kind != "W")) {
            ParseError(origin, line_number,
                       "expected access type R or W");
        }
        entry.is_write = kind == "W";

        std::string addr_text;
        if (!(fields >> addr_text)) {
            ParseError(origin, line_number, "missing address");
        }
        try {
            std::size_t consumed = 0;
            entry.addr = std::stoull(addr_text, &consumed, 0);
            if (consumed != addr_text.size()) {
                throw std::invalid_argument(addr_text);
            }
        } catch (const std::exception&) {
            ParseError(origin, line_number,
                       "bad address '" + addr_text + "'");
        }

        std::string flag;
        if (fields >> flag) {
            if (flag != "D") {
                ParseError(origin, line_number,
                           "unexpected trailing field '" + flag + "'");
            }
            entry.depends_on_prev = true;
        }
        entries.push_back(entry);
    }
    return entries;
}

std::vector<TraceEntry>
LoadTraceFile(const std::string& path)
{
    std::ifstream in(path);
    if (!in) {
        PARBS_FATAL("cannot open trace file: " + path);
    }
    return ParseTrace(in, path);
}

void
WriteTrace(std::ostream& out, const std::vector<TraceEntry>& entries)
{
    for (const TraceEntry& entry : entries) {
        out << entry.compute_instructions << " "
            << (entry.is_write ? "W" : "R") << " 0x" << std::hex
            << entry.addr << std::dec;
        if (entry.depends_on_prev) {
            out << " D";
        }
        out << "\n";
    }
}

void
SaveTraceFile(const std::string& path,
              const std::vector<TraceEntry>& entries)
{
    std::ofstream out(path);
    if (!out) {
        PARBS_FATAL("cannot open trace file for writing: " + path);
    }
    WriteTrace(out, entries);
    if (!out) {
        PARBS_FATAL("failed while writing trace file: " + path);
    }
}

FileTraceSource::FileTraceSource(std::vector<TraceEntry> entries, bool loop)
    : entries_(std::move(entries)), loop_(loop)
{
    if (loop_ && entries_.empty()) {
        PARBS_FATAL("cannot loop an empty trace");
    }
}

FileTraceSource
FileTraceSource::FromFile(const std::string& path, bool loop)
{
    return FileTraceSource(LoadTraceFile(path), loop);
}

std::optional<TraceEntry>
FileTraceSource::Next()
{
    if (position_ >= entries_.size()) {
        if (!loop_) {
            return std::nullopt;
        }
        position_ = 0;
    }
    return entries_[position_++];
}

} // namespace parbs
