#include "trace/file_trace.hh"

#include <charconv>
#include <cstdint>
#include <fstream>
#include <limits>
#include <string>
#include <string_view>
#include <system_error>

#include "common/assert.hh"

namespace parbs {
namespace {

/**
 * Splits a line into whitespace-separated tokens while tracking 1-based
 * column positions, so parse errors can point at the offending field.
 */
class Tokenizer {
  public:
    explicit Tokenizer(const std::string& line) : line_(line) {}

    /** @return false at end of line; otherwise fills token and column. */
    bool
    Next(std::string_view& token, std::size_t& column)
    {
        while (pos_ < line_.size() &&
               (line_[pos_] == ' ' || line_[pos_] == '\t')) {
            pos_ += 1;
        }
        if (pos_ >= line_.size()) {
            return false;
        }
        const std::size_t start = pos_;
        while (pos_ < line_.size() && line_[pos_] != ' ' &&
               line_[pos_] != '\t') {
            pos_ += 1;
        }
        token = std::string_view(line_).substr(start, pos_ - start);
        column = start + 1;
        return true;
    }

  private:
    const std::string& line_;
    std::size_t pos_ = 0;
};

[[noreturn]] void
ParseError(const std::string& origin, std::size_t line, std::size_t column,
           const std::string& what)
{
    PARBS_FATAL("trace " + origin + ":" + std::to_string(line) + ":" +
                std::to_string(column) + ": " + what);
}

/**
 * Parses an unsigned decimal or 0x-prefixed hex token via std::from_chars
 * (never throws; malformed and out-of-range inputs are reported through
 * the return value).  @return true and sets @p out on success.
 */
bool
ParseUint64(std::string_view token, std::uint64_t& out)
{
    int base = 10;
    if (token.size() > 2 && token[0] == '0' &&
        (token[1] == 'x' || token[1] == 'X')) {
        token.remove_prefix(2);
        base = 16;
    }
    if (token.empty()) {
        return false;
    }
    const char* first = token.data();
    const char* last = token.data() + token.size();
    const auto [ptr, ec] = std::from_chars(first, last, out, base);
    return ec == std::errc() && ptr == last;
}

} // namespace

std::vector<TraceEntry>
ParseTrace(std::istream& in, const std::string& origin)
{
    std::vector<TraceEntry> entries;
    std::string line;
    std::size_t line_number = 0;
    while (std::getline(in, line)) {
        line_number += 1;
        // Strip comments.
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos) {
            line.erase(hash);
        }
        Tokenizer tokens(line);
        std::string_view token;
        std::size_t column = 0;
        if (!tokens.Next(token, column)) {
            continue; // Blank or comment-only line.
        }

        TraceEntry entry;
        std::uint64_t compute = 0;
        if (!ParseUint64(token, compute)) {
            ParseError(origin, line_number, column,
                       "bad instruction count '" + std::string(token) + "'");
        }
        if (compute > std::numeric_limits<std::uint32_t>::max()) {
            ParseError(origin, line_number, column,
                       "instruction count " + std::to_string(compute) +
                           " out of range (max 4294967295)");
        }
        entry.compute_instructions = static_cast<std::uint32_t>(compute);

        if (!tokens.Next(token, column)) {
            ParseError(origin, line_number, line.size() + 1,
                       "missing access type (expected R or W)");
        }
        if (token != "R" && token != "W") {
            ParseError(origin, line_number, column,
                       "expected access type R or W, got '" +
                           std::string(token) + "'");
        }
        entry.is_write = token == "W";

        if (!tokens.Next(token, column)) {
            ParseError(origin, line_number, line.size() + 1,
                       "missing address");
        }
        if (!ParseUint64(token, entry.addr)) {
            ParseError(origin, line_number, column,
                       "bad address '" + std::string(token) + "'");
        }

        if (tokens.Next(token, column)) {
            if (token != "D") {
                ParseError(origin, line_number, column,
                           "unexpected trailing field '" +
                               std::string(token) + "'");
            }
            entry.depends_on_prev = true;
            if (tokens.Next(token, column)) {
                ParseError(origin, line_number, column,
                           "unexpected trailing field '" +
                               std::string(token) + "'");
            }
        }
        entries.push_back(entry);
    }
    return entries;
}

std::vector<TraceEntry>
LoadTraceFile(const std::string& path)
{
    std::ifstream in(path);
    if (!in) {
        PARBS_FATAL("cannot open trace file: " + path);
    }
    return ParseTrace(in, path);
}

void
WriteTrace(std::ostream& out, const std::vector<TraceEntry>& entries)
{
    for (const TraceEntry& entry : entries) {
        out << entry.compute_instructions << " "
            << (entry.is_write ? "W" : "R") << " 0x" << std::hex
            << entry.addr << std::dec;
        if (entry.depends_on_prev) {
            out << " D";
        }
        out << "\n";
    }
}

void
SaveTraceFile(const std::string& path,
              const std::vector<TraceEntry>& entries)
{
    std::ofstream out(path);
    if (!out) {
        PARBS_FATAL("cannot open trace file for writing: " + path);
    }
    WriteTrace(out, entries);
    if (!out) {
        PARBS_FATAL("failed while writing trace file: " + path);
    }
}

FileTraceSource::FileTraceSource(std::vector<TraceEntry> entries, bool loop)
    : entries_(std::move(entries)), loop_(loop)
{
    if (loop_ && entries_.empty()) {
        PARBS_FATAL("cannot loop an empty trace");
    }
}

FileTraceSource
FileTraceSource::FromFile(const std::string& path, bool loop)
{
    return FileTraceSource(LoadTraceFile(path), loop);
}

std::optional<TraceEntry>
FileTraceSource::Next()
{
    if (position_ >= entries_.size()) {
        if (!loop_) {
            return std::nullopt;
        }
        position_ = 0;
    }
    return entries_[position_++];
}

} // namespace parbs
