/**
 * @file
 * Synthetic SPEC-like workload generation.
 *
 * The paper drives its simulator with Pin/iDNA traces of SPEC CPU2006 and
 * two Windows desktop applications; those traces are proprietary, so this
 * reproduction substitutes a parameterized generator that reproduces the
 * three trace properties the paper itself uses to categorize benchmarks
 * (Table 3): memory intensity (L2 MPKI), row-buffer locality (row-buffer
 * hit rate), and intra-thread bank-level parallelism (BLP).  See DESIGN.md
 * section 3 for the substitution argument.
 *
 * Generation is organized in *episodes*.  An episode opens `burst_banks`
 * distinct banks, picks a fresh row in each, and emits `row_run_length`
 * sequential-column accesses per bank, interleaved across the banks:
 *
 *   - `row_run_length` (K) controls row-buffer locality: alone, a run of K
 *     accesses to one row yields ~ (K-1)/K row hits.
 *   - `burst_banks` (B) controls BLP: the core's instruction window holds
 *     the whole episode, so B banks are serviced concurrently.
 *   - `serialize_episodes` makes the first access of each episode depend on
 *     all prior accesses (pointer chasing), pinning BLP near 1 regardless
 *     of intensity.
 *   - `mpki` fixes the average instruction distance between misses; gaps
 *     inside an episode are kept small (so the window can cover it) and the
 *     balance is paid between episodes.
 *
 * Addresses are confined to a per-thread row partition, modeling the
 * paper's multiprogrammed (no-sharing) workloads.
 */

#ifndef PARBS_TRACE_SYNTHETIC_HH
#define PARBS_TRACE_SYNTHETIC_HH

#include <cstdint>
#include <deque>

#include "common/rng.hh"
#include "common/types.hh"
#include "dram/address_mapper.hh"
#include "trace/trace.hh"

namespace parbs {

/** Tunable first-order trace statistics (see file comment). */
struct SyntheticParams {
    /** Target L2 misses (memory accesses) per 1000 instructions. */
    double mpki = 10.0;
    /** Mean sequential-column run length per row (row-buffer locality). */
    double row_run_length = 8.0;
    /** Mean number of distinct banks opened per episode (BLP). */
    double burst_banks = 2.0;
    /**
     * Probability that an access depends on all prior accesses (pointer
     * chasing).  1.0 fully serializes the thread's misses (every miss
     * exposes its whole latency); 0.0 leaves all misses within the window
     * independent.  Together with bank_switch_prob this decouples a
     * thread's *memory-level* parallelism from its *bank-level*
     * parallelism: a streaming thread (libquantum, matlab) has many
     * overlapped misses yet BLP near 1 because they hit one bank.
     */
    double dependent_fraction = 0.0;
    /**
     * Probability that an episode moves to a fresh set of banks instead of
     * reusing the previous episode's banks (with fresh rows).  Low values
     * model streaming through large arrays: the thread camps on a bank,
     * marching through its rows, which keeps BLP near burst_banks while
     * leaving misses independent.
     */
    double bank_switch_prob = 1.0;
    /** Fraction of accesses that are store misses / writebacks. */
    double write_fraction = 0.15;
    /** Cap on the mean instruction gap between accesses of one episode. */
    double intra_episode_gap_cap = 16.0;

    /** @throws ConfigError on out-of-range values. */
    void Validate() const;
};

/** Infinite synthetic trace source with the statistics of @ref SyntheticParams. */
class SyntheticTraceSource : public TraceSource {
  public:
    /**
     * @param params trace statistics
     * @param mapper address mapper of the target system (used to encode
     *        (bank, row, column) coordinates into physical addresses)
     * @param thread this thread's id (selects its private row partition)
     * @param num_threads total threads sharing the row space
     * @param seed per-thread deterministic seed
     */
    SyntheticTraceSource(const SyntheticParams& params,
                         const dram::AddressMapper& mapper, ThreadId thread,
                         std::uint32_t num_threads, std::uint64_t seed);

    std::optional<TraceEntry> Next() override;

  private:
    SyntheticParams params_;
    dram::AddressMapper mapper_; ///< By value: the mapper is a small POD.
    ThreadId thread_;
    Rng rng_;

    /** Rows available to this thread in every bank: [row_base_, row_base_ +
     *  rows_per_thread_). */
    std::uint32_t row_base_;
    std::uint32_t rows_per_thread_;

    /** Next fresh row (thread-local index) per flat global bank. */
    std::vector<std::uint32_t> next_row_;

    /** Rotating cursor used to pick distinct banks per episode. */
    std::uint32_t bank_cursor_ = 0;

    std::deque<TraceEntry> pending_;

    void GenerateEpisode();
    std::uint32_t SampleCount(double mean, std::uint32_t lo,
                              std::uint32_t hi);
};

} // namespace parbs

#endif // PARBS_TRACE_SYNTHETIC_HH
