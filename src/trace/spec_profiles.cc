#include "trace/spec_profiles.hh"

#include <algorithm>

#include "common/assert.hh"

namespace parbs {
namespace {

/**
 * Generator parameters fitted by tools/calibrate.cpp: an iterative
 * adjustment of (row_run_length, burst_banks, dependent_fraction) against
 * the measured alone-run characteristics on the baseline 4-core system,
 * starting from the closed-form estimates run ~ 1/(1 - RB hit) and
 * banks ~ BLP.  The fit is needed because episode overlap and inter-episode
 * bank collisions shift the measured statistics away from the closed form.
 */
SyntheticParams
Calibrated(double mpki, double run, double banks, double sw, double dep)
{
    SyntheticParams params;
    params.mpki = mpki;
    params.row_run_length = run;
    params.burst_banks = banks;
    params.bank_switch_prob = sw;
    params.dependent_fraction = dep;
    params.write_fraction = 0.15;
    return params;
}

BenchmarkProfile
Row(std::string_view name, std::string_view type, int category, double mcpi,
    double mpki, double rb_hit_percent, double blp, double ast, double run,
    double banks, double sw, double dep)
{
    BenchmarkProfile profile;
    profile.name = name;
    profile.type = type;
    profile.category = category;
    profile.paper_mcpi = mcpi;
    profile.paper_mpki = mpki;
    profile.paper_rb_hit = rb_hit_percent / 100.0;
    profile.paper_blp = blp;
    profile.paper_ast_per_req = ast;
    profile.synth = Calibrated(mpki, run, banks, sw, dep);
    return profile;
}

std::vector<BenchmarkProfile>
BuildProfiles()
{
    // Table 3, in paper order.  Columns: name, type, category, MCPI,
    // L2 MPKI, RB hit rate (%), BLP, AST/req, then the calibrated
    // generator knobs (row run, burst banks, bank switch probability,
    // dependent fraction) from tools/calibrate.cpp.
    return {
        Row("437.leslie3d", "FP", 7, 7.30, 51.52, 62.8, 1.90, 139,
            3.699, 1.900, 0.576, 0.048),
        Row("450.soplex", "FP", 7, 6.18, 47.58, 78.8, 1.81, 125,
            6.392, 1.810, 0.938, 0.048),
        Row("470.lbm", "FP", 7, 3.57, 43.59, 61.1, 3.37, 77,
            3.124, 5.370, 1.000, 0.000),
        Row("482.sphinx3", "FP", 7, 3.05, 24.89, 75.0, 1.89, 117,
            4.787, 1.929, 0.992, 0.000),
        Row("matlab", "DSK", 6, 15.4, 78.36, 93.7, 1.08, 192,
            32.000, 1.080, 0.332, 0.347),
        Row("462.libquantum", "INT", 6, 9.10, 50.00, 98.4, 1.10, 181,
            32.000, 1.100, 0.797, 0.326),
        Row("433.milc", "FP", 6, 4.65, 32.48, 86.4, 1.51, 139,
            8.973, 1.573, 1.000, 0.106),
        Row("xml-parser", "DSK", 6, 2.92, 18.23, 95.3, 1.32, 158,
            26.690, 1.546, 1.000, 0.240),
        Row("429.mcf", "INT", 5, 6.45, 98.68, 41.5, 4.75, 64,
            4.511, 6.750, 1.000, 0.000),
        Row("459.GemsFDTD", "FP", 5, 4.08, 29.95, 20.4, 2.40, 126,
            1.313, 2.400, 0.543, 0.000),
        Row("483.xalancbmk", "INT", 5, 2.80, 23.52, 59.8, 2.27, 113,
            2.893, 2.487, 1.000, 0.000),
        Row("436.cactusADM", "FP", 4, 2.78, 11.68, 6.75, 1.60, 219,
            1.085, 3.011, 1.000, 0.606),
        Row("403.gcc", "INT", 3, 0.05, 0.37, 63.9, 1.87, 127,
            2.918, 3.870, 1.000, 0.523),
        Row("465.tonto", "FP", 3, 0.02, 0.13, 70.7, 1.92, 108,
            3.749, 3.920, 1.000, 0.422),
        Row("453.povray", "FP", 3, 0.00, 0.03, 79.9, 1.75, 123,
            6.490, 3.750, 1.000, 0.498),
        Row("464.h264ref", "INT", 2, 0.48, 2.65, 76.5, 1.29, 161,
            4.762, 2.247, 1.000, 0.743),
        Row("445.gobmk", "INT", 2, 0.11, 0.60, 61.1, 1.46, 162,
            2.788, 3.049, 1.000, 0.674),
        Row("447.dealII", "FP", 2, 0.07, 0.41, 90.3, 1.21, 133,
            11.680, 1.846, 1.000, 0.668),
        Row("444.namd", "FP", 2, 0.06, 0.33, 86.6, 1.27, 160,
            8.170, 2.870, 1.000, 0.821),
        Row("481.wrf", "FP", 2, 0.05, 0.28, 83.6, 1.20, 164,
            6.666, 2.039, 1.000, 0.821),
        Row("454.calculix", "FP", 2, 0.04, 0.19, 75.9, 1.30, 157,
            4.299, 2.506, 1.000, 0.754),
        Row("400.perlbench", "INT", 2, 0.02, 0.13, 75.4, 1.69, 128,
            4.387, 3.690, 1.000, 0.575),
        Row("471.omnetpp", "INT", 1, 1.96, 22.15, 26.7, 3.78, 86,
            1.414, 5.780, 1.000, 0.000),
        Row("401.bzip2", "INT", 1, 0.49, 3.56, 52.0, 2.05, 127,
            2.206, 4.050, 1.000, 0.434),
        Row("473.astar", "INT", 0, 1.82, 9.25, 50.2, 1.45, 177,
            2.213, 2.417, 1.000, 0.654),
        Row("456.hmmer", "INT", 0, 1.50, 5.67, 33.8, 1.26, 231,
            1.594, 1.646, 1.000, 0.790),
        Row("435.gromacs", "FP", 0, 0.18, 0.68, 58.2, 1.04, 220,
            2.696, 1.109, 1.000, 0.913),
        Row("458.sjeng", "INT", 0, 0.10, 0.41, 16.8, 1.53, 192,
            1.210, 2.881, 1.000, 0.509),
    };
}

/** Strips a leading SPEC number prefix ("429.mcf" -> "mcf"). */
std::string_view
StripPrefix(std::string_view name)
{
    const std::size_t dot = name.find('.');
    if (dot != std::string_view::npos &&
        name.find_first_not_of("0123456789") == dot) {
        return name.substr(dot + 1);
    }
    return name;
}

} // namespace

const std::vector<BenchmarkProfile>&
SpecProfiles()
{
    static const std::vector<BenchmarkProfile> profiles = BuildProfiles();
    return profiles;
}

const BenchmarkProfile&
FindProfile(std::string_view name)
{
    const std::string_view wanted = StripPrefix(name);
    for (const BenchmarkProfile& profile : SpecProfiles()) {
        if (profile.name == name || StripPrefix(profile.name) == wanted) {
            return profile;
        }
    }
    PARBS_FATAL("unknown benchmark profile: " + std::string(name));
}

std::vector<const BenchmarkProfile*>
ProfilesInCategory(int category)
{
    std::vector<const BenchmarkProfile*> out;
    for (const BenchmarkProfile& profile : SpecProfiles()) {
        if (profile.category == category) {
            out.push_back(&profile);
        }
    }
    return out;
}

} // namespace parbs
