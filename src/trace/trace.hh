/**
 * @file
 * The trace abstraction feeding the processor core model.
 *
 * A trace is a stream of entries, each describing a run of non-memory
 * instructions followed by one memory operation that misses the last-level
 * cache (the paper's frontend is likewise a memory-request-level trace: the
 * cores replay L2 misses against the shared DRAM system).  Sources may be
 * infinite (the synthetic generator) or finite (fixed scripted traces used
 * by tests).
 */

#ifndef PARBS_TRACE_TRACE_HH
#define PARBS_TRACE_TRACE_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hh"

namespace parbs {

/** One trace record: compute run, then a memory access. */
struct TraceEntry {
    /** Non-memory instructions preceding the access. */
    std::uint32_t compute_instructions = 0;
    /** Physical address of the cache line accessed. */
    Addr addr = 0;
    /** True for a store miss / writeback (does not block commit). */
    bool is_write = false;
    /**
     * True if this access depends on every earlier memory access (e.g. a
     * pointer-chasing load): the core may not issue it until all previous
     * memory operations have completed.  This is how the synthetic
     * generator produces low-bank-level-parallelism threads.
     */
    bool depends_on_prev = false;
};

/** Abstract source of trace entries. */
class TraceSource {
  public:
    virtual ~TraceSource() = default;

    /** @return the next entry, or nullopt when the trace is exhausted. */
    virtual std::optional<TraceEntry> Next() = 0;
};

/** A finite, scripted trace — used by unit tests and the examples. */
class VectorTraceSource : public TraceSource {
  public:
    explicit VectorTraceSource(std::vector<TraceEntry> entries);

    std::optional<TraceEntry> Next() override;

    /** Entries remaining to be consumed. */
    std::size_t Remaining() const { return entries_.size() - position_; }

  private:
    std::vector<TraceEntry> entries_;
    std::size_t position_ = 0;
};

} // namespace parbs

#endif // PARBS_TRACE_TRACE_HH
