/**
 * @file
 * File-based traces: load memory-request traces from disk so that real
 * application traces (e.g. captured from a binary-instrumentation tool, as
 * the paper did with Pin/iDNA) can drive the simulator in place of the
 * synthetic generator.
 *
 * Format: plain text, one record per line,
 *
 *     <compute-instructions> <R|W> <hex-or-dec address> [D]
 *
 * where the optional trailing `D` marks the access as dependent on all
 * prior accesses (TraceEntry::depends_on_prev).  Blank lines and lines
 * starting with `#` are ignored.  Example:
 *
 *     # libquantum-like stream
 *     20 R 0x1a2400
 *     20 R 0x1a2440 D
 *     3  W 0x7fe000
 */

#ifndef PARBS_TRACE_FILE_TRACE_HH
#define PARBS_TRACE_FILE_TRACE_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "trace/trace.hh"

namespace parbs {

/** Parses a trace from a stream. @throws ConfigError on malformed input. */
std::vector<TraceEntry> ParseTrace(std::istream& in,
                                   const std::string& origin = "<stream>");

/** Loads a trace file. @throws ConfigError if unreadable or malformed. */
std::vector<TraceEntry> LoadTraceFile(const std::string& path);

/** Writes entries in the text format above (round-trips with ParseTrace). */
void WriteTrace(std::ostream& out, const std::vector<TraceEntry>& entries);

/** Writes a trace file. @throws ConfigError if the file cannot be opened. */
void SaveTraceFile(const std::string& path,
                   const std::vector<TraceEntry>& entries);

/**
 * A trace source backed by a loaded trace.  With `loop` set, the trace
 * restarts from the beginning when exhausted (useful for driving
 * fixed-duration experiments from short trace files).
 */
class FileTraceSource : public TraceSource {
  public:
    explicit FileTraceSource(std::vector<TraceEntry> entries,
                             bool loop = false);

    /** Convenience: load from @p path. */
    static FileTraceSource FromFile(const std::string& path,
                                    bool loop = false);

    std::optional<TraceEntry> Next() override;

    std::size_t size() const { return entries_.size(); }

  private:
    std::vector<TraceEntry> entries_;
    bool loop_;
    std::size_t position_ = 0;
};

} // namespace parbs

#endif // PARBS_TRACE_FILE_TRACE_HH
