/**
 * @file
 * The trace-driven processor core model.
 *
 * The paper's observation (Section 2) reduces the frontend's role to this
 * contract: instructions commit in order; the window fills a few cycles
 * after a last-level-cache miss and the core stalls until the *oldest*
 * miss returns; misses that are independent and in the window together are
 * serviced in parallel (memory-level parallelism), so the core stalls once
 * for the overlapped group rather than once per miss.
 *
 * This model implements exactly that contract with the paper's baseline
 * parameters: a 128-entry instruction window, 3-wide fetch/commit with at
 * most one memory operation per cycle, and a 32-entry MSHR bound on
 * outstanding reads.  Loads block commit until their DRAM data returns;
 * stores retire into the controller's write buffer.  A trace entry can be
 * flagged dependent (`depends_on_prev`), in which case its access does not
 * issue until all earlier accesses complete — the generator's model of
 * pointer chasing.
 */

#ifndef PARBS_CPU_CORE_HH
#define PARBS_CPU_CORE_HH

#include <cstdint>
#include <deque>

#include "common/types.hh"
#include "trace/trace.hh"

namespace parbs {

/** Core microarchitecture parameters (paper Table 2 baseline). */
struct CoreConfig {
    std::uint32_t window_size = 128;
    /** Fetch/exec/commit width; at most one memory op per cycle. */
    std::uint32_t width = 3;
    /** Maximum outstanding read misses (L2 MSHRs). */
    std::uint32_t mshrs = 32;

    /** @throws ConfigError on nonsensical values. */
    void Validate() const;
};

/** Per-core performance counters. */
struct CoreStats {
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;
    /** Cycles the core could not commit because the oldest instruction is
     *  an incomplete DRAM load (the paper's memory stall time). */
    std::uint64_t load_stall_cycles = 0;
    /** Cycles commit was blocked behind a store that could not enter the
     *  (full) write buffer. */
    std::uint64_t store_stall_cycles = 0;
    std::uint64_t loads_issued = 0;
    std::uint64_t loads_completed = 0;
    std::uint64_t stores_issued = 0;

    /** Memory cycles per instruction (Table 3's MCPI). */
    double
    Mcpi() const
    {
        return instructions == 0
                   ? 0.0
                   : static_cast<double>(load_stall_cycles +
                                         store_stall_cycles) /
                         static_cast<double>(instructions);
    }

    double
    Ipc() const
    {
        return cycles == 0 ? 0.0
                           : static_cast<double>(instructions) /
                                 static_cast<double>(cycles);
    }

    /** Average stall time per DRAM (load) request — Table 3's AST/req. */
    double
    AstPerRequest() const
    {
        return loads_completed == 0
                   ? 0.0
                   : static_cast<double>(load_stall_cycles) /
                         static_cast<double>(loads_completed);
    }

    /** L2 misses (reads + writes) per 1000 committed instructions. */
    double
    Mpki() const
    {
        return instructions == 0
                   ? 0.0
                   : 1000.0 *
                         static_cast<double>(loads_issued + stores_issued) /
                         static_cast<double>(instructions);
    }
};

/**
 * The interface through which a core reaches the memory system.  The
 * System implements it by routing to the per-channel controllers.
 */
class MemoryPort {
  public:
    virtual ~MemoryPort() = default;

    /**
     * Attempts to issue a read.  @return the assigned request id, or
     * nullopt if the target controller's request buffer is full (the core
     * retries next cycle).
     */
    virtual std::optional<RequestId> TryIssueRead(ThreadId thread,
                                                  Addr addr) = 0;

    /** Attempts to issue a write. @return false if the write buffer is
     *  full (the core retries next cycle). */
    virtual bool TryIssueWrite(ThreadId thread, Addr addr) = 0;
};

/** One processor core executing one thread's trace. */
class Core {
  public:
    Core(const CoreConfig& config, ThreadId thread, TraceSource& trace,
         MemoryPort& port);

    /** Advances the core by one CPU cycle. */
    void Tick();

    /**
     * Split-phase cycle advance for the sharded core phase (DESIGN.md
     * §5g): `TickFrontend()` runs the core-private half of a cycle —
     * commit, the capture of this cycle's issue-scan bound, and fetch —
     * and `TickIssue()` then performs the memory-issue half, which is the
     * only part that touches the shared MemoryPort.  The System runs
     * frontends for all cores in parallel, then issues serially in thread
     * order, so request ids and controller arrival order are identical to
     * the serial `Tick()` schedule.
     *
     * Equivalence with `Tick()` (which runs commit → issue → fetch): the
     * issue scan is frozen to the pre-fetch prefix of the unissued queue
     * via the captured bound — slots fetch appends are out of reach, and
     * deque appends never invalidate the stored slot pointers — and fetch
     * reads nothing issue writes (it looks at window occupancy, the trace
     * cursor, and the back slot's kind; issue only flips issued/done bits
     * on memory slots and pops the unissued queue).  A `TickFrontend()` +
     * `TickIssue()` pair is therefore state-identical to one `Tick()`.
     */
    void TickFrontend();
    void TickIssue();

    /** Notification that the DRAM read with @p id returned its data. */
    void OnReadComplete(RequestId id);

    /** @return true once the trace is exhausted and the window drained. */
    bool Done() const;

    ThreadId thread() const { return thread_; }
    const CoreStats& stats() const { return stats_; }

  private:
    /** One window slot: a run of compute instructions or one memory op. */
    struct Slot {
        enum class Kind : std::uint8_t { kCompute, kLoad, kStore };
        Kind kind = Kind::kCompute;
        /** Compute instructions in this slot (kCompute only). */
        std::uint32_t count = 0;
        Addr addr = 0;
        bool depends_on_prev = false;
        bool issued = false;
        bool done = false;
        RequestId request_id = 0;
    };

    CoreConfig config_;
    ThreadId thread_;
    TraceSource& trace_;
    MemoryPort& port_;

    std::deque<Slot> window_;
    std::uint32_t window_occupancy_ = 0;

    /** Unissued memory slots, oldest first (points into window_). */
    std::deque<Slot*> unissued_;

    std::uint32_t outstanding_loads_ = 0;

    /** Entry currently being fetched (compute portion may be partial). */
    std::optional<TraceEntry> fetching_;
    std::uint32_t fetch_compute_left_ = 0;
    bool trace_exhausted_ = false;

    CoreStats stats_;

    /** Issue-scan bound captured by TickFrontend for the paired
     *  TickIssue (the pre-fetch unissued prefix). */
    std::size_t issue_scan_ = 0;

    void Commit();
    void IssueMemory(std::size_t scan_limit);
    void Fetch();
};

} // namespace parbs

#endif // PARBS_CPU_CORE_HH
