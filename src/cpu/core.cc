#include "cpu/core.hh"

#include <algorithm>

#include "common/assert.hh"

namespace parbs {

void
CoreConfig::Validate() const
{
    if (window_size == 0 || width == 0 || mshrs == 0) {
        PARBS_FATAL("core: window_size, width, and mshrs must be nonzero");
    }
}

Core::Core(const CoreConfig& config, ThreadId thread, TraceSource& trace,
           MemoryPort& port)
    : config_(config), thread_(thread), trace_(trace), port_(port)
{
    config_.Validate();
}

void
Core::Tick()
{
    stats_.cycles += 1;
    Commit();
    IssueMemory(std::min<std::size_t>(unissued_.size(), 4));
    Fetch();
}

void
Core::TickFrontend()
{
    stats_.cycles += 1;
    Commit();
    // Freeze the issue scan to the pre-fetch unissued prefix so the
    // deferred TickIssue considers exactly the slots the serial schedule
    // (commit -> issue -> fetch) would have (see the header contract).
    issue_scan_ = std::min<std::size_t>(unissued_.size(), 4);
    Fetch();
}

void
Core::TickIssue()
{
    IssueMemory(issue_scan_);
}

void
Core::Commit()
{
    std::uint32_t budget = config_.width;
    std::uint64_t committed = 0;
    while (budget > 0 && !window_.empty()) {
        Slot& head = window_.front();
        if (head.kind == Slot::Kind::kCompute) {
            const std::uint32_t n = std::min(budget, head.count);
            head.count -= n;
            budget -= n;
            committed += n;
            window_occupancy_ -= n;
            if (head.count == 0) {
                window_.pop_front();
            }
            continue;
        }
        if (head.kind == Slot::Kind::kLoad) {
            if (!head.done) {
                break; // In-order commit: stall on the oldest load.
            }
        } else if (!head.issued) {
            break; // Store could not enter the write buffer yet.
        }
        committed += 1;
        budget -= 1;
        window_occupancy_ -= 1;
        window_.pop_front();
    }
    stats_.instructions += committed;

    if (committed == 0 && !window_.empty()) {
        const Slot& head = window_.front();
        if (head.kind == Slot::Kind::kLoad && !head.done) {
            stats_.load_stall_cycles += 1;
        } else if (head.kind == Slot::Kind::kStore && !head.issued) {
            stats_.store_stall_cycles += 1;
        }
    }
}

void
Core::IssueMemory(std::size_t scan_limit)
{
    // At most one memory operation issues per cycle (baseline: one of the
    // three pipeline slots may be a memory op).  A dependent access may only
    // issue once it is the oldest unissued access and nothing is in flight.
    for (std::size_t i = 0; i < scan_limit; ++i) {
        Slot* slot = unissued_[i];
        const bool dependency_ready =
            !slot->depends_on_prev || (i == 0 && outstanding_loads_ == 0);
        if (!dependency_ready) {
            continue;
        }
        if (slot->kind == Slot::Kind::kLoad) {
            if (outstanding_loads_ >= config_.mshrs) {
                break; // MSHRs full: no further loads may issue.
            }
            const std::optional<RequestId> id =
                port_.TryIssueRead(thread_, slot->addr);
            if (!id.has_value()) {
                break; // Request buffer full; retry next cycle.
            }
            slot->issued = true;
            slot->request_id = *id;
            outstanding_loads_ += 1;
            stats_.loads_issued += 1;
        } else {
            if (!port_.TryIssueWrite(thread_, slot->addr)) {
                continue; // Write buffer full; a later load may still go.
            }
            slot->issued = true;
            slot->done = true; // Stores retire into the write buffer.
            stats_.stores_issued += 1;
        }
        unissued_.erase(unissued_.begin() + static_cast<std::ptrdiff_t>(i));
        return;
    }
}

void
Core::Fetch()
{
    std::uint32_t budget = config_.width;
    bool memory_fetched = false;
    while (budget > 0 && window_occupancy_ < config_.window_size) {
        if (!fetching_.has_value()) {
            if (trace_exhausted_) {
                return;
            }
            fetching_ = trace_.Next();
            if (!fetching_.has_value()) {
                trace_exhausted_ = true;
                return;
            }
            fetch_compute_left_ = fetching_->compute_instructions;
        }
        if (fetch_compute_left_ > 0) {
            const std::uint32_t n = std::min(
                {budget, fetch_compute_left_,
                 config_.window_size - window_occupancy_});
            if (!window_.empty() &&
                window_.back().kind == Slot::Kind::kCompute) {
                window_.back().count += n;
            } else {
                Slot slot;
                slot.kind = Slot::Kind::kCompute;
                slot.count = n;
                window_.push_back(slot);
            }
            window_occupancy_ += n;
            budget -= n;
            fetch_compute_left_ -= n;
            continue;
        }
        // The entry's memory operation; at most one per cycle.
        if (memory_fetched) {
            return;
        }
        Slot slot;
        slot.kind = fetching_->is_write ? Slot::Kind::kStore
                                        : Slot::Kind::kLoad;
        slot.addr = fetching_->addr;
        slot.depends_on_prev = fetching_->depends_on_prev;
        window_.push_back(slot);
        unissued_.push_back(&window_.back());
        window_occupancy_ += 1;
        budget -= 1;
        memory_fetched = true;
        fetching_.reset();
    }
}

void
Core::OnReadComplete(RequestId id)
{
    for (Slot& slot : window_) {
        if (slot.kind == Slot::Kind::kLoad && slot.issued && !slot.done &&
            slot.request_id == id) {
            slot.done = true;
            PARBS_ASSERT(outstanding_loads_ > 0,
                         "load completion with none outstanding");
            outstanding_loads_ -= 1;
            stats_.loads_completed += 1;
            return;
        }
    }
    PARBS_ASSERT(false, "read completion for an unknown request");
}

bool
Core::Done() const
{
    return trace_exhausted_ && window_.empty() && !fetching_.has_value();
}

} // namespace parbs
