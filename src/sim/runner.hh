/**
 * @file
 * The parallel experiment runner: a work-stealing thread pool that runs
 * independent simulation jobs concurrently while keeping results bit-
 * identical to serial execution.
 *
 * Determinism contract (see DESIGN.md "Parallel runner"):
 *  - Every job is a self-contained simulation whose randomness derives
 *    only from the experiment seed and the job's own identity (workload
 *    name, slot, benchmark) — never from thread identity, scheduling
 *    order, or wall-clock time.
 *  - Results are written into a pre-sized vector at the job's submission
 *    index, so the output order is the submission order regardless of
 *    completion order.
 *  - With jobs == 1 everything runs inline on the caller thread; the
 *    parallel path differs only in which thread executes a job.
 */

#ifndef PARBS_SIM_RUNNER_HH
#define PARBS_SIM_RUNNER_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace parbs {

/** @return the number of hardware threads (at least 1). */
unsigned HardwareJobs();

/**
 * A work-stealing thread pool executing batches of independent tasks.
 *
 * Tasks submitted by RunAll are distributed round-robin across per-worker
 * deques; each worker services its own deque LIFO and steals FIFO from the
 * other workers when it runs dry, so large imbalances (one long simulation
 * among many short ones) rebalance automatically.  With jobs == 1, RunAll
 * executes every task inline on the calling thread and no worker threads
 * are ever created.
 */
class TaskPool {
  public:
    /** @param jobs worker count; 0 means HardwareJobs(). */
    explicit TaskPool(unsigned jobs);
    ~TaskPool();

    TaskPool(const TaskPool&) = delete;
    TaskPool& operator=(const TaskPool&) = delete;

    unsigned jobs() const { return jobs_; }

    /**
     * Runs every task to completion (blocking).  If any task throws, the
     * first exception (in submission order among the failed tasks observed)
     * is rethrown after all tasks have finished; the remaining tasks still
     * run.  Not reentrant: RunAll must not be called from inside a task.
     */
    void RunAll(std::vector<std::function<void()>> tasks);

    /**
     * Convenience: runs fn(0) ... fn(n - 1) via RunAll.  The index is the
     * submission index — use it to write results into a pre-sized vector
     * so output order is deterministic.
     */
    void ParallelFor(std::size_t n,
                     const std::function<void(std::size_t)>& fn);

    /** Tasks stolen from another worker's deque (for tests/diagnostics). */
    std::uint64_t steal_count() const;

  private:
    struct WorkerQueue {
        std::mutex mutex;
        std::deque<std::function<void()>> tasks;
    };

    unsigned jobs_;
    std::vector<std::unique_ptr<WorkerQueue>> queues_;
    std::vector<std::thread> workers_;

    mutable std::mutex batch_mutex_;
    std::condition_variable work_ready_;
    std::condition_variable batch_done_;
    std::size_t tasks_remaining_ = 0;
    std::uint64_t batch_generation_ = 0;
    bool shutdown_ = false;
    std::exception_ptr first_error_;
    std::uint64_t steals_ = 0;

    void WorkerLoop(unsigned worker);
    /** Pops one task for @p worker (own deque LIFO, then steal FIFO). */
    std::function<void()> TakeTask(unsigned worker);
    void FinishTask();
};

} // namespace parbs

#endif // PARBS_SIM_RUNNER_HH
