/**
 * @file
 * Whole-system configuration: the paper's Table 2 baseline and its 4/8/16
 * core variants (DRAM channels scale with cores: 1, 2, 4 channels).
 */

#ifndef PARBS_SIM_CONFIG_HH
#define PARBS_SIM_CONFIG_HH

#include <cstdint>
#include <functional>
#include <memory>

#include "cpu/core.hh"
#include "dram/timing.hh"
#include "mem/controller.hh"
#include "obs/observability.hh"
#include "sched/factory.hh"

namespace parbs {

/** Complete CMP + memory-system configuration. */
struct SystemConfig {
    std::uint32_t num_cores = 4;
    /** CPU cycles per DRAM command-clock cycle (4 GHz vs DDR2-800). */
    std::uint32_t cpu_to_dram_ratio = 10;

    dram::TimingParams timing;
    dram::Geometry geometry;
    ControllerConfig controller;
    CoreConfig core;
    SchedulerConfig scheduler;

    /**
     * Extension point: when set, the System builds each channel's
     * scheduler by calling this factory instead of consulting `scheduler`,
     * so user-defined Scheduler subclasses plug in without being
     * registered (see examples/custom_scheduler.cpp).
     */
    std::function<std::unique_ptr<Scheduler>()> scheduler_factory;

    /** XOR-based address-to-bank mapping (Table 2 baseline). */
    bool xor_bank_hash = true;

    /** Event tracing / time-series sampling / latency anatomy (off by
     *  default: disabled observability is a null-pointer check per site). */
    obs::ObservabilityConfig observability;

    /**
     * Intra-run parallelism: worker threads advancing the memory
     * controllers inside one System::Run (DESIGN.md §5g).  1 keeps the
     * serial cycle loop; 0 means one worker per channel; values above the
     * channel count are clamped.  Results are bit-identical for every
     * value — sharding changes only which thread executes a controller's
     * ticks, never their order or inputs — so this is purely a wall-clock
     * knob.  Single-channel systems always run serial.
     */
    unsigned channel_jobs = 1;

    /**
     * Worker threads advancing the *cores* inside the sharded engine's
     * core phase (DESIGN.md §5g).  Meaningful only when the run is sharded
     * (channel_jobs != 1): 1 keeps the serial core sweep; 0 sizes the core
     * crew automatically (matching the channel crew, engaged from 32 cores
     * up, where the per-cycle core sweep starts to dominate); explicit
     * values above 1 always engage and are clamped to the channel-crew
     * size.  Bit-identical for every value — frontends are core-private,
     * and memory issue stays a serial thread-order sweep.
     */
    unsigned core_jobs = 0;

    /**
     * Fixed latency added to every read completion before the core sees the
     * data, in CPU cycles: L2 miss handling, the on-chip interconnect, and
     * the controller pipeline.  60 cycles reproduces the paper's Table 2
     * uncontended round trips (row hit 160, closed 240, conflict 320 CPU
     * cycles) on top of the pure DRAM timing.
     */
    std::uint32_t extra_read_latency_cpu = 60;

    /** Master seed; all simulator randomness derives from it. */
    std::uint64_t seed = 1;

    /** @throws ConfigError if any component is invalid. */
    void Validate() const;

    /**
     * The paper's baseline for @p cores cores (4, 8, or 16): DDR2-800
     * timing, 8 banks, 2 KB rows, and cores/4 memory channels.  Beyond 64
     * cores the channel count saturates at the geometry maximum (16) and
     * capacity instead scales by adding ranks per channel, so 128- and
     * 256-core baselines stay valid geometries.
     */
    static SystemConfig Baseline(std::uint32_t cores);

    /**
     * Baseline with an explicit channel count (must be a power of two,
     * 1..16).  Ranks per channel scale as max(1, cores / (4 * channels)),
     * keeping one bank group per 4 cores of the paper's ratio; the
     * one-argument overload picks channels = clamp(cores / 4, 1, 16).
     */
    static SystemConfig Baseline(std::uint32_t cores, std::uint32_t channels);
};

} // namespace parbs

#endif // PARBS_SIM_CONFIG_HH
