#include "sim/runner.hh"

#include "common/assert.hh"

namespace parbs {

unsigned
HardwareJobs()
{
    const unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : n;
}

TaskPool::TaskPool(unsigned jobs) : jobs_(jobs == 0 ? HardwareJobs() : jobs)
{
    if (jobs_ == 1) {
        return; // Inline mode: no queues, no threads.
    }
    queues_.reserve(jobs_);
    for (unsigned i = 0; i < jobs_; ++i) {
        queues_.push_back(std::make_unique<WorkerQueue>());
    }
    workers_.reserve(jobs_);
    for (unsigned i = 0; i < jobs_; ++i) {
        workers_.emplace_back([this, i] { WorkerLoop(i); });
    }
}

TaskPool::~TaskPool()
{
    if (workers_.empty()) {
        return;
    }
    {
        std::lock_guard<std::mutex> lock(batch_mutex_);
        shutdown_ = true;
    }
    work_ready_.notify_all();
    for (std::thread& worker : workers_) {
        worker.join();
    }
}

void
TaskPool::RunAll(std::vector<std::function<void()>> tasks)
{
    if (tasks.empty()) {
        return;
    }
    if (jobs_ == 1) {
        // Serial reference semantics: run in submission order, report the
        // first failure after the batch completes (same contract as the
        // parallel path).
        std::exception_ptr error;
        for (auto& task : tasks) {
            try {
                task();
            } catch (...) {
                if (!error) {
                    error = std::current_exception();
                }
            }
        }
        if (error) {
            std::rethrow_exception(error);
        }
        return;
    }

    // Ordering matters for the handoff to possibly-still-scanning workers:
    // (1) arm the completion count, (2) publish the tasks, (3) bump the
    // batch generation and wake sleepers.  A worker that grabs a task
    // during (2) already sees the armed count; a worker that found nothing
    // before (2) blocks until the generation moves in (3).
    {
        std::lock_guard<std::mutex> lock(batch_mutex_);
        PARBS_ASSERT(tasks_remaining_ == 0,
                     "TaskPool::RunAll is not reentrant");
        tasks_remaining_ = tasks.size();
        first_error_ = nullptr;
    }
    for (std::size_t i = 0; i < tasks.size(); ++i) {
        WorkerQueue& queue = *queues_[i % jobs_];
        std::lock_guard<std::mutex> lock(queue.mutex);
        queue.tasks.push_back(std::move(tasks[i]));
    }
    {
        std::lock_guard<std::mutex> lock(batch_mutex_);
        batch_generation_ += 1;
    }
    work_ready_.notify_all();

    std::unique_lock<std::mutex> lock(batch_mutex_);
    batch_done_.wait(lock, [this] { return tasks_remaining_ == 0; });
    if (first_error_) {
        std::exception_ptr error = first_error_;
        first_error_ = nullptr;
        std::rethrow_exception(error);
    }
}

void
TaskPool::ParallelFor(std::size_t n,
                      const std::function<void(std::size_t)>& fn)
{
    std::vector<std::function<void()>> tasks;
    tasks.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        tasks.push_back([&fn, i] { fn(i); });
    }
    RunAll(std::move(tasks));
}

std::uint64_t
TaskPool::steal_count() const
{
    std::lock_guard<std::mutex> lock(batch_mutex_);
    return steals_;
}

std::function<void()>
TaskPool::TakeTask(unsigned worker)
{
    // Own deque first, newest task first: the most recently pushed work is
    // the most cache-warm and keeps the deque's front available to thieves.
    {
        WorkerQueue& own = *queues_[worker];
        std::lock_guard<std::mutex> lock(own.mutex);
        if (!own.tasks.empty()) {
            std::function<void()> task = std::move(own.tasks.back());
            own.tasks.pop_back();
            return task;
        }
    }
    // Steal oldest-first from the other workers, scanning from the next
    // worker round-robin so thieves spread across victims.
    for (unsigned offset = 1; offset < jobs_; ++offset) {
        WorkerQueue& victim = *queues_[(worker + offset) % jobs_];
        std::lock_guard<std::mutex> lock(victim.mutex);
        if (!victim.tasks.empty()) {
            std::function<void()> task = std::move(victim.tasks.front());
            victim.tasks.pop_front();
            {
                std::lock_guard<std::mutex> count_lock(batch_mutex_);
                steals_ += 1;
            }
            return task;
        }
    }
    return nullptr;
}

void
TaskPool::FinishTask()
{
    bool last = false;
    {
        std::lock_guard<std::mutex> lock(batch_mutex_);
        PARBS_ASSERT(tasks_remaining_ > 0, "task accounting underflow");
        tasks_remaining_ -= 1;
        last = tasks_remaining_ == 0;
    }
    if (last) {
        batch_done_.notify_all();
    }
}

void
TaskPool::WorkerLoop(unsigned worker)
{
    std::uint64_t seen_generation = 0;
    while (true) {
        std::function<void()> task = TakeTask(worker);
        if (!task) {
            std::unique_lock<std::mutex> lock(batch_mutex_);
            if (shutdown_) {
                return;
            }
            work_ready_.wait(lock, [this, seen_generation] {
                return shutdown_ || batch_generation_ != seen_generation;
            });
            if (shutdown_) {
                return;
            }
            seen_generation = batch_generation_;
            continue; // Re-scan the deques under the new generation.
        }
        try {
            task();
        } catch (...) {
            std::lock_guard<std::mutex> lock(batch_mutex_);
            if (!first_error_) {
                first_error_ = std::current_exception();
            }
        }
        FinishTask();
    }
}

} // namespace parbs
