#include "sim/config.hh"

#include "common/assert.hh"

namespace parbs {

void
SystemConfig::Validate() const
{
    if (num_cores == 0) {
        PARBS_FATAL("system: num_cores must be nonzero");
    }
    if (cpu_to_dram_ratio == 0) {
        PARBS_FATAL("system: cpu_to_dram_ratio must be nonzero");
    }
    timing.Validate();
    geometry.Validate();
    controller.Validate();
    core.Validate();
    observability.Validate();
}

SystemConfig
SystemConfig::Baseline(std::uint32_t cores)
{
    if (cores == 0) {
        PARBS_FATAL("baseline requires at least one core");
    }
    SystemConfig config;
    config.num_cores = cores;
    // "DRAM channels scaled with cores: 1, 2, 4 parallel lock-step channels
    // for 4, 8, 16 cores" — generalized to cores/4, minimum 1.
    config.geometry.channels = cores >= 4 ? cores / 4 : 1;
    return config;
}

} // namespace parbs
