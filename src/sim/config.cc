#include "sim/config.hh"

#include "common/assert.hh"

namespace parbs {

void
SystemConfig::Validate() const
{
    if (num_cores == 0) {
        PARBS_FATAL("system: num_cores must be nonzero");
    }
    if (cpu_to_dram_ratio == 0) {
        PARBS_FATAL("system: cpu_to_dram_ratio must be nonzero");
    }
    timing.Validate();
    geometry.Validate();
    controller.Validate();
    core.Validate();
    observability.Validate();
}

SystemConfig
SystemConfig::Baseline(std::uint32_t cores)
{
    if (cores == 0) {
        PARBS_FATAL("baseline requires at least one core");
    }
    // "DRAM channels scaled with cores: 1, 2, 4 parallel lock-step channels
    // for 4, 8, 16 cores" — generalized to cores/4, saturating at the
    // geometry maximum of 16 channels (128+ cores then scale by ranks).
    std::uint32_t channels = cores >= 4 ? cores / 4 : 1;
    if (channels > 16) {
        channels = 16;
    }
    return Baseline(cores, channels);
}

SystemConfig
SystemConfig::Baseline(std::uint32_t cores, std::uint32_t channels)
{
    if (cores == 0) {
        PARBS_FATAL("baseline requires at least one core");
    }
    if (channels == 0 || channels > 16 ||
        (channels & (channels - 1)) != 0) {
        PARBS_FATAL("baseline channels must be a power of two in 1..16");
    }
    SystemConfig config;
    config.num_cores = cores;
    config.geometry.channels = channels;
    // Keep the paper's one-bank-group-per-4-cores capacity ratio: once the
    // channel count stops absorbing it, add ranks per channel instead.
    const std::uint32_t groups = cores >= 4 ? cores / 4 : 1;
    config.geometry.ranks_per_channel =
        groups > channels ? groups / channels : 1;
    return config;
}

} // namespace parbs
