/**
 * @file
 * The full CMP system: cores, the address mapper, and one memory controller
 * per channel, advanced in lock-step on the two clock domains.
 */

#ifndef PARBS_SIM_SYSTEM_HH
#define PARBS_SIM_SYSTEM_HH

#include <deque>
#include <iosfwd>
#include <memory>
#include <vector>

#include "cpu/core.hh"
#include "dram/address_mapper.hh"
#include "mem/controller.hh"
#include "obs/observability.hh"
#include "sim/config.hh"
#include "stats/metrics.hh"
#include "trace/trace.hh"

namespace parbs {

/** A simulated chip-multiprocessor sharing a DRAM memory system. */
class System : public MemoryPort {
  public:
    /**
     * @param config validated system configuration
     * @param traces one trace source per core (ownership transferred);
     *        entries may be fewer than cores — missing cores idle.
     */
    System(const SystemConfig& config,
           std::vector<std::unique_ptr<TraceSource>> traces);

    /**
     * Runs for @p cpu_cycles CPU cycles (or until every core's trace is
     * exhausted, whichever comes first).  May be called repeatedly to
     * continue the simulation.
     */
    void Run(CpuCycle cpu_cycles);

    /** @return true once all cores have drained their traces. */
    bool AllDone() const;

    CpuCycle now() const { return cpu_cycle_; }

    std::uint32_t num_cores() const;

    Core& core(ThreadId thread);
    const Core& core(ThreadId thread) const;

    Controller& controller(std::uint32_t channel);
    const Controller& controller(std::uint32_t channel) const;
    std::uint32_t num_controllers() const;

    const dram::AddressMapper& mapper() const { return mapper_; }

    /** Sets a thread's priority on every channel's scheduler (Section 5). */
    void SetThreadPriority(ThreadId thread, ThreadPriority priority);

    /** Sets a thread's bandwidth weight on every channel's scheduler. */
    void SetThreadWeight(ThreadId thread, double weight);

    /** Joins core-side and DRAM-side statistics for @p thread. */
    ThreadMeasurement Measure(ThreadId thread) const;

    /** Null unless config.observability.Enabled() at construction. */
    const obs::Observability* observability() const { return obs_.get(); }

    /**
     * Writes the Chrome trace-event document for this run to @p out.
     * @pre observability is enabled (asserted).
     */
    void WriteTrace(std::ostream& out,
                    const std::string& workload_label = "") const;

    /**
     * Writes a human-readable statistics report for the whole system:
     * per-core performance, per-controller DRAM counters, and each
     * scheduler's own diagnostics (gem5-style end-of-run dump).
     */
    void DumpStats(std::ostream& out) const;

    // --- MemoryPort -------------------------------------------------------
    std::optional<RequestId> TryIssueRead(ThreadId thread, Addr addr) override;
    bool TryIssueWrite(ThreadId thread, Addr addr) override;

  private:
    SystemConfig config_;
    dram::AddressMapper mapper_;

    std::vector<std::unique_ptr<TraceSource>> traces_;
    std::vector<std::unique_ptr<Core>> cores_;
    std::vector<std::unique_ptr<Controller>> controllers_;

    /** Constructed only when config.observability.Enabled(). */
    std::unique_ptr<obs::Observability> obs_;
    /** Cached &obs_->sampler(), or null — keeps the Run loop branch cheap. */
    obs::IntervalSampler* sampler_ = nullptr;

    CpuCycle cpu_cycle_ = 0;
    RequestId next_request_id_ = 1;

    /** Total addressable bytes (cached from the geometry). */
    std::uint64_t capacity_bytes_;

    /**
     * Global no-progress detection (active when the controller watchdog is
     * enabled): a monotone progress signature — instructions retired plus
     * DRAM commands issued — must advance within a bounded window while
     * work remains, or the run fails with a WatchdogError carrying the
     * full system statistics dump.
     */
    std::uint64_t progress_signature_ = 0;
    CpuCycle progress_cycle_ = 0;
    CpuCycle progress_bound_cpu_ = 0;
    CpuCycle next_progress_check_ = 0;

    void CheckGlobalProgress();
    std::uint64_t ProgressSignature() const;

    /** @throws ConfigError if @p addr exceeds the configured capacity. */
    void CheckAddr(Addr addr) const;

    /** Read completions awaiting the fixed return-path latency. */
    struct PendingNotify {
        CpuCycle ready;
        ThreadId thread;
        RequestId id;
    };
    std::deque<PendingNotify> notifications_;

    void DeliverNotifications();

    DramCycle DramNow() const { return cpu_cycle_ / config_.cpu_to_dram_ratio; }

    std::unique_ptr<MemRequest> MakeRequest(ThreadId thread, Addr addr,
                                            bool is_write);
};

} // namespace parbs

#endif // PARBS_SIM_SYSTEM_HH
