/**
 * @file
 * The full CMP system: cores, the address mapper, and one memory controller
 * per channel, advanced in lock-step on the two clock domains.
 *
 * Two execution engines produce bit-identical results (DESIGN.md §5g):
 * the serial cycle loop, and a sharded loop (config.channel_jobs > 1) that
 * advances each channel's controller on a worker thread in adaptive
 * lookahead windows.  Inside the sharded engine the per-cycle core advance
 * can itself be partitioned across the same worker pool
 * (config.core_jobs): core frontends run in parallel, memory issue stays a
 * serial thread-order sweep, so stats and trace bytes are identical for
 * every crew size.
 */

#ifndef PARBS_SIM_SYSTEM_HH
#define PARBS_SIM_SYSTEM_HH

#include <atomic>
#include <cstdint>
#include <deque>
#include <exception>
#include <iosfwd>
#include <memory>
#include <vector>

#include "cpu/core.hh"
#include "dram/address_mapper.hh"
#include "mem/controller.hh"
#include "mem/request_pool.hh"
#include "obs/observability.hh"
#include "sim/config.hh"
#include "stats/metrics.hh"
#include "trace/trace.hh"

namespace parbs {

class ChannelTeam;

namespace json {
class Value;
}

namespace obs {
class EngineProfiler;
}

/** A simulated chip-multiprocessor sharing a DRAM memory system. */
class System : public MemoryPort {
  public:
    /**
     * @param config validated system configuration
     * @param traces one trace source per core (ownership transferred);
     *        entries may be fewer than cores — missing cores idle.
     */
    System(const SystemConfig& config,
           std::vector<std::unique_ptr<TraceSource>> traces);

    ~System() override;

    /**
     * Runs for @p cpu_cycles CPU cycles (or until every core's trace is
     * exhausted, whichever comes first).  May be called repeatedly to
     * continue the simulation.
     */
    void Run(CpuCycle cpu_cycles);

    /** @return true once all cores have drained their traces. */
    bool AllDone() const;

    CpuCycle now() const { return cpu_cycle_; }

    std::uint32_t num_cores() const;

    Core& core(ThreadId thread);
    const Core& core(ThreadId thread) const;

    Controller& controller(std::uint32_t channel);
    const Controller& controller(std::uint32_t channel) const;
    std::uint32_t num_controllers() const;

    const dram::AddressMapper& mapper() const { return mapper_; }

    /** Sets a thread's priority on every channel's scheduler (Section 5). */
    void SetThreadPriority(ThreadId thread, ThreadPriority priority);

    /** Sets a thread's bandwidth weight on every channel's scheduler. */
    void SetThreadWeight(ThreadId thread, double weight);

    /** Joins core-side and DRAM-side statistics for @p thread. */
    ThreadMeasurement Measure(ThreadId thread) const;

    /** Null unless config.observability.Enabled() at construction. */
    const obs::Observability* observability() const { return obs_.get(); }

    /** Null unless config.observability.engine_profile at construction. */
    const obs::EngineProfiler* engine_profiler() const
    {
        return engine_profiler_.get();
    }

    /**
     * Deterministic engine counters (window accounting, arrival balance,
     * pick-memo rates) for the bench `run.engine` subtree; byte-identical
     * across --jobs / --channel-jobs / core_jobs.
     * @pre the engine profiler is enabled (asserted).
     */
    json::Value EngineRunJson() const;

    /**
     * Volatile engine timings (per-phase wall clock, serial-tail fraction,
     * worker utilization) plus machine-shape counters (request-pool high
     * waters) for the bench `env.engine` subtree.
     * @pre the engine profiler is enabled (asserted).
     */
    json::Value EngineEnvJson() const;

    /**
     * One-look engine state for stall dumps: engine kind, window bounds,
     * team phase, per-worker lockstep progress, per-shard occupancy.
     * Appended to watchdog errors so a hung run shows where the engine
     * was parked.  Works with or without the profiler.
     */
    std::string EngineStateDump() const;

    /**
     * Writes the Chrome trace-event document for this run to @p out.
     * @pre observability is enabled (asserted).
     */
    void WriteTrace(std::ostream& out,
                    const std::string& workload_label = "") const;

    /**
     * Writes a human-readable statistics report for the whole system:
     * per-core performance, per-controller DRAM counters, and each
     * scheduler's own diagnostics (gem5-style end-of-run dump).
     */
    void DumpStats(std::ostream& out) const;

    /**
     * True when Run uses the sharded engine: the resolved channel_jobs
     * exceeds 1, there is more than one channel, and the timing admits a
     * nonzero lookahead window.  Otherwise Run silently falls back to the
     * serial loop (results are identical either way).
     */
    bool sharded() const { return sharded_; }

    /** The sharded engine's lookahead window, in DRAM cycles (0 when the
     *  timing admits none; see DESIGN.md §5g for the bound). */
    DramCycle lookahead_window() const { return window_; }

    /** Resolved core-phase crew size: 1 means the serial core sweep, >1
     *  means the lockstep parallel core phase runs on that many
     *  participants of the channel team (DESIGN.md §5g). */
    unsigned core_crew() const { return core_crew_; }

    // --- MemoryPort -------------------------------------------------------
    std::optional<RequestId> TryIssueRead(ThreadId thread, Addr addr) override;
    bool TryIssueWrite(ThreadId thread, Addr addr) override;

  private:
    SystemConfig config_;
    dram::AddressMapper mapper_;

    std::vector<std::unique_ptr<TraceSource>> traces_;
    std::vector<std::unique_ptr<Core>> cores_;
    /**
     * Per-channel request slabs (mem/request_pool.hh).  Declared before
     * the controllers (and the shards below) so the pools are destroyed
     * *after* everything still holding RequestPtrs into them.
     */
    std::vector<std::unique_ptr<RequestPool>> pools_;
    std::vector<std::unique_ptr<Controller>> controllers_;

    /** Constructed only when config.observability.Enabled(). */
    std::unique_ptr<obs::Observability> obs_;
    /** Cached &obs_->sampler(), or null — keeps the Run loop branch cheap. */
    obs::IntervalSampler* sampler_ = nullptr;

    CpuCycle cpu_cycle_ = 0;
    RequestId next_request_id_ = 1;

    /** Total addressable bytes (cached from the geometry). */
    std::uint64_t capacity_bytes_;

    /**
     * Global no-progress detection (active when the controller watchdog is
     * enabled): a monotone progress signature — instructions retired plus
     * DRAM commands issued — must advance within a bounded window while
     * work remains, or the run fails with a WatchdogError carrying the
     * full system statistics dump.
     */
    std::uint64_t progress_signature_ = 0;
    CpuCycle progress_cycle_ = 0;
    CpuCycle progress_bound_cpu_ = 0;
    CpuCycle next_progress_check_ = 0;

    void CheckGlobalProgress();
    std::uint64_t ProgressSignature() const;

    /** @throws ConfigError if @p addr exceeds the configured capacity. */
    void CheckAddr(Addr addr) const;

    /** Read completions awaiting the fixed return-path latency. */
    struct PendingNotify {
        CpuCycle ready;
        ThreadId thread;
        RequestId id;
    };
    std::deque<PendingNotify> notifications_;

    /**
     * The front deadline of notifications_ (kNeverCycle when empty),
     * maintained on every push and delivery so the per-cycle loop probes
     * one cached integer instead of the deque.
     */
    CpuCycle next_notify_ready_ = kNeverCycle;

    void DeliverNotifications();

    /**
     * Cores whose traces have not drained yet, with a per-core done flag
     * to detect the (monotone) transition after each core tick — makes
     * the per-cycle all-done probe O(1) instead of an O(cores) scan.
     */
    std::uint32_t active_cores_ = 0;
    std::vector<std::uint8_t> core_done_;

    DramCycle DramNow() const { return cpu_cycle_ / config_.cpu_to_dram_ratio; }

    /** Builds a request from the target channel's slab pool. */
    RequestPtr MakeRequest(ThreadId thread, Addr addr, bool is_write,
                           const dram::DecodedAddr& coords);

    // --- sharded engine (DESIGN.md §5g) -----------------------------------

    /** One issued request in flight to its channel's worker. */
    struct MailboxEntry {
        DramCycle arrival;
        /** Global issue order across channels; keys trace-merge replay. */
        std::uint64_t seq;
        RequestPtr request;
    };

    /**
     * One contiguous run of events in a channel's staging tracer, tagged
     * with its serial-order key: controller-tick runs sort by (cycle,
     * channel); arrival runs sort by (arrival cycle, issue seq) after all
     * tick runs of that cycle.  Keys are unique — at most one tick run per
     * (cycle, channel) and one arrival run per enqueue — so the merge
     * order is total and reproduces the serial emission order exactly.
     */
    struct StagedRun {
        DramCycle cycle;
        std::uint8_t phase; ///< 0 = controller tick, 1 = request arrival
        std::uint64_t order;
        std::uint32_t begin;
        std::uint32_t end;
    };

    struct StagedSample {
        DramCycle cycle;
        obs::ControllerSample data;
    };

    /**
     * Per-channel shard state.  Within a window the coordinator writes the
     * inbox/proxies and the worker reads them (and vice versa for the
     * completion/staging outputs) in strictly alternating phases separated
     * by the team barrier, so no field is ever accessed concurrently.
     */
    struct ChannelShard {
        /** Requests issued by cores this window, in issue order. */
        std::vector<MailboxEntry> inbox;

        /**
         * Exact queue-occupancy proxies driving CanAccept backpressure on
         * the coordinator: incremented at issue, decremented by the retire
         * schedule below.  Asserted equal to the real queue sizes at every
         * barrier.
         */
        std::size_t read_size = 0;
        std::size_t write_size = 0;

        /**
         * The retire schedule for the *next* window: every in-burst
         * request retiring before the window's end, known exactly in
         * advance because the window is no longer than the shortest burst
         * latency (Controller::PendingRetires).  Read entries carry the
         * (thread, id) of the eventual completion, so the schedule doubles
         * as the source of the pre-published core notifications
         * (PublishNotifications).
         */
        std::vector<Controller::PendingRead> read_retires;
        std::vector<DramCycle> write_retires;
        std::size_t read_pos = 0;
        std::size_t write_pos = 0;

        /**
         * Read completions the window actually produced, in tick order.
         * Since notifications are published from the retire schedules
         * ahead of execution, this is purely a cross-check: AdvanceChannel
         * asserts it equals the schedule prefix the window ran under.
         */
        std::vector<PendingNotify> completions;

        /** First per-channel error of the window (e.g. WatchdogError). */
        std::exception_ptr error;

        // Staging observability sinks (null when tracing is off).
        std::unique_ptr<obs::Tracer> tracer;
        std::unique_ptr<obs::LatencyAnatomy> latency;
        std::vector<StagedRun> runs;
        std::size_t staged_mark = 0;
        std::vector<StagedSample> samples;
        DramCycle next_sample = kNeverCycle;

        /** Tags events staged since the last mark as one ordered run. */
        void CloseRun(DramCycle cycle, std::uint8_t phase,
                      std::uint64_t order);
    };

    bool sharded_ = false;
    unsigned shard_jobs_ = 1;
    /** Lookahead window in DRAM cycles; see LookaheadWindow(). */
    DramCycle window_ = 0;
    /** Next controller tick to execute == ceil(cpu_cycle_ / ratio) at
     *  every window boundary (the engine's central invariant). */
    DramCycle next_tick_ = 0;
    std::uint64_t arrival_seq_ = 0;
    std::size_t read_capacity_ = 0;
    std::size_t write_capacity_ = 0;
    DramCycle sample_interval_ = 0;

    std::vector<std::unique_ptr<ChannelShard>> shards_;

    /** Current window bounds, published before each team release. */
    DramCycle window_from_ = 0;
    DramCycle window_to_ = 0;
    DramCycle window_limit_ = 0;

    /** Merge scratch, reused across windows. */
    struct TaggedRun {
        StagedRun run;
        std::uint32_t channel;
    };
    std::vector<TaggedRun> merge_runs_;
    /** Per-channel cursor scratch for the notification publish merge. */
    std::vector<std::size_t> publish_pos_;

    // --- sharded core phase (DESIGN.md §5g) -------------------------------

    /** What the team's participants run in the current RunWindow. */
    enum class TeamPhase : std::uint8_t { kChannels, kCores };
    TeamPhase team_phase_ = TeamPhase::kChannels;

    /** Resolved core-phase crew size (1 = serial core sweep). */
    unsigned core_crew_ = 1;
    /** Contiguous [begin, end) core block per participant. */
    std::vector<std::pair<ThreadId, ThreadId>> core_blocks_;

    /**
     * Per-worker lockstep state.  `done` counts the cycles the worker has
     * fully executed for the current core phase; the coordinator joins a
     * cycle by waiting for every worker's done to reach the release count.
     * UINT64_MAX doubles as the "worker bailed out" sentinel (error set),
     * which trivially satisfies every join.
     */
    struct CoreWorkerState {
        alignas(64) std::atomic<CpuCycle> done{0};
        std::exception_ptr error;
    };
    std::unique_ptr<CoreWorkerState[]> core_workers_;

    /** Cycles released to the workers this core phase (coordinator-only
     *  writer; release-ordered so frontends are visible at the join). */
    std::atomic<CpuCycle> core_release_{0};
    /** Set (release) after the final release of a phase; a worker exits
     *  once it sees it *and* has executed every released cycle. */
    std::atomic<bool> core_stop_{false};

    CpuCycle core_phase_base_ = 0;
    CpuCycle core_phase_end_ = 0;
    bool core_phase_all_done_ = false;

    /**
     * Per-core slices of notifications_ for the current core phase, built
     * at phase start; workers deliver from their cores' mirrors so the
     * shared deque is never touched off the coordinator.  The coordinator
     * pops the delivered prefix of notifications_ in the serial tail.
     */
    std::vector<std::vector<PendingNotify>> core_notify_;
    std::vector<std::size_t> core_notify_pos_;

    // --- engine flight recorder (DESIGN.md §5h) ---------------------------

    /** Constructed only when config.observability.engine_profile. */
    std::unique_ptr<obs::EngineProfiler> engine_profiler_;
    /** Cached raw pointer, same discipline as sampler_: the hot-path gate
     *  is one null check, no unique_ptr deref. */
    obs::EngineProfiler* eng_ = nullptr;
    /** The serial engine's replica of next_tick_: where the sharded engine
     *  would close windows, so the deterministic window counters match
     *  byte-for-byte across engines (ProfileSerialWindow). */
    DramCycle prof_next_tick_ = 0;
    /** Reused per-channel occupancy scratch for window closes. */
    std::vector<std::uint64_t> prof_occupancy_;

    /** Closes the serial engine's replicated window at the current cycle
     *  (no-op when no controller tick has been executed since the last
     *  close). */
    void ProfileSerialWindow();

    /** Rethrows a worker-side error; watchdog errors are rewrapped with
     *  the engine state dump appended so a stall shows where the engine
     *  was parked. */
    [[noreturn]] void RethrowShardError(std::exception_ptr error);

    /** Ordered last so its threads join before any state they touch dies. */
    std::unique_ptr<ChannelTeam> team_;

    /** The largest window that preserves cycle-exactness (DESIGN.md §5g):
     *  min(read burst latency, write burst latency) in DRAM cycles — the
     *  earliest a command issued inside a window can complete.  Read
     *  notifications are published ahead of execution, so the return-path
     *  latency no longer bounds the window. */
    DramCycle LookaheadWindow() const;

    void RunSerial(CpuCycle end);
    void RunSharded(CpuCycle end);

    /** Worker body: advances this participant's share of the phase. */
    void RunParticipant(unsigned participant);
    void AdvanceChannel(std::uint32_t channel);

    /**
     * Runs one core phase (cycles [cpu_cycle_, core_end)) across the
     * team in lockstep: per cycle, workers deliver + frontend their core
     * blocks in parallel, then the coordinator issues memory for all
     * cores in thread order.  @return true if the all-done probe fired.
     */
    bool RunCorePhaseParallel(CpuCycle core_end);
    void RunCoreCoordinator();
    void RunCoreWorker(unsigned participant);
    /** Delivers mirrored notifications and ticks frontends for one block. */
    void AdvanceCoreBlock(unsigned participant, CpuCycle cycle);

    /**
     * Rebuilds the pre-published notification schedule at a window
     * boundary: drops the (provably undelivered) suffix for ticks >=
     * next_tick_ and re-appends the shards' fresh read-retire schedules,
     * k-way merged by (completion, channel) — the serial callback order.
     */
    void PublishNotifications();

    /** Applies scheduled retires with completion <= @p tick to proxies. */
    void ApplyScheduledRetires(DramCycle tick);

    /** Re-establishes coordinator state from the real controllers at the
     *  start of a sharded Run (schedules, proxies, sampler cursors). */
    void PrepareShardedRun();

    /** Folds the window's outputs back into the serial-order structures:
     *  notifications, trace, latency, samples; verifies the proxies. */
    void MergeWindow();
    void MergeObservability();

    /** O(channels) drained check over the occupancy proxies. */
    bool AllShardsIdle() const;

    /** Points controllers and adapters at the staging (or main) sinks. */
    void BindShardObservability(bool staging);
};

} // namespace parbs

#endif // PARBS_SIM_SYSTEM_HH
