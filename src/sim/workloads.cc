#include "sim/workloads.hh"

#include <algorithm>

#include "common/assert.hh"
#include "common/rng.hh"
#include "trace/spec_profiles.hh"

namespace parbs {
namespace {

WorkloadSpec
Named(std::string name, std::vector<std::string> benchmarks)
{
    WorkloadSpec spec;
    spec.name = std::move(name);
    spec.benchmarks = std::move(benchmarks);
    return spec;
}

/** Table 3 row by 1-based paper index. */
const BenchmarkProfile&
ByIndex(std::size_t index)
{
    const auto& profiles = SpecProfiles();
    PARBS_ASSERT(index >= 1 && index <= profiles.size(),
                 "Table 3 index out of range");
    return profiles[index - 1];
}

std::vector<std::string>
ByIndices(std::initializer_list<std::size_t> indices)
{
    std::vector<std::string> out;
    for (std::size_t index : indices) {
        out.emplace_back(ByIndex(index).name);
    }
    return out;
}

} // namespace

WorkloadSpec
CaseStudy1()
{
    return Named("CaseStudyI",
                 {"462.libquantum", "429.mcf", "459.GemsFDTD",
                  "483.xalancbmk"});
}

WorkloadSpec
CaseStudy2()
{
    return Named("CaseStudyII",
                 {"matlab", "464.h264ref", "471.omnetpp", "456.hmmer"});
}

WorkloadSpec
CaseStudy3()
{
    return Copies("470.lbm", 4);
}

WorkloadSpec
Copies(const std::string& benchmark, std::uint32_t count)
{
    const BenchmarkProfile& profile = FindProfile(benchmark);
    WorkloadSpec spec;
    spec.name = std::to_string(count) + "x" + std::string(profile.name);
    spec.benchmarks.assign(count, std::string(profile.name));
    return spec;
}

std::vector<WorkloadSpec>
Fig8SampleWorkloads()
{
    // The ten 4-core mixes labelled individually in Figure 8 (left).
    return {
        Named("libq+h264+omnet+hmmer",
              {"462.libquantum", "464.h264ref", "471.omnetpp",
               "456.hmmer"}),
        Named("lbm+matlab+Gems+omnet",
              {"470.lbm", "matlab", "459.GemsFDTD", "471.omnetpp"}),
        Named("Gems+omnet+astar+hmmer",
              {"459.GemsFDTD", "471.omnetpp", "473.astar", "456.hmmer"}),
        Named("libq+xml+astar+hmmer",
              {"462.libquantum", "xml-parser", "473.astar", "456.hmmer"}),
        Named("matlab+omnet+astar+bzip2",
              {"matlab", "471.omnetpp", "473.astar", "401.bzip2"}),
        Named("4xleslie3d",
              {"437.leslie3d", "437.leslie3d", "437.leslie3d",
               "437.leslie3d"}),
        Named("sphinx+libq+h264+omnet",
              {"482.sphinx3", "462.libquantum", "464.h264ref",
               "471.omnetpp"}),
        Named("libq+mcf+xalanc+gromacs",
              {"462.libquantum", "429.mcf", "483.xalancbmk",
               "435.gromacs"}),
        Named("lbm+matlab+astar+hmmer",
              {"470.lbm", "matlab", "473.astar", "456.hmmer"}),
        Named("lbm+astar+h264+gromacs",
              {"470.lbm", "473.astar", "464.h264ref", "435.gromacs"}),
    };
}

WorkloadSpec
EightCoreMixed()
{
    return Named("8core-mixed",
                 {"429.mcf", "xml-parser", "436.cactusADM", "473.astar",
                  "456.hmmer", "464.h264ref", "435.gromacs", "401.bzip2"});
}

std::vector<WorkloadSpec>
SixteenCoreSamples()
{
    std::vector<WorkloadSpec> out;

    // "1,5,6,9,13-22,27,28": Table 3 indices.
    out.push_back(Named("16core-sample-A",
                        ByIndices({1, 5, 6, 9, 13, 14, 15, 16, 17, 18, 19,
                                   20, 21, 22, 27, 28})));
    // "9,13-22,24-28".
    out.push_back(Named("16core-sample-B",
                        ByIndices({9, 13, 14, 15, 16, 17, 18, 19, 20, 21,
                                   22, 24, 25, 26, 27, 28})));
    // intensive16: the twelve memory-intensive benchmarks (1-12) plus the
    // four most intensive again.
    out.push_back(Named("intensive16",
                        ByIndices({1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 5,
                                   6, 9, 1})));
    // middle16: two benchmarks from every Table 3 category.
    {
        std::vector<std::string> mix;
        Rng rng(0xA11CE);
        for (int category = 0; category < 8; ++category) {
            const auto members = ProfilesInCategory(category);
            PARBS_ASSERT(!members.empty(), "empty Table 3 category");
            for (int pick = 0; pick < 2; ++pick) {
                mix.emplace_back(
                    members[rng.NextBelow(members.size())]->name);
            }
        }
        out.push_back(Named("middle16", std::move(mix)));
    }
    // non-intensive16: the sixteen low-intensity benchmarks (13-28).
    out.push_back(Named("non-intensive16",
                        ByIndices({13, 14, 15, 16, 17, 18, 19, 20, 21, 22,
                                   23, 24, 25, 26, 27, 28})));
    return out;
}

std::vector<WorkloadSpec>
RandomMixes(std::uint32_t count, std::uint32_t cores, std::uint64_t seed)
{
    PARBS_ASSERT(cores > 0, "workload mixes need at least one core");
    Rng rng(seed);
    std::vector<WorkloadSpec> out;
    out.reserve(count);

    for (std::uint32_t w = 0; w < count; ++w) {
        std::vector<int> categories;
        if (cores <= 8) {
            // Distinct categories; for 4 cores a random 4-subset of the 8.
            std::vector<int> all{0, 1, 2, 3, 4, 5, 6, 7};
            rng.Shuffle(all);
            categories.assign(all.begin(), all.begin() + std::min<std::size_t>(
                                                              cores, all.size()));
            while (categories.size() < cores) {
                categories.push_back(
                    all[rng.NextBelow(all.size())]);
            }
        } else {
            // 16 cores: every category twice.
            for (int repeat = 0; repeat < 2; ++repeat) {
                for (int category = 0; category < 8; ++category) {
                    categories.push_back(category);
                }
            }
            rng.Shuffle(categories);
            categories.resize(cores);
        }

        WorkloadSpec spec;
        spec.name = "mix-" + std::to_string(cores) + "c-" +
                    std::to_string(w);
        for (int category : categories) {
            const auto members = ProfilesInCategory(category);
            PARBS_ASSERT(!members.empty(), "empty Table 3 category");
            spec.benchmarks.emplace_back(
                members[rng.NextBelow(members.size())]->name);
        }
        out.push_back(std::move(spec));
    }
    return out;
}

} // namespace parbs
