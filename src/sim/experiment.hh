/**
 * @file
 * The experiment harness behind every reproduced table and figure: builds
 * systems from workload specs, runs each benchmark alone to establish the
 * slowdown baselines (cached), runs shared workloads under any scheduler,
 * and aggregates metrics across workload sets.
 */

#ifndef PARBS_SIM_EXPERIMENT_HH
#define PARBS_SIM_EXPERIMENT_HH

#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "sim/config.hh"
#include "sim/system.hh"
#include "sim/workloads.hh"
#include "stats/metrics.hh"
#include "trace/spec_profiles.hh"

namespace parbs {

/** Experiment-wide parameters. */
struct ExperimentConfig {
    std::uint32_t cores = 4;
    /** Simulated CPU cycles per run (shared and alone). */
    CpuCycle run_cycles = 2'000'000;
    std::uint64_t seed = 1;

    /**
     * Worker threads advancing the memory controllers inside each run
     * (SystemConfig::channel_jobs): 1 keeps the serial cycle loop, 0 means
     * one worker per channel.  Bit-identical results either way; forced to
     * 1 under PARBS_CHECK so the serial loop stays the cross-reference.
     */
    unsigned channel_jobs = 1;

    /**
     * When nonempty (or when the PARBS_TRACE environment variable is set),
     * every shared run writes a Chrome trace-event document to
     * `<path minus .json>-<workload>-<scheduler>.json`.  Alone-baseline
     * runs are never traced — they must stay byte-comparable across
     * traced and untraced experiments.
     */
    std::string trace_path;
    /** Sampler period for traced runs, in DRAM cycles (0 disables). */
    DramCycle trace_sample_interval = 1024;

    /** @ref trace_path if set, else the PARBS_TRACE environment variable. */
    std::string EffectiveTracePath() const;

    /**
     * Optional hook applied to every system configuration this experiment
     * builds (alone and shared runs alike) — the seam for parameter-sweep
     * ablations: change bank counts, row sizes, timing, core parameters...
     */
    std::function<void(SystemConfig&)> customize;

    /** Builds the system configuration for one run. */
    SystemConfig MakeSystemConfig(const SchedulerConfig& scheduler) const;
};

/** Result of one shared-workload simulation. */
struct SharedRun {
    std::string workload;
    std::string scheduler;
    std::vector<std::string> benchmarks;
    std::vector<ThreadMeasurement> shared;
    std::vector<ThreadMeasurement> alone;
    WorkloadMetrics metrics;
};

/** Aggregate over a workload set (the paper reports GMEAN columns). */
struct AggregateMetrics {
    double unfairness_gmean = 1.0;
    double weighted_speedup_gmean = 0.0;
    double hmean_speedup_gmean = 0.0;
    double ast_per_req_mean = 0.0;
    double worst_case_latency_mean = 0.0;
};

/**
 * Thread-safe memoization of alone-run baselines, shared between runner
 * copies and across the TaskPool's workers.  The first caller for a
 * benchmark computes it (outside the lock); concurrent callers for the
 * same benchmark block until the value is ready.  The measurement is a
 * pure function of (config, benchmark), so which thread computes it never
 * affects results — part of the runner determinism contract (DESIGN.md).
 */
class AloneBaselineCache {
  public:
    using ComputeFn = std::function<ThreadMeasurement()>;

    /** @return the cached measurement, computing it via @p compute once. */
    const ThreadMeasurement& GetOrCompute(const std::string& benchmark,
                                          const ComputeFn& compute);

  private:
    struct Entry {
        bool ready = false;
        bool computing = false;
        ThreadMeasurement value;
    };

    std::mutex mutex_;
    std::condition_variable ready_;
    /** Node-based map: entry references stay valid across insertions. */
    std::map<std::string, Entry> entries_;
};

/**
 * Runs alone baselines (cached) and shared workloads.
 *
 * Safe to use from multiple threads concurrently: RunShared builds an
 * independent System per call and the alone cache synchronizes itself.
 * Copies share the alone-baseline cache.
 */
class ExperimentRunner {
  public:
    explicit ExperimentRunner(const ExperimentConfig& config);

    const ExperimentConfig& config() const { return config_; }

    /**
     * Measurement of @p benchmark running alone on the baseline system
     * (FR-FCFS; the scheduler is irrelevant without contention).  Cached.
     */
    const ThreadMeasurement& AloneBaseline(const std::string& benchmark);

    /**
     * Runs @p workload under @p scheduler and joins the result with the
     * alone baselines.
     *
     * @param priorities optional per-core PAR-BS priority levels
     * @param weights optional per-core NFQ/STFM bandwidth weights
     */
    SharedRun RunShared(const WorkloadSpec& workload,
                        const SchedulerConfig& scheduler,
                        const std::vector<ThreadPriority>* priorities =
                            nullptr,
                        const std::vector<double>* weights = nullptr);

    /** Builds the trace sources for @p workload (exposed for examples). */
    std::vector<std::unique_ptr<TraceSource>>
    MakeTraces(const WorkloadSpec& workload,
               const SystemConfig& system_config) const;

    /** Geometric/arithmetic aggregation across runs of one scheduler. */
    static AggregateMetrics Aggregate(const std::vector<SharedRun>& runs);

  private:
    ExperimentConfig config_;
    std::shared_ptr<AloneBaselineCache> alone_cache_;
};

/**
 * The scheduler lineup of the comparison figures, in display order:
 * FR-FCFS, FCFS, NFQ, STFM, PAR-BS (the paper's five), plus BLISS — the
 * low-cost blacklisting foil the Pareto shootout scores against PAR-BS.
 */
std::vector<SchedulerConfig> ComparisonSchedulers();

} // namespace parbs

#endif // PARBS_SIM_EXPERIMENT_HH
