/**
 * @file
 * The multiprogrammed workload mixes evaluated in the paper: the three
 * 4-core case studies, the Figure 8 sample mixes, the 8-core and 16-core
 * workloads, and the pseudo-random category-based mix generator used for
 * the 100-workload (4-core) / 16-workload (8-core) / 12-workload (16-core)
 * aggregates.
 */

#ifndef PARBS_SIM_WORKLOADS_HH
#define PARBS_SIM_WORKLOADS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace parbs {

/** A named multiprogrammed workload: one benchmark per core. */
struct WorkloadSpec {
    std::string name;
    std::vector<std::string> benchmarks;
};

/** Case Study I (Fig. 5): memory-intensive 4-core workload. */
WorkloadSpec CaseStudy1();

/** Case Study II (Fig. 6): non-intensive 4-core workload. */
WorkloadSpec CaseStudy2();

/** Case Study III (Fig. 7): four copies of lbm. */
WorkloadSpec CaseStudy3();

/** @return N copies of one benchmark (Figs. 7, 13, 14). */
WorkloadSpec Copies(const std::string& benchmark, std::uint32_t count);

/** The ten sample 4-core mixes shown individually in Figure 8. */
std::vector<WorkloadSpec> Fig8SampleWorkloads();

/** The mixed 8-core workload of Figure 9. */
WorkloadSpec EightCoreMixed();

/** The five sample 16-core workloads of Figure 10 (by Table 3 index plus
 *  the intensive16 / middle16 / non-intensive16 mixes). */
std::vector<WorkloadSpec> SixteenCoreSamples();

/**
 * Pseudo-random category mixes (Section 7): each workload selects
 * benchmarks by Table 3 category so different category combinations are
 * covered — for 4 cores, four distinct categories; for 8 cores, one
 * benchmark from every category; for 16 cores, two from every category.
 */
std::vector<WorkloadSpec> RandomMixes(std::uint32_t count,
                                      std::uint32_t cores,
                                      std::uint64_t seed);

} // namespace parbs

#endif // PARBS_SIM_WORKLOADS_HH
