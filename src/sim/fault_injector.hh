/**
 * @file
 * Deterministic fault-injection harness.
 *
 * Robustness claims need adversarial evidence: the harness replays seeded
 * fault scenarios against the simulator and classifies how each one was
 * defended.  Three scenario families:
 *
 *  - User faults (malformed traces, out-of-range addresses, impossible
 *    timing/geometry/controller configurations) must raise ConfigError —
 *    never std::abort, never silent acceptance.
 *  - Model faults (a corrupted device timing register, a scheduler that
 *    withholds service) must be caught by the protocol checker or the
 *    forward-progress watchdog.
 *  - Stress scenarios (refresh storms, write-buffer pressure, adversarially
 *    randomized scheduling, transient ECC error showers, patrol-scrub
 *    storms) must complete cleanly with zero protocol violations — the
 *    model's constraints hold under any decision sequence.
 *  - RAS faults (a device full of stuck-at rows) must exhaust the remap
 *    table and surface as a structured MachineCheckError — never an abort,
 *    never a hang.
 *
 * Every scenario derives its randomness from (master seed, scenario index),
 * so a failing index reproduces exactly.  tools/fault_fuzz.cpp drives the
 * harness from the command line; tests/sim/fault_injection_test.cc asserts
 * the expected defense for every scenario family.
 */

#ifndef PARBS_SIM_FAULT_INJECTOR_HH
#define PARBS_SIM_FAULT_INJECTOR_HH

#include <cstdint>
#include <memory>
#include <string>

#include "common/rng.hh"
#include "sched/factory.hh"
#include "sched/scheduler.hh"

namespace parbs {

/** The fault families the harness can inject. */
enum class FaultKind : std::uint8_t {
    kMalformedTrace,      ///< Corrupted trace text fed to the parser.
    kOutOfRangeAddress,   ///< Request beyond the configured DRAM capacity.
    kBadTiming,           ///< Impossible TimingParams combination.
    kBadGeometry,         ///< Zero / non-power-of-two / oversized geometry.
    kBadControllerConfig, ///< Nonsensical queue sizing or watchdog knobs.
    kRefreshStorm,        ///< Near-minimum tREFI under load (stress).
    kWritePressure,       ///< Write bursts pinned at buffer capacity.
    kSchedulerChaos,      ///< Randomized scheduling decisions (stress).
    kTimingCorruption,    ///< Device model runs with a shortened constraint.
    kServiceWithholding,  ///< Scheduler never services one thread.
    kTransientBitErrors,  ///< High transient ECC error rate under load.
    kStuckRow,            ///< Stuck-at rows exhaust the remap table.
    kScrubStorm,          ///< Patrol scrub at the minimum interval (stress).
};

inline constexpr std::size_t kNumFaultKinds = 13;

/** @return a short name, e.g. "malformed-trace". */
const char* FaultKindName(FaultKind kind);

/** How a scenario was (or should be) defended. */
enum class Defense : std::uint8_t {
    kNone,          ///< Scenario must complete cleanly.
    kConfigError,   ///< Rejected as a user configuration fault.
    kProtocolError, ///< Caught by the DRAM protocol checker.
    kWatchdogError, ///< Caught by the forward-progress watchdog.
    kMachineCheck,  ///< Surfaced as a structured MachineCheckError (RAS).
    kOther,         ///< Unexpected exception type (always a failure).
};

/** @return a short name, e.g. "config-error". */
const char* DefenseName(Defense defense);

/** Result of one injected scenario. */
struct FaultOutcome {
    std::uint64_t index = 0;
    FaultKind kind = FaultKind::kMalformedTrace;
    Defense expected = Defense::kNone;
    Defense observed = Defense::kNone;
    /** First line of the raised error (empty for clean completions). */
    std::string detail;

    bool Passed() const { return observed == expected; }
};

/**
 * Execution knobs orthogonal to the scenario stream: the same (seed, index)
 * scenario can be replayed under any scheduler and any worker count, and
 * the defense classification must not change.  System-level scenarios
 * honor both fields; controller-level scenarios run the configured
 * scheduler where it is exercised (single-channel, so channel_jobs is
 * irrelevant to them by construction).
 */
struct FaultOptions {
    SchedulerKind scheduler = SchedulerKind::kFrFcfs;
    unsigned channel_jobs = 1;
};

/** Seeded scenario generator + executor. */
class FaultInjector {
  public:
    explicit FaultInjector(std::uint64_t master_seed);

    /**
     * Runs scenario @p index (deterministic in (seed, index)); the fault
     * kind cycles through all families so any contiguous index range covers
     * every family.  Never aborts: all defenses are catchable exceptions.
     */
    FaultOutcome RunScenario(std::uint64_t index);

    /** As above, replayed under explicit scheduler / sharding options. */
    FaultOutcome RunScenario(std::uint64_t index,
                             const FaultOptions& options);

    /** The defense a given fault kind is required to trigger. */
    static Defense ExpectedDefense(FaultKind kind);

  private:
    std::uint64_t master_seed_;
};

/**
 * Wraps a scheduler and, with probability `chaos`, overrides its decision
 * with a uniformly random ready candidate.  Because the controller only
 * offers timing-ready candidates, *no* decision sequence may break the DRAM
 * protocol — the chaos scenarios prove that under the protocol checker.
 */
class ChaosScheduler : public Scheduler {
  public:
    ChaosScheduler(std::unique_ptr<Scheduler> inner, std::uint64_t seed,
                   double chaos = 0.5);

    std::string name() const override;
    void Attach(const SchedulerContext& context) override;
    MemRequest* Pick(std::span<const Candidate> candidates,
                     DramCycle now) override;
    /** Pick() draws from the RNG, so re-running selection over the same
     *  candidates changes the decision stream: the controller must not
     *  cross-check indexed against scan selection under chaos. */
    bool DeterministicPick() const override { return false; }
    void OnRequestQueued(MemRequest& request, DramCycle now) override;
    void OnCommandIssued(const MemRequest& request,
                         const dram::Command& command,
                         DramCycle now) override;
    void OnRequestComplete(const MemRequest& request,
                           DramCycle now) override;
    void OnDramCycle(DramCycle now) override;
    std::uint64_t BatchOutstanding() const override;

  private:
    std::unique_ptr<Scheduler> inner_;
    Rng rng_;
    double chaos_;
};

/**
 * Wraps a scheduler but never services the victim thread's requests — a
 * seeded starvation bug the forward-progress watchdog must catch.
 */
class WithholdingScheduler : public Scheduler {
  public:
    WithholdingScheduler(std::unique_ptr<Scheduler> inner, ThreadId victim);

    std::string name() const override;
    void Attach(const SchedulerContext& context) override;
    MemRequest* Pick(std::span<const Candidate> candidates,
                     DramCycle now) override;
    void OnRequestQueued(MemRequest& request, DramCycle now) override;
    void OnCommandIssued(const MemRequest& request,
                         const dram::Command& command,
                         DramCycle now) override;
    void OnRequestComplete(const MemRequest& request,
                           DramCycle now) override;
    void OnDramCycle(DramCycle now) override;
    std::uint64_t BatchOutstanding() const override;

  private:
    std::unique_ptr<Scheduler> inner_;
    ThreadId victim_;
    std::vector<Candidate> filtered_;
};

} // namespace parbs

#endif // PARBS_SIM_FAULT_INJECTOR_HH
