/**
 * @file
 * A persistent fork-join team for the sharded cycle loop (DESIGN.md §5g).
 *
 * The sharded System alternates a serial core phase with a parallel
 * controller catch-up phase tens of thousands of times per run, and each
 * parallel phase is only a few microseconds of work per worker — far too
 * fine-grained for the TaskPool's mutex-and-condvar batches.  The team
 * instead keeps its workers alive across windows and synchronizes each
 * window with two atomics: a generation counter that releases the workers
 * and a done counter the coordinator joins on.  Workers spin briefly, then
 * yield, then fall back to a condition variable, so an oversubscribed or
 * idle team never burns a core between windows.
 *
 * The coordinator is participant 0 and runs its share of the work inline
 * inside RunWindow, so a team of N participants spawns N - 1 threads.
 */

#ifndef PARBS_SIM_CHANNEL_TEAM_HH
#define PARBS_SIM_CHANNEL_TEAM_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace parbs {

namespace obs {
class EngineProfiler;
}

class ChannelTeam {
  public:
    /** Window body; called once per participant per RunWindow. */
    using WorkFn = std::function<void(unsigned participant)>;

    /**
     * @param participants total participants including the coordinator
     *        (>= 1); participants - 1 worker threads are spawned.
     * @param work the window body.  It must partition its effects by
     *        participant index; the team imposes no other structure.
     * @param profiler optional engine flight recorder.  When set, the team
     *        samples its wall clock at the two synchronization points it
     *        owns — the coordinator's join spin and the workers' park
     *        between windows — two samples per participant per window,
     *        nothing on the work path itself.  Gating is a raw-pointer
     *        null check (DESIGN.md §5f discipline).  Taken at construction
     *        (not via a setter) so the spawned workers never read a
     *        half-published pointer.
     */
    ChannelTeam(unsigned participants, WorkFn work,
                obs::EngineProfiler* profiler = nullptr);

    /** Stops and joins the workers (they must be parked, i.e. not inside
     *  an active RunWindow — guaranteed because RunWindow blocks). */
    ~ChannelTeam();

    ChannelTeam(const ChannelTeam&) = delete;
    ChannelTeam& operator=(const ChannelTeam&) = delete;

    unsigned participants() const { return participants_; }

    /**
     * Runs work(p) for every participant and returns once all are done.
     * The caller executes participant 0's share inline.  If the work
     * itself throws (it should not — the System catches per-channel
     * errors itself), the coordinator's exception wins, then the lowest
     * participant's; either way every participant has finished before the
     * rethrow, so no worker is left touching shared state.
     */
    void RunWindow();

  private:
    void WorkerLoop(unsigned participant);

    unsigned participants_;
    WorkFn work_;
    /** Engine flight recorder; null when profiling is off. */
    obs::EngineProfiler* profiler_ = nullptr;

    /** Bumped (under mutex_, released) to start a window. */
    std::atomic<std::uint64_t> generation_{0};
    /** Workers that have finished the current window. */
    std::atomic<unsigned> done_count_{0};
    std::atomic<bool> stop_{false};

    /** Guards the generation bump so a worker about to sleep on wake_
     *  cannot miss it. */
    std::mutex mutex_;
    std::condition_variable wake_;

    /** Per-participant error slots; written before done_count_ releases. */
    std::vector<std::exception_ptr> errors_;

    std::vector<std::thread> threads_;
};

} // namespace parbs

#endif // PARBS_SIM_CHANNEL_TEAM_HH
