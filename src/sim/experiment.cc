#include "sim/experiment.hh"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <functional>

#include "common/assert.hh"
#include "trace/synthetic.hh"

namespace parbs {
namespace {

/** Deterministic per-(seed, slot, benchmark) trace seed. */
std::uint64_t
TraceSeed(std::uint64_t base, ThreadId slot, const std::string& benchmark)
{
    std::uint64_t h = base ^ 0x9e3779b97f4a7c15ULL;
    h ^= (static_cast<std::uint64_t>(slot) + 1) * 0xbf58476d1ce4e5b9ULL;
    for (char c : benchmark) {
        h = (h ^ static_cast<std::uint64_t>(c)) * 0x100000001b3ULL;
    }
    return h;
}

/** "mix1 / PAR-BS" -> "mix1", "PAR-BS" — safe as a file-name fragment. */
std::string
SanitizeLabel(const std::string& label)
{
    std::string out;
    out.reserve(label.size());
    for (char c : label) {
        const unsigned char u = static_cast<unsigned char>(c);
        out.push_back(std::isalnum(u) != 0 ? c : '-');
    }
    return out;
}

} // namespace

std::string
ExperimentConfig::EffectiveTracePath() const
{
    if (!trace_path.empty()) {
        return trace_path;
    }
    const char* env = std::getenv("PARBS_TRACE");
    return env != nullptr ? std::string(env) : std::string{};
}

SystemConfig
ExperimentConfig::MakeSystemConfig(const SchedulerConfig& scheduler) const
{
    SystemConfig system = SystemConfig::Baseline(cores);
    system.scheduler = scheduler;
    system.seed = seed;
    system.channel_jobs = channel_jobs;
    // PARBS_CHECK=1 re-validates every DRAM command of every experiment
    // against the shadow protocol model (a model-validation run; a few
    // percent slower, so opt-in from the environment).
    const char* check = std::getenv("PARBS_CHECK");
    if (check != nullptr && check[0] != '\0' && check[0] != '0') {
        // Validation runs stay on the serial loop: it is the reference the
        // sharded engine is verified against, and the checker's value is
        // in re-deriving, not re-parallelizing, the command stream.
        system.channel_jobs = 1;
        system.controller.protocol_check = true;
        // The skip-ahead analogue of the protocol check: every skipped
        // cycle is re-scanned to prove no ready command was skippable.
        system.controller.verify_fast_path = true;
        // And the selection analogue: every pick made by the indexed
        // per-bank path is cross-checked against the full-scan path.
        system.controller.verify_indexed_selection = true;
        // Above 32 cores the double selection dominates validation wall-
        // clock, so sample every 61st decision there (61 is prime, so the
        // sample never locks onto a periodic scheduler pattern).  Sound:
        // a divergence is a deterministic function of controller state and
        // persists once it appears, so sampling delays detection by a
        // bounded number of decisions but cannot miss a diverged run.
        system.controller.verify_sample_period = cores > 32 ? 61 : 1;
    }
    if (!EffectiveTracePath().empty()) {
        system.observability.trace = true;
        system.observability.sample_interval = trace_sample_interval;
    }
    if (customize) {
        customize(system);
    }
    return system;
}

const ThreadMeasurement&
AloneBaselineCache::GetOrCompute(const std::string& benchmark,
                                 const ComputeFn& compute)
{
    std::unique_lock<std::mutex> lock(mutex_);
    Entry& entry = entries_[benchmark];
    if (entry.ready) {
        return entry.value;
    }
    if (entry.computing) {
        ready_.wait(lock, [&entry] { return entry.ready; });
        return entry.value;
    }
    entry.computing = true;
    lock.unlock();
    // The simulation runs outside the lock so that baselines for
    // *different* benchmarks compute concurrently; only same-benchmark
    // callers block, and a compute failure would abort (PARBS_ASSERT
    // semantics), so waiters cannot be stranded.
    ThreadMeasurement value = compute();
    lock.lock();
    entry.value = value;
    entry.ready = true;
    ready_.notify_all();
    return entry.value;
}

ExperimentRunner::ExperimentRunner(const ExperimentConfig& config)
    : config_(config), alone_cache_(std::make_shared<AloneBaselineCache>())
{
}

std::vector<std::unique_ptr<TraceSource>>
ExperimentRunner::MakeTraces(const WorkloadSpec& workload,
                             const SystemConfig& system_config) const
{
    dram::AddressMapper mapper(system_config.geometry,
                               system_config.xor_bank_hash);
    std::vector<std::unique_ptr<TraceSource>> traces;
    traces.reserve(workload.benchmarks.size());
    for (ThreadId slot = 0; slot < workload.benchmarks.size(); ++slot) {
        const BenchmarkProfile& profile =
            FindProfile(workload.benchmarks[slot]);
        traces.push_back(std::make_unique<SyntheticTraceSource>(
            profile.synth, mapper, slot, system_config.num_cores,
            TraceSeed(config_.seed, slot, workload.benchmarks[slot])));
    }
    return traces;
}

const ThreadMeasurement&
ExperimentRunner::AloneBaseline(const std::string& benchmark)
{
    return alone_cache_->GetOrCompute(benchmark, [this, &benchmark] {
        SchedulerConfig scheduler;
        scheduler.kind = SchedulerKind::kFrFcfs;
        SystemConfig system_config = config_.MakeSystemConfig(scheduler);
        // Alone baselines are never traced: the cached measurement must be
        // identical whether or not the experiment around it is traced.
        system_config.observability = {};

        WorkloadSpec solo;
        solo.name = "alone-" + benchmark;
        solo.benchmarks = {benchmark};
        System system(system_config, MakeTraces(solo, system_config));
        system.Run(config_.run_cycles);
        return system.Measure(0);
    });
}

SharedRun
ExperimentRunner::RunShared(const WorkloadSpec& workload,
                            const SchedulerConfig& scheduler,
                            const std::vector<ThreadPriority>* priorities,
                            const std::vector<double>* weights)
{
    PARBS_ASSERT(workload.benchmarks.size() <= config_.cores,
                 "workload larger than the configured core count");

    const SystemConfig system_config = config_.MakeSystemConfig(scheduler);
    System system(system_config, MakeTraces(workload, system_config));

    if (priorities != nullptr) {
        PARBS_ASSERT(priorities->size() == workload.benchmarks.size(),
                     "priorities must match workload size");
        for (ThreadId t = 0; t < priorities->size(); ++t) {
            system.SetThreadPriority(t, (*priorities)[t]);
        }
    }
    if (weights != nullptr) {
        PARBS_ASSERT(weights->size() == workload.benchmarks.size(),
                     "weights must match workload size");
        for (ThreadId t = 0; t < weights->size(); ++t) {
            system.SetThreadWeight(t, (*weights)[t]);
        }
    }

    system.Run(config_.run_cycles);

    SharedRun run;
    run.workload = workload.name;
    run.scheduler = SchedulerConfigName(scheduler);
    run.benchmarks = workload.benchmarks;

    const std::string trace_path = config_.EffectiveTracePath();
    if (!trace_path.empty()) {
        // One file per (workload, scheduler) so a lineup sweep under a
        // single PARBS_TRACE value never overwrites itself.
        std::string stem = trace_path;
        const std::string suffix = ".json";
        if (stem.size() >= suffix.size() &&
            stem.compare(stem.size() - suffix.size(), suffix.size(),
                         suffix) == 0) {
            stem.erase(stem.size() - suffix.size());
        }
        const std::string file = stem + "-" + SanitizeLabel(run.workload) +
                                 "-" + SanitizeLabel(run.scheduler) + ".json";
        std::ofstream out(file);
        if (!out) {
            PARBS_FATAL("cannot open trace output file: " + file);
        }
        system.WriteTrace(out, run.workload);
    }
    for (ThreadId t = 0; t < workload.benchmarks.size(); ++t) {
        run.shared.push_back(system.Measure(t));
        run.alone.push_back(AloneBaseline(workload.benchmarks[t]));
    }
    run.metrics = ComputeMetrics(run.shared, run.alone);
    return run;
}

AggregateMetrics
ExperimentRunner::Aggregate(const std::vector<SharedRun>& runs)
{
    PARBS_ASSERT(!runs.empty(), "aggregate over no runs");
    std::vector<double> unfairness;
    std::vector<double> weighted;
    std::vector<double> hmean;
    double ast_sum = 0.0;
    double wc_sum = 0.0;
    for (const SharedRun& run : runs) {
        unfairness.push_back(run.metrics.unfairness);
        weighted.push_back(run.metrics.weighted_speedup);
        hmean.push_back(run.metrics.hmean_speedup);
        ast_sum += run.metrics.avg_ast_per_req;
        wc_sum += static_cast<double>(run.metrics.worst_case_latency);
    }
    AggregateMetrics out;
    out.unfairness_gmean = GeometricMean(unfairness);
    out.weighted_speedup_gmean = GeometricMean(weighted);
    out.hmean_speedup_gmean = GeometricMean(hmean);
    out.ast_per_req_mean = ast_sum / static_cast<double>(runs.size());
    out.worst_case_latency_mean = wc_sum / static_cast<double>(runs.size());
    return out;
}

std::vector<SchedulerConfig>
ComparisonSchedulers()
{
    std::vector<SchedulerConfig> out(6);
    out[0].kind = SchedulerKind::kFrFcfs;
    out[1].kind = SchedulerKind::kFcfs;
    out[2].kind = SchedulerKind::kNfq;
    out[3].kind = SchedulerKind::kStfm;
    out[4].kind = SchedulerKind::kParBs;
    out[5].kind = SchedulerKind::kBliss;
    return out;
}

} // namespace parbs
