#include "sim/system.hh"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <string>
#include <utility>

#include "common/assert.hh"
#include "common/json.hh"
#include "obs/engine_profiler.hh"
#include "sim/channel_team.hh"

namespace parbs {

namespace {

/**
 * Staging-ring sizing for one channel and one lookahead window.  The worst
 * tick emits one event per command / skip-span / burst / retire plus the
 * scheduler's batch-formation storm (a rank event per thread and a
 * marking-cap event per queued read), and a window additionally stages one
 * arrival event per enqueue — bounded by the queue capacities.  The merge
 * asserts dropped() == 0, so undersizing is loud, not silent.
 */
std::size_t
StagingCapacity(DramCycle window, std::size_t read_capacity,
                std::size_t write_capacity, std::uint32_t threads)
{
    return static_cast<std::size_t>(window + 2) *
               (read_capacity + threads + 32) +
           read_capacity + write_capacity + 1024;
}

} // namespace

System::System(const SystemConfig& config,
               std::vector<std::unique_ptr<TraceSource>> traces)
    : config_(config),
      mapper_(config.geometry, config.xor_bank_hash),
      traces_(std::move(traces))
{
    config_.Validate();
    if (traces_.size() > config_.num_cores) {
        PARBS_FATAL("more traces than cores");
    }
    capacity_bytes_ = config_.geometry.CapacityBytes();
    if (config_.controller.watchdog.enabled) {
        // The system-level bound wraps the per-controller one with slack
        // for the clock-domain ratio and cross-controller skew.
        progress_bound_cpu_ =
            4 * config_.cpu_to_dram_ratio *
            ResolveNoProgressBound(config_.controller.watchdog,
                                   config_.timing);
    }
    read_capacity_ = config_.controller.read_queue_capacity;
    write_capacity_ = config_.controller.write_queue_capacity;
    sample_interval_ = config_.observability.sample_interval;

    // Per-channel geometry: each controller sees a single-channel slice.
    dram::Geometry channel_geometry = config_.geometry;
    channel_geometry.channels = 1;
    for (std::uint32_t channel = 0; channel < config_.geometry.channels;
         ++channel) {
        // One request slab per channel, sized so a full pair of queues fits
        // in a single slab (mem/request_pool.hh).
        pools_.push_back(std::make_unique<RequestPool>(
            read_capacity_ + write_capacity_ + 16));
        auto scheduler = config_.scheduler_factory
                             ? config_.scheduler_factory()
                             : MakeScheduler(config_.scheduler);
        // Each channel's RAS engine draws from an independent stream keyed
        // by (seed, channel) so fault placement does not depend on the
        // channel count or on which worker simulates the channel.
        ControllerConfig controller_config = config_.controller;
        controller_config.ras.channel = channel;
        if (controller_config.ras.seed == 0) {
            controller_config.ras.seed = config_.seed;
        }
        controllers_.push_back(std::make_unique<Controller>(
            controller_config, config_.timing, channel_geometry,
            config_.num_cores, std::move(scheduler)));
        controllers_.back()->SetReadCompleteCallback(
            [this, channel](const MemRequest& request, DramCycle now) {
                // Model the fixed return path (interconnect + L2 fill)
                // before the core observes the data.  `now` is the
                // retiring DRAM cycle, so now * ratio is the CPU cycle of
                // the serial controller tick — on the serial engine that
                // equals cpu_cycle_, and on the sharded engine it makes
                // the deadline independent of how far the cores ran ahead.
                const CpuCycle ready =
                    now * config_.cpu_to_dram_ratio +
                    config_.extra_read_latency_cpu;
                if (sharded_) {
                    // The sharded engine pre-publishes notifications from
                    // the retire schedules (PublishNotifications); the
                    // callback's record is kept only so AdvanceChannel can
                    // assert the window produced exactly the published
                    // prefix.
                    shards_[channel]->completions.push_back(
                        {ready, request.thread, request.id});
                } else {
                    notifications_.push_back(
                        {ready, request.thread, request.id});
                    next_notify_ready_ = notifications_.front().ready;
                }
            });
    }

    if (config_.observability.Enabled()) {
        obs_ = std::make_unique<obs::Observability>(
            config_.observability, config_.num_cores,
            static_cast<std::uint32_t>(controllers_.size()));
        sampler_ = &obs_->sampler();
        for (std::uint32_t channel = 0; channel < controllers_.size();
             ++channel) {
            controllers_[channel]->AttachObservability(
                &obs_->tracer(), &obs_->latency(),
                static_cast<std::uint8_t>(channel));
            controllers_[channel]->scheduler().SetObserver(
                &obs_->adapter(channel));
        }
    }

    for (ThreadId thread = 0; thread < traces_.size(); ++thread) {
        cores_.push_back(std::make_unique<Core>(config_.core, thread,
                                                *traces_[thread], *this));
    }
    core_done_.assign(cores_.size(), 0);
    active_cores_ = 0;
    for (ThreadId thread = 0; thread < cores_.size(); ++thread) {
        if (cores_[thread]->Done()) {
            core_done_[thread] = 1;
        } else {
            active_cores_ += 1;
        }
    }

    // Resolve the sharded engine (DESIGN.md §5g).  channel_jobs == 0 means
    // one worker per channel; anything above the channel count is wasted.
    const auto channels =
        static_cast<std::uint32_t>(controllers_.size());
    const unsigned requested =
        config_.channel_jobs == 0 ? channels : config_.channel_jobs;
    shard_jobs_ = std::max(1u, std::min<unsigned>(requested, channels));
    window_ = LookaheadWindow();
    sharded_ = shard_jobs_ > 1 && channels > 1 && window_ >= 1;
    if (!sharded_) {
        shard_jobs_ = 1;
    }
    if (config_.observability.engine_profile) {
        engine_profiler_ = std::make_unique<obs::EngineProfiler>(
            shard_jobs_, channels, window_);
        eng_ = engine_profiler_.get();
        prof_occupancy_.assign(channels, 0);
    }
    if (!sharded_) {
        return;
    }
    for (std::uint32_t channel = 0; channel < channels; ++channel) {
        auto shard = std::make_unique<ChannelShard>();
        if (obs_ != nullptr) {
            shard->tracer = std::make_unique<obs::Tracer>(StagingCapacity(
                window_, read_capacity_, write_capacity_,
                config_.num_cores));
            shard->latency =
                std::make_unique<obs::LatencyAnatomy>(config_.num_cores);
        }
        shards_.push_back(std::move(shard));
    }

    // Resolve the core-phase crew (sharded engine only).  core_jobs == 0
    // auto-sizes to the channel crew but only engages from 32 cores up,
    // where the per-cycle core sweep starts to dominate the core phase;
    // an explicit value > 1 always engages (clamped to the channel crew,
    // whose threads it reuses, and to the core count).
    const auto core_count = static_cast<unsigned>(cores_.size());
    unsigned core_requested;
    if (config_.core_jobs == 0) {
        core_requested = config_.num_cores >= 32 ? shard_jobs_ : 1;
    } else {
        core_requested = config_.core_jobs;
    }
    core_crew_ =
        std::max(1u, std::min({core_requested, shard_jobs_, core_count}));
    if (core_crew_ > 1) {
        core_workers_ =
            std::make_unique<CoreWorkerState[]>(core_crew_);
        core_blocks_.resize(core_crew_);
        const ThreadId per = core_count / core_crew_;
        const ThreadId extra = core_count % core_crew_;
        ThreadId begin = 0;
        for (unsigned p = 0; p < core_crew_; ++p) {
            const ThreadId size = per + (p < extra ? 1 : 0);
            core_blocks_[p] = {begin, begin + size};
            begin += size;
        }
        core_notify_.resize(core_count);
        core_notify_pos_.assign(core_count, 0);
    }

    team_ = std::make_unique<ChannelTeam>(
        shard_jobs_,
        [this](unsigned participant) { RunParticipant(participant); },
        eng_);
}

System::~System() = default;

DramCycle
System::LookaheadWindow() const
{
    // Cores may run W DRAM cycles ahead of the controllers iff everything
    // a controller would make visible to a core within those W ticks is
    // known before they run.  Queue departures and read returns within the
    // window come only from bursts already in flight at its start — a
    // command issued inside the window completes no earlier than the
    // shortest burst latency — so W <= min(read burst, write burst) makes
    // the published retire schedules (and the notification schedule
    // derived from them, PublishNotifications) exhaustive and exact.  The
    // return-path latency does not bound W: notifications are published
    // ahead of execution rather than discovered at the retiring tick.
    // The bound must reflect the timing the controllers actually run with,
    // so it is read back from the constructed channel rather than from the
    // config snapshot (they are equal today, but the window is the one
    // place where a future divergence would corrupt results silently).
    const dram::TimingParams& t = controllers_.front()->channel().timing();
    const DramCycle read_burst = t.tCL + t.tBURST;
    const DramCycle write_burst = t.tCWD + t.tBURST;
    return std::min(read_burst, write_burst);
}

void
System::Run(CpuCycle cpu_cycles)
{
    const CpuCycle end = cpu_cycle_ + cpu_cycles;
    if (sharded_) {
        RunSharded(end);
    } else {
        RunSerial(end);
    }
}

void
System::RunSerial(CpuCycle end)
{
    const CpuCycle ratio = config_.cpu_to_dram_ratio;
    // Replicate the sharded engine's window schedule so the deterministic
    // engine counters are byte-identical across engines: the sharded loop
    // closes a window whenever the cores reach the lookahead horizon, and
    // at that point its controllers have executed exactly the ticks the
    // serial loop has executed here (DESIGN.md §5h).
    if (eng_ != nullptr) {
        prof_next_tick_ = (cpu_cycle_ + ratio - 1) / ratio;
    }
    while (cpu_cycle_ < end) {
        if (eng_ != nullptr &&
            cpu_cycle_ == (prof_next_tick_ + window_) * ratio) {
            ProfileSerialWindow();
        }
        if (cpu_cycle_ % config_.cpu_to_dram_ratio == 0) {
            const DramCycle dram_now = DramNow();
            for (auto& controller : controllers_) {
                controller->Tick(dram_now);
            }
            if (sampler_ != nullptr) {
                sampler_->Tick(dram_now, controllers_);
            }
        }
        if (next_notify_ready_ <= cpu_cycle_) {
            DeliverNotifications();
        }
        for (ThreadId thread = 0; thread < cores_.size(); ++thread) {
            cores_[thread]->Tick();
            // Done() is monotone and flips only inside Tick, so checking
            // the transition here keeps the end-of-run probe O(1).
            if (core_done_[thread] == 0 && cores_[thread]->Done()) {
                core_done_[thread] = 1;
                active_cores_ -= 1;
            }
        }
        cpu_cycle_ += 1;
        if (progress_bound_cpu_ != 0 && cpu_cycle_ >= next_progress_check_) {
            CheckGlobalProgress();
        }
        if (active_cores_ == 0 && AllDone()) {
            break;
        }
    }
    // Residual close: the sharded loop closes its last (short) window when
    // the run ends or drains; mirror it so the window counts agree.
    if (eng_ != nullptr) {
        ProfileSerialWindow();
    }
}

void
System::ProfileSerialWindow()
{
    const CpuCycle ratio = config_.cpu_to_dram_ratio;
    const DramCycle target = (cpu_cycle_ + ratio - 1) / ratio;
    if (target <= prof_next_tick_) {
        return;
    }
    for (std::uint32_t channel = 0; channel < controllers_.size();
         ++channel) {
        prof_occupancy_[channel] = controllers_[channel]->pending_reads() +
                                   controllers_[channel]->pending_writes();
    }
    eng_->OnWindowClose(prof_next_tick_, target, prof_occupancy_);
    prof_next_tick_ = target;
}

void
System::PrepareShardedRun()
{
    const CpuCycle ratio = config_.cpu_to_dram_ratio;
    next_tick_ = (cpu_cycle_ + ratio - 1) / ratio;
    arrival_seq_ = 0;
    if (sampler_ != nullptr && sample_interval_ > 0) {
        sampler_->PrepareChannels(controllers_);
    }
    for (std::uint32_t channel = 0; channel < shards_.size(); ++channel) {
        ChannelShard& shard = *shards_[channel];
        const Controller& controller = *controllers_[channel];
        shard.inbox.clear();
        shard.completions.clear();
        shard.read_size = controller.pending_reads();
        shard.write_size = controller.pending_writes();
        shard.read_retires.clear();
        shard.write_retires.clear();
        shard.read_pos = 0;
        shard.write_pos = 0;
        controller.PendingRetires(next_tick_ + window_, shard.read_retires,
                                  shard.write_retires);
        shard.next_sample = sampler_ != nullptr && sample_interval_ > 0
                                ? sampler_->next_sample()
                                : kNeverCycle;
        shard.runs.clear();
        shard.staged_mark = 0;
        shard.samples.clear();
        shard.error = nullptr;
    }
    // A previous Run may have left published-but-unexecuted notifications
    // behind; rebuild the schedule from the freshly read FIFOs.
    PublishNotifications();
}

void
System::BindShardObservability(bool staging)
{
    if (obs_ == nullptr) {
        return;
    }
    for (std::uint32_t channel = 0; channel < controllers_.size();
         ++channel) {
        obs::Tracer* tracer =
            staging ? shards_[channel]->tracer.get() : &obs_->tracer();
        obs::LatencyAnatomy* latency =
            staging ? shards_[channel]->latency.get() : &obs_->latency();
        controllers_[channel]->AttachObservability(
            tracer, latency, static_cast<std::uint8_t>(channel));
        obs_->adapter(channel).SetTracer(tracer);
    }
}

void
System::RunSharded(CpuCycle end)
{
    const CpuCycle ratio = config_.cpu_to_dram_ratio;
    PrepareShardedRun();

    // Rebind the observability sinks to the per-channel staging buffers for
    // the duration of the run — restored even if a watchdog error unwinds.
    struct BindGuard {
        System& system;
        ~BindGuard() { system.BindShardObservability(false); }
    };
    BindShardObservability(true);
    BindGuard guard{*this};

    bool all_done = false;
    while (cpu_cycle_ < end && !all_done) {
        if (eng_ != nullptr) {
            eng_->BeginWindowWall();
        }
        // --- core phase ------------------------------------------------
        // Runs the cores up to the lookahead horizon, replaying queue
        // departures from the published retire/notification schedules so
        // backpressure and read returns are bit-exact without touching
        // the controllers.  With a core crew the cycles run in lockstep
        // across the team; otherwise the coordinator sweeps alone.
        const CpuCycle core_end =
            std::min<CpuCycle>(end, (next_tick_ + window_) * ratio);
        if (core_crew_ > 1) {
            if (eng_ != nullptr) {
                eng_->SetCurrentPhase(
                    obs::EngineProfiler::Phase::kCoreFrontend);
            }
            all_done = RunCorePhaseParallel(core_end);
        } else {
            const std::uint64_t sweep_start =
                eng_ != nullptr ? obs::EngineProfiler::Now() : 0;
            if (eng_ != nullptr) {
                eng_->SetCurrentPhase(obs::EngineProfiler::Phase::kCoreSweep);
            }
            while (cpu_cycle_ < core_end) {
                if (cpu_cycle_ % ratio == 0) {
                    ApplyScheduledRetires(DramNow());
                }
                if (next_notify_ready_ <= cpu_cycle_) {
                    DeliverNotifications();
                }
                for (ThreadId thread = 0; thread < cores_.size();
                     ++thread) {
                    cores_[thread]->Tick();
                    if (core_done_[thread] == 0 && cores_[thread]->Done()) {
                        core_done_[thread] = 1;
                        active_cores_ -= 1;
                    }
                }
                cpu_cycle_ += 1;
                if (progress_bound_cpu_ != 0 &&
                    cpu_cycle_ >= next_progress_check_) {
                    CheckGlobalProgress();
                }
                // The serial engine's AllDone(), against the proxies: the
                // controllers are behind, but the proxies describe their
                // state at exactly this point of virtual time.
                if (active_cores_ == 0 && notifications_.empty() &&
                    AllShardsIdle()) {
                    all_done = true;
                    break;
                }
            }
            if (eng_ != nullptr) {
                eng_->AddPhaseTicks(0, obs::EngineProfiler::Phase::kCoreSweep,
                                    obs::EngineProfiler::Now() - sweep_start);
            }
        }

        // --- controller catch-up (parallel) + barrier ------------------
        const DramCycle target = (cpu_cycle_ + ratio - 1) / ratio;
        if (target > next_tick_) {
            window_from_ = next_tick_;
            window_to_ = target;
            window_limit_ = target + window_;
            if (eng_ != nullptr) {
                eng_->SetCurrentPhase(
                    obs::EngineProfiler::Phase::kChannelWork);
            }
            team_->RunWindow();
            next_tick_ = target;
            MergeWindow();
            if (eng_ != nullptr) {
                // Occupancy at the close, from the proxies the coordinator
                // just verified against the real queues (MergeWindow) —
                // identical to the serial engine's controller readback.
                for (std::uint32_t channel = 0; channel < shards_.size();
                     ++channel) {
                    prof_occupancy_[channel] = shards_[channel]->read_size +
                                               shards_[channel]->write_size;
                }
                eng_->OnWindowClose(window_from_, target, prof_occupancy_);
            }
        }
    }
}

void
System::RunParticipant(unsigned participant)
{
    if (team_phase_ == TeamPhase::kCores) {
        if (participant == 0) {
            RunCoreCoordinator();
        } else if (participant < core_crew_) {
            RunCoreWorker(participant);
        }
        return;
    }
    const std::uint64_t work_start =
        eng_ != nullptr ? obs::EngineProfiler::Now() : 0;
    const auto channels = static_cast<std::uint32_t>(controllers_.size());
    for (std::uint32_t channel = participant; channel < channels;
         channel += shard_jobs_) {
        try {
            AdvanceChannel(channel);
        } catch (...) {
            shards_[channel]->error = std::current_exception();
        }
    }
    if (eng_ != nullptr) {
        eng_->AddPhaseTicks(participant,
                            obs::EngineProfiler::Phase::kChannelWork,
                            obs::EngineProfiler::Now() - work_start);
    }
}

bool
System::RunCorePhaseParallel(CpuCycle core_end)
{
    core_phase_base_ = cpu_cycle_;
    core_phase_end_ = core_end;
    core_phase_all_done_ = false;
    core_release_.store(0, std::memory_order_relaxed);
    core_stop_.store(false, std::memory_order_relaxed);
    for (unsigned p = 0; p < core_crew_; ++p) {
        core_workers_[p].done.store(0, std::memory_order_relaxed);
        core_workers_[p].error = nullptr;
    }
    // Mirror the (phase-static) notification deque into per-core slices so
    // workers deliver without touching shared state.  Entries are in ready
    // order globally, hence also within each core's slice.
    for (auto& mirror : core_notify_) {
        mirror.clear();
    }
    core_notify_pos_.assign(core_notify_.size(), 0);
    for (const PendingNotify& entry : notifications_) {
        core_notify_[entry.thread].push_back(entry);
    }

    // The team's release/join synchronizes the setup above with the
    // workers (and their frontends back with the coordinator).
    team_phase_ = TeamPhase::kCores;
    team_->RunWindow();
    team_phase_ = TeamPhase::kChannels;

    for (unsigned p = 1; p < core_crew_; ++p) {
        if (core_workers_[p].error != nullptr) {
            std::exception_ptr error = core_workers_[p].error;
            core_workers_[p].error = nullptr;
            RethrowShardError(error);
        }
    }
    return core_phase_all_done_;
}

void
System::AdvanceCoreBlock(unsigned participant, CpuCycle cycle)
{
    const auto [begin, end] = core_blocks_[participant];
    for (ThreadId thread = begin; thread < end; ++thread) {
        // Serial delivery order: a cycle's due notifications land before
        // the core's commit (delivery only touches this core's window).
        std::vector<PendingNotify>& mirror = core_notify_[thread];
        std::size_t& pos = core_notify_pos_[thread];
        while (pos < mirror.size() && mirror[pos].ready <= cycle) {
            cores_[thread]->OnReadComplete(mirror[pos].id);
            pos += 1;
        }
        cores_[thread]->TickFrontend();
    }
}

void
System::RunCoreCoordinator()
{
    // However this phase ends — horizon reached, all-done probe, or an
    // exception (e.g. the watchdog) unwinding — the workers must be told
    // to stand down, or the team join would hang.
    struct StopGuard {
        System& system;
        ~StopGuard()
        {
            system.core_stop_.store(true, std::memory_order_release);
        }
    };
    StopGuard guard{*this};

    const CpuCycle ratio = config_.cpu_to_dram_ratio;
    // Phase timing stays out of the per-cycle loop's stores: four clock
    // samples per cycle accumulate into locals, folded into the profiler
    // once per phase (and only when profiling is on at all).
    const bool profiled = eng_ != nullptr;
    std::uint64_t frontend_ticks = 0;
    std::uint64_t join_ticks = 0;
    std::uint64_t issue_ticks = 0;
    CpuCycle released = 0;
    while (cpu_cycle_ < core_phase_end_) {
        const std::uint64_t t0 =
            profiled ? obs::EngineProfiler::Now() : 0;
        // Release the cycle, then run our own block while the crew runs
        // theirs.
        released += 1;
        core_release_.store(released, std::memory_order_release);
        AdvanceCoreBlock(0, cpu_cycle_);
        const std::uint64_t t1 =
            profiled ? obs::EngineProfiler::Now() : 0;

        // Join: every worker has finished the cycle's frontends (or bailed
        // out with its done counter pinned to the sentinel).
        bool worker_failed = false;
        for (unsigned p = 1; p < core_crew_; ++p) {
            int spins = 0;
            while (core_workers_[p].done.load(std::memory_order_acquire) <
                   released) {
                if (++spins > 4000) {
                    std::this_thread::yield();
                }
            }
            if (core_workers_[p].error != nullptr) {
                worker_failed = true;
            }
        }
        const std::uint64_t t2 =
            profiled ? obs::EngineProfiler::Now() : 0;
        frontend_ticks += t1 - t0;
        join_ticks += t2 - t1;
        if (worker_failed) {
            // RunCorePhaseParallel rethrows after the team join.
            break;
        }

        // --- serial tail: everything that touches shared state ---------
        if (cpu_cycle_ % ratio == 0) {
            ApplyScheduledRetires(DramNow());
        }
        // Memory issue in thread order — the global request-id, arrival-
        // seq, and backpressure order of the serial engine.
        for (ThreadId thread = 0; thread < cores_.size(); ++thread) {
            cores_[thread]->TickIssue();
        }
        // The workers delivered this cycle's notifications from the
        // mirrors; retire the delivered prefix of the shared deque so the
        // all-done probe (and the next phase's mirrors) stay exact.
        while (!notifications_.empty() &&
               notifications_.front().ready <= cpu_cycle_) {
            notifications_.pop_front();
        }
        next_notify_ready_ = notifications_.empty()
                                 ? kNeverCycle
                                 : notifications_.front().ready;
        for (ThreadId thread = 0; thread < cores_.size(); ++thread) {
            if (core_done_[thread] == 0 && cores_[thread]->Done()) {
                core_done_[thread] = 1;
                active_cores_ -= 1;
            }
        }
        cpu_cycle_ += 1;
        if (profiled) {
            issue_ticks += obs::EngineProfiler::Now() - t2;
        }
        if (progress_bound_cpu_ != 0 && cpu_cycle_ >= next_progress_check_) {
            CheckGlobalProgress();
        }
        if (active_cores_ == 0 && notifications_.empty() &&
            AllShardsIdle()) {
            core_phase_all_done_ = true;
            break;
        }
    }
    if (profiled) {
        eng_->AddPhaseTicks(0, obs::EngineProfiler::Phase::kCoreFrontend,
                            frontend_ticks);
        eng_->AddPhaseTicks(0, obs::EngineProfiler::Phase::kCoreJoin,
                            join_ticks);
        eng_->AddPhaseTicks(0, obs::EngineProfiler::Phase::kCoreIssue,
                            issue_ticks);
    }
}

void
System::RunCoreWorker(unsigned participant)
{
    CoreWorkerState& state = core_workers_[participant];
    const bool profiled = eng_ != nullptr;
    std::uint64_t frontend_ticks = 0;
    std::uint64_t wait_ticks = 0;
    std::uint64_t wait_start = profiled ? obs::EngineProfiler::Now() : 0;
    const auto flush = [&] {
        if (profiled) {
            eng_->AddPhaseTicks(participant,
                                obs::EngineProfiler::Phase::kCoreFrontend,
                                frontend_ticks);
            eng_->AddPhaseTicks(participant,
                                obs::EngineProfiler::Phase::kCoreJoin,
                                wait_ticks);
        }
    };
    CpuCycle done = 0;
    int spins = 0;
    while (true) {
        const CpuCycle released =
            core_release_.load(std::memory_order_acquire);
        if (done < released) {
            const std::uint64_t t0 =
                profiled ? obs::EngineProfiler::Now() : 0;
            wait_ticks += t0 - wait_start;
            try {
                AdvanceCoreBlock(participant, core_phase_base_ + done);
            } catch (...) {
                state.error = std::current_exception();
                state.done.store(kNeverCycle, std::memory_order_release);
                flush();
                return;
            }
            done += 1;
            state.done.store(done, std::memory_order_release);
            wait_start = profiled ? obs::EngineProfiler::Now() : 0;
            frontend_ticks += wait_start - t0;
            spins = 0;
            continue;
        }
        if (core_stop_.load(std::memory_order_acquire)) {
            // The stop store is release-ordered after the final release,
            // so this acquire makes any just-released cycle visible —
            // re-check before exiting or the coordinator's join hangs.
            if (done ==
                core_release_.load(std::memory_order_acquire)) {
                if (profiled) {
                    wait_ticks += obs::EngineProfiler::Now() - wait_start;
                }
                flush();
                return;
            }
            continue;
        }
        if (++spins > 4000) {
            std::this_thread::yield();
        }
    }
}

void
System::AdvanceChannel(std::uint32_t channel)
{
    ChannelShard& shard = *shards_[channel];
    Controller& controller = *controllers_[channel];
    std::size_t next_in = 0;
    for (DramCycle tick = window_from_; tick < window_to_; ++tick) {
        // Serial order within one DRAM cycle d: the controller ticks at
        // CPU cycle d * ratio, the sampler reads it, and only then do the
        // cores issue — so arrivals stamped d enqueue after Tick(d).
        while (next_in < shard.inbox.size() &&
               shard.inbox[next_in].arrival < tick) {
            MailboxEntry& entry = shard.inbox[next_in];
            controller.Enqueue(std::move(entry.request), entry.arrival);
            shard.CloseRun(entry.arrival, 1, entry.seq);
            next_in += 1;
        }
        controller.Tick(tick);
        shard.CloseRun(tick, 0, channel);
        if (tick == shard.next_sample) {
            shard.samples.push_back(
                {tick, sampler_->SampleChannel(controller, channel)});
            shard.next_sample += sample_interval_;
        }
    }
    while (next_in < shard.inbox.size()) {
        MailboxEntry& entry = shard.inbox[next_in];
        PARBS_ASSERT(entry.arrival < window_to_,
                     "mailbox arrival beyond the window");
        controller.Enqueue(std::move(entry.request), entry.arrival);
        shard.CloseRun(entry.arrival, 1, entry.seq);
        next_in += 1;
    }
    shard.inbox.clear();

    // Cross-check: the read completions the window actually produced must
    // be exactly the published schedule prefix the cores already consumed
    // as notifications (same count, same cycles, same threads and ids).
    const CpuCycle ratio = config_.cpu_to_dram_ratio;
    std::size_t expected = 0;
    while (expected < shard.read_retires.size() &&
           shard.read_retires[expected].done < window_to_) {
        expected += 1;
    }
    PARBS_ASSERT(shard.completions.size() == expected,
                 "window completions diverged from the published schedule");
    for (std::size_t i = 0; i < expected; ++i) {
        const Controller::PendingRead& published = shard.read_retires[i];
        const PendingNotify& produced = shard.completions[i];
        PARBS_ASSERT(produced.ready ==
                             published.done * ratio +
                                 config_.extra_read_latency_cpu &&
                         produced.thread == published.thread &&
                         produced.id == published.id,
                     "window completion diverged from the published "
                     "schedule");
    }
    shard.completions.clear();

    // Publish the next window's retire schedule while still parallel.
    shard.read_retires.clear();
    shard.write_retires.clear();
    controller.PendingRetires(window_limit_, shard.read_retires,
                              shard.write_retires);
}

void
System::ChannelShard::CloseRun(DramCycle cycle, std::uint8_t phase,
                               std::uint64_t order)
{
    if (tracer == nullptr) {
        return;
    }
    const std::size_t size = tracer->size();
    if (size == staged_mark) {
        return;
    }
    PARBS_ASSERT(tracer->dropped() == 0, "staging tracer overflowed");
    runs.push_back({cycle, phase, order,
                    static_cast<std::uint32_t>(staged_mark),
                    static_cast<std::uint32_t>(size)});
    staged_mark = size;
}

void
System::ApplyScheduledRetires(DramCycle tick)
{
    // Mirrors Controller::RetireFinished, which retires at most one read
    // and one write per tick, each exactly at its completion cycle (the
    // cycles in one schedule are distinct, so `<=` matches `==` here).
    for (auto& shard : shards_) {
        if (shard->read_pos < shard->read_retires.size() &&
            shard->read_retires[shard->read_pos].done <= tick) {
            shard->read_pos += 1;
            shard->read_size -= 1;
        }
        if (shard->write_pos < shard->write_retires.size() &&
            shard->write_retires[shard->write_pos] <= tick) {
            shard->write_pos += 1;
            shard->write_size -= 1;
        }
    }
}

bool
System::AllShardsIdle() const
{
    for (const auto& shard : shards_) {
        if (shard->read_size != 0 || shard->write_size != 0) {
            return false;
        }
    }
    return true;
}

void
System::MergeWindow()
{
    const std::uint64_t t0 =
        eng_ != nullptr ? obs::EngineProfiler::Now() : 0;
    if (eng_ != nullptr) {
        eng_->SetCurrentPhase(obs::EngineProfiler::Phase::kMerge);
    }
    for (auto& shard : shards_) {
        if (shard->error != nullptr) {
            std::exception_ptr error = shard->error;
            shard->error = nullptr;
            RethrowShardError(error);
        }
    }
    for (std::uint32_t channel = 0; channel < shards_.size(); ++channel) {
        ChannelShard& shard = *shards_[channel];
        // The proxies drove every CanAccept answer of the window; if they
        // drifted from the real queues the run is not serial-equivalent.
        PARBS_ASSERT(shard.read_size ==
                             controllers_[channel]->pending_reads() &&
                         shard.write_size ==
                             controllers_[channel]->pending_writes(),
                     "occupancy proxy diverged from the controller");
        shard.read_pos = 0;
        shard.write_pos = 0;
    }

    // The workers republished their retire schedules for the widened
    // horizon (AdvanceChannel); rebuild the notification schedule on top.
    const std::uint64_t t1 =
        eng_ != nullptr ? obs::EngineProfiler::Now() : 0;
    if (eng_ != nullptr) {
        eng_->SetCurrentPhase(obs::EngineProfiler::Phase::kPublish);
    }
    PublishNotifications();
    const std::uint64_t t2 =
        eng_ != nullptr ? obs::EngineProfiler::Now() : 0;

    if (obs_ != nullptr) {
        MergeObservability();
    }
    if (eng_ != nullptr) {
        eng_->SetCurrentPhase(obs::EngineProfiler::Phase::kMerge);
        eng_->AddPhaseTicks(0, obs::EngineProfiler::Phase::kPublish,
                            t2 - t1);
        eng_->AddPhaseTicks(0, obs::EngineProfiler::Phase::kMerge,
                            (obs::EngineProfiler::Now() - t2) + (t1 - t0));
    }
}

void
System::RethrowShardError(std::exception_ptr error)
{
    try {
        std::rethrow_exception(error);
    } catch (const WatchdogError& watchdog) {
        // A stalled worker's dump shows controller state; add where the
        // engine itself was parked when the bound tripped.
        throw WatchdogError(std::string(watchdog.what()) + "\n" +
                            EngineStateDump());
    }
    // Any other exception propagates unchanged from the rethrow above.
}

void
System::PublishNotifications()
{
    const CpuCycle ratio = config_.cpu_to_dram_ratio;
    const CpuCycle horizon =
        next_tick_ * ratio + config_.extra_read_latency_cpu;

    // Drop the previously published suffix: entries for retire ticks >=
    // next_tick_ sit at ready >= horizon, and none of them was delivered
    // (delivery implies ready <= the core clock < horizon, since the last
    // executed tick is next_tick_ - 1).  Entries below the horizon belong
    // to executed ticks and are final — they stay.
    while (!notifications_.empty() &&
           notifications_.back().ready >= horizon) {
        notifications_.pop_back();
    }

    // Re-append the fresh schedules, k-way merged by (completion cycle,
    // channel): within one DRAM cycle the serial loop ticks channels in
    // index order and each retires at most one read per tick, so the key
    // is unique and the order is exactly the serial callback order.
    publish_pos_.assign(shards_.size(), 0);
    while (true) {
        std::size_t best = shards_.size();
        for (std::size_t channel = 0; channel < shards_.size(); ++channel) {
            const ChannelShard& shard = *shards_[channel];
            if (publish_pos_[channel] >= shard.read_retires.size()) {
                continue;
            }
            if (best == shards_.size() ||
                shard.read_retires[publish_pos_[channel]].done <
                    shards_[best]->read_retires[publish_pos_[best]].done) {
                best = channel;
            }
        }
        if (best == shards_.size()) {
            break;
        }
        const Controller::PendingRead& entry =
            shards_[best]->read_retires[publish_pos_[best]];
        publish_pos_[best] += 1;
        const CpuCycle ready =
            entry.done * ratio + config_.extra_read_latency_cpu;
        PARBS_ASSERT(notifications_.empty() ||
                         notifications_.back().ready <= ready,
                     "published notifications out of order");
        notifications_.push_back({ready, entry.thread, entry.id});
    }
    next_notify_ready_ = notifications_.empty()
                             ? kNeverCycle
                             : notifications_.front().ready;
}

void
System::MergeObservability()
{
    // Trace: replay each channel's staged event runs into the main ring in
    // the serial emission order (see StagedRun for the key argument).
    merge_runs_.clear();
    for (std::uint32_t channel = 0; channel < shards_.size(); ++channel) {
        ChannelShard& shard = *shards_[channel];
        // Tag anything emitted after the last tick (there should be none,
        // but a trailing run must not be silently dropped).  The key must
        // stay unique across channels, hence the channel offset.
        shard.CloseRun(window_to_ - 1, 1, arrival_seq_ + channel);
        PARBS_ASSERT(shard.tracer->dropped() == 0,
                     "staging tracer overflowed");
        for (const StagedRun& run : shard.runs) {
            merge_runs_.push_back({run, channel});
        }
    }
    std::sort(merge_runs_.begin(), merge_runs_.end(),
              [](const TaggedRun& a, const TaggedRun& b) {
                  if (a.run.cycle != b.run.cycle) {
                      return a.run.cycle < b.run.cycle;
                  }
                  if (a.run.phase != b.run.phase) {
                      return a.run.phase < b.run.phase;
                  }
                  return a.run.order < b.run.order;
              });
    obs::Tracer& main_tracer = obs_->tracer();
    for (const TaggedRun& tagged : merge_runs_) {
        const obs::Tracer& staging = *shards_[tagged.channel]->tracer;
        for (std::uint32_t i = tagged.run.begin; i < tagged.run.end; ++i) {
            main_tracer.Emit(staging.event(i));
        }
    }
    for (auto& shard : shards_) {
        shard->tracer->Clear();
        shard->runs.clear();
        shard->staged_mark = 0;
        obs_->latency().Merge(*shard->latency);
        shard->latency->Clear();
    }

    // Sampler rows: every channel sampled at the same cycles (they share
    // the cursor's start and stride), so rows zip back together in channel
    // order, exactly as the serial TakeSample would have built them.
    if (sampler_ == nullptr || sample_interval_ == 0 ||
        shards_.front()->samples.empty()) {
        for (auto& shard : shards_) {
            PARBS_ASSERT(shard->samples.empty(),
                         "sampler rows out of step across channels");
        }
        return;
    }
    const std::size_t rows = shards_.front()->samples.size();
    for (std::size_t row = 0; row < rows; ++row) {
        const DramCycle cycle = shards_.front()->samples[row].cycle;
        PARBS_ASSERT(cycle == sampler_->next_sample(),
                     "sampler cursor out of step");
        std::vector<obs::ControllerSample> assembled;
        assembled.reserve(shards_.size());
        for (auto& shard : shards_) {
            PARBS_ASSERT(shard->samples.size() == rows &&
                             shard->samples[row].cycle == cycle,
                         "sampler rows out of step across channels");
            assembled.push_back(std::move(shard->samples[row].data));
        }
        sampler_->AppendRow(cycle, std::move(assembled));
    }
    for (auto& shard : shards_) {
        shard->samples.clear();
    }
}

std::uint64_t
System::ProgressSignature() const
{
    std::uint64_t signature = 0;
    for (const auto& core : cores_) {
        signature += core->stats().instructions;
    }
    for (const auto& controller : controllers_) {
        signature += controller->total_commands_issued();
    }
    return signature;
}

void
System::CheckGlobalProgress()
{
    // Amortize the signature scan; the bound is thousands of cycles.  On
    // the sharded engine this runs during the core phase, when the workers
    // are parked — the controller counters may lag by up to one lookahead
    // window, which the 4x ratio slack in the bound absorbs.
    next_progress_check_ = cpu_cycle_ + 256;
    const std::uint64_t signature = ProgressSignature();
    if (signature != progress_signature_) {
        progress_signature_ = signature;
        progress_cycle_ = cpu_cycle_;
        return;
    }
    if (cpu_cycle_ - progress_cycle_ <= progress_bound_cpu_) {
        return;
    }
    if (AllDone()) {
        return;
    }
    std::ostringstream out;
    out << "watchdog: system deadlock: no instruction retired and no DRAM "
           "command issued for "
        << (cpu_cycle_ - progress_cycle_) << " CPU cycles (bound "
        << progress_bound_cpu_ << ") with work still pending\n";
    for (std::uint32_t channel = 0; channel < controllers_.size();
         ++channel) {
        out << "-- controller[" << channel << "] --\n"
            << controllers_[channel]->Diagnostics(DramNow());
    }
    DumpStats(out);
    out << EngineStateDump();
    throw WatchdogError(out.str());
}

std::string
System::EngineStateDump() const
{
    std::ostringstream out;
    out << "---- engine state ----\n"
        << "engine=" << (sharded_ ? "sharded" : "serial")
        << " channel_jobs=" << shard_jobs_ << " core_crew=" << core_crew_
        << " lookahead_window=" << window_ << "\n"
        << "cpu_cycle=" << cpu_cycle_ << " next_tick=" << next_tick_
        << " window=[" << window_from_ << "," << window_to_
        << ") limit=" << window_limit_ << "\n"
        << "team_phase="
        << (team_phase_ == TeamPhase::kCores ? "cores" : "channels");
    if (eng_ != nullptr) {
        out << " profiler_phase=" << eng_->CurrentPhaseName();
    }
    out << "\n";
    if (core_crew_ > 1 && core_workers_ != nullptr) {
        const CpuCycle released =
            core_release_.load(std::memory_order_acquire);
        out << "core_release=" << released << " core_stop="
            << (core_stop_.load(std::memory_order_acquire) ? 1 : 0)
            << " phase_base=" << core_phase_base_
            << " phase_end=" << core_phase_end_ << "\n";
        for (unsigned p = 1; p < core_crew_; ++p) {
            const CpuCycle done =
                core_workers_[p].done.load(std::memory_order_acquire);
            out << "core_worker[" << p << "] done=";
            if (done == kNeverCycle) {
                out << "bailed (error pending)";
            } else {
                out << done
                    << (done < released ? " (parked on the cycle join)"
                                        : " (caught up, awaiting release)");
            }
            out << "\n";
        }
    }
    for (std::uint32_t channel = 0; channel < shards_.size(); ++channel) {
        const ChannelShard& shard = *shards_[channel];
        out << "shard[" << channel << "] reads=" << shard.read_size
            << " writes=" << shard.write_size
            << " inbox=" << shard.inbox.size()
            << (shard.error != nullptr ? " error=pending" : "") << "\n";
    }
    return out.str();
}

json::Value
System::EngineRunJson() const
{
    PARBS_ASSERT(eng_ != nullptr,
                 "EngineRunJson requires observability.engine_profile");
    json::Value out = eng_->DeterministicJson();
    Scheduler::PickMemoCounters memo;
    for (const auto& controller : controllers_) {
        const Scheduler::PickMemoCounters counters =
            controller->scheduler().MemoCounters();
        memo.hits += counters.hits;
        memo.misses += counters.misses;
        memo.invalidations += counters.invalidations;
    }
    json::Value memo_json = json::Value::Object();
    memo_json.Set("hits", json::Value(memo.hits));
    memo_json.Set("misses", json::Value(memo.misses));
    memo_json.Set("invalidations", json::Value(memo.invalidations));
    out.Set("pick_memo", std::move(memo_json));
    return out;
}

json::Value
System::EngineEnvJson() const
{
    PARBS_ASSERT(eng_ != nullptr,
                 "EngineEnvJson requires observability.engine_profile");
    json::Value out = eng_->TimingJson();
    // Pool high waters are exact but engine-shape dependent (the sharded
    // engine's cores run a window ahead of retirement), hence env.
    json::Value hiwater = json::Value::Array();
    for (const auto& pool : pools_) {
        hiwater.Append(
            json::Value(static_cast<std::uint64_t>(pool->hiwater())));
    }
    out.Set("pool_hiwater", std::move(hiwater));
    return out;
}

void
System::DeliverNotifications()
{
    while (!notifications_.empty() &&
           notifications_.front().ready <= cpu_cycle_) {
        const PendingNotify n = notifications_.front();
        notifications_.pop_front();
        cores_[n.thread]->OnReadComplete(n.id);
    }
    next_notify_ready_ = notifications_.empty()
                             ? kNeverCycle
                             : notifications_.front().ready;
}

bool
System::AllDone() const
{
    if (cores_.empty()) {
        return true;
    }
    if (!notifications_.empty()) {
        return false;
    }
    for (const auto& core : cores_) {
        if (!core->Done()) {
            return false;
        }
    }
    // Drained traces may still have requests in flight.  On the sharded
    // engine the shard proxies stand in for the (lagging) controllers.
    if (sharded_) {
        return AllShardsIdle();
    }
    for (const auto& controller : controllers_) {
        if (controller->pending_reads() > 0 ||
            controller->pending_writes() > 0) {
            return false;
        }
    }
    return true;
}

std::uint32_t
System::num_cores() const
{
    return static_cast<std::uint32_t>(cores_.size());
}

Core&
System::core(ThreadId thread)
{
    PARBS_ASSERT(thread < cores_.size(), "core index out of range");
    return *cores_[thread];
}

const Core&
System::core(ThreadId thread) const
{
    PARBS_ASSERT(thread < cores_.size(), "core index out of range");
    return *cores_[thread];
}

Controller&
System::controller(std::uint32_t channel)
{
    PARBS_ASSERT(channel < controllers_.size(), "channel out of range");
    return *controllers_[channel];
}

const Controller&
System::controller(std::uint32_t channel) const
{
    PARBS_ASSERT(channel < controllers_.size(), "channel out of range");
    return *controllers_[channel];
}

std::uint32_t
System::num_controllers() const
{
    return static_cast<std::uint32_t>(controllers_.size());
}

void
System::SetThreadPriority(ThreadId thread, ThreadPriority priority)
{
    for (auto& controller : controllers_) {
        controller->scheduler().SetThreadPriority(thread, priority);
    }
}

void
System::SetThreadWeight(ThreadId thread, double weight)
{
    for (auto& controller : controllers_) {
        controller->scheduler().SetThreadWeight(thread, weight);
    }
}

ThreadMeasurement
System::Measure(ThreadId thread) const
{
    PARBS_ASSERT(thread < cores_.size(), "thread out of range");
    const CoreStats& core_stats = cores_[thread]->stats();

    ThreadMeasurement out;
    out.mcpi = core_stats.Mcpi();
    out.ipc = core_stats.Ipc();
    out.ast_per_req = core_stats.AstPerRequest();
    out.mpki = core_stats.Mpki();
    out.instructions = core_stats.instructions;
    out.requests = core_stats.loads_completed;

    std::uint64_t hits = 0;
    std::uint64_t accesses = 0;
    std::uint64_t blp_sum = 0;
    std::uint64_t blp_cycles = 0;
    std::uint64_t max_latency_dram = 0;
    for (const auto& controller : controllers_) {
        const ControllerThreadStats& stats =
            controller->thread_stats(thread);
        hits += stats.read_row_hits;
        accesses += stats.read_row_hits + stats.read_row_closed +
                    stats.read_row_conflicts;
        blp_sum += stats.blp_sum;
        blp_cycles += stats.blp_cycles;
        max_latency_dram =
            std::max(max_latency_dram, stats.read_latency_max);
    }
    out.row_hit_rate = accesses == 0 ? 0.0
                                     : static_cast<double>(hits) /
                                           static_cast<double>(accesses);
    out.blp = blp_cycles == 0 ? 0.0
                              : static_cast<double>(blp_sum) /
                                    static_cast<double>(blp_cycles);
    out.worst_case_latency =
        max_latency_dram == 0
            ? 0
            : DramLatencyToCpuCycles(max_latency_dram,
                                     config_.cpu_to_dram_ratio,
                                     config_.extra_read_latency_cpu);
    return out;
}

void
System::WriteTrace(std::ostream& out, const std::string& workload_label) const
{
    PARBS_ASSERT(obs_ != nullptr,
                 "WriteTrace requires observability to be enabled");
    obs::TraceMeta meta;
    meta.scheduler = controllers_.empty()
                         ? std::string{}
                         : controllers_.front()->scheduler().name();
    meta.workload = workload_label;
    meta.cores = config_.num_cores;
    meta.seed = config_.seed;
    meta.cpu_to_dram_ratio = config_.cpu_to_dram_ratio;
    if (eng_ == nullptr) {
        obs_->WriteTrace(out, meta);
        return;
    }
    json::Value document = obs_->TraceDocument(meta);
    eng_->AppendToTraceDocument(document);
    out << document.Dump(2) << "\n";
}

void
System::DumpStats(std::ostream& out) const
{
    out << "---- system stats @ cpu cycle " << cpu_cycle_ << " ----\n";
    for (ThreadId t = 0; t < cores_.size(); ++t) {
        const CoreStats& stats = cores_[t]->stats();
        const ThreadMeasurement m = Measure(t);
        out << "core[" << t << "]"
            << " instructions=" << stats.instructions
            << " ipc=" << m.ipc
            << " mcpi=" << m.mcpi
            << " loads=" << stats.loads_completed
            << " stores=" << stats.stores_issued
            << " ast_per_req=" << m.ast_per_req
            << " rb_hit=" << m.row_hit_rate
            << " blp=" << m.blp
            << " wc_latency=" << m.worst_case_latency << "\n";
    }
    for (std::uint32_t channel = 0; channel < controllers_.size();
         ++channel) {
        const Controller& controller = *controllers_[channel];
        out << "controller[" << channel << "]"
            << " ACT=" << controller.commands_issued(
                   dram::CommandType::kActivate)
            << " PRE=" << controller.commands_issued(
                   dram::CommandType::kPrecharge)
            << " RD=" << controller.commands_issued(
                   dram::CommandType::kRead)
            << " WR=" << controller.commands_issued(
                   dram::CommandType::kWrite)
            << " REF=" << controller.commands_issued(
                   dram::CommandType::kRefresh)
            << " pending_reads=" << controller.pending_reads()
            << " pending_writes=" << controller.pending_writes() << "\n";
        const auto scheduler_stats = controller.scheduler().Stats();
        if (!scheduler_stats.empty()) {
            out << "controller[" << channel << "].scheduler("
                << controller.scheduler().name() << ")";
            for (const auto& [key, value] : scheduler_stats) {
                out << " " << key << "=" << value;
            }
            out << "\n";
        }
        if (const RasEngine* ras = controller.ras()) {
            out << "controller[" << channel << "].ras " << ras->Summary()
                << "\n";
        }
    }
}

void
System::CheckAddr(Addr addr) const
{
    // The bit-sliced mapper masks each field, so an out-of-range address
    // would silently alias a valid one — reject it instead.
    if (addr >= capacity_bytes_) {
        std::ostringstream message;
        message << "address 0x" << std::hex << addr << std::dec
                << " is outside the " << capacity_bytes_
                << "-byte memory system (check the trace against the "
                   "configured DRAM geometry)";
        PARBS_FATAL(message.str());
    }
}

RequestPtr
System::MakeRequest(ThreadId thread, Addr addr, bool is_write,
                    const dram::DecodedAddr& coords)
{
    // Allocated from the target channel's slab (mem/request_pool.hh).
    // Issue runs on the coordinator and release on the channel's worker,
    // but the phases alternate across the team barrier, so the pool is
    // never touched concurrently.
    RequestPtr request = pools_[coords.channel]->Make();
    request->id = next_request_id_++;
    request->thread = thread;
    request->addr = addr;
    request->coords = coords;
    request->is_write = is_write;
    request->arrival_cpu = cpu_cycle_;
    return request;
}

std::optional<RequestId>
System::TryIssueRead(ThreadId thread, Addr addr)
{
    CheckAddr(addr);
    const dram::DecodedAddr coords = mapper_.Decode(addr);
    if (sharded_) {
        ChannelShard& shard = *shards_[coords.channel];
        if (shard.read_size >= read_capacity_) {
            return std::nullopt;
        }
        RequestPtr request = MakeRequest(thread, addr, false, coords);
        const RequestId id = request->id;
        shard.read_size += 1;
        shard.inbox.push_back(
            {DramNow(), arrival_seq_++, std::move(request)});
        if (eng_ != nullptr) {
            eng_->OnArrival(coords.channel);
        }
        return id;
    }
    Controller& controller = *controllers_[coords.channel];
    if (!controller.CanAcceptRead()) {
        return std::nullopt;
    }
    RequestPtr request = MakeRequest(thread, addr, false, coords);
    const RequestId id = request->id;
    controller.Enqueue(std::move(request), DramNow());
    if (eng_ != nullptr) {
        eng_->OnArrival(coords.channel);
    }
    return id;
}

bool
System::TryIssueWrite(ThreadId thread, Addr addr)
{
    CheckAddr(addr);
    const dram::DecodedAddr coords = mapper_.Decode(addr);
    if (sharded_) {
        ChannelShard& shard = *shards_[coords.channel];
        if (shard.write_size >= write_capacity_) {
            return false;
        }
        shard.write_size += 1;
        shard.inbox.push_back({DramNow(), arrival_seq_++,
                               MakeRequest(thread, addr, true, coords)});
        if (eng_ != nullptr) {
            eng_->OnArrival(coords.channel);
        }
        return true;
    }
    Controller& controller = *controllers_[coords.channel];
    if (!controller.CanAcceptWrite()) {
        return false;
    }
    controller.Enqueue(MakeRequest(thread, addr, true, coords), DramNow());
    if (eng_ != nullptr) {
        eng_->OnArrival(coords.channel);
    }
    return true;
}

} // namespace parbs
