#include "sim/system.hh"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <string>

#include "common/assert.hh"

namespace parbs {

System::System(const SystemConfig& config,
               std::vector<std::unique_ptr<TraceSource>> traces)
    : config_(config),
      mapper_(config.geometry, config.xor_bank_hash),
      traces_(std::move(traces))
{
    config_.Validate();
    if (traces_.size() > config_.num_cores) {
        PARBS_FATAL("more traces than cores");
    }
    capacity_bytes_ = config_.geometry.CapacityBytes();
    if (config_.controller.watchdog.enabled) {
        // The system-level bound wraps the per-controller one with slack
        // for the clock-domain ratio and cross-controller skew.
        progress_bound_cpu_ =
            4 * config_.cpu_to_dram_ratio *
            ResolveNoProgressBound(config_.controller.watchdog,
                                   config_.timing);
    }

    // Per-channel geometry: each controller sees a single-channel slice.
    dram::Geometry channel_geometry = config_.geometry;
    channel_geometry.channels = 1;
    for (std::uint32_t channel = 0; channel < config_.geometry.channels;
         ++channel) {
        auto scheduler = config_.scheduler_factory
                             ? config_.scheduler_factory()
                             : MakeScheduler(config_.scheduler);
        controllers_.push_back(std::make_unique<Controller>(
            config_.controller, config_.timing, channel_geometry,
            config_.num_cores, std::move(scheduler)));
        controllers_.back()->SetReadCompleteCallback(
            [this](const MemRequest& request) {
                // Model the fixed return path (interconnect + L2 fill)
                // before the core observes the data.
                notifications_.push_back(
                    {cpu_cycle_ + config_.extra_read_latency_cpu,
                     request.thread, request.id});
            });
    }

    if (config_.observability.Enabled()) {
        obs_ = std::make_unique<obs::Observability>(
            config_.observability, config_.num_cores,
            static_cast<std::uint32_t>(controllers_.size()));
        sampler_ = &obs_->sampler();
        for (std::uint32_t channel = 0; channel < controllers_.size();
             ++channel) {
            controllers_[channel]->AttachObservability(
                &obs_->tracer(), &obs_->latency(),
                static_cast<std::uint8_t>(channel));
            controllers_[channel]->scheduler().SetObserver(
                &obs_->adapter(channel));
        }
    }

    for (ThreadId thread = 0; thread < traces_.size(); ++thread) {
        cores_.push_back(std::make_unique<Core>(config_.core, thread,
                                                *traces_[thread], *this));
    }
}

void
System::Run(CpuCycle cpu_cycles)
{
    const CpuCycle end = cpu_cycle_ + cpu_cycles;
    while (cpu_cycle_ < end) {
        if (cpu_cycle_ % config_.cpu_to_dram_ratio == 0) {
            const DramCycle dram_now = DramNow();
            for (auto& controller : controllers_) {
                controller->Tick(dram_now);
            }
            if (sampler_ != nullptr) {
                sampler_->Tick(dram_now, controllers_);
            }
        }
        DeliverNotifications();
        for (auto& core : cores_) {
            core->Tick();
        }
        cpu_cycle_ += 1;
        if (progress_bound_cpu_ != 0 && cpu_cycle_ >= next_progress_check_) {
            CheckGlobalProgress();
        }
        if (AllDone()) {
            break;
        }
    }
}

std::uint64_t
System::ProgressSignature() const
{
    std::uint64_t signature = 0;
    for (const auto& core : cores_) {
        signature += core->stats().instructions;
    }
    for (const auto& controller : controllers_) {
        signature += controller->total_commands_issued();
    }
    return signature;
}

void
System::CheckGlobalProgress()
{
    // Amortize the signature scan; the bound is thousands of cycles.
    next_progress_check_ = cpu_cycle_ + 256;
    const std::uint64_t signature = ProgressSignature();
    if (signature != progress_signature_) {
        progress_signature_ = signature;
        progress_cycle_ = cpu_cycle_;
        return;
    }
    if (cpu_cycle_ - progress_cycle_ <= progress_bound_cpu_) {
        return;
    }
    if (AllDone()) {
        return;
    }
    std::ostringstream out;
    out << "watchdog: system deadlock: no instruction retired and no DRAM "
           "command issued for "
        << (cpu_cycle_ - progress_cycle_) << " CPU cycles (bound "
        << progress_bound_cpu_ << ") with work still pending\n";
    for (std::uint32_t channel = 0; channel < controllers_.size();
         ++channel) {
        out << "-- controller[" << channel << "] --\n"
            << controllers_[channel]->Diagnostics(DramNow());
    }
    DumpStats(out);
    throw WatchdogError(out.str());
}

void
System::DeliverNotifications()
{
    while (!notifications_.empty() &&
           notifications_.front().ready <= cpu_cycle_) {
        const PendingNotify n = notifications_.front();
        notifications_.pop_front();
        cores_[n.thread]->OnReadComplete(n.id);
    }
}

bool
System::AllDone() const
{
    if (cores_.empty()) {
        return true;
    }
    if (!notifications_.empty()) {
        return false;
    }
    for (const auto& core : cores_) {
        if (!core->Done()) {
            return false;
        }
    }
    // Drained traces may still have requests in flight.
    for (const auto& controller : controllers_) {
        if (controller->pending_reads() > 0 ||
            controller->pending_writes() > 0) {
            return false;
        }
    }
    return true;
}

std::uint32_t
System::num_cores() const
{
    return static_cast<std::uint32_t>(cores_.size());
}

Core&
System::core(ThreadId thread)
{
    PARBS_ASSERT(thread < cores_.size(), "core index out of range");
    return *cores_[thread];
}

const Core&
System::core(ThreadId thread) const
{
    PARBS_ASSERT(thread < cores_.size(), "core index out of range");
    return *cores_[thread];
}

Controller&
System::controller(std::uint32_t channel)
{
    PARBS_ASSERT(channel < controllers_.size(), "channel out of range");
    return *controllers_[channel];
}

const Controller&
System::controller(std::uint32_t channel) const
{
    PARBS_ASSERT(channel < controllers_.size(), "channel out of range");
    return *controllers_[channel];
}

std::uint32_t
System::num_controllers() const
{
    return static_cast<std::uint32_t>(controllers_.size());
}

void
System::SetThreadPriority(ThreadId thread, ThreadPriority priority)
{
    for (auto& controller : controllers_) {
        controller->scheduler().SetThreadPriority(thread, priority);
    }
}

void
System::SetThreadWeight(ThreadId thread, double weight)
{
    for (auto& controller : controllers_) {
        controller->scheduler().SetThreadWeight(thread, weight);
    }
}

ThreadMeasurement
System::Measure(ThreadId thread) const
{
    PARBS_ASSERT(thread < cores_.size(), "thread out of range");
    const CoreStats& core_stats = cores_[thread]->stats();

    ThreadMeasurement out;
    out.mcpi = core_stats.Mcpi();
    out.ipc = core_stats.Ipc();
    out.ast_per_req = core_stats.AstPerRequest();
    out.mpki = core_stats.Mpki();
    out.instructions = core_stats.instructions;
    out.requests = core_stats.loads_completed;

    std::uint64_t hits = 0;
    std::uint64_t accesses = 0;
    std::uint64_t blp_sum = 0;
    std::uint64_t blp_cycles = 0;
    std::uint64_t max_latency_dram = 0;
    for (const auto& controller : controllers_) {
        const ControllerThreadStats& stats =
            controller->thread_stats(thread);
        hits += stats.read_row_hits;
        accesses += stats.read_row_hits + stats.read_row_closed +
                    stats.read_row_conflicts;
        blp_sum += stats.blp_sum;
        blp_cycles += stats.blp_cycles;
        max_latency_dram =
            std::max(max_latency_dram, stats.read_latency_max);
    }
    out.row_hit_rate = accesses == 0 ? 0.0
                                     : static_cast<double>(hits) /
                                           static_cast<double>(accesses);
    out.blp = blp_cycles == 0 ? 0.0
                              : static_cast<double>(blp_sum) /
                                    static_cast<double>(blp_cycles);
    out.worst_case_latency =
        max_latency_dram == 0
            ? 0
            : DramLatencyToCpuCycles(max_latency_dram,
                                     config_.cpu_to_dram_ratio,
                                     config_.extra_read_latency_cpu);
    return out;
}

void
System::WriteTrace(std::ostream& out, const std::string& workload_label) const
{
    PARBS_ASSERT(obs_ != nullptr,
                 "WriteTrace requires observability to be enabled");
    obs::TraceMeta meta;
    meta.scheduler = controllers_.empty()
                         ? std::string{}
                         : controllers_.front()->scheduler().name();
    meta.workload = workload_label;
    meta.cores = config_.num_cores;
    meta.seed = config_.seed;
    meta.cpu_to_dram_ratio = config_.cpu_to_dram_ratio;
    obs_->WriteTrace(out, meta);
}

void
System::DumpStats(std::ostream& out) const
{
    out << "---- system stats @ cpu cycle " << cpu_cycle_ << " ----\n";
    for (ThreadId t = 0; t < cores_.size(); ++t) {
        const CoreStats& stats = cores_[t]->stats();
        const ThreadMeasurement m = Measure(t);
        out << "core[" << t << "]"
            << " instructions=" << stats.instructions
            << " ipc=" << m.ipc
            << " mcpi=" << m.mcpi
            << " loads=" << stats.loads_completed
            << " stores=" << stats.stores_issued
            << " ast_per_req=" << m.ast_per_req
            << " rb_hit=" << m.row_hit_rate
            << " blp=" << m.blp
            << " wc_latency=" << m.worst_case_latency << "\n";
    }
    for (std::uint32_t channel = 0; channel < controllers_.size();
         ++channel) {
        const Controller& controller = *controllers_[channel];
        out << "controller[" << channel << "]"
            << " ACT=" << controller.commands_issued(
                   dram::CommandType::kActivate)
            << " PRE=" << controller.commands_issued(
                   dram::CommandType::kPrecharge)
            << " RD=" << controller.commands_issued(
                   dram::CommandType::kRead)
            << " WR=" << controller.commands_issued(
                   dram::CommandType::kWrite)
            << " REF=" << controller.commands_issued(
                   dram::CommandType::kRefresh)
            << " pending_reads=" << controller.pending_reads()
            << " pending_writes=" << controller.pending_writes() << "\n";
        const auto scheduler_stats = controller.scheduler().Stats();
        if (!scheduler_stats.empty()) {
            out << "controller[" << channel << "].scheduler("
                << controller.scheduler().name() << ")";
            for (const auto& [key, value] : scheduler_stats) {
                out << " " << key << "=" << value;
            }
            out << "\n";
        }
    }
}

void
System::CheckAddr(Addr addr) const
{
    // The bit-sliced mapper masks each field, so an out-of-range address
    // would silently alias a valid one — reject it instead.
    if (addr >= capacity_bytes_) {
        std::ostringstream message;
        message << "address 0x" << std::hex << addr << std::dec
                << " is outside the " << capacity_bytes_
                << "-byte memory system (check the trace against the "
                   "configured DRAM geometry)";
        PARBS_FATAL(message.str());
    }
}

std::unique_ptr<MemRequest>
System::MakeRequest(ThreadId thread, Addr addr, bool is_write)
{
    auto request = std::make_unique<MemRequest>();
    request->id = next_request_id_++;
    request->thread = thread;
    request->addr = addr;
    request->coords = mapper_.Decode(addr);
    request->is_write = is_write;
    request->arrival_cpu = cpu_cycle_;
    return request;
}

std::optional<RequestId>
System::TryIssueRead(ThreadId thread, Addr addr)
{
    CheckAddr(addr);
    const dram::DecodedAddr coords = mapper_.Decode(addr);
    Controller& controller = *controllers_[coords.channel];
    if (!controller.CanAcceptRead()) {
        return std::nullopt;
    }
    std::unique_ptr<MemRequest> request = MakeRequest(thread, addr, false);
    const RequestId id = request->id;
    controller.Enqueue(std::move(request), DramNow());
    return id;
}

bool
System::TryIssueWrite(ThreadId thread, Addr addr)
{
    CheckAddr(addr);
    const dram::DecodedAddr coords = mapper_.Decode(addr);
    Controller& controller = *controllers_[coords.channel];
    if (!controller.CanAcceptWrite()) {
        return false;
    }
    controller.Enqueue(MakeRequest(thread, addr, true), DramNow());
    return true;
}

} // namespace parbs
