#include "sim/channel_team.hh"

#include "common/assert.hh"
#include "obs/engine_profiler.hh"

namespace parbs {

namespace {

/** Busy-poll budget before yielding; yields before sleeping on the CV.
 *  A window is microseconds, so most waits resolve within the spin. */
constexpr int kSpinIterations = 4000;
constexpr int kYieldIterations = 64;

} // namespace

ChannelTeam::ChannelTeam(unsigned participants, WorkFn work,
                         obs::EngineProfiler* profiler)
    : participants_(participants),
      work_(std::move(work)),
      profiler_(profiler),
      errors_(participants)
{
    PARBS_ASSERT(participants_ >= 1, "team needs at least one participant");
    PARBS_ASSERT(work_ != nullptr, "team needs a work function");
    threads_.reserve(participants_ - 1);
    for (unsigned p = 1; p < participants_; ++p) {
        threads_.emplace_back([this, p] { WorkerLoop(p); });
    }
}

ChannelTeam::~ChannelTeam()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_.store(true, std::memory_order_release);
    }
    wake_.notify_all();
    for (std::thread& thread : threads_) {
        thread.join();
    }
}

void
ChannelTeam::RunWindow()
{
    if (participants_ == 1) {
        work_(0);
        return;
    }
    done_count_.store(0, std::memory_order_relaxed);
    {
        // The bump happens under the mutex so a worker that just checked
        // the generation and is entering wake_.wait cannot miss it.
        std::lock_guard<std::mutex> lock(mutex_);
        generation_.fetch_add(1, std::memory_order_release);
    }
    wake_.notify_all();

    std::exception_ptr own;
    try {
        work_(0);
    } catch (...) {
        own = std::current_exception();
    }

    // Join: even on an exception, every worker must finish its share
    // before control returns — the System merges or unwinds only once no
    // thread is touching shard state.
    const std::uint64_t join_start =
        profiler_ != nullptr ? obs::EngineProfiler::Now() : 0;
    int spins = 0;
    while (done_count_.load(std::memory_order_acquire) !=
           participants_ - 1) {
        if (++spins > kSpinIterations) {
            std::this_thread::yield();
        }
    }
    if (profiler_ != nullptr) {
        profiler_->AddPhaseTicks(0, obs::EngineProfiler::Phase::kBarrierJoin,
                                 obs::EngineProfiler::Now() - join_start);
    }

    if (own) {
        std::rethrow_exception(own);
    }
    for (std::exception_ptr& error : errors_) {
        if (error) {
            std::exception_ptr first = error;
            error = nullptr;
            std::rethrow_exception(first);
        }
    }
}

void
ChannelTeam::WorkerLoop(unsigned participant)
{
    std::uint64_t seen = 0;
    while (true) {
        const std::uint64_t park_start =
            profiler_ != nullptr ? obs::EngineProfiler::Now() : 0;
        std::uint64_t generation = seen;
        for (int i = 0; i < kSpinIterations; ++i) {
            generation = generation_.load(std::memory_order_acquire);
            if (generation != seen ||
                stop_.load(std::memory_order_acquire)) {
                break;
            }
        }
        for (int i = 0;
             i < kYieldIterations && generation == seen &&
             !stop_.load(std::memory_order_acquire);
             ++i) {
            std::this_thread::yield();
            generation = generation_.load(std::memory_order_acquire);
        }
        if (generation == seen && !stop_.load(std::memory_order_acquire)) {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock, [&] {
                return generation_.load(std::memory_order_acquire) != seen ||
                       stop_.load(std::memory_order_acquire);
            });
            generation = generation_.load(std::memory_order_acquire);
        }
        if (stop_.load(std::memory_order_acquire)) {
            return;
        }
        seen = generation;
        if (profiler_ != nullptr) {
            profiler_->AddPhaseTicks(
                participant, obs::EngineProfiler::Phase::kWorkerPark,
                obs::EngineProfiler::Now() - park_start);
        }
        try {
            work_(participant);
        } catch (...) {
            errors_[participant] = std::current_exception();
        }
        done_count_.fetch_add(1, std::memory_order_acq_rel);
    }
}

} // namespace parbs
