#include "sim/fault_injector.hh"

#include <iterator>
#include <utility>
#include <vector>

#include "common/assert.hh"
#include "dram/protocol_checker.hh"
#include "mem/controller.hh"
#include "mem/ras.hh"
#include "mem/watchdog.hh"
#include "sched/factory.hh"
#include "sim/config.hh"
#include "sim/system.hh"
#include "trace/file_trace.hh"
#include "trace/synthetic.hh"

#include <sstream>

namespace parbs {
namespace {

/** Geometry used by the controller-level scenarios. */
dram::Geometry
ScenarioGeometry()
{
    dram::Geometry geometry;
    geometry.channels = 1;
    geometry.ranks_per_channel = 1;
    geometry.banks_per_rank = 8;
    geometry.rows_per_bank = 1024;
    geometry.row_bytes = 2048;
    geometry.line_bytes = 64;
    return geometry;
}

/** Drives one Controller directly with hand-built requests. */
class Driver {
  public:
    Driver(const ControllerConfig& config, const dram::TimingParams& timing,
           std::uint32_t num_threads, std::unique_ptr<Scheduler> scheduler)
        : controller_(config, timing, ScenarioGeometry(), num_threads,
                      std::move(scheduler))
    {
    }

    void
    Enqueue(ThreadId thread, std::uint32_t bank, std::uint32_t row,
            std::uint32_t column = 0, bool is_write = false)
    {
        auto request = std::make_unique<MemRequest>();
        request->id = next_id_++;
        request->thread = thread;
        request->coords.channel = 0;
        request->coords.rank = 0;
        request->coords.bank = bank;
        request->coords.row = row;
        request->coords.column = column;
        request->is_write = is_write;
        controller_.Enqueue(std::move(request), now_);
    }

    void
    Tick(std::uint64_t cycles = 1)
    {
        for (std::uint64_t i = 0; i < cycles; ++i) {
            controller_.Tick(now_);
            now_ += 1;
        }
    }

    /** Runs until all buffered requests retire (or @p max_cycles pass). */
    void
    RunUntilIdle(std::uint64_t max_cycles = 50000)
    {
        std::uint64_t spent = 0;
        while ((controller_.pending_reads() > 0 ||
                controller_.pending_writes() > 0) &&
               spent < max_cycles) {
            Tick();
            spent += 1;
        }
    }

    Controller& controller() { return controller_; }
    const Controller& controller() const { return controller_; }
    DramCycle now() const { return now_; }

  private:
    Controller controller_;
    DramCycle now_ = 0;
    RequestId next_id_ = 1;
};

ControllerConfig
ScenarioConfig()
{
    ControllerConfig config;
    config.enable_refresh = false;
    return config;
}

std::unique_ptr<Scheduler>
FrFcfs()
{
    SchedulerConfig config;
    config.kind = SchedulerKind::kFrFcfs;
    return MakeScheduler(config);
}

std::unique_ptr<Scheduler>
OptionScheduler(const FaultOptions& options)
{
    SchedulerConfig config;
    config.kind = options.scheduler;
    return MakeScheduler(config);
}

// --- User-fault scenarios (must raise ConfigError) -----------------------

void
RunMalformedTrace(Rng& rng)
{
    static const char* const kBadLines[] = {
        "R 0x1000",                      // missing instruction count
        "20 X 0x1000",                   // unknown access type
        "20 R",                          // missing address
        "abc R 0x1000",                  // non-numeric count
        "20 R zzz",                      // non-numeric address
        "99999999999999999999 R 0x20",   // count overflows uint64
        "5000000000 R 0x20",             // count overflows uint32
        "20 R 0x1000 Q",                 // bad trailing flag
        "20 R 0x1000 D D",               // duplicated flag
        "20R0x1000",                     // fused fields
        "0x R 0x1000",                   // bare hex prefix
    };
    std::ostringstream text;
    // Valid prefix lines so the reported line number matters.
    const std::uint64_t prefix = rng.NextBelow(3);
    for (std::uint64_t i = 0; i < prefix; ++i) {
        text << "10 R 0x" << std::hex << (0x1000 + i * 0x40) << std::dec
             << "\n";
    }
    text << kBadLines[rng.NextBelow(std::size(kBadLines))] << "\n";
    std::istringstream in(text.str());
    ParseTrace(in, "<fuzz>");
}

void
RunOutOfRangeAddress(Rng& rng)
{
    SystemConfig config;
    config.num_cores = 1;
    config.geometry.channels = 1;
    System system(config, {});
    const Addr capacity = config.geometry.CapacityBytes();
    const Addr addr = capacity + rng.NextBelow(1ULL << 30);
    if (rng.NextBool(0.5)) {
        system.TryIssueRead(0, addr);
    } else {
        system.TryIssueWrite(0, addr);
    }
}

void
RunBadTiming(Rng& rng)
{
    dram::TimingParams timing;
    switch (rng.NextBelow(6)) {
    case 0: timing.tCL = 0; break;
    case 1: timing.tRCD = 0; break;
    case 2: timing.tRP = 0; break;
    case 3: timing.tRAS = timing.tRCD - 1; break;
    case 4: timing.tBURST = 0; break;
    default: timing.tRFC = timing.tREFI + 1; break;
    }
    timing.Validate();
}

void
RunBadGeometry(Rng& rng)
{
    dram::Geometry geometry;
    switch (rng.NextBelow(6)) {
    case 0: geometry.banks_per_rank = 0; break;
    case 1: geometry.rows_per_bank = 6; break;   // not a power of two
    case 2: geometry.line_bytes = 48; break;     // row % line != 0
    case 3: geometry.channels = 32; break;       // beyond supported range
    case 4: geometry.rows_per_bank = 1u << 25; break;
    default: geometry.row_bytes = 1u << 17; break;
    }
    geometry.Validate();
}

void
RunBadControllerConfig(Rng& rng)
{
    ControllerConfig config;
    switch (rng.NextBelow(6)) {
    case 0: config.read_queue_capacity = 0; break;
    case 1: config.write_queue_capacity = 0; break;
    case 2:
        config.write_drain_low = 40;
        config.write_drain_high = 20;
        break;
    case 3:
        config.write_drain_high = config.write_queue_capacity + 1;
        break;
    case 4:
        config.watchdog.enabled = true;
        config.watchdog.check_interval = 0;
        break;
    default:
        config.watchdog.enabled = true;
        config.watchdog.batch_bound_factor = -1.0;
        break;
    }
    if (rng.NextBool(0.5)) {
        config.Validate();
    } else {
        // The constructor path must reject it the same way.
        Driver driver(config, dram::TimingParams{}, 2, FrFcfs());
    }
}

// --- Stress scenarios (must complete cleanly under the checker) ----------

void
RandomTraffic(Driver& driver, Rng& rng, std::uint32_t requests,
              std::uint32_t num_threads, double write_fraction)
{
    for (std::uint32_t i = 0; i < requests; ++i) {
        driver.Enqueue(static_cast<ThreadId>(rng.NextBelow(num_threads)),
                       static_cast<std::uint32_t>(rng.NextBelow(8)),
                       static_cast<std::uint32_t>(rng.NextBelow(16)),
                       static_cast<std::uint32_t>(rng.NextBelow(32)),
                       rng.NextBool(write_fraction));
        if (rng.NextBool(0.3)) {
            driver.Tick(rng.NextBelow(12));
        }
    }
    driver.RunUntilIdle();
}

void
AssertClean(const Driver& driver)
{
    const dram::ProtocolChecker* checker =
        driver.controller().protocol_checker();
    if (checker != nullptr && !checker->violations().empty()) {
        // kRecord-mode leftovers count as a failed defense.
        throw dram::ProtocolError(
            checker->FormatViolation(checker->violations().front()));
    }
    if (driver.controller().pending_reads() > 0 ||
        driver.controller().pending_writes() > 0) {
        throw WatchdogError("stress scenario failed to drain");
    }
}

void
RunRefreshStorm(Rng& rng)
{
    ControllerConfig config;
    config.enable_refresh = true;
    config.protocol_check = true;
    config.watchdog.enabled = true;
    // Refresh consumes most of the bandwidth here, so legitimate queueing
    // delays exceed the default starvation bound; scale it to match.
    config.watchdog.starvation_bound = 100000;
    dram::TimingParams timing;
    // Aggressive refresh: tRFC consumes up to ~40% of every period (a
    // tighter interval cannot even close a tRAS-bound row between
    // refreshes, so nothing would drain).
    timing.tREFI = timing.tRFC + 80 + rng.NextBelow(60);
    Driver driver(config, timing, 4, FrFcfs());
    RandomTraffic(driver, rng, 30, 4, 0.2);
    AssertClean(driver);
}

void
RunWritePressure(Rng& rng)
{
    ControllerConfig config;
    config.enable_refresh = false;
    config.protocol_check = true;
    config.watchdog.enabled = true;
    config.write_queue_capacity = 16;
    config.write_drain_high = 12;
    config.write_drain_low = 4;
    Driver driver(config, dram::TimingParams{}, 4, FrFcfs());
    for (std::uint32_t burst = 0; burst < 6; ++burst) {
        // Pin the write buffer at capacity to force drain mode.
        while (driver.controller().CanAcceptWrite()) {
            driver.Enqueue(static_cast<ThreadId>(rng.NextBelow(4)),
                           static_cast<std::uint32_t>(rng.NextBelow(8)),
                           static_cast<std::uint32_t>(rng.NextBelow(16)),
                           static_cast<std::uint32_t>(rng.NextBelow(32)),
                           /*is_write=*/true);
        }
        driver.Enqueue(static_cast<ThreadId>(rng.NextBelow(4)),
                       static_cast<std::uint32_t>(rng.NextBelow(8)),
                       static_cast<std::uint32_t>(rng.NextBelow(16)), 0,
                       /*is_write=*/false);
        driver.Tick(20 + rng.NextBelow(100));
    }
    driver.RunUntilIdle();
    AssertClean(driver);
}

void
RunSchedulerChaos(Rng& rng)
{
    ControllerConfig config;
    config.enable_refresh = rng.NextBool(0.5);
    config.protocol_check = true;
    config.watchdog.enabled = true;
    SchedulerConfig inner;
    inner.kind =
        rng.NextBool(0.5) ? SchedulerKind::kParBs : SchedulerKind::kFrFcfs;
    auto chaos = std::make_unique<ChaosScheduler>(
        MakeScheduler(inner), rng.Next64(), 0.5 + rng.NextDouble() * 0.5);
    Driver driver(config, dram::TimingParams{}, 4, std::move(chaos));
    RandomTraffic(driver, rng, 80, 4, 0.3);
    AssertClean(driver);
}

// --- Model-fault scenarios (checker / watchdog must fire) ----------------

/**
 * Services ACTIVATE candidates first (oldest request as the tie-break).
 * API-legal but adversarial: it bunches row activations as tightly as the
 * device model permits, which is exactly where a corrupted tRRD or tFAW
 * register shows — FR-FCFS's row-hit preference paces activates too evenly
 * for the four-activate window to ever bind.
 */
class ActFirstScheduler : public Scheduler {
  public:
    std::string name() const override { return "act-first"; }

    MemRequest*
    Pick(std::span<const Candidate> candidates, DramCycle now) override
    {
        (void)now;
        const Candidate* best = nullptr;
        for (const Candidate& candidate : candidates) {
            if (best == nullptr ||
                Precedes(candidate, *best)) {
                best = &candidate;
            }
        }
        return best == nullptr ? nullptr : best->request;
    }

  private:
    static bool
    Precedes(const Candidate& a, const Candidate& b)
    {
        const bool a_act = a.next_command == dram::CommandType::kActivate;
        const bool b_act = b.next_command == dram::CommandType::kActivate;
        if (a_act != b_act) {
            return a_act;
        }
        return a.request->id < b.request->id;
    }
};

/** One seeded device-timing corruption and traffic that exposes it. */
struct Corruption {
    const char* param;
    void (*corrupt)(dram::TimingParams&);
    void (*drive)(Driver&, Rng&);
    /** Drive with the activate-bunching scheduler instead of FR-FCFS. */
    bool act_first = false;
};

void
ConflictChain(Driver& driver, Rng&)
{
    for (int i = 0; i < 12; ++i) {
        driver.Enqueue(0, 2, (i % 2) != 0 ? 5 : 9);
    }
    driver.RunUntilIdle();
}

void
SequentialConflict(Driver& driver, Rng&)
{
    // One request at a time, so FR-FCFS cannot reorder row hits ahead of
    // the conflicting row: the precharge lands right after the read, where
    // a shortened tRAS binds.
    for (std::uint32_t round = 0; round < 4; ++round) {
        driver.Enqueue(0, 4, 2 * round);
        driver.Tick(8);
        driver.Enqueue(0, 4, 2 * round + 1);
        driver.RunUntilIdle();
    }
}

void
RowHitRunThenConflict(Driver& driver, Rng&)
{
    for (std::uint32_t c = 0; c < 8; ++c) {
        driver.Enqueue(0, 1, 7, c);
    }
    driver.Enqueue(0, 1, 8);
    driver.RunUntilIdle();
}

void
RowHitRun(Driver& driver, Rng&)
{
    for (std::uint32_t c = 0; c < 10; ++c) {
        driver.Enqueue(0, 1, 7, c);
    }
    driver.RunUntilIdle();
}

void
ActivateBurst(Driver& driver, Rng&)
{
    for (int round = 0; round < 3; ++round) {
        for (std::uint32_t bank = 0; bank < 8; ++bank) {
            driver.Enqueue(0, bank, 3 + bank + round);
        }
        driver.RunUntilIdle();
    }
}

void
WriteThenPrecharge(Driver& driver, Rng&)
{
    for (int round = 0; round < 4; ++round) {
        for (std::uint32_t c = 0; c < 6; ++c) {
            driver.Enqueue(0, 3, 10, c, /*is_write=*/true);
        }
        driver.RunUntilIdle();
        // The conflicting row forces a precharge right after the last
        // write burst, where tWR binds.
        driver.Enqueue(0, 3, 11 + round);
        driver.RunUntilIdle();
    }
}

void
WriteReadTurnaround(Driver& driver, Rng& rng)
{
    // Open both rows so later accesses are pure column commands.
    driver.Enqueue(0, 0, 4);
    driver.Enqueue(0, 1, 6);
    driver.RunUntilIdle();
    for (int phase = 0; phase < 10; ++phase) {
        for (std::uint32_t c = 0; c < 3; ++c) {
            driver.Enqueue(0, 0, 4, c, /*is_write=*/true);
        }
        driver.Tick(1 + rng.NextBelow(8));
        driver.Enqueue(0, 1, 6, static_cast<std::uint32_t>(phase));
        driver.RunUntilIdle();
    }
}

const Corruption kCorruptions[] = {
    {"tRP", [](dram::TimingParams& t) { t.tRP = 2; }, ConflictChain},
    {"tRCD", [](dram::TimingParams& t) { t.tRCD = 2; }, ConflictChain},
    {"tRAS", [](dram::TimingParams& t) { t.tRAS = t.tRCD; },
     SequentialConflict},
    {"tWR", [](dram::TimingParams& t) { t.tWR = 1; }, WriteThenPrecharge},
    {"tWTR", [](dram::TimingParams& t) { t.tWTR = 0; }, WriteReadTurnaround},
    {"tRRD", [](dram::TimingParams& t) { t.tRRD = 1; }, ActivateBurst,
     /*act_first=*/true},
    {"tFAW", [](dram::TimingParams& t) { t.tFAW = t.tRRD; }, ActivateBurst,
     /*act_first=*/true},
    {"tRTP", [](dram::TimingParams& t) { t.tRTP = 1; }, RowHitRunThenConflict},
    {"tBURST", [](dram::TimingParams& t) { t.tBURST = 2; }, RowHitRun},
};

/** Raised when a seeded corruption escapes detection (always a failure —
 *  classified as an unexpected exception, with the parameter named). */
struct UncaughtCorruption : std::runtime_error {
    explicit UncaughtCorruption(const std::string& param)
        : std::runtime_error("timing corruption of " + param +
                             " escaped the protocol checker")
    {
    }
};

void
RunTimingCorruption(Rng& rng)
{
    const Corruption& corruption =
        kCorruptions[rng.NextBelow(std::size(kCorruptions))];
    dram::TimingParams device;   // what the model will (wrongly) enforce
    dram::TimingParams reference; // what the checker validates against
    corruption.corrupt(device);
    device.Validate(); // the corruption must be plausible, not rejected
    std::unique_ptr<Scheduler> scheduler =
        corruption.act_first
            ? std::unique_ptr<Scheduler>(std::make_unique<ActFirstScheduler>())
            : FrFcfs();
    Driver driver(ScenarioConfig(), device, 2, std::move(scheduler));
    driver.controller().EnableProtocolCheck(reference);
    corruption.drive(driver, rng);
    // Reaching this point means the corruption escaped the checker.
    throw UncaughtCorruption(corruption.param);
}

void
RunServiceWithholding(Rng& rng)
{
    ControllerConfig config;
    config.enable_refresh = false;
    config.watchdog.enabled = true;
    config.watchdog.starvation_bound = 1500;
    auto withholding =
        std::make_unique<WithholdingScheduler>(FrFcfs(), /*victim=*/0);
    Driver driver(config, dram::TimingParams{}, 2, std::move(withholding));
    for (std::uint32_t i = 0; i < 4; ++i) {
        driver.Enqueue(0, static_cast<std::uint32_t>(rng.NextBelow(8)),
                       static_cast<std::uint32_t>(rng.NextBelow(16)));
    }
    const bool background = rng.NextBool(0.5);
    for (int step = 0; step < 4000; ++step) {
        // With background traffic the starvation bound trips; without it
        // the no-progress bound trips.  Both are WatchdogError.
        if (background && step % 30 == 0 &&
            driver.controller().CanAcceptRead()) {
            driver.Enqueue(1, static_cast<std::uint32_t>(rng.NextBelow(8)),
                           static_cast<std::uint32_t>(rng.NextBelow(16)));
        }
        driver.Tick();
    }
}

// --- RAS scenarios (mem/ras.hh) ------------------------------------------

/** Raised when a RAS scenario's own sanity check fails (always kOther). */
struct RasSelfCheckFailure : std::runtime_error {
    explicit RasSelfCheckFailure(const std::string& what)
        : std::runtime_error("RAS self-check: " + what)
    {
    }
};

/**
 * A multi-channel System under a heavy transient ECC error shower: every
 * error must be corrected or recovered by retry, the run must drain
 * cleanly, and (self-check) the error rate is high enough that observing
 * zero ECC events would itself prove the error model broken.
 */
void
RunTransientBitErrors(Rng& rng, const FaultOptions& options)
{
    SystemConfig config = SystemConfig::Baseline(8); // 2 channels
    config.scheduler.kind = options.scheduler;
    config.channel_jobs = options.channel_jobs;
    config.seed = 1 + rng.NextBelow(1ULL << 32);
    config.controller.protocol_check = true;
    config.controller.watchdog.enabled = true;
    config.controller.ras.enabled = true;
    // With >= 1% of reads erroring over thousands of reads, a clean-run
    // self-check failure is astronomically unlikely unless the model or
    // the recovery path is broken.
    config.controller.ras.transient_error_rate =
        0.01 + rng.NextDouble() * 0.04;
    config.controller.ras.transient_uncorrectable =
        0.05 + rng.NextDouble() * 0.25;
    if (rng.NextBool(0.5)) {
        config.controller.ras.scrub_interval = 2048 + rng.NextBelow(4096);
    }

    dram::AddressMapper mapper(config.geometry, config.xor_bank_hash);
    std::vector<std::unique_ptr<TraceSource>> traces;
    for (ThreadId t = 0; t < config.num_cores; ++t) {
        SyntheticParams params;
        params.mpki = 25.0;
        traces.push_back(std::make_unique<SyntheticTraceSource>(
            params, mapper, t, config.num_cores, rng.Next64()));
    }
    System system(config, std::move(traces));
    system.Run(150000);

    std::uint64_t events = 0;
    for (std::uint32_t channel = 0; channel < config.geometry.channels;
         ++channel) {
        const RasEngine* ras = system.controller(channel).ras();
        if (ras == nullptr) {
            throw RasSelfCheckFailure("RAS engine missing on channel " +
                                      std::to_string(channel));
        }
        events += ras->stats().corrected + ras->stats().uncorrectable;
    }
    if (events == 0) {
        throw RasSelfCheckFailure(
            "no ECC events despite a >= 1% per-read error rate");
    }
}

/**
 * Every row stuck-at: demand reads to more distinct rows than the remap
 * table holds must retire rows until the table fills and the next
 * retirement surfaces as a structured MachineCheckError.
 */
void
RunStuckRowExhaustion(Rng& rng, const FaultOptions& options)
{
    ControllerConfig config = ScenarioConfig();
    config.ras.enabled = true;
    config.ras.stuck_row_fraction = 1.0;
    config.ras.seed = 1 + rng.NextBelow(1ULL << 32);
    config.ras.retry_budget = 1 + rng.NextBelow(3);
    config.ras.remap_capacity = rng.NextBelow(3);
    Driver driver(config, dram::TimingParams{}, 2,
                  OptionScheduler(options));
    // remap_capacity + 1 distinct rows guarantee exhaustion: each stuck
    // row burns one remap slot after its retry budget runs out.
    const std::uint32_t rows = config.ras.remap_capacity + 1;
    for (std::uint32_t i = 0; i < rows; ++i) {
        driver.Enqueue(static_cast<ThreadId>(i % 2),
                       static_cast<std::uint32_t>(rng.NextBelow(8)),
                       100 + i);
    }
    driver.RunUntilIdle(200000);
    throw RasSelfCheckFailure(
        "stuck rows exhausted no remap capacity (machine check expected)");
}

/**
 * Patrol scrub at the minimum interval under demand traffic, with the
 * watchdog and protocol checker armed: the storm must neither starve
 * demand nor violate device timing, and (self-check) must actually issue
 * scrub reads once the queues drain.
 */
void
RunScrubStorm(Rng& rng, const FaultOptions& options)
{
    ControllerConfig config;
    config.enable_refresh = rng.NextBool(0.5);
    config.protocol_check = true;
    config.watchdog.enabled = true;
    config.ras.enabled = true;
    config.ras.seed = 1 + rng.NextBelow(1ULL << 32);
    config.ras.scrub_interval = 1;
    config.ras.scrub_demote_reads = 1 + rng.NextBelow(16);
    Driver driver(config, dram::TimingParams{}, 4,
                  OptionScheduler(options));
    RandomTraffic(driver, rng, 40, 4, 0.25);
    // Idle tail: with the queues empty every cycle belongs to the scrub.
    driver.Tick(2000);
    AssertClean(driver);
    const RasEngine* ras = driver.controller().ras();
    if (ras == nullptr || ras->stats().scrub_reads == 0) {
        throw RasSelfCheckFailure(
            "scrub storm issued no patrol reads during idle cycles");
    }
}

std::string
FirstLine(const char* what)
{
    const std::string text(what);
    const std::size_t newline = text.find('\n');
    return newline == std::string::npos ? text : text.substr(0, newline);
}

} // namespace

const char*
FaultKindName(FaultKind kind)
{
    switch (kind) {
    case FaultKind::kMalformedTrace: return "malformed-trace";
    case FaultKind::kOutOfRangeAddress: return "out-of-range-address";
    case FaultKind::kBadTiming: return "bad-timing";
    case FaultKind::kBadGeometry: return "bad-geometry";
    case FaultKind::kBadControllerConfig: return "bad-controller-config";
    case FaultKind::kRefreshStorm: return "refresh-storm";
    case FaultKind::kWritePressure: return "write-pressure";
    case FaultKind::kSchedulerChaos: return "scheduler-chaos";
    case FaultKind::kTimingCorruption: return "timing-corruption";
    case FaultKind::kServiceWithholding: return "service-withholding";
    case FaultKind::kTransientBitErrors: return "transient-bit-errors";
    case FaultKind::kStuckRow: return "stuck-row";
    case FaultKind::kScrubStorm: return "scrub-storm";
    }
    return "?";
}

const char*
DefenseName(Defense defense)
{
    switch (defense) {
    case Defense::kNone: return "clean";
    case Defense::kConfigError: return "config-error";
    case Defense::kProtocolError: return "protocol-error";
    case Defense::kWatchdogError: return "watchdog-error";
    case Defense::kMachineCheck: return "machine-check";
    case Defense::kOther: return "unexpected-exception";
    }
    return "?";
}

Defense
FaultInjector::ExpectedDefense(FaultKind kind)
{
    switch (kind) {
    case FaultKind::kMalformedTrace:
    case FaultKind::kOutOfRangeAddress:
    case FaultKind::kBadTiming:
    case FaultKind::kBadGeometry:
    case FaultKind::kBadControllerConfig:
        return Defense::kConfigError;
    case FaultKind::kRefreshStorm:
    case FaultKind::kWritePressure:
    case FaultKind::kSchedulerChaos:
    case FaultKind::kTransientBitErrors:
    case FaultKind::kScrubStorm:
        return Defense::kNone;
    case FaultKind::kTimingCorruption:
        return Defense::kProtocolError;
    case FaultKind::kServiceWithholding:
        return Defense::kWatchdogError;
    case FaultKind::kStuckRow:
        return Defense::kMachineCheck;
    }
    return Defense::kOther;
}

FaultInjector::FaultInjector(std::uint64_t master_seed)
    : master_seed_(master_seed)
{
}

FaultOutcome
FaultInjector::RunScenario(std::uint64_t index)
{
    return RunScenario(index, FaultOptions{});
}

FaultOutcome
FaultInjector::RunScenario(std::uint64_t index, const FaultOptions& options)
{
    FaultOutcome outcome;
    outcome.index = index;
    outcome.kind = static_cast<FaultKind>(index % kNumFaultKinds);
    outcome.expected = ExpectedDefense(outcome.kind);
    Rng rng(master_seed_ + 0x9e3779b97f4a7c15ULL * (index + 1));
    try {
        switch (outcome.kind) {
        case FaultKind::kMalformedTrace: RunMalformedTrace(rng); break;
        case FaultKind::kOutOfRangeAddress: RunOutOfRangeAddress(rng); break;
        case FaultKind::kBadTiming: RunBadTiming(rng); break;
        case FaultKind::kBadGeometry: RunBadGeometry(rng); break;
        case FaultKind::kBadControllerConfig:
            RunBadControllerConfig(rng);
            break;
        case FaultKind::kRefreshStorm: RunRefreshStorm(rng); break;
        case FaultKind::kWritePressure: RunWritePressure(rng); break;
        case FaultKind::kSchedulerChaos: RunSchedulerChaos(rng); break;
        case FaultKind::kTimingCorruption: RunTimingCorruption(rng); break;
        case FaultKind::kServiceWithholding:
            RunServiceWithholding(rng);
            break;
        case FaultKind::kTransientBitErrors:
            RunTransientBitErrors(rng, options);
            break;
        case FaultKind::kStuckRow:
            RunStuckRowExhaustion(rng, options);
            break;
        case FaultKind::kScrubStorm: RunScrubStorm(rng, options); break;
        }
        outcome.observed = Defense::kNone;
    } catch (const ConfigError& error) {
        outcome.observed = Defense::kConfigError;
        outcome.detail = FirstLine(error.what());
    } catch (const dram::ProtocolError& error) {
        outcome.observed = Defense::kProtocolError;
        outcome.detail = FirstLine(error.what());
    } catch (const WatchdogError& error) {
        outcome.observed = Defense::kWatchdogError;
        outcome.detail = FirstLine(error.what());
    } catch (const MachineCheckError& error) {
        outcome.observed = Defense::kMachineCheck;
        outcome.detail = FirstLine(error.what());
    } catch (const std::exception& error) {
        outcome.observed = Defense::kOther;
        outcome.detail = FirstLine(error.what());
    }
    return outcome;
}

// --- ChaosScheduler ------------------------------------------------------

ChaosScheduler::ChaosScheduler(std::unique_ptr<Scheduler> inner,
                               std::uint64_t seed, double chaos)
    : inner_(std::move(inner)), rng_(seed), chaos_(chaos)
{
    PARBS_ASSERT(inner_ != nullptr, "chaos scheduler needs an inner one");
}

std::string
ChaosScheduler::name() const
{
    return "chaos(" + inner_->name() + ")";
}

void
ChaosScheduler::Attach(const SchedulerContext& context)
{
    Scheduler::Attach(context);
    inner_->Attach(context);
}

MemRequest*
ChaosScheduler::Pick(std::span<const Candidate> candidates, DramCycle now)
{
    if (!candidates.empty() && rng_.NextBool(chaos_)) {
        return candidates[rng_.NextBelow(candidates.size())].request;
    }
    return inner_->Pick(candidates, now);
}

void
ChaosScheduler::OnRequestQueued(MemRequest& request, DramCycle now)
{
    inner_->OnRequestQueued(request, now);
}

void
ChaosScheduler::OnCommandIssued(const MemRequest& request,
                                const dram::Command& command, DramCycle now)
{
    inner_->OnCommandIssued(request, command, now);
}

void
ChaosScheduler::OnRequestComplete(const MemRequest& request, DramCycle now)
{
    inner_->OnRequestComplete(request, now);
}

void
ChaosScheduler::OnDramCycle(DramCycle now)
{
    inner_->OnDramCycle(now);
}

std::uint64_t
ChaosScheduler::BatchOutstanding() const
{
    return inner_->BatchOutstanding();
}

// --- WithholdingScheduler ------------------------------------------------

WithholdingScheduler::WithholdingScheduler(std::unique_ptr<Scheduler> inner,
                                           ThreadId victim)
    : inner_(std::move(inner)), victim_(victim)
{
    PARBS_ASSERT(inner_ != nullptr,
                 "withholding scheduler needs an inner one");
}

std::string
WithholdingScheduler::name() const
{
    return "withholding(" + inner_->name() + ")";
}

void
WithholdingScheduler::Attach(const SchedulerContext& context)
{
    Scheduler::Attach(context);
    inner_->Attach(context);
}

MemRequest*
WithholdingScheduler::Pick(std::span<const Candidate> candidates,
                           DramCycle now)
{
    filtered_.clear();
    for (const Candidate& candidate : candidates) {
        if (candidate.request->thread != victim_) {
            filtered_.push_back(candidate);
        }
    }
    if (filtered_.empty()) {
        return nullptr;
    }
    return inner_->Pick(filtered_, now);
}

void
WithholdingScheduler::OnRequestQueued(MemRequest& request, DramCycle now)
{
    inner_->OnRequestQueued(request, now);
}

void
WithholdingScheduler::OnCommandIssued(const MemRequest& request,
                                      const dram::Command& command,
                                      DramCycle now)
{
    inner_->OnCommandIssued(request, command, now);
}

void
WithholdingScheduler::OnRequestComplete(const MemRequest& request,
                                        DramCycle now)
{
    inner_->OnRequestComplete(request, now);
}

void
WithholdingScheduler::OnDramCycle(DramCycle now)
{
    inner_->OnDramCycle(now);
}

std::uint64_t
WithholdingScheduler::BatchOutstanding() const
{
    return inner_->BatchOutstanding();
}

} // namespace parbs
