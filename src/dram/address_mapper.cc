#include "dram/address_mapper.hh"

#include <bit>

#include "common/assert.hh"

namespace parbs::dram {
namespace {

std::uint32_t
Log2(std::uint32_t value)
{
    PARBS_ASSERT(value != 0 && (value & (value - 1)) == 0,
                 "Log2 requires a power of two");
    return static_cast<std::uint32_t>(std::countr_zero(value));
}

std::uint64_t
ExtractBits(Addr addr, std::uint32_t shift, std::uint32_t width)
{
    if (width == 0) {
        return 0;
    }
    return (addr >> shift) & ((std::uint64_t{1} << width) - 1);
}

} // namespace

AddressMapper::AddressMapper(const Geometry& geometry, bool xor_bank_hash)
    : geometry_(geometry), xor_bank_hash_(xor_bank_hash)
{
    geometry_.Validate();
    offset_bits_ = Log2(geometry_.line_bytes);
    column_bits_ = Log2(geometry_.LinesPerRow());
    channel_bits_ = Log2(geometry_.channels);
    bank_bits_ = Log2(geometry_.banks_per_rank);
    rank_bits_ = Log2(geometry_.ranks_per_channel);
    row_bits_ = Log2(geometry_.rows_per_bank);
}

DecodedAddr
AddressMapper::Decode(Addr addr) const
{
    DecodedAddr out;
    std::uint32_t shift = offset_bits_;
    out.column = static_cast<std::uint32_t>(
        ExtractBits(addr, shift, column_bits_));
    shift += column_bits_;
    out.channel = static_cast<std::uint32_t>(
        ExtractBits(addr, shift, channel_bits_));
    shift += channel_bits_;
    out.bank = static_cast<std::uint32_t>(
        ExtractBits(addr, shift, bank_bits_));
    shift += bank_bits_;
    out.rank = static_cast<std::uint32_t>(
        ExtractBits(addr, shift, rank_bits_));
    shift += rank_bits_;
    out.row = static_cast<std::uint32_t>(ExtractBits(addr, shift, row_bits_));

    if (xor_bank_hash_) {
        // Permute the bank (and channel) index with low row bits so strided
        // streams spread across banks; XOR is self-inverse, so Encode()
        // applies the identical transformation.
        out.bank ^= static_cast<std::uint32_t>(
            out.row & ((std::uint64_t{1} << bank_bits_) - 1));
        if (channel_bits_ > 0) {
            out.channel ^= static_cast<std::uint32_t>(
                (out.row >> bank_bits_) &
                ((std::uint64_t{1} << channel_bits_) - 1));
        }
    }
    return out;
}

Addr
AddressMapper::Encode(const DecodedAddr& coords) const
{
    PARBS_ASSERT(coords.channel < geometry_.channels, "channel out of range");
    PARBS_ASSERT(coords.rank < geometry_.ranks_per_channel,
                 "rank out of range");
    PARBS_ASSERT(coords.bank < geometry_.banks_per_rank, "bank out of range");
    PARBS_ASSERT(coords.row < geometry_.rows_per_bank, "row out of range");
    PARBS_ASSERT(coords.column < geometry_.LinesPerRow(),
                 "column out of range");

    std::uint32_t bank = coords.bank;
    std::uint32_t channel = coords.channel;
    if (xor_bank_hash_) {
        bank ^= static_cast<std::uint32_t>(
            coords.row & ((std::uint64_t{1} << bank_bits_) - 1));
        if (channel_bits_ > 0) {
            channel ^= static_cast<std::uint32_t>(
                (coords.row >> bank_bits_) &
                ((std::uint64_t{1} << channel_bits_) - 1));
        }
    }

    Addr addr = 0;
    std::uint32_t shift = offset_bits_;
    addr |= static_cast<Addr>(coords.column) << shift;
    shift += column_bits_;
    addr |= static_cast<Addr>(channel) << shift;
    shift += channel_bits_;
    addr |= static_cast<Addr>(bank) << shift;
    shift += bank_bits_;
    addr |= static_cast<Addr>(coords.rank) << shift;
    shift += rank_bits_;
    addr |= static_cast<Addr>(coords.row) << shift;
    return addr;
}

} // namespace parbs::dram
