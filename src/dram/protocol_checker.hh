/**
 * @file
 * Independent DRAM protocol checker (shadow model).
 *
 * The bank/rank/channel FSMs in bank.cc/rank.cc/channel.cc both *decide*
 * when a command may issue and *enforce* that decision — a bug in their
 * shared timing registers can therefore issue an illegal command and accept
 * it without any check firing.  The ProtocolChecker closes that loop: it is
 * a second, structurally independent model of the JEDEC constraints that
 * re-validates every command the channel issues against its own shadow
 * state (per-bank open row and command times, per-rank ACT history and
 * write-recovery windows, channel-wide data-bus occupancy, refresh
 * windows).  It shares nothing with the issuing FSMs except TimingParams.
 *
 * On a violation the checker reports *context* — the rule broken, the
 * operands, and the recent command history — instead of a bare abort, so a
 * model regression is diagnosable from the failure message alone.  The
 * checker can validate against a reference TimingParams different from the
 * one driving the device model, which lets the fault-injection harness seed
 * deliberate timing corruptions and prove they are caught.
 */

#ifndef PARBS_DRAM_PROTOCOL_CHECKER_HH
#define PARBS_DRAM_PROTOCOL_CHECKER_HH

#include <array>
#include <cstdint>
#include <deque>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/types.hh"
#include "dram/command.hh"
#include "dram/timing.hh"

namespace parbs::dram {

/** Thrown (in Mode::kThrow) when an issued command breaks the protocol. */
class ProtocolError : public std::runtime_error {
  public:
    explicit ProtocolError(const std::string& what)
        : std::runtime_error(what)
    {
    }
};

/** One detected protocol violation. */
struct ProtocolViolation {
    DramCycle cycle = 0;
    Command command;
    /** Short rule identifier, e.g. "tRP", "tFAW", "data-bus". */
    std::string rule;
    /** Human-readable explanation with the operand cycle values. */
    std::string detail;
};

/** Shadow model re-validating every issued DRAM command. */
class ProtocolChecker {
  public:
    enum class Mode : std::uint8_t {
        kThrow,  ///< First violation throws ProtocolError with full context.
        kRecord, ///< Violations accumulate; the run continues (fuzzing).
    };

    /**
     * @param timing reference timing the checker validates against (may
     *        deliberately differ from the device model's own parameters)
     * @param num_ranks ranks on the checked channel
     * @param banks_per_rank banks in each rank
     */
    ProtocolChecker(const TimingParams& timing, std::uint32_t num_ranks,
                    std::uint32_t banks_per_rank, Mode mode = Mode::kThrow);

    /**
     * Validates @p cmd issued at cycle @p now and folds it into the shadow
     * state.  Cycles must be non-decreasing across calls.
     * @throws ProtocolError in Mode::kThrow if any constraint is broken.
     */
    void Observe(const Command& cmd, DramCycle now);

    /** All violations detected so far (also populated in Mode::kThrow). */
    const std::vector<ProtocolViolation>& violations() const
    {
        return violations_;
    }

    std::uint64_t commands_checked() const { return commands_checked_; }

    /** Recent command history, oldest first (for failure reports). */
    std::string HistoryReport() const;

    /** Formats one violation with the shadow state and command history. */
    std::string FormatViolation(const ProtocolViolation& violation) const;

    Mode mode() const { return mode_; }

  private:
    struct ShadowBank {
        std::uint32_t open_row = kNoRow;
        DramCycle activate_at = kNeverCycle;
        DramCycle precharge_at = kNeverCycle;
        DramCycle last_read_at = kNeverCycle;
        DramCycle last_write_at = kNeverCycle;
        DramCycle last_column_at = kNeverCycle;
    };

    struct ShadowRank {
        std::vector<ShadowBank> banks;
        /** Issue cycles of the last four ACTIVATEs (tFAW), oldest at head. */
        std::array<DramCycle, 4> activate_history;
        std::size_t activate_head = 0;
        DramCycle last_activate_at = kNeverCycle;
        /** End of the last write data burst (tWTR reference point). */
        DramCycle write_burst_end = 0;
        DramCycle last_refresh_at = kNeverCycle;
        /** No command may reach the rank before this cycle (tRFC). */
        DramCycle refresh_blocked_until = 0;
    };

    void CheckActivate(const Command& cmd, const ShadowRank& rank,
                       const ShadowBank& bank, DramCycle now);
    void CheckPrecharge(const Command& cmd, const ShadowBank& bank,
                        DramCycle now);
    void CheckColumn(const Command& cmd, const ShadowRank& rank,
                     const ShadowBank& bank, DramCycle now);
    void CheckRefresh(const Command& cmd, const ShadowRank& rank,
                      DramCycle now);
    void Apply(const Command& cmd, DramCycle now);

    /** Records (and in kThrow mode raises) a violation. */
    void Report(const Command& cmd, DramCycle now, const char* rule,
                std::string detail);

    /** Appends to the bounded command-history ring. */
    void Remember(const Command& cmd, DramCycle now);

    TimingParams timing_;
    Mode mode_;
    std::vector<ShadowRank> ranks_;
    DramCycle bus_busy_until_ = 0;
    DramCycle last_observed_ = 0;
    std::uint64_t commands_checked_ = 0;

    struct HistoryEntry {
        DramCycle cycle;
        Command command;
    };
    std::deque<HistoryEntry> history_;

    std::vector<ProtocolViolation> violations_;
};

} // namespace parbs::dram

#endif // PARBS_DRAM_PROTOCOL_CHECKER_HH
