#include "dram/command.hh"

namespace parbs::dram {

const char*
CommandName(CommandType type)
{
    switch (type) {
      case CommandType::kActivate:
        return "ACT";
      case CommandType::kPrecharge:
        return "PRE";
      case CommandType::kRead:
        return "READ";
      case CommandType::kWrite:
        return "WRITE";
      case CommandType::kRefresh:
        return "REF";
    }
    return "?";
}

const char*
RowBufferStateName(RowBufferState state)
{
    switch (state) {
      case RowBufferState::kHit:
        return "hit";
      case RowBufferState::kClosed:
        return "closed";
      case RowBufferState::kConflict:
        return "conflict";
    }
    return "?";
}

} // namespace parbs::dram
