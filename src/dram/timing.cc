#include "dram/timing.hh"

#include "common/assert.hh"

namespace parbs::dram {

void
TimingParams::Validate() const
{
    if (tCL == 0 || tRCD == 0 || tRP == 0) {
        PARBS_FATAL("DRAM timing: tCL, tRCD, and tRP must be nonzero");
    }
    if (tRAS < tRCD) {
        PARBS_FATAL("DRAM timing: tRAS must be >= tRCD "
                    "(a row must stay open at least until a column access)");
    }
    if (tBURST == 0) {
        PARBS_FATAL("DRAM timing: tBURST must be nonzero");
    }
    if (tFAW < tRRD) {
        PARBS_FATAL("DRAM timing: tFAW must be >= tRRD");
    }
    if (tREFI != 0 && tRFC >= tREFI) {
        PARBS_FATAL("DRAM timing: tRFC must be < tREFI "
                    "(refresh cannot take longer than the refresh interval)");
    }
}

void
Geometry::Validate() const
{
    if (channels == 0 || ranks_per_channel == 0 || banks_per_rank == 0 ||
        rows_per_bank == 0) {
        PARBS_FATAL("DRAM geometry: all dimensions must be nonzero");
    }
    if (line_bytes == 0 || row_bytes == 0 || row_bytes % line_bytes != 0) {
        PARBS_FATAL("DRAM geometry: row_bytes must be a nonzero multiple of "
                    "line_bytes");
    }
    auto is_pow2 = [](std::uint32_t v) { return v && (v & (v - 1)) == 0; };
    if (!is_pow2(channels) || !is_pow2(ranks_per_channel) ||
        !is_pow2(banks_per_rank) || !is_pow2(rows_per_bank) ||
        !is_pow2(row_bytes) || !is_pow2(line_bytes)) {
        PARBS_FATAL("DRAM geometry: all dimensions must be powers of two "
                    "(required by the bit-sliced address mapping)");
    }
}

} // namespace parbs::dram
