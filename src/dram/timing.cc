#include "dram/timing.hh"

#include <string>

#include "common/assert.hh"

namespace parbs::dram {

void
TimingParams::Validate() const
{
    if (tCL == 0 || tRCD == 0 || tRP == 0) {
        PARBS_FATAL("DRAM timing: tCL, tRCD, and tRP must be nonzero");
    }
    if (tRAS < tRCD) {
        PARBS_FATAL("DRAM timing: tRAS must be >= tRCD "
                    "(a row must stay open at least until a column access)");
    }
    if (tBURST == 0) {
        PARBS_FATAL("DRAM timing: tBURST must be nonzero");
    }
    if (tFAW < tRRD) {
        PARBS_FATAL("DRAM timing: tFAW must be >= tRRD");
    }
    if (tREFI != 0 && tRFC >= tREFI) {
        PARBS_FATAL("DRAM timing: tRFC must be < tREFI "
                    "(refresh cannot take longer than the refresh interval)");
    }
}

void
Geometry::Validate() const
{
    if (channels == 0 || ranks_per_channel == 0 || banks_per_rank == 0 ||
        rows_per_bank == 0) {
        PARBS_FATAL("DRAM geometry: all dimensions must be nonzero");
    }
    if (line_bytes == 0 || row_bytes == 0 || row_bytes % line_bytes != 0) {
        PARBS_FATAL("DRAM geometry: row_bytes must be a nonzero multiple of "
                    "line_bytes");
    }
    auto is_pow2 = [](std::uint32_t v) { return v && (v & (v - 1)) == 0; };
    if (!is_pow2(channels) || !is_pow2(ranks_per_channel) ||
        !is_pow2(banks_per_rank) || !is_pow2(rows_per_bank) ||
        !is_pow2(row_bytes) || !is_pow2(line_bytes)) {
        PARBS_FATAL("DRAM geometry: all dimensions must be powers of two "
                    "(required by the bit-sliced address mapping)");
    }
    if (channels > 16 || ranks_per_channel > 16 || banks_per_rank > 64) {
        PARBS_FATAL("DRAM geometry: out of range (max 16 channels, "
                    "16 ranks/channel, 64 banks/rank); got channels=" +
                    std::to_string(channels) + " ranks=" +
                    std::to_string(ranks_per_channel) + " banks=" +
                    std::to_string(banks_per_rank));
    }
    if (rows_per_bank > (1u << 24) || row_bytes > 65536) {
        PARBS_FATAL("DRAM geometry: out of range (max 2^24 rows/bank, "
                    "64 KB rows); got rows=" + std::to_string(rows_per_bank) +
                    " row_bytes=" + std::to_string(row_bytes));
    }
}

} // namespace parbs::dram
