#include "dram/protocol_checker.hh"

#include <algorithm>
#include <sstream>

#include "common/assert.hh"
#include "common/log.hh"

namespace parbs::dram {
namespace {

constexpr std::size_t kHistoryDepth = 32;

/**
 * JEDEC lets a device postpone up to eight refreshes; beyond 9 x tREFI
 * without a REFRESH the rank is losing data and the model is broken.
 */
constexpr DramCycle kMaxPostponedRefreshes = 9;

std::string
Cyc(DramCycle value)
{
    return value == kNeverCycle ? "never" : std::to_string(value);
}

} // namespace

ProtocolChecker::ProtocolChecker(const TimingParams& timing,
                                 std::uint32_t num_ranks,
                                 std::uint32_t banks_per_rank, Mode mode)
    : timing_(timing), mode_(mode)
{
    PARBS_ASSERT(num_ranks > 0 && banks_per_rank > 0,
                 "protocol checker needs at least one rank and bank");
    ranks_.resize(num_ranks);
    for (ShadowRank& rank : ranks_) {
        rank.banks.resize(banks_per_rank);
        rank.activate_history.fill(kNeverCycle);
    }
}

void
ProtocolChecker::Observe(const Command& cmd, DramCycle now)
{
    commands_checked_ += 1;
    if (now < last_observed_) {
        Report(cmd, now, "time-order",
               "command observed at cycle " + std::to_string(now) +
                   " after cycle " + std::to_string(last_observed_));
    }
    last_observed_ = std::max(last_observed_, now);

    if (cmd.rank >= ranks_.size()) {
        Report(cmd, now, "rank-range",
               "rank " + std::to_string(cmd.rank) + " out of range (" +
                   std::to_string(ranks_.size()) + " ranks)");
        Remember(cmd, now);
        return;
    }
    const ShadowRank& rank = ranks_[cmd.rank];
    if (cmd.type != CommandType::kRefresh &&
        cmd.bank >= rank.banks.size()) {
        Report(cmd, now, "bank-range",
               "bank " + std::to_string(cmd.bank) + " out of range (" +
                   std::to_string(rank.banks.size()) + " banks)");
        Remember(cmd, now);
        return;
    }

    // tRFC: after a REFRESH the whole rank is dead until refresh completes.
    if (now < rank.refresh_blocked_until) {
        Report(cmd, now, "tRFC",
               "command during refresh: rank busy until cycle " +
                   std::to_string(rank.refresh_blocked_until));
    }

    // Refresh starvation: the rank must be refreshed at least every
    // kMaxPostponedRefreshes x tREFI cycles.
    if (timing_.tREFI != 0 && cmd.type != CommandType::kRefresh) {
        const DramCycle base =
            rank.last_refresh_at == kNeverCycle ? 0 : rank.last_refresh_at;
        if (now > base + kMaxPostponedRefreshes * timing_.tREFI) {
            Report(cmd, now, "tREFI",
                   "rank not refreshed since cycle " + Cyc(base) +
                       " (limit " +
                       std::to_string(kMaxPostponedRefreshes * timing_.tREFI) +
                       " cycles)");
        }
    }

    switch (cmd.type) {
      case CommandType::kActivate:
        CheckActivate(cmd, rank, rank.banks[cmd.bank], now);
        break;
      case CommandType::kPrecharge:
        CheckPrecharge(cmd, rank.banks[cmd.bank], now);
        break;
      case CommandType::kRead:
      case CommandType::kWrite:
        CheckColumn(cmd, rank, rank.banks[cmd.bank], now);
        break;
      case CommandType::kRefresh:
        CheckRefresh(cmd, rank, now);
        break;
    }

    Apply(cmd, now);
    Remember(cmd, now);
}

void
ProtocolChecker::CheckActivate(const Command& cmd, const ShadowRank& rank,
                               const ShadowBank& bank, DramCycle now)
{
    if (bank.open_row != kNoRow) {
        Report(cmd, now, "ACT-open-row",
               "ACTIVATE to a bank with row " +
                   std::to_string(bank.open_row) + " already open");
    }
    if (bank.precharge_at != kNeverCycle &&
        now < bank.precharge_at + timing_.tRP) {
        Report(cmd, now, "tRP",
               "ACTIVATE " + std::to_string(now - bank.precharge_at) +
                   " cycles after PRECHARGE at " + Cyc(bank.precharge_at) +
                   " (tRP=" + std::to_string(timing_.tRP) + ")");
    }
    if (bank.activate_at != kNeverCycle &&
        now < bank.activate_at + timing_.tRC()) {
        Report(cmd, now, "tRC",
               "ACTIVATE " + std::to_string(now - bank.activate_at) +
                   " cycles after same-bank ACTIVATE at " +
                   Cyc(bank.activate_at) +
                   " (tRC=" + std::to_string(timing_.tRC()) + ")");
    }
    if (rank.last_activate_at != kNeverCycle &&
        now < rank.last_activate_at + timing_.tRRD) {
        Report(cmd, now, "tRRD",
               "ACTIVATE " + std::to_string(now - rank.last_activate_at) +
                   " cycles after rank ACTIVATE at " +
                   Cyc(rank.last_activate_at) +
                   " (tRRD=" + std::to_string(timing_.tRRD) + ")");
    }
    const DramCycle oldest = rank.activate_history[rank.activate_head];
    if (oldest != kNeverCycle && now < oldest + timing_.tFAW) {
        Report(cmd, now, "tFAW",
               "fifth ACTIVATE within the four-activate window opened at " +
                   Cyc(oldest) + " (tFAW=" + std::to_string(timing_.tFAW) +
                   ")");
    }
}

void
ProtocolChecker::CheckPrecharge(const Command& cmd, const ShadowBank& bank,
                                DramCycle now)
{
    if (bank.open_row == kNoRow) {
        Report(cmd, now, "PRE-closed",
               "PRECHARGE to an already-closed bank");
    }
    if (bank.activate_at != kNeverCycle &&
        now < bank.activate_at + timing_.tRAS) {
        Report(cmd, now, "tRAS",
               "PRECHARGE " + std::to_string(now - bank.activate_at) +
                   " cycles after ACTIVATE at " + Cyc(bank.activate_at) +
                   " (tRAS=" + std::to_string(timing_.tRAS) + ")");
    }
    if (bank.last_read_at != kNeverCycle &&
        now < bank.last_read_at + timing_.tRTP) {
        Report(cmd, now, "tRTP",
               "PRECHARGE " + std::to_string(now - bank.last_read_at) +
                   " cycles after READ at " + Cyc(bank.last_read_at) +
                   " (tRTP=" + std::to_string(timing_.tRTP) + ")");
    }
    if (bank.last_write_at != kNeverCycle) {
        const DramCycle earliest = bank.last_write_at + timing_.tCWD +
                                   timing_.tBURST + timing_.tWR;
        if (now < earliest) {
            Report(cmd, now, "tWR",
                   "PRECHARGE at " + std::to_string(now) +
                       " before write recovery completes at " +
                       std::to_string(earliest) +
                       " (WRITE at " + Cyc(bank.last_write_at) +
                       ", tWR=" + std::to_string(timing_.tWR) + ")");
        }
    }
}

void
ProtocolChecker::CheckColumn(const Command& cmd, const ShadowRank& rank,
                             const ShadowBank& bank, DramCycle now)
{
    const bool is_read = cmd.type == CommandType::kRead;
    if (bank.open_row == kNoRow) {
        Report(cmd, now, "column-closed",
               std::string(CommandName(cmd.type)) +
                   " issued to a precharged bank");
    } else if (bank.open_row != cmd.row) {
        Report(cmd, now, "row-mismatch",
               std::string(CommandName(cmd.type)) + " to row " +
                   std::to_string(cmd.row) + " while row " +
                   std::to_string(bank.open_row) + " is open");
    }
    if (bank.activate_at != kNeverCycle &&
        now < bank.activate_at + timing_.tRCD) {
        Report(cmd, now, "tRCD",
               std::string(CommandName(cmd.type)) + " " +
                   std::to_string(now - bank.activate_at) +
                   " cycles after ACTIVATE at " + Cyc(bank.activate_at) +
                   " (tRCD=" + std::to_string(timing_.tRCD) + ")");
    }
    if (bank.last_column_at != kNeverCycle &&
        now < bank.last_column_at + timing_.tCCD) {
        Report(cmd, now, "tCCD",
               "column command " +
                   std::to_string(now - bank.last_column_at) +
                   " cycles after column command at " +
                   Cyc(bank.last_column_at) +
                   " (tCCD=" + std::to_string(timing_.tCCD) + ")");
    }
    if (is_read && now < rank.write_burst_end + timing_.tWTR) {
        Report(cmd, now, "tWTR",
               "READ at " + std::to_string(now) +
                   " before write-to-read turnaround completes at " +
                   std::to_string(rank.write_burst_end + timing_.tWTR) +
                   " (tWTR=" + std::to_string(timing_.tWTR) + ")");
    }
    const DramCycle data_start =
        now + (is_read ? timing_.tCL : timing_.tCWD);
    if (data_start < bus_busy_until_) {
        Report(cmd, now, "data-bus",
               "data burst would start at " + std::to_string(data_start) +
                   " while the bus is occupied until " +
                   std::to_string(bus_busy_until_));
    }
}

void
ProtocolChecker::CheckRefresh(const Command& cmd, const ShadowRank& rank,
                              DramCycle now)
{
    for (std::size_t b = 0; b < rank.banks.size(); ++b) {
        const ShadowBank& bank = rank.banks[b];
        if (bank.open_row != kNoRow) {
            Report(cmd, now, "REF-open-bank",
                   "REFRESH while bank " + std::to_string(b) +
                       " has row " + std::to_string(bank.open_row) +
                       " open");
        }
        if (bank.precharge_at != kNeverCycle &&
            now < bank.precharge_at + timing_.tRP) {
            Report(cmd, now, "tRP",
                   "REFRESH " + std::to_string(now - bank.precharge_at) +
                       " cycles after bank " + std::to_string(b) +
                       " PRECHARGE at " + Cyc(bank.precharge_at) +
                       " (tRP=" + std::to_string(timing_.tRP) + ")");
        }
    }
}

void
ProtocolChecker::Apply(const Command& cmd, DramCycle now)
{
    if (cmd.rank >= ranks_.size()) {
        return;
    }
    ShadowRank& rank = ranks_[cmd.rank];

    if (cmd.type == CommandType::kRefresh) {
        rank.last_refresh_at = now;
        rank.refresh_blocked_until =
            std::max(rank.refresh_blocked_until, now + timing_.tRFC);
        return;
    }
    if (cmd.bank >= rank.banks.size()) {
        return;
    }
    ShadowBank& bank = rank.banks[cmd.bank];

    switch (cmd.type) {
      case CommandType::kActivate:
        bank.open_row = cmd.row;
        bank.activate_at = now;
        rank.last_activate_at = now;
        rank.activate_history[rank.activate_head] = now;
        rank.activate_head =
            (rank.activate_head + 1) % rank.activate_history.size();
        break;
      case CommandType::kPrecharge:
        bank.open_row = kNoRow;
        bank.precharge_at = now;
        break;
      case CommandType::kRead:
        bank.last_read_at = now;
        bank.last_column_at = now;
        bus_busy_until_ = std::max(bus_busy_until_,
                                   now + timing_.tCL + timing_.tBURST);
        break;
      case CommandType::kWrite:
        bank.last_write_at = now;
        bank.last_column_at = now;
        rank.write_burst_end = std::max(
            rank.write_burst_end, now + timing_.tCWD + timing_.tBURST);
        bus_busy_until_ = std::max(bus_busy_until_,
                                   now + timing_.tCWD + timing_.tBURST);
        break;
      case CommandType::kRefresh:
        break;
    }
}

void
ProtocolChecker::Report(const Command& cmd, DramCycle now, const char* rule,
                        std::string detail)
{
    ProtocolViolation violation;
    violation.cycle = now;
    violation.command = cmd;
    violation.rule = rule;
    violation.detail = std::move(detail);
    violations_.push_back(violation);
    PARBS_WARN("protocol violation [" << rule << "] at cycle " << now
                                      << ": " << violations_.back().detail);
    if (mode_ == Mode::kThrow) {
        throw ProtocolError(FormatViolation(violations_.back()));
    }
}

void
ProtocolChecker::Remember(const Command& cmd, DramCycle now)
{
    history_.push_back({now, cmd});
    if (history_.size() > kHistoryDepth) {
        history_.pop_front();
    }
}

std::string
ProtocolChecker::HistoryReport() const
{
    std::ostringstream out;
    out << "  last " << history_.size() << " commands (oldest first):\n";
    for (const HistoryEntry& entry : history_) {
        out << "    cycle " << entry.cycle << ": "
            << CommandName(entry.command.type)
            << " rank=" << entry.command.rank
            << " bank=" << entry.command.bank
            << " row=" << entry.command.row << "\n";
    }
    return out.str();
}

std::string
ProtocolChecker::FormatViolation(const ProtocolViolation& violation) const
{
    std::ostringstream out;
    out << "DRAM protocol violation [" << violation.rule << "] at cycle "
        << violation.cycle << ": " << CommandName(violation.command.type)
        << " rank=" << violation.command.rank
        << " bank=" << violation.command.bank
        << " row=" << violation.command.row << "\n  " << violation.detail
        << "\n";
    out << "  shadow state: bus busy until " << bus_busy_until_ << "\n";
    for (std::size_t r = 0; r < ranks_.size(); ++r) {
        const ShadowRank& rank = ranks_[r];
        out << "  rank " << r << ": last ACT=" << Cyc(rank.last_activate_at)
            << " wr-burst-end=" << rank.write_burst_end
            << " last REF=" << Cyc(rank.last_refresh_at) << "\n";
        for (std::size_t b = 0; b < rank.banks.size(); ++b) {
            const ShadowBank& bank = rank.banks[b];
            if (bank.open_row == kNoRow && bank.activate_at == kNeverCycle &&
                bank.precharge_at == kNeverCycle) {
                continue; // Untouched bank: skip for signal density.
            }
            out << "    bank " << b << ": row="
                << (bank.open_row == kNoRow
                        ? std::string("closed")
                        : std::to_string(bank.open_row))
                << " ACT@" << Cyc(bank.activate_at) << " PRE@"
                << Cyc(bank.precharge_at) << " RD@" << Cyc(bank.last_read_at)
                << " WR@" << Cyc(bank.last_write_at) << "\n";
        }
    }
    out << HistoryReport();
    return out.str();
}

} // namespace parbs::dram
