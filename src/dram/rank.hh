/**
 * @file
 * Rank-level DRAM constraints: ACT-to-ACT spacing (tRRD), the four-activate
 * window (tFAW), write-to-read turnaround (tWTR), and auto-refresh.
 */

#ifndef PARBS_DRAM_RANK_HH
#define PARBS_DRAM_RANK_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "dram/bank.hh"
#include "dram/command.hh"
#include "dram/timing.hh"

namespace parbs::dram {

/** One DRAM rank: a set of banks sharing rank-level timing constraints. */
class Rank {
  public:
    Rank(const TimingParams& timing, std::uint32_t num_banks);

    /** @return the number of banks in this rank. */
    std::uint32_t num_banks() const;

    Bank& bank(std::uint32_t index);
    const Bank& bank(std::uint32_t index) const;

    /**
     * @return true if @p cmd may issue at @p now considering both rank-level
     *         and bank-level constraints (data-bus checks are the channel's).
     */
    bool CanIssue(const Command& cmd, DramCycle now) const;

    /**
     * Earliest cycle @p cmd passes the rank- and bank-level constraints,
     * assuming no further command issues in between: for every t,
     * CanIssue(cmd, t) == (t >= EarliestIssue(cmd)) until the next Issue()
     * on this rank.  The controller's next-event skip-ahead is built on
     * this equivalence.  @pre cmd.type != kRefresh (refresh legality
     * depends on row-buffer state, not only on timers).
     */
    DramCycle EarliestIssue(const Command& cmd) const;

    /** Applies @p cmd at cycle @p now to rank and bank state. */
    void Issue(const Command& cmd, DramCycle now);

    // --- Refresh management (paper baseline: all-bank auto refresh) ---

    /** @return true if a refresh is due at or before cycle @p now. */
    bool RefreshDue(DramCycle now) const { return now >= next_refresh_due_; }

    /**
     * @return true if the mandatory refresh can start now (refresh due and
     *         every bank precharged and past its bank-level constraints).
     */
    bool CanRefresh(DramCycle now) const;

    /** @return banks that still have an open row (must be precharged before
     *          a refresh can start). */
    std::vector<std::uint32_t> OpenBanks() const;

    /** @return the cycle refreshes become due next (for scheduling). */
    DramCycle next_refresh_due() const { return next_refresh_due_; }

  private:
    const TimingParams& timing_;
    std::vector<Bank> banks_;

    /** Earliest cycle the next ACTIVATE may issue anywhere in the rank. */
    DramCycle next_activate_ = 0;
    /** Earliest cycle the next READ may issue anywhere in the rank (tWTR). */
    DramCycle next_read_ = 0;
    /** Issue times of the last four ACTIVATEs, for the tFAW window. */
    std::array<DramCycle, 4> activate_history_{};
    std::size_t activate_history_head_ = 0;

    DramCycle next_refresh_due_;
};

} // namespace parbs::dram

#endif // PARBS_DRAM_RANK_HH
