/**
 * @file
 * Deterministic DRAM device error model.
 *
 * The model answers one question — "what does ECC see when this row is
 * read?" — without simulating payloads.  Every answer is a pure hash of
 * deterministic coordinates: (master seed, channel, rank, bank, row, and
 * the per-row access index for transient draws).  No wall-clock, thread,
 * or scheduling state enters the draw, so a failing read reproduces
 * exactly across reruns, across schedulers, and across `--channel-jobs`
 * values (the sharded engine preserves each channel's tick order, which
 * is the only ordering the access index depends on).
 *
 * Two fault populations, in the style of src/sim/fault_injector.*:
 *
 *  - transient bit flips: each read of a row draws independently at
 *    `transient_error_rate`; a transient error is uncorrectable with
 *    probability `transient_uncorrectable` (SEC-DED catches multi-bit
 *    flips it cannot correct), else correctable.
 *  - permanent stuck-at rows: a fixed `stuck_row_fraction` of rows,
 *    chosen by hash at construction semantics (no state), always return
 *    uncorrectable until the controller retires them.
 */

#ifndef PARBS_DRAM_ERROR_MODEL_HH
#define PARBS_DRAM_ERROR_MODEL_HH

#include <cstdint>

#include "common/types.hh"

namespace parbs::dram {

/** What the ECC logic reports for one read burst. */
enum class EccOutcome : std::uint8_t {
    kClean,         ///< No error detected.
    kCorrectable,   ///< Single-bit error corrected in flight.
    kUncorrectable, ///< Multi-bit error detected but not correctable.
};

/** Display name ("clean", "corrected", "uncorrectable"). */
const char* EccOutcomeName(EccOutcome outcome);

/** Error-model parameters; all rates are probabilities in [0, 1]. */
struct ErrorModelConfig {
    /** Master seed; combined with the channel for independent streams. */
    std::uint64_t seed = 1;
    /** Channel index (decorrelates channels under one master seed). */
    std::uint32_t channel = 0;
    /** Per-read probability of a transient error. */
    double transient_error_rate = 0.0;
    /** Fraction of transient errors that exceed SEC-DED correction. */
    double transient_uncorrectable = 0.1;
    /** Fraction of rows that are permanently stuck (always uncorrectable). */
    double stuck_row_fraction = 0.0;

    /** @throws ConfigError on rates outside [0, 1]. */
    void Validate() const;
};

/** Stateless deterministic fault map (see file comment). */
class ErrorModel {
  public:
    explicit ErrorModel(const ErrorModelConfig& config);

    const ErrorModelConfig& config() const { return config_; }

    /** @return true if (rank, bank, row) is a permanent stuck-at row. */
    bool RowStuck(std::uint32_t rank, std::uint32_t bank,
                  std::uint32_t row) const;

    /**
     * Transient draw for the @p access_index -th read of a row.  Does not
     * consult RowStuck — the caller overlays permanent faults (and any
     * remapping) on top of this per-read draw.
     */
    EccOutcome ClassifyTransient(std::uint32_t rank, std::uint32_t bank,
                                 std::uint32_t row,
                                 std::uint64_t access_index) const;

  private:
    ErrorModelConfig config_;
    /** Pre-mixed (seed, channel) base key. */
    std::uint64_t base_;
};

} // namespace parbs::dram

#endif // PARBS_DRAM_ERROR_MODEL_HH
