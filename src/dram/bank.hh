/**
 * @file
 * Per-bank DRAM state machine and bank-level timing constraints.
 *
 * A bank tracks its open row (at most one, held in the row-buffer) and, for
 * each command type, the earliest DRAM cycle at which that command may
 * legally be issued to this bank.  Rank-level (tRRD, tFAW, tWTR, refresh) and
 * channel-level (data-bus) constraints are enforced by Rank and Channel; the
 * conjunction of all three layers decides whether a command is "ready" in
 * the paper's sense.
 */

#ifndef PARBS_DRAM_BANK_HH
#define PARBS_DRAM_BANK_HH

#include <cstdint>

#include "common/types.hh"
#include "dram/command.hh"
#include "dram/timing.hh"

namespace parbs::dram {

/** One DRAM bank: row-buffer state plus bank-local timing registers. */
class Bank {
  public:
    explicit Bank(const TimingParams& timing);

    /** @return the currently open row, or kNoRow if the bank is precharged. */
    std::uint32_t open_row() const { return open_row_; }

    /** @return true if some row is open in the row-buffer. */
    bool IsOpen() const { return open_row_ != kNoRow; }

    /**
     * Classifies an access to @p row against the current row-buffer state
     * (hit / closed / conflict), as defined in Section 3 of the paper.
     */
    RowBufferState Classify(std::uint32_t row) const;

    /**
     * The next command an access to @p row needs: a column command on a hit,
     * kActivate when closed, kPrecharge on a conflict.
     */
    CommandType NextCommandFor(std::uint32_t row, bool is_write) const;

    /**
     * @return true if @p type may issue to this bank at cycle @p now as far
     *         as *bank-local* constraints are concerned.
     */
    bool CanIssue(CommandType type, DramCycle now) const;

    /**
     * Earliest cycle at which @p type may issue (bank-local constraints
     * only); used by schedulers that reason about readiness windows.
     */
    DramCycle EarliestIssue(CommandType type) const;

    /**
     * Applies a command issued at cycle @p now.
     * @pre CanIssue(cmd.type, now) and the command is legal for the current
     *      row-buffer state (e.g. no READ while closed).
     */
    void Issue(const Command& cmd, DramCycle now);

    /**
     * Blocks all commands to this bank until @p until (used for refresh).
     * @pre the bank is precharged.
     */
    void BlockUntil(DramCycle until);

    /** @return the cycle the row currently open was activated (kNeverCycle
     *          if closed); used by NFQ's priority-inversion-prevention. */
    DramCycle open_since() const { return open_since_; }

    /**
     * Monotonic generation of the row-buffer state: bumped whenever
     * open_row() changes (ACTIVATE / PRECHARGE).  Schedulers key memoized
     * per-bank picks on it, so that row-hit status cached with a pick is
     * known stale the moment the open row changes (DESIGN.md §5e).
     */
    std::uint64_t row_generation() const { return row_gen_; }

    /** Total ACTIVATE commands issued to this bank (for time-series obs). */
    std::uint64_t activations() const { return activations_; }

  private:
    const TimingParams& timing_;

    std::uint32_t open_row_ = kNoRow;
    DramCycle open_since_ = kNeverCycle;
    std::uint64_t row_gen_ = 1;
    std::uint64_t activations_ = 0;

    /** Earliest legal issue cycle per command class. */
    DramCycle next_activate_ = 0;
    DramCycle next_precharge_ = 0;
    DramCycle next_read_ = 0;
    DramCycle next_write_ = 0;
};

} // namespace parbs::dram

#endif // PARBS_DRAM_BANK_HH
