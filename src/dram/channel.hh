/**
 * @file
 * Channel-level DRAM model: ranks plus the shared command and data buses.
 *
 * The controller issues at most one command per DRAM cycle per channel
 * (command-bus bandwidth); the channel enforces data-bus occupancy so that
 * read/write bursts from different banks and ranks never overlap on the
 * shared 64-bit data bus.
 */

#ifndef PARBS_DRAM_CHANNEL_HH
#define PARBS_DRAM_CHANNEL_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.hh"
#include "dram/command.hh"
#include "dram/protocol_checker.hh"
#include "dram/rank.hh"
#include "dram/timing.hh"

namespace parbs::dram {

/** One memory channel: ranks, banks, and the shared buses. */
class Channel {
  public:
    Channel(const TimingParams& timing, const Geometry& geometry);

    const TimingParams& timing() const { return timing_; }

    std::uint32_t num_ranks() const;

    Rank& rank(std::uint32_t index);
    const Rank& rank(std::uint32_t index) const;

    /** Convenience accessor across the rank boundary. */
    Bank& bank(std::uint32_t rank_index, std::uint32_t bank_index);
    const Bank& bank(std::uint32_t rank_index, std::uint32_t bank_index) const;

    /**
     * @return true if @p cmd satisfies every device and bus constraint at
     *         cycle @p now — the command is "ready" in the paper's sense
     *         (command-bus availability is enforced by the controller, which
     *         issues at most one command per cycle).
     */
    bool CanIssue(const Command& cmd, DramCycle now) const;

    /**
     * Earliest cycle @p cmd passes every device and bus constraint,
     * assuming no further command issues on this channel in between: for
     * every t, CanIssue(cmd, t) == (t >= EarliestIssue(cmd)) until the
     * next Issue().  This is the next-event function the controller's
     * skip-ahead derives its bounds from.  @pre cmd.type != kRefresh
     */
    DramCycle EarliestIssue(const Command& cmd) const;

    /**
     * Issues @p cmd at cycle @p now.
     * @return for column commands, the cycle at which the data burst
     *         completes (read data available / write retired); 0 otherwise.
     * @pre CanIssue(cmd, now)
     */
    DramCycle Issue(const Command& cmd, DramCycle now);

    /** @return the cycle the data bus becomes free (for stats/debug). */
    DramCycle bus_free_at() const { return bus_free_at_; }

    /**
     * Total cycles of data-bus occupancy committed so far (tBURST per
     * column command).  Monotonic; interval deltas give bus utilization.
     */
    std::uint64_t bus_busy_cycles() const { return bus_busy_cycles_; }

    /**
     * Enables shadow re-validation of every issued command.  @p reference
     * is the timing the checker validates against; it defaults to the
     * channel's own parameters, but tests may pass the true device timing
     * while the channel runs a deliberately corrupted copy to prove the
     * corruption is caught.
     */
    ProtocolChecker& EnableProtocolCheck(
        const TimingParams* reference = nullptr,
        ProtocolChecker::Mode mode = ProtocolChecker::Mode::kThrow);

    /** @return the attached checker, or nullptr when checking is off. */
    const ProtocolChecker* protocol_checker() const { return checker_.get(); }

  private:
    TimingParams timing_;
    Geometry geometry_;
    std::vector<Rank> ranks_;

    /** Cycle at which the current data-bus burst (if any) ends. */
    DramCycle bus_free_at_ = 0;
    /** Cumulative data-bus occupancy, tBURST per column command. */
    std::uint64_t bus_busy_cycles_ = 0;

    std::unique_ptr<ProtocolChecker> checker_;
};

} // namespace parbs::dram

#endif // PARBS_DRAM_CHANNEL_HH
