/**
 * @file
 * Physical-address to DRAM-coordinate mapping.
 *
 * The baseline mapping is row-interleaved (consecutive cache lines fill a
 * row before moving on) with XOR-based bank permutation, as used in the
 * paper's configuration ("XOR-based address-to-bank mapping", after
 * Frailong et al. [6] and Zhang et al. [42]): the bank index is XORed with
 * the low row bits so that strided access patterns spread across banks
 * instead of pounding one.
 *
 * Bit layout, LSB to MSB:
 *     [ line offset | column | channel | bank | rank | row ]
 *
 * The mapper is invertible: Encode() composes coordinates back into a
 * physical address, which lets the synthetic trace generator think directly
 * in (bank, row) terms while the rest of the system sees ordinary addresses.
 */

#ifndef PARBS_DRAM_ADDRESS_MAPPER_HH
#define PARBS_DRAM_ADDRESS_MAPPER_HH

#include <cstdint>

#include "common/types.hh"
#include "dram/timing.hh"

namespace parbs::dram {

/** A physical address decoded into DRAM coordinates. */
struct DecodedAddr {
    std::uint32_t channel = 0;
    std::uint32_t rank = 0;
    std::uint32_t bank = 0;
    std::uint32_t row = 0;
    std::uint32_t column = 0; ///< Cache-line index within the row.

    bool
    operator==(const DecodedAddr& other) const = default;

    /** @return true if two accesses touch the same row-buffer content. */
    bool
    SameRow(const DecodedAddr& other) const
    {
        return channel == other.channel && rank == other.rank &&
               bank == other.bank && row == other.row;
    }
};

/** Invertible address <-> coordinate mapping with XOR bank permutation. */
class AddressMapper {
  public:
    /**
     * @param geometry validated DRAM organization
     * @param xor_bank_hash enable the XOR-based bank/channel permutation
     *        (the baseline); disable for a plain bit-sliced mapping.
     */
    explicit AddressMapper(const Geometry& geometry,
                           bool xor_bank_hash = true);

    /** Decodes a physical byte address into DRAM coordinates. */
    DecodedAddr Decode(Addr addr) const;

    /**
     * Encodes coordinates into a physical byte address (line-aligned).
     * @pre each coordinate is within the geometry's range.
     */
    Addr Encode(const DecodedAddr& coords) const;

    const Geometry& geometry() const { return geometry_; }

  private:
    Geometry geometry_;
    bool xor_bank_hash_;

    std::uint32_t offset_bits_;
    std::uint32_t column_bits_;
    std::uint32_t channel_bits_;
    std::uint32_t bank_bits_;
    std::uint32_t rank_bits_;
    std::uint32_t row_bits_;
};

} // namespace parbs::dram

#endif // PARBS_DRAM_ADDRESS_MAPPER_HH
