/**
 * @file
 * DRAM command types and the command descriptor passed between the memory
 * controller and the device model.
 */

#ifndef PARBS_DRAM_COMMAND_HH
#define PARBS_DRAM_COMMAND_HH

#include <cstdint>

#include "common/types.hh"

namespace parbs::dram {

/** The DRAM command set the controller can issue. */
enum class CommandType : std::uint8_t {
    kActivate,  ///< Open a row into the bank's row-buffer.
    kPrecharge, ///< Close the bank's open row.
    kRead,      ///< Column read from the open row.
    kWrite,     ///< Column write to the open row.
    kRefresh,   ///< All-bank auto refresh (per rank).
};

/** @return a short human-readable command mnemonic. */
const char* CommandName(CommandType type);

/**
 * A fully decoded command.  For kRefresh only `rank` is meaningful; for
 * kPrecharge `row` is ignored.
 */
struct Command {
    CommandType type;
    std::uint32_t rank = 0;
    std::uint32_t bank = 0;
    std::uint32_t row = 0;
};

/** Row-buffer status of an access, used for both scheduling and statistics. */
enum class RowBufferState : std::uint8_t {
    kHit,      ///< Requested row is open: column command only (tCL).
    kClosed,   ///< No row open: ACTIVATE + column (tRCD + tCL).
    kConflict, ///< Different row open: PRE + ACT + column (tRP+tRCD+tCL).
};

/** @return a short human-readable name for a row-buffer state. */
const char* RowBufferStateName(RowBufferState state);

} // namespace parbs::dram

#endif // PARBS_DRAM_COMMAND_HH
