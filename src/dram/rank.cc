#include "dram/rank.hh"

#include <algorithm>

#include "common/assert.hh"

namespace parbs::dram {

Rank::Rank(const TimingParams& timing, std::uint32_t num_banks)
    : timing_(timing), next_refresh_due_(timing.tREFI == 0 ? kNeverCycle
                                                           : timing.tREFI)
{
    PARBS_ASSERT(num_banks > 0, "a rank needs at least one bank");
    banks_.reserve(num_banks);
    for (std::uint32_t i = 0; i < num_banks; ++i) {
        banks_.emplace_back(timing);
    }
    activate_history_.fill(kNeverCycle);
}

std::uint32_t
Rank::num_banks() const
{
    return static_cast<std::uint32_t>(banks_.size());
}

Bank&
Rank::bank(std::uint32_t index)
{
    PARBS_ASSERT(index < banks_.size(), "bank index out of range");
    return banks_[index];
}

const Bank&
Rank::bank(std::uint32_t index) const
{
    PARBS_ASSERT(index < banks_.size(), "bank index out of range");
    return banks_[index];
}

bool
Rank::CanIssue(const Command& cmd, DramCycle now) const
{
    switch (cmd.type) {
      case CommandType::kActivate: {
        if (now < next_activate_) {
            return false;
        }
        // tFAW: at most four ACTIVATEs in any tFAW window.  The oldest entry
        // in the 4-deep history must be at least tFAW in the past.
        const DramCycle oldest = activate_history_[activate_history_head_];
        if (oldest != kNeverCycle && now < oldest + timing_.tFAW) {
            return false;
        }
        break;
      }
      case CommandType::kRead:
        if (now < next_read_) {
            return false;
        }
        break;
      case CommandType::kWrite:
      case CommandType::kPrecharge:
        break;
      case CommandType::kRefresh:
        return CanRefresh(now);
    }
    return banks_[cmd.bank].CanIssue(cmd.type, now);
}

DramCycle
Rank::EarliestIssue(const Command& cmd) const
{
    PARBS_ASSERT(cmd.type != CommandType::kRefresh,
                 "EarliestIssue is undefined for refresh");
    DramCycle earliest = banks_[cmd.bank].EarliestIssue(cmd.type);
    switch (cmd.type) {
      case CommandType::kActivate: {
        earliest = std::max(earliest, next_activate_);
        const DramCycle oldest = activate_history_[activate_history_head_];
        if (oldest != kNeverCycle) {
            earliest = std::max(earliest, oldest + timing_.tFAW);
        }
        break;
      }
      case CommandType::kRead:
        earliest = std::max(earliest, next_read_);
        break;
      case CommandType::kWrite:
      case CommandType::kPrecharge:
      case CommandType::kRefresh:
        break;
    }
    return earliest;
}

void
Rank::Issue(const Command& cmd, DramCycle now)
{
    PARBS_ASSERT(CanIssue(cmd, now), "rank-level timing violation on issue");
    switch (cmd.type) {
      case CommandType::kActivate:
        next_activate_ = std::max(next_activate_, now + timing_.tRRD);
        activate_history_[activate_history_head_] = now;
        activate_history_head_ =
            (activate_history_head_ + 1) % activate_history_.size();
        break;

      case CommandType::kWrite:
        // tWTR: a READ anywhere in the rank must wait until tWTR after the
        // write burst leaves the bus.
        next_read_ = std::max(
            next_read_, now + timing_.tCWD + timing_.tBURST + timing_.tWTR);
        break;

      case CommandType::kRefresh: {
        for (auto& b : banks_) {
            b.BlockUntil(now + timing_.tRFC);
        }
        next_activate_ = std::max(next_activate_, now + timing_.tRFC);
        next_refresh_due_ += timing_.tREFI;
        // If we fell far behind (should not happen in practice), do not
        // schedule refreshes in the past forever.
        if (next_refresh_due_ <= now) {
            next_refresh_due_ = now + timing_.tREFI;
        }
        return; // No bank-level Issue for refresh.
      }

      case CommandType::kRead:
      case CommandType::kPrecharge:
        break;
    }
    banks_[cmd.bank].Issue(cmd, now);
}

bool
Rank::CanRefresh(DramCycle now) const
{
    if (!RefreshDue(now)) {
        return false;
    }
    for (const auto& b : banks_) {
        if (b.IsOpen() || !b.CanIssue(CommandType::kActivate, now)) {
            return false;
        }
    }
    return true;
}

std::vector<std::uint32_t>
Rank::OpenBanks() const
{
    std::vector<std::uint32_t> open;
    for (std::uint32_t i = 0; i < banks_.size(); ++i) {
        if (banks_[i].IsOpen()) {
            open.push_back(i);
        }
    }
    return open;
}

} // namespace parbs::dram
