#include "dram/error_model.hh"

#include "common/assert.hh"

namespace parbs::dram {
namespace {

constexpr std::uint64_t kGolden = 0x9e3779b97f4a7c15ULL;
/** Salt separating the stuck-row population from the transient stream. */
constexpr std::uint64_t kStuckSalt = 0x5bf03635ULL << 32;
/** Salt separating the severity draw from the occurrence draw. */
constexpr std::uint64_t kSeveritySalt = 0x27d4eb2fULL;

/** splitmix64 finalizer: the same mixer the Rng seeds through, used here
 *  directly so a draw is a pure function of its key (no generator state). */
std::uint64_t
Mix(std::uint64_t x)
{
    x += kGolden;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** Packs device coordinates into one 64-bit key. */
std::uint64_t
PackRow(std::uint32_t rank, std::uint32_t bank, std::uint32_t row)
{
    return (static_cast<std::uint64_t>(rank) << 48) |
           (static_cast<std::uint64_t>(bank) << 40) |
           static_cast<std::uint64_t>(row);
}

/** Maps a hash to a uniform double in [0, 1). */
double
ToUnit(std::uint64_t h)
{
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

void
CheckRate(double rate, const char* name)
{
    if (!(rate >= 0.0 && rate <= 1.0)) {
        PARBS_FATAL("error model: " + std::string(name) +
                    " must be in [0, 1], got " + std::to_string(rate));
    }
}

} // namespace

const char*
EccOutcomeName(EccOutcome outcome)
{
    switch (outcome) {
      case EccOutcome::kClean:
        return "clean";
      case EccOutcome::kCorrectable:
        return "corrected";
      case EccOutcome::kUncorrectable:
        return "uncorrectable";
    }
    return "?";
}

void
ErrorModelConfig::Validate() const
{
    CheckRate(transient_error_rate, "transient_error_rate");
    CheckRate(transient_uncorrectable, "transient_uncorrectable");
    CheckRate(stuck_row_fraction, "stuck_row_fraction");
}

ErrorModel::ErrorModel(const ErrorModelConfig& config)
    : config_(config),
      base_(Mix(Mix(config.seed) ^ (config.channel + 1)))
{
    config_.Validate();
}

bool
ErrorModel::RowStuck(std::uint32_t rank, std::uint32_t bank,
                     std::uint32_t row) const
{
    if (config_.stuck_row_fraction <= 0.0) {
        return false;
    }
    const std::uint64_t h =
        Mix(base_ ^ kStuckSalt ^ PackRow(rank, bank, row));
    return ToUnit(h) < config_.stuck_row_fraction;
}

EccOutcome
ErrorModel::ClassifyTransient(std::uint32_t rank, std::uint32_t bank,
                              std::uint32_t row,
                              std::uint64_t access_index) const
{
    if (config_.transient_error_rate <= 0.0) {
        return EccOutcome::kClean;
    }
    const std::uint64_t h = Mix(base_ ^ PackRow(rank, bank, row) ^
                                ((access_index + 1) * kGolden));
    if (ToUnit(h) >= config_.transient_error_rate) {
        return EccOutcome::kClean;
    }
    return ToUnit(Mix(h ^ kSeveritySalt)) < config_.transient_uncorrectable
               ? EccOutcome::kUncorrectable
               : EccOutcome::kCorrectable;
}

} // namespace parbs::dram
