#include "dram/channel.hh"

#include <algorithm>

#include "common/assert.hh"

namespace parbs::dram {

Channel::Channel(const TimingParams& timing, const Geometry& geometry)
    : timing_(timing), geometry_(geometry)
{
    timing_.Validate();
    geometry_.Validate();
    ranks_.reserve(geometry_.ranks_per_channel);
    for (std::uint32_t i = 0; i < geometry_.ranks_per_channel; ++i) {
        ranks_.emplace_back(timing_, geometry_.banks_per_rank);
    }
}

std::uint32_t
Channel::num_ranks() const
{
    return static_cast<std::uint32_t>(ranks_.size());
}

Rank&
Channel::rank(std::uint32_t index)
{
    PARBS_ASSERT(index < ranks_.size(), "rank index out of range");
    return ranks_[index];
}

const Rank&
Channel::rank(std::uint32_t index) const
{
    PARBS_ASSERT(index < ranks_.size(), "rank index out of range");
    return ranks_[index];
}

Bank&
Channel::bank(std::uint32_t rank_index, std::uint32_t bank_index)
{
    return rank(rank_index).bank(bank_index);
}

const Bank&
Channel::bank(std::uint32_t rank_index, std::uint32_t bank_index) const
{
    return rank(rank_index).bank(bank_index);
}

bool
Channel::CanIssue(const Command& cmd, DramCycle now) const
{
    PARBS_ASSERT(cmd.rank < ranks_.size(), "command rank out of range");
    if (cmd.type == CommandType::kRead || cmd.type == CommandType::kWrite) {
        // The data burst [start, start + tBURST) must begin after the
        // current bus occupant finishes.  Because tCWD < tCL on DDR2, this
        // start-after-free rule is slightly conservative for a write
        // following a read, which matches real controllers' bus turnaround.
        const DramCycle latency = (cmd.type == CommandType::kRead)
                                      ? timing_.tCL
                                      : timing_.tCWD;
        if (now + latency < bus_free_at_) {
            return false;
        }
    }
    return ranks_[cmd.rank].CanIssue(cmd, now);
}

DramCycle
Channel::EarliestIssue(const Command& cmd) const
{
    PARBS_ASSERT(cmd.rank < ranks_.size(), "command rank out of range");
    DramCycle earliest = ranks_[cmd.rank].EarliestIssue(cmd);
    if (cmd.type == CommandType::kRead || cmd.type == CommandType::kWrite) {
        const DramCycle latency = (cmd.type == CommandType::kRead)
                                      ? timing_.tCL
                                      : timing_.tCWD;
        // CanIssue blocks while now + latency < bus_free_at_, i.e. the
        // command becomes bus-ready at bus_free_at_ - latency.
        if (bus_free_at_ > latency) {
            earliest = std::max(earliest, bus_free_at_ - latency);
        }
    }
    return earliest;
}

ProtocolChecker&
Channel::EnableProtocolCheck(const TimingParams* reference,
                             ProtocolChecker::Mode mode)
{
    checker_ = std::make_unique<ProtocolChecker>(
        reference != nullptr ? *reference : timing_,
        geometry_.ranks_per_channel, geometry_.banks_per_rank, mode);
    return *checker_;
}

DramCycle
Channel::Issue(const Command& cmd, DramCycle now)
{
    // The checker observes first so that a violation is reported with full
    // context before the issuing FSMs' own assertions can abort.
    if (checker_) {
        checker_->Observe(cmd, now);
    }
    PARBS_ASSERT(CanIssue(cmd, now), "channel-level timing violation");
    ranks_[cmd.rank].Issue(cmd, now);
    if (cmd.type == CommandType::kRead || cmd.type == CommandType::kWrite) {
        const DramCycle latency = (cmd.type == CommandType::kRead)
                                      ? timing_.tCL
                                      : timing_.tCWD;
        const DramCycle done = now + latency + timing_.tBURST;
        bus_free_at_ = std::max(bus_free_at_, done);
        bus_busy_cycles_ += timing_.tBURST;
        return done;
    }
    return 0;
}

} // namespace parbs::dram
