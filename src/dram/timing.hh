/**
 * @file
 * DRAM device timing and geometry parameters.
 *
 * All timing values are expressed in DRAM command-clock cycles.  The default
 * values model the paper's baseline device: Micron DDR2-800
 * (MT47H128M8HQ-25), tCK = 2.5 ns, with the Table 2 values
 * tCL = tRCD = tRP = 15 ns (6 cycles) and BL/2 = 10 ns (4 cycles), plus the
 * datasheet values for the constraints Table 2 leaves implicit
 * (tRAS, tWR, tWTR, tRTP, tRRD, tFAW, tCCD, tRFC, tREFI).
 */

#ifndef PARBS_DRAM_TIMING_HH
#define PARBS_DRAM_TIMING_HH

#include <cstdint>

#include "common/types.hh"

namespace parbs::dram {

/** Device timing constraints, in DRAM command-clock cycles. */
struct TimingParams {
    /** CAS latency: column command to first data beat. */
    DramCycle tCL = 6;
    /** RAS-to-CAS delay: ACTIVATE to first column command. */
    DramCycle tRCD = 6;
    /** Row precharge time: PRECHARGE to next ACTIVATE. */
    DramCycle tRP = 6;
    /** Row active time: ACTIVATE to PRECHARGE (minimum). */
    DramCycle tRAS = 18;
    /** Write recovery: end of write burst to PRECHARGE. */
    DramCycle tWR = 6;
    /** Write-to-read turnaround: end of write burst to READ command (rank). */
    DramCycle tWTR = 3;
    /** Read-to-precharge delay. */
    DramCycle tRTP = 3;
    /** ACTIVATE-to-ACTIVATE delay, different banks, same rank. */
    DramCycle tRRD = 3;
    /** Four-activate window, per rank. */
    DramCycle tFAW = 15;
    /** Column-to-column command delay (burst gap on the data bus). */
    DramCycle tCCD = 2;
    /** Data burst duration on the bus (BL/2 for a burst of 8 on DDR). */
    DramCycle tBURST = 4;
    /** Write latency: WRITE command to first data beat (DDR2: tCL - 1). */
    DramCycle tCWD = 5;
    /** Refresh cycle time: REFRESH to next ACTIVATE, all banks. */
    DramCycle tRFC = 51;
    /** Average refresh interval (refresh period / 8192 rows). */
    DramCycle tREFI = 3120;

    /** ACTIVATE-to-ACTIVATE on the same bank (row cycle). */
    DramCycle tRC() const { return tRAS + tRP; }

    /**
     * Uncontended bank-access latency of a row-conflict access
     * (PRE + ACT + column command to first data): the paper's "highest bank
     * access latency" tRP + tRCD + tCL.
     */
    DramCycle ConflictLatency() const { return tRP + tRCD + tCL; }

    /** Uncontended latency with a closed row: tRCD + tCL. */
    DramCycle ClosedLatency() const { return tRCD + tCL; }

    /** Uncontended row-hit latency: tCL. */
    DramCycle HitLatency() const { return tCL; }

    /** @throws ConfigError if the parameter combination is nonsensical. */
    void Validate() const;
};

/** Module organization (per memory channel unless noted). */
struct Geometry {
    std::uint32_t channels = 1;
    std::uint32_t ranks_per_channel = 1;
    std::uint32_t banks_per_rank = 8;
    std::uint32_t rows_per_bank = 16384;
    /** Row-buffer size in bytes (2 KB in the baseline). */
    std::uint32_t row_bytes = 2048;
    /** Cache-line / DRAM burst size in bytes. */
    std::uint32_t line_bytes = 64;

    /** Cache lines per row. */
    std::uint32_t LinesPerRow() const { return row_bytes / line_bytes; }

    /** Total banks across the whole memory system. */
    std::uint32_t
    TotalBanks() const
    {
        return channels * ranks_per_channel * banks_per_rank;
    }

    /** Total addressable bytes across the whole memory system. */
    std::uint64_t
    CapacityBytes() const
    {
        return static_cast<std::uint64_t>(TotalBanks()) * rows_per_bank *
               row_bytes;
    }

    /** @throws ConfigError if fields are zero, inconsistent, or outside
     *  the supported ranges (the address mapping packs all dimensions into
     *  a 64-bit physical address). */
    void Validate() const;
};

} // namespace parbs::dram

#endif // PARBS_DRAM_TIMING_HH
