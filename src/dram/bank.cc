#include "dram/bank.hh"

#include <algorithm>

#include "common/assert.hh"

namespace parbs::dram {

Bank::Bank(const TimingParams& timing) : timing_(timing)
{
}

RowBufferState
Bank::Classify(std::uint32_t row) const
{
    if (open_row_ == row) {
        return RowBufferState::kHit;
    }
    if (open_row_ == kNoRow) {
        return RowBufferState::kClosed;
    }
    return RowBufferState::kConflict;
}

CommandType
Bank::NextCommandFor(std::uint32_t row, bool is_write) const
{
    switch (Classify(row)) {
      case RowBufferState::kHit:
        return is_write ? CommandType::kWrite : CommandType::kRead;
      case RowBufferState::kClosed:
        return CommandType::kActivate;
      case RowBufferState::kConflict:
        return CommandType::kPrecharge;
    }
    PARBS_ASSERT(false, "unreachable row-buffer state");
    return CommandType::kActivate;
}

bool
Bank::CanIssue(CommandType type, DramCycle now) const
{
    return now >= EarliestIssue(type);
}

DramCycle
Bank::EarliestIssue(CommandType type) const
{
    switch (type) {
      case CommandType::kActivate:
        return next_activate_;
      case CommandType::kPrecharge:
        return next_precharge_;
      case CommandType::kRead:
        return next_read_;
      case CommandType::kWrite:
        return next_write_;
      case CommandType::kRefresh:
        // Refresh legality (all banks precharged) is a rank-level decision;
        // at bank level it behaves like an activate.
        return next_activate_;
    }
    PARBS_ASSERT(false, "unreachable command type");
    return 0;
}

void
Bank::Issue(const Command& cmd, DramCycle now)
{
    PARBS_ASSERT(CanIssue(cmd.type, now),
                 "bank-level timing violation on issue");
    switch (cmd.type) {
      case CommandType::kActivate:
        PARBS_ASSERT(open_row_ == kNoRow,
                     "ACTIVATE issued to a bank with an open row");
        open_row_ = cmd.row;
        open_since_ = now;
        row_gen_ += 1;
        activations_ += 1;
        // Column commands must respect tRCD; the earliest precharge must
        // respect tRAS; the next activate to this bank respects tRC.
        next_read_ = std::max(next_read_, now + timing_.tRCD);
        next_write_ = std::max(next_write_, now + timing_.tRCD);
        next_precharge_ = std::max(next_precharge_, now + timing_.tRAS);
        next_activate_ = std::max(next_activate_, now + timing_.tRC());
        break;

      case CommandType::kPrecharge:
        PARBS_ASSERT(open_row_ != kNoRow,
                     "PRECHARGE issued to an already-closed bank");
        open_row_ = kNoRow;
        open_since_ = kNeverCycle;
        row_gen_ += 1;
        next_activate_ = std::max(next_activate_, now + timing_.tRP);
        break;

      case CommandType::kRead:
        PARBS_ASSERT(open_row_ == cmd.row,
                     "READ issued to a bank without the matching open row");
        // tRTP: read-to-precharge; tCCD: column-to-column.
        next_precharge_ = std::max(next_precharge_, now + timing_.tRTP);
        next_read_ = std::max(next_read_, now + timing_.tCCD);
        next_write_ = std::max(next_write_, now + timing_.tCCD);
        break;

      case CommandType::kWrite:
        PARBS_ASSERT(open_row_ == cmd.row,
                     "WRITE issued to a bank without the matching open row");
        // Write recovery: the burst ends at now + tCWD + tBURST; precharge
        // must wait a further tWR after that.
        next_precharge_ = std::max(
            next_precharge_, now + timing_.tCWD + timing_.tBURST +
                                 timing_.tWR);
        next_read_ = std::max(next_read_, now + timing_.tCCD);
        next_write_ = std::max(next_write_, now + timing_.tCCD);
        break;

      case CommandType::kRefresh:
        PARBS_ASSERT(false, "refresh is issued at rank level, not bank level");
        break;
    }
}

void
Bank::BlockUntil(DramCycle until)
{
    PARBS_ASSERT(open_row_ == kNoRow, "cannot block a bank with an open row");
    next_activate_ = std::max(next_activate_, until);
    next_precharge_ = std::max(next_precharge_, until);
    next_read_ = std::max(next_read_, until);
    next_write_ = std::max(next_write_, until);
}

} // namespace parbs::dram
