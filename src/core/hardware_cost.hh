/**
 * @file
 * The Table 1 hardware-cost model: the additional state (beyond FR-FCFS) a
 * PAR-BS implementation needs, in register bits.  The paper's reference
 * point — an 8-core CMP with a 128-entry request buffer and 8 DRAM banks —
 * comes to 1412 bits.
 *
 * SchedulerHardwareCost() generalizes the same accounting to every policy
 * in the factory registry, so the Pareto shootout (bench_report) can score
 * performance and fairness against implementation cost: FCFS/FR-FCFS are
 * the zero-cost baseline, NFQ pays per-(thread, bank) virtual clocks, STFM
 * pays per-thread stall/interference accumulators, PAR-BS pays the full
 * Table 1 state, and BLISS pays one bit per thread plus three registers.
 */

#ifndef PARBS_CORE_HARDWARE_COST_HH
#define PARBS_CORE_HARDWARE_COST_HH

#include <cstdint>

namespace parbs {

enum class SchedulerKind : std::uint8_t;

/** Machine parameters the Table 1 accounting depends on. */
struct HardwareCostParams {
    std::uint32_t num_threads = 8;
    std::uint32_t request_buffer_entries = 128;
    std::uint32_t num_banks = 8;
    /** Width of the system-configurable Marking-Cap register. */
    std::uint32_t marking_cap_bits = 5;
    /** Width of one NFQ per-(thread, bank) virtual-finish-time clock. */
    std::uint32_t virtual_time_bits = 24;
    /** Width of one STFM stall / interference accumulator. */
    std::uint32_t stall_time_bits = 24;
    /** Width of STFM's fixed-point alpha threshold register. */
    std::uint32_t alpha_bits = 8;
    /** BLISS blacklisting threshold (sizes the streak counter). */
    std::uint32_t bliss_threshold = 4;
    /** BLISS clearing interval (sizes the interval countdown). */
    std::uint64_t bliss_clearing_interval = 10000;
};

/** Table 1 state, grouped as in the paper. */
struct HardwareCostBreakdown {
    /** Marked bit + thread-rank priority field + Thread-ID, per request. */
    std::uint64_t per_request_bits = 0;
    /** ReqsInBankPerThread counters (Max rule). */
    std::uint64_t per_thread_per_bank_bits = 0;
    /** ReqsPerThread counters (Total rule). */
    std::uint64_t per_thread_bits = 0;
    /** TotalMarkedRequests + Marking-Cap registers. */
    std::uint64_t individual_bits = 0;

    std::uint64_t
    TotalBits() const
    {
        return per_request_bits + per_thread_per_bank_bits +
               per_thread_bits + individual_bits;
    }
};

/** ceil(log2(value)) for value >= 1 (log2 of a counter's range). */
std::uint32_t CeilLog2(std::uint64_t value);

/** Computes the Table 1 breakdown for @p params. */
HardwareCostBreakdown ParBsHardwareCost(const HardwareCostParams& params);

/**
 * Additional state (beyond an FR-FCFS controller) required by @p kind, in
 * the same four Table 1 buckets.  FCFS and FR-FCFS report zero; the three
 * PAR-BS variants all report the Table 1 state (the variants differ in
 * control logic, not storage).
 */
HardwareCostBreakdown SchedulerHardwareCost(SchedulerKind kind,
                                            const HardwareCostParams& params);

} // namespace parbs

#endif // PARBS_CORE_HARDWARE_COST_HH
