#include "core/hardware_cost.hh"

#include "common/assert.hh"
#include "sched/factory.hh"

namespace parbs {

std::uint32_t
CeilLog2(std::uint64_t value)
{
    PARBS_ASSERT(value >= 1, "CeilLog2 requires value >= 1");
    std::uint32_t bits = 0;
    std::uint64_t capacity = 1;
    while (capacity < value) {
        capacity <<= 1;
        bits += 1;
    }
    return bits;
}

HardwareCostBreakdown
ParBsHardwareCost(const HardwareCostParams& params)
{
    HardwareCostBreakdown out;
    const std::uint64_t thread_bits = CeilLog2(params.num_threads);
    const std::uint64_t buffer_bits =
        CeilLog2(params.request_buffer_entries);

    // Per-request: Marked (1) + Priority's thread-rank field (log2 threads;
    // the other priority components are already stored with the request in
    // an FR-FCFS controller) + Thread-ID (log2 threads).
    out.per_request_bits =
        static_cast<std::uint64_t>(params.request_buffer_entries) *
        (1 + thread_bits + thread_bits);

    // ReqsInBankPerThread: log2(buffer) bits per (thread, bank).
    out.per_thread_per_bank_bits = static_cast<std::uint64_t>(
                                       params.num_threads) *
                                   params.num_banks * buffer_bits;

    // ReqsPerThread: log2(buffer) bits per thread.
    out.per_thread_bits =
        static_cast<std::uint64_t>(params.num_threads) * buffer_bits;

    // TotalMarkedRequests + the Marking-Cap configuration register.
    out.individual_bits = buffer_bits + params.marking_cap_bits;
    return out;
}

HardwareCostBreakdown
SchedulerHardwareCost(SchedulerKind kind, const HardwareCostParams& params)
{
    HardwareCostBreakdown out;
    switch (kind) {
      case SchedulerKind::kFcfs:
      case SchedulerKind::kFrFcfs:
        // The baseline the Table 1 accounting measures against: an
        // FR-FCFS controller already stores arrival order and row state,
        // and FCFS is strictly simpler.
        return out;
      case SchedulerKind::kNfq:
        // One virtual-finish-time clock per (thread, bank) — the banks
        // run "without any coordination" (Nesbit et al.), so the clocks
        // cannot be shared.
        out.per_thread_per_bank_bits =
            static_cast<std::uint64_t>(params.num_threads) *
            params.num_banks * params.virtual_time_bits;
        return out;
      case SchedulerKind::kStfm:
        // T_shared and T_interference accumulators per thread, plus the
        // alpha threshold and the aging-interval countdown.
        out.per_thread_bits =
            static_cast<std::uint64_t>(params.num_threads) * 2 *
            params.stall_time_bits;
        out.individual_bits = params.alpha_bits + params.stall_time_bits;
        return out;
      case SchedulerKind::kParBs:
      case SchedulerKind::kParBsStatic:
      case SchedulerKind::kParBsEslot:
      case SchedulerKind::kParBsAdaptive:
        // The batching variants and the adaptive cap change control
        // logic, not storage: all four carry the Table 1 state.
        return ParBsHardwareCost(params);
      case SchedulerKind::kBliss:
        // One blacklist bit per thread, plus the last-served thread ID,
        // the consecutive-streak counter, and the clearing-interval
        // countdown — the entire point of the proposal.
        out.per_thread_bits = params.num_threads;
        out.individual_bits =
            CeilLog2(params.num_threads) +
            CeilLog2(static_cast<std::uint64_t>(params.bliss_threshold) +
                     1) +
            CeilLog2(params.bliss_clearing_interval);
        return out;
    }
    PARBS_FATAL("unknown scheduler kind");
}

} // namespace parbs
