#include "core/hardware_cost.hh"

#include "common/assert.hh"

namespace parbs {

std::uint32_t
CeilLog2(std::uint64_t value)
{
    PARBS_ASSERT(value >= 1, "CeilLog2 requires value >= 1");
    std::uint32_t bits = 0;
    std::uint64_t capacity = 1;
    while (capacity < value) {
        capacity <<= 1;
        bits += 1;
    }
    return bits;
}

HardwareCostBreakdown
ParBsHardwareCost(const HardwareCostParams& params)
{
    HardwareCostBreakdown out;
    const std::uint64_t thread_bits = CeilLog2(params.num_threads);
    const std::uint64_t buffer_bits =
        CeilLog2(params.request_buffer_entries);

    // Per-request: Marked (1) + Priority's thread-rank field (log2 threads;
    // the other priority components are already stored with the request in
    // an FR-FCFS controller) + Thread-ID (log2 threads).
    out.per_request_bits =
        static_cast<std::uint64_t>(params.request_buffer_entries) *
        (1 + thread_bits + thread_bits);

    // ReqsInBankPerThread: log2(buffer) bits per (thread, bank).
    out.per_thread_per_bank_bits = static_cast<std::uint64_t>(
                                       params.num_threads) *
                                   params.num_banks * buffer_bits;

    // ReqsPerThread: log2(buffer) bits per thread.
    out.per_thread_bits =
        static_cast<std::uint64_t>(params.num_threads) * buffer_bits;

    // TotalMarkedRequests + the Marking-Cap configuration register.
    out.individual_bits = buffer_bits + params.marking_cap_bits;
    return out;
}

} // namespace parbs
