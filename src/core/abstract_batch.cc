#include "core/abstract_batch.hh"

#include <algorithm>

#include "common/assert.hh"

namespace parbs::abstract {

double
AbstractResult::AverageCompletion() const
{
    double sum = 0.0;
    std::uint32_t active = 0;
    for (double c : completion) {
        if (c > 0.0) {
            sum += c;
            active += 1;
        }
    }
    return active == 0 ? 0.0 : sum / active;
}

std::vector<std::uint32_t>
MaxTotalRanking(const AbstractBatch& batch)
{
    struct Load {
        ThreadId thread;
        std::uint32_t max_bank_load = 0;
        std::uint32_t total_load = 0;
    };
    std::vector<Load> loads(batch.num_threads);
    for (ThreadId t = 0; t < batch.num_threads; ++t) {
        loads[t].thread = t;
    }
    for (const auto& bank : batch.banks) {
        std::vector<std::uint32_t> per_thread(batch.num_threads, 0);
        for (const AbstractRequest& request : bank) {
            PARBS_ASSERT(request.thread < batch.num_threads,
                         "request thread out of range");
            per_thread[request.thread] += 1;
        }
        for (ThreadId t = 0; t < batch.num_threads; ++t) {
            loads[t].total_load += per_thread[t];
            loads[t].max_bank_load =
                std::max(loads[t].max_bank_load, per_thread[t]);
        }
    }
    std::stable_sort(loads.begin(), loads.end(),
                     [](const Load& a, const Load& b) {
                         if (a.max_bank_load != b.max_bank_load) {
                             return a.max_bank_load < b.max_bank_load;
                         }
                         return a.total_load < b.total_load;
                     });
    std::vector<std::uint32_t> rank(batch.num_threads, 0);
    for (std::uint32_t position = 0; position < loads.size(); ++position) {
        rank[loads[position].thread] = position;
    }
    return rank;
}

AbstractResult
ScheduleBatch(const AbstractBatch& batch, AbstractPolicy policy,
              double conflict_latency, double hit_latency)
{
    PARBS_ASSERT(batch.num_threads > 0, "batch needs threads");
    const std::vector<std::uint32_t> rank =
        policy == AbstractPolicy::kParBs
            ? MaxTotalRanking(batch)
            : std::vector<std::uint32_t>(batch.num_threads, 0);

    AbstractResult result;
    result.completion.assign(batch.num_threads, 0.0);
    result.service_order.resize(batch.banks.size());

    for (std::size_t b = 0; b < batch.banks.size(); ++b) {
        const auto& bank = batch.banks[b];
        std::vector<bool> serviced(bank.size(), false);
        // The first access to each bank is a row-conflict by assumption:
        // no row is considered open until the first request is serviced.
        bool row_open = false;
        std::uint32_t open_row = 0;
        double time = 0.0;

        for (std::size_t step = 0; step < bank.size(); ++step) {
            // Select the next request under the policy.
            std::size_t best = bank.size();
            for (std::size_t i = 0; i < bank.size(); ++i) {
                if (serviced[i]) {
                    continue;
                }
                if (best == bank.size()) {
                    best = i;
                    continue;
                }
                const bool i_hit = row_open && bank[i].row == open_row;
                const bool best_hit =
                    row_open && bank[best].row == open_row;
                bool better = false;
                switch (policy) {
                  case AbstractPolicy::kFcfs:
                    better = false; // Arrival order: first unserviced wins.
                    break;
                  case AbstractPolicy::kFrFcfs:
                    better = i_hit && !best_hit;
                    break;
                  case AbstractPolicy::kParBs:
                    if (i_hit != best_hit) {
                        better = i_hit;
                    } else if (rank[bank[i].thread] !=
                               rank[bank[best].thread]) {
                        better = rank[bank[i].thread] <
                                 rank[bank[best].thread];
                    }
                    break;
                }
                if (better) {
                    best = i;
                }
            }
            PARBS_ASSERT(best < bank.size(), "no request selected");

            const bool hit = row_open && bank[best].row == open_row;
            time += hit ? hit_latency : conflict_latency;
            serviced[best] = true;
            row_open = true;
            open_row = bank[best].row;
            result.service_order[b].push_back(best);
            result.completion[bank[best].thread] =
                std::max(result.completion[bank[best].thread], time);
        }
    }
    return result;
}

AbstractBatch
Figure3Batch()
{
    // Reconstruction of the Figure 3 request layout (threads are 0-based
    // here: paper thread N == model thread N-1).  Thread 0 has one request
    // in each of three banks (max-bank-load 1); threads 1 and 2 both have
    // max-bank-load 2 with thread 1 holding the smaller total (4 vs 6);
    // thread 3 has max-bank-load 5.  The layout was recovered by exhaustive
    // search (tools/fig3_search) so that all twelve per-thread completion
    // times match the figure's tables exactly:
    //     FCFS    4, 4, 5, 7      (avg 5)
    //     FR-FCFS 5.5, 3, 4.5, 4.5 (avg 4.375)
    //     PAR-BS  1, 2, 4, 5.5    (avg 3.125)
    AbstractBatch batch;
    batch.num_threads = 4;
    batch.banks.resize(4);
    // Each entry: {thread, row}; index 0 is the oldest request in the bank.
    batch.banks[0] = {{3, 1}, {1, 10}, {3, 2}, {0, 20},
                      {3, 2}, {3, 1}, {3, 2}};
    batch.banks[1] = {{2, 42}, {2, 42}, {0, 21}};
    batch.banks[2] = {{3, 54}, {1, 34}, {2, 44}, {1, 34}, {2, 45}};
    batch.banks[3] = {{0, 23}, {2, 47}, {1, 36}, {2, 46}};
    return batch;
}

} // namespace parbs::abstract
