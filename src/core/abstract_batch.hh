/**
 * @file
 * The simplified within-batch scheduling model of Figure 3.
 *
 * The figure abstracts DRAM away to: banks service their request lists
 * sequentially and in parallel with each other; a request costs 1.0 latency
 * units if it opens a different row than the previously serviced request
 * in that bank (the first request to each bank is a row-conflict by
 * assumption), and 0.5 units if it hits the row left open by the previous
 * request.  A thread's batch-completion time is the time its last request
 * finishes anywhere.
 *
 * This model exists to validate the paper's central example (Figure 3:
 * FCFS averages 5 latency units, FR-FCFS 4.375, PAR-BS 3.125) and as a
 * teaching/what-if tool for within-batch policies, independent of the full
 * cycle-level simulator.
 */

#ifndef PARBS_CORE_ABSTRACT_BATCH_HH
#define PARBS_CORE_ABSTRACT_BATCH_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace parbs::abstract {

/** One marked request in the abstract model. */
struct AbstractRequest {
    ThreadId thread;
    std::uint32_t row;
};

/** A batch: per-bank request lists in arrival order (oldest first). */
struct AbstractBatch {
    std::uint32_t num_threads = 0;
    std::vector<std::vector<AbstractRequest>> banks;
};

/** Within-batch policies compared in Figure 3. */
enum class AbstractPolicy {
    kFcfs,   ///< Arrival order.
    kFrFcfs, ///< Row-hit first, then arrival order.
    kParBs,  ///< Row-hit first, then Max-Total thread rank, then arrival.
};

/** Per-thread completion times under one policy. */
struct AbstractResult {
    /** Batch-completion time per thread (0 for threads with no requests). */
    std::vector<double> completion;
    /** Service order per bank (indices into the bank's arrival list). */
    std::vector<std::vector<std::size_t>> service_order;

    /** Average completion time over threads that had requests. */
    double AverageCompletion() const;
};

/**
 * Schedules @p batch under @p policy.
 * @param conflict_latency cost of a row-conflict/closed access (paper: 1.0)
 * @param hit_latency cost of a row-hit access (paper: 0.5)
 */
AbstractResult ScheduleBatch(const AbstractBatch& batch,
                             AbstractPolicy policy,
                             double conflict_latency = 1.0,
                             double hit_latency = 0.5);

/** The Max-Total ranking of the batch (0 = highest rank). */
std::vector<std::uint32_t> MaxTotalRanking(const AbstractBatch& batch);

/**
 * The Figure 3 example batch: four threads, four banks, with thread 1
 * holding one request per bank, thread 4 five requests in one bank, etc.
 * (reconstructed to match the figure's reported completion times).
 */
AbstractBatch Figure3Batch();

} // namespace parbs::abstract

#endif // PARBS_CORE_ABSTRACT_BATCH_HH
