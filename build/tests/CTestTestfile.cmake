# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/parbs_common_tests[1]_include.cmake")
include("/root/repo/build/tests/parbs_dram_tests[1]_include.cmake")
include("/root/repo/build/tests/parbs_mem_tests[1]_include.cmake")
include("/root/repo/build/tests/parbs_sched_tests[1]_include.cmake")
include("/root/repo/build/tests/parbs_cpu_trace_tests[1]_include.cmake")
include("/root/repo/build/tests/parbs_sim_tests[1]_include.cmake")
include("/root/repo/build/tests/parbs_model_tests[1]_include.cmake")
include("/root/repo/build/tests/parbs_property_tests[1]_include.cmake")
