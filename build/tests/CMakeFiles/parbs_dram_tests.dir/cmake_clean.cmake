file(REMOVE_RECURSE
  "CMakeFiles/parbs_dram_tests.dir/dram/address_mapper_test.cc.o"
  "CMakeFiles/parbs_dram_tests.dir/dram/address_mapper_test.cc.o.d"
  "CMakeFiles/parbs_dram_tests.dir/dram/bank_test.cc.o"
  "CMakeFiles/parbs_dram_tests.dir/dram/bank_test.cc.o.d"
  "CMakeFiles/parbs_dram_tests.dir/dram/rank_channel_test.cc.o"
  "CMakeFiles/parbs_dram_tests.dir/dram/rank_channel_test.cc.o.d"
  "CMakeFiles/parbs_dram_tests.dir/dram/timing_sweep_test.cc.o"
  "CMakeFiles/parbs_dram_tests.dir/dram/timing_sweep_test.cc.o.d"
  "parbs_dram_tests"
  "parbs_dram_tests.pdb"
  "parbs_dram_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parbs_dram_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
