
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/dram/address_mapper_test.cc" "tests/CMakeFiles/parbs_dram_tests.dir/dram/address_mapper_test.cc.o" "gcc" "tests/CMakeFiles/parbs_dram_tests.dir/dram/address_mapper_test.cc.o.d"
  "/root/repo/tests/dram/bank_test.cc" "tests/CMakeFiles/parbs_dram_tests.dir/dram/bank_test.cc.o" "gcc" "tests/CMakeFiles/parbs_dram_tests.dir/dram/bank_test.cc.o.d"
  "/root/repo/tests/dram/rank_channel_test.cc" "tests/CMakeFiles/parbs_dram_tests.dir/dram/rank_channel_test.cc.o" "gcc" "tests/CMakeFiles/parbs_dram_tests.dir/dram/rank_channel_test.cc.o.d"
  "/root/repo/tests/dram/timing_sweep_test.cc" "tests/CMakeFiles/parbs_dram_tests.dir/dram/timing_sweep_test.cc.o" "gcc" "tests/CMakeFiles/parbs_dram_tests.dir/dram/timing_sweep_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/parbs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
