# Empty compiler generated dependencies file for parbs_dram_tests.
# This may be replaced when dependencies are built.
