file(REMOVE_RECURSE
  "CMakeFiles/parbs_property_tests.dir/properties/invariants_test.cc.o"
  "CMakeFiles/parbs_property_tests.dir/properties/invariants_test.cc.o.d"
  "parbs_property_tests"
  "parbs_property_tests.pdb"
  "parbs_property_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parbs_property_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
