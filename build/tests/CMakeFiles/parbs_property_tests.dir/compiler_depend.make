# Empty compiler generated dependencies file for parbs_property_tests.
# This may be replaced when dependencies are built.
