# Empty dependencies file for parbs_cpu_trace_tests.
# This may be replaced when dependencies are built.
