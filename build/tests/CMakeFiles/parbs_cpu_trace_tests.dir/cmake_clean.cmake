file(REMOVE_RECURSE
  "CMakeFiles/parbs_cpu_trace_tests.dir/cpu/core_test.cc.o"
  "CMakeFiles/parbs_cpu_trace_tests.dir/cpu/core_test.cc.o.d"
  "CMakeFiles/parbs_cpu_trace_tests.dir/trace/file_trace_test.cc.o"
  "CMakeFiles/parbs_cpu_trace_tests.dir/trace/file_trace_test.cc.o.d"
  "CMakeFiles/parbs_cpu_trace_tests.dir/trace/trace_test.cc.o"
  "CMakeFiles/parbs_cpu_trace_tests.dir/trace/trace_test.cc.o.d"
  "parbs_cpu_trace_tests"
  "parbs_cpu_trace_tests.pdb"
  "parbs_cpu_trace_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parbs_cpu_trace_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
