file(REMOVE_RECURSE
  "CMakeFiles/parbs_sim_tests.dir/sim/behavior_test.cc.o"
  "CMakeFiles/parbs_sim_tests.dir/sim/behavior_test.cc.o.d"
  "CMakeFiles/parbs_sim_tests.dir/sim/system_test.cc.o"
  "CMakeFiles/parbs_sim_tests.dir/sim/system_test.cc.o.d"
  "parbs_sim_tests"
  "parbs_sim_tests.pdb"
  "parbs_sim_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parbs_sim_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
