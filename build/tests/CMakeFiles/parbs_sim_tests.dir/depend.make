# Empty dependencies file for parbs_sim_tests.
# This may be replaced when dependencies are built.
