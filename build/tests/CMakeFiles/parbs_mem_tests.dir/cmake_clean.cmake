file(REMOVE_RECURSE
  "CMakeFiles/parbs_mem_tests.dir/mem/controller_test.cc.o"
  "CMakeFiles/parbs_mem_tests.dir/mem/controller_test.cc.o.d"
  "CMakeFiles/parbs_mem_tests.dir/mem/request_queue_test.cc.o"
  "CMakeFiles/parbs_mem_tests.dir/mem/request_queue_test.cc.o.d"
  "parbs_mem_tests"
  "parbs_mem_tests.pdb"
  "parbs_mem_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parbs_mem_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
