# Empty dependencies file for parbs_mem_tests.
# This may be replaced when dependencies are built.
