# Empty compiler generated dependencies file for parbs_model_tests.
# This may be replaced when dependencies are built.
