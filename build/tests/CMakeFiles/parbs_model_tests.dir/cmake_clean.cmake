file(REMOVE_RECURSE
  "CMakeFiles/parbs_model_tests.dir/core/abstract_batch_test.cc.o"
  "CMakeFiles/parbs_model_tests.dir/core/abstract_batch_test.cc.o.d"
  "CMakeFiles/parbs_model_tests.dir/core/hardware_cost_test.cc.o"
  "CMakeFiles/parbs_model_tests.dir/core/hardware_cost_test.cc.o.d"
  "parbs_model_tests"
  "parbs_model_tests.pdb"
  "parbs_model_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parbs_model_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
