
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sched/adaptive_parbs_test.cc" "tests/CMakeFiles/parbs_sched_tests.dir/sched/adaptive_parbs_test.cc.o" "gcc" "tests/CMakeFiles/parbs_sched_tests.dir/sched/adaptive_parbs_test.cc.o.d"
  "/root/repo/tests/sched/batch_variants_test.cc" "tests/CMakeFiles/parbs_sched_tests.dir/sched/batch_variants_test.cc.o" "gcc" "tests/CMakeFiles/parbs_sched_tests.dir/sched/batch_variants_test.cc.o.d"
  "/root/repo/tests/sched/nfq_stfm_test.cc" "tests/CMakeFiles/parbs_sched_tests.dir/sched/nfq_stfm_test.cc.o" "gcc" "tests/CMakeFiles/parbs_sched_tests.dir/sched/nfq_stfm_test.cc.o.d"
  "/root/repo/tests/sched/ordering_test.cc" "tests/CMakeFiles/parbs_sched_tests.dir/sched/ordering_test.cc.o" "gcc" "tests/CMakeFiles/parbs_sched_tests.dir/sched/ordering_test.cc.o.d"
  "/root/repo/tests/sched/parbs_test.cc" "tests/CMakeFiles/parbs_sched_tests.dir/sched/parbs_test.cc.o" "gcc" "tests/CMakeFiles/parbs_sched_tests.dir/sched/parbs_test.cc.o.d"
  "/root/repo/tests/sched/priorities_test.cc" "tests/CMakeFiles/parbs_sched_tests.dir/sched/priorities_test.cc.o" "gcc" "tests/CMakeFiles/parbs_sched_tests.dir/sched/priorities_test.cc.o.d"
  "/root/repo/tests/sched/stats_api_test.cc" "tests/CMakeFiles/parbs_sched_tests.dir/sched/stats_api_test.cc.o" "gcc" "tests/CMakeFiles/parbs_sched_tests.dir/sched/stats_api_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/parbs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
