file(REMOVE_RECURSE
  "CMakeFiles/parbs_sched_tests.dir/sched/adaptive_parbs_test.cc.o"
  "CMakeFiles/parbs_sched_tests.dir/sched/adaptive_parbs_test.cc.o.d"
  "CMakeFiles/parbs_sched_tests.dir/sched/batch_variants_test.cc.o"
  "CMakeFiles/parbs_sched_tests.dir/sched/batch_variants_test.cc.o.d"
  "CMakeFiles/parbs_sched_tests.dir/sched/nfq_stfm_test.cc.o"
  "CMakeFiles/parbs_sched_tests.dir/sched/nfq_stfm_test.cc.o.d"
  "CMakeFiles/parbs_sched_tests.dir/sched/ordering_test.cc.o"
  "CMakeFiles/parbs_sched_tests.dir/sched/ordering_test.cc.o.d"
  "CMakeFiles/parbs_sched_tests.dir/sched/parbs_test.cc.o"
  "CMakeFiles/parbs_sched_tests.dir/sched/parbs_test.cc.o.d"
  "CMakeFiles/parbs_sched_tests.dir/sched/priorities_test.cc.o"
  "CMakeFiles/parbs_sched_tests.dir/sched/priorities_test.cc.o.d"
  "CMakeFiles/parbs_sched_tests.dir/sched/stats_api_test.cc.o"
  "CMakeFiles/parbs_sched_tests.dir/sched/stats_api_test.cc.o.d"
  "parbs_sched_tests"
  "parbs_sched_tests.pdb"
  "parbs_sched_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parbs_sched_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
