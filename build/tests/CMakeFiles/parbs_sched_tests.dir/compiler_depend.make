# Empty compiler generated dependencies file for parbs_sched_tests.
# This may be replaced when dependencies are built.
