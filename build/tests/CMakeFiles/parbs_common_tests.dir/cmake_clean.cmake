file(REMOVE_RECURSE
  "CMakeFiles/parbs_common_tests.dir/common/misc_test.cc.o"
  "CMakeFiles/parbs_common_tests.dir/common/misc_test.cc.o.d"
  "CMakeFiles/parbs_common_tests.dir/common/rng_test.cc.o"
  "CMakeFiles/parbs_common_tests.dir/common/rng_test.cc.o.d"
  "CMakeFiles/parbs_common_tests.dir/stats/metrics_test.cc.o"
  "CMakeFiles/parbs_common_tests.dir/stats/metrics_test.cc.o.d"
  "parbs_common_tests"
  "parbs_common_tests.pdb"
  "parbs_common_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parbs_common_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
