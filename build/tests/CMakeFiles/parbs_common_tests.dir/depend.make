# Empty dependencies file for parbs_common_tests.
# This may be replaced when dependencies are built.
