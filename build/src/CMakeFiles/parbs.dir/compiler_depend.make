# Empty compiler generated dependencies file for parbs.
# This may be replaced when dependencies are built.
