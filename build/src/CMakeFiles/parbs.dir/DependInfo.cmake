
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/assert.cc" "src/CMakeFiles/parbs.dir/common/assert.cc.o" "gcc" "src/CMakeFiles/parbs.dir/common/assert.cc.o.d"
  "/root/repo/src/common/log.cc" "src/CMakeFiles/parbs.dir/common/log.cc.o" "gcc" "src/CMakeFiles/parbs.dir/common/log.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/parbs.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/parbs.dir/common/rng.cc.o.d"
  "/root/repo/src/core/abstract_batch.cc" "src/CMakeFiles/parbs.dir/core/abstract_batch.cc.o" "gcc" "src/CMakeFiles/parbs.dir/core/abstract_batch.cc.o.d"
  "/root/repo/src/core/hardware_cost.cc" "src/CMakeFiles/parbs.dir/core/hardware_cost.cc.o" "gcc" "src/CMakeFiles/parbs.dir/core/hardware_cost.cc.o.d"
  "/root/repo/src/cpu/core.cc" "src/CMakeFiles/parbs.dir/cpu/core.cc.o" "gcc" "src/CMakeFiles/parbs.dir/cpu/core.cc.o.d"
  "/root/repo/src/dram/address_mapper.cc" "src/CMakeFiles/parbs.dir/dram/address_mapper.cc.o" "gcc" "src/CMakeFiles/parbs.dir/dram/address_mapper.cc.o.d"
  "/root/repo/src/dram/bank.cc" "src/CMakeFiles/parbs.dir/dram/bank.cc.o" "gcc" "src/CMakeFiles/parbs.dir/dram/bank.cc.o.d"
  "/root/repo/src/dram/channel.cc" "src/CMakeFiles/parbs.dir/dram/channel.cc.o" "gcc" "src/CMakeFiles/parbs.dir/dram/channel.cc.o.d"
  "/root/repo/src/dram/command.cc" "src/CMakeFiles/parbs.dir/dram/command.cc.o" "gcc" "src/CMakeFiles/parbs.dir/dram/command.cc.o.d"
  "/root/repo/src/dram/rank.cc" "src/CMakeFiles/parbs.dir/dram/rank.cc.o" "gcc" "src/CMakeFiles/parbs.dir/dram/rank.cc.o.d"
  "/root/repo/src/dram/timing.cc" "src/CMakeFiles/parbs.dir/dram/timing.cc.o" "gcc" "src/CMakeFiles/parbs.dir/dram/timing.cc.o.d"
  "/root/repo/src/mem/controller.cc" "src/CMakeFiles/parbs.dir/mem/controller.cc.o" "gcc" "src/CMakeFiles/parbs.dir/mem/controller.cc.o.d"
  "/root/repo/src/mem/request_queue.cc" "src/CMakeFiles/parbs.dir/mem/request_queue.cc.o" "gcc" "src/CMakeFiles/parbs.dir/mem/request_queue.cc.o.d"
  "/root/repo/src/sched/adaptive_parbs.cc" "src/CMakeFiles/parbs.dir/sched/adaptive_parbs.cc.o" "gcc" "src/CMakeFiles/parbs.dir/sched/adaptive_parbs.cc.o.d"
  "/root/repo/src/sched/batch_variants.cc" "src/CMakeFiles/parbs.dir/sched/batch_variants.cc.o" "gcc" "src/CMakeFiles/parbs.dir/sched/batch_variants.cc.o.d"
  "/root/repo/src/sched/factory.cc" "src/CMakeFiles/parbs.dir/sched/factory.cc.o" "gcc" "src/CMakeFiles/parbs.dir/sched/factory.cc.o.d"
  "/root/repo/src/sched/fcfs.cc" "src/CMakeFiles/parbs.dir/sched/fcfs.cc.o" "gcc" "src/CMakeFiles/parbs.dir/sched/fcfs.cc.o.d"
  "/root/repo/src/sched/frfcfs.cc" "src/CMakeFiles/parbs.dir/sched/frfcfs.cc.o" "gcc" "src/CMakeFiles/parbs.dir/sched/frfcfs.cc.o.d"
  "/root/repo/src/sched/nfq.cc" "src/CMakeFiles/parbs.dir/sched/nfq.cc.o" "gcc" "src/CMakeFiles/parbs.dir/sched/nfq.cc.o.d"
  "/root/repo/src/sched/parbs_sched.cc" "src/CMakeFiles/parbs.dir/sched/parbs_sched.cc.o" "gcc" "src/CMakeFiles/parbs.dir/sched/parbs_sched.cc.o.d"
  "/root/repo/src/sched/scheduler.cc" "src/CMakeFiles/parbs.dir/sched/scheduler.cc.o" "gcc" "src/CMakeFiles/parbs.dir/sched/scheduler.cc.o.d"
  "/root/repo/src/sched/stfm.cc" "src/CMakeFiles/parbs.dir/sched/stfm.cc.o" "gcc" "src/CMakeFiles/parbs.dir/sched/stfm.cc.o.d"
  "/root/repo/src/sim/config.cc" "src/CMakeFiles/parbs.dir/sim/config.cc.o" "gcc" "src/CMakeFiles/parbs.dir/sim/config.cc.o.d"
  "/root/repo/src/sim/experiment.cc" "src/CMakeFiles/parbs.dir/sim/experiment.cc.o" "gcc" "src/CMakeFiles/parbs.dir/sim/experiment.cc.o.d"
  "/root/repo/src/sim/system.cc" "src/CMakeFiles/parbs.dir/sim/system.cc.o" "gcc" "src/CMakeFiles/parbs.dir/sim/system.cc.o.d"
  "/root/repo/src/sim/workloads.cc" "src/CMakeFiles/parbs.dir/sim/workloads.cc.o" "gcc" "src/CMakeFiles/parbs.dir/sim/workloads.cc.o.d"
  "/root/repo/src/stats/histogram.cc" "src/CMakeFiles/parbs.dir/stats/histogram.cc.o" "gcc" "src/CMakeFiles/parbs.dir/stats/histogram.cc.o.d"
  "/root/repo/src/stats/metrics.cc" "src/CMakeFiles/parbs.dir/stats/metrics.cc.o" "gcc" "src/CMakeFiles/parbs.dir/stats/metrics.cc.o.d"
  "/root/repo/src/stats/table.cc" "src/CMakeFiles/parbs.dir/stats/table.cc.o" "gcc" "src/CMakeFiles/parbs.dir/stats/table.cc.o.d"
  "/root/repo/src/trace/file_trace.cc" "src/CMakeFiles/parbs.dir/trace/file_trace.cc.o" "gcc" "src/CMakeFiles/parbs.dir/trace/file_trace.cc.o.d"
  "/root/repo/src/trace/spec_profiles.cc" "src/CMakeFiles/parbs.dir/trace/spec_profiles.cc.o" "gcc" "src/CMakeFiles/parbs.dir/trace/spec_profiles.cc.o.d"
  "/root/repo/src/trace/synthetic.cc" "src/CMakeFiles/parbs.dir/trace/synthetic.cc.o" "gcc" "src/CMakeFiles/parbs.dir/trace/synthetic.cc.o.d"
  "/root/repo/src/trace/trace.cc" "src/CMakeFiles/parbs.dir/trace/trace.cc.o" "gcc" "src/CMakeFiles/parbs.dir/trace/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
