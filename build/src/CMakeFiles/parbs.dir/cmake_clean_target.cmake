file(REMOVE_RECURSE
  "libparbs.a"
)
