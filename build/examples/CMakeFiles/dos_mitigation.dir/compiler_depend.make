# Empty compiler generated dependencies file for dos_mitigation.
# This may be replaced when dependencies are built.
