file(REMOVE_RECURSE
  "CMakeFiles/dos_mitigation.dir/dos_mitigation.cpp.o"
  "CMakeFiles/dos_mitigation.dir/dos_mitigation.cpp.o.d"
  "dos_mitigation"
  "dos_mitigation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dos_mitigation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
