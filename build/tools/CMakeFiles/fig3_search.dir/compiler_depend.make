# Empty compiler generated dependencies file for fig3_search.
# This may be replaced when dependencies are built.
