file(REMOVE_RECURSE
  "CMakeFiles/fig3_search.dir/fig3_search.cpp.o"
  "CMakeFiles/fig3_search.dir/fig3_search.cpp.o.d"
  "fig3_search"
  "fig3_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
