file(REMOVE_RECURSE
  "CMakeFiles/fig3_within_batch.dir/fig3_within_batch.cc.o"
  "CMakeFiles/fig3_within_batch.dir/fig3_within_batch.cc.o.d"
  "fig3_within_batch"
  "fig3_within_batch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_within_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
