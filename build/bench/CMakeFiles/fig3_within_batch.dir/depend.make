# Empty dependencies file for fig3_within_batch.
# This may be replaced when dependencies are built.
