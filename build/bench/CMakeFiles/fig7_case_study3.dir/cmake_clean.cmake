file(REMOVE_RECURSE
  "CMakeFiles/fig7_case_study3.dir/fig7_case_study3.cc.o"
  "CMakeFiles/fig7_case_study3.dir/fig7_case_study3.cc.o.d"
  "fig7_case_study3"
  "fig7_case_study3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_case_study3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
