# Empty dependencies file for fig7_case_study3.
# This may be replaced when dependencies are built.
