file(REMOVE_RECURSE
  "CMakeFiles/fig5_case_study1.dir/fig5_case_study1.cc.o"
  "CMakeFiles/fig5_case_study1.dir/fig5_case_study1.cc.o.d"
  "fig5_case_study1"
  "fig5_case_study1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_case_study1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
