# Empty compiler generated dependencies file for fig5_case_study1.
# This may be replaced when dependencies are built.
