file(REMOVE_RECURSE
  "CMakeFiles/micro_scheduler_cost.dir/micro_scheduler_cost.cc.o"
  "CMakeFiles/micro_scheduler_cost.dir/micro_scheduler_cost.cc.o.d"
  "micro_scheduler_cost"
  "micro_scheduler_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_scheduler_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
