file(REMOVE_RECURSE
  "CMakeFiles/parbs_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/parbs_bench_common.dir/bench_common.cc.o.d"
  "libparbs_bench_common.a"
  "libparbs_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parbs_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
