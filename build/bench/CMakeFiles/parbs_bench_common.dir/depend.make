# Empty dependencies file for parbs_bench_common.
# This may be replaced when dependencies are built.
