file(REMOVE_RECURSE
  "libparbs_bench_common.a"
)
