# Empty dependencies file for fig14_priorities.
# This may be replaced when dependencies are built.
