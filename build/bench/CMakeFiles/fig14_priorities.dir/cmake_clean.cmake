file(REMOVE_RECURSE
  "CMakeFiles/fig14_priorities.dir/fig14_priorities.cc.o"
  "CMakeFiles/fig14_priorities.dir/fig14_priorities.cc.o.d"
  "fig14_priorities"
  "fig14_priorities.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_priorities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
