# Empty dependencies file for fig12_batching_choice.
# This may be replaced when dependencies are built.
