file(REMOVE_RECURSE
  "CMakeFiles/fig12_batching_choice.dir/fig12_batching_choice.cc.o"
  "CMakeFiles/fig12_batching_choice.dir/fig12_batching_choice.cc.o.d"
  "fig12_batching_choice"
  "fig12_batching_choice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_batching_choice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
