file(REMOVE_RECURSE
  "CMakeFiles/fig9_8core.dir/fig9_8core.cc.o"
  "CMakeFiles/fig9_8core.dir/fig9_8core.cc.o.d"
  "fig9_8core"
  "fig9_8core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_8core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
