# Empty dependencies file for fig9_8core.
# This may be replaced when dependencies are built.
