# Empty compiler generated dependencies file for table4_summary.
# This may be replaced when dependencies are built.
