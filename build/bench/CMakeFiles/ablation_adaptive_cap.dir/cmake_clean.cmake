file(REMOVE_RECURSE
  "CMakeFiles/ablation_adaptive_cap.dir/ablation_adaptive_cap.cc.o"
  "CMakeFiles/ablation_adaptive_cap.dir/ablation_adaptive_cap.cc.o.d"
  "ablation_adaptive_cap"
  "ablation_adaptive_cap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_adaptive_cap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
