# Empty compiler generated dependencies file for ablation_adaptive_cap.
# This may be replaced when dependencies are built.
