file(REMOVE_RECURSE
  "CMakeFiles/fig13_within_batch.dir/fig13_within_batch.cc.o"
  "CMakeFiles/fig13_within_batch.dir/fig13_within_batch.cc.o.d"
  "fig13_within_batch"
  "fig13_within_batch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_within_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
