# Empty dependencies file for fig10_16core.
# This may be replaced when dependencies are built.
