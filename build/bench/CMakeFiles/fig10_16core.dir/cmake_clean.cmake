file(REMOVE_RECURSE
  "CMakeFiles/fig10_16core.dir/fig10_16core.cc.o"
  "CMakeFiles/fig10_16core.dir/fig10_16core.cc.o.d"
  "fig10_16core"
  "fig10_16core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_16core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
