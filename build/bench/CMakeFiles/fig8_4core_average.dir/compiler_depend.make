# Empty compiler generated dependencies file for fig8_4core_average.
# This may be replaced when dependencies are built.
