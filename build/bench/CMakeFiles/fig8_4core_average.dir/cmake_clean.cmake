file(REMOVE_RECURSE
  "CMakeFiles/fig8_4core_average.dir/fig8_4core_average.cc.o"
  "CMakeFiles/fig8_4core_average.dir/fig8_4core_average.cc.o.d"
  "fig8_4core_average"
  "fig8_4core_average.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_4core_average.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
