# Empty dependencies file for fig6_case_study2.
# This may be replaced when dependencies are built.
