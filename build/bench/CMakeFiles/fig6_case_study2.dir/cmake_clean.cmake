file(REMOVE_RECURSE
  "CMakeFiles/fig6_case_study2.dir/fig6_case_study2.cc.o"
  "CMakeFiles/fig6_case_study2.dir/fig6_case_study2.cc.o.d"
  "fig6_case_study2"
  "fig6_case_study2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_case_study2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
