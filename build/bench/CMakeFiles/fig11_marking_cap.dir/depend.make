# Empty dependencies file for fig11_marking_cap.
# This may be replaced when dependencies are built.
