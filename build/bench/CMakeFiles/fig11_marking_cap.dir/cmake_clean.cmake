file(REMOVE_RECURSE
  "CMakeFiles/fig11_marking_cap.dir/fig11_marking_cap.cc.o"
  "CMakeFiles/fig11_marking_cap.dir/fig11_marking_cap.cc.o.d"
  "fig11_marking_cap"
  "fig11_marking_cap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_marking_cap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
