file(REMOVE_RECURSE
  "CMakeFiles/sweep_system_params.dir/sweep_system_params.cc.o"
  "CMakeFiles/sweep_system_params.dir/sweep_system_params.cc.o.d"
  "sweep_system_params"
  "sweep_system_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sweep_system_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
