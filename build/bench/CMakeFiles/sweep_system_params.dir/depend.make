# Empty dependencies file for sweep_system_params.
# This may be replaced when dependencies are built.
