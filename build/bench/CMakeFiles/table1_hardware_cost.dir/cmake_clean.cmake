file(REMOVE_RECURSE
  "CMakeFiles/table1_hardware_cost.dir/table1_hardware_cost.cc.o"
  "CMakeFiles/table1_hardware_cost.dir/table1_hardware_cost.cc.o.d"
  "table1_hardware_cost"
  "table1_hardware_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_hardware_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
