# Empty compiler generated dependencies file for table1_hardware_cost.
# This may be replaced when dependencies are built.
