/**
 * @file
 * Figure 8: unfairness and system throughput across the pseudo-random
 * 4-core workload population — the ten individually-plotted sample mixes
 * plus the GMEAN over the full set (paper: 100 workloads; default here: 32,
 * `--full` for 100, `--quick` for 8).
 *
 * Paper shape: PAR-BS has both the lowest average unfairness (1.22 vs
 * STFM's 1.36) and the highest weighted/hmean speedup (+4.4% / +8.3% over
 * STFM).
 */

#include <iostream>

#include "bench_common.hh"

int
main(int argc, char** argv)
{
    using namespace parbs;
    bench::Session session(argc, argv, "Figure 8",
                           "4-core workload population: samples + GMEAN");
    ExperimentRunner runner = bench::MakeRunner(session.options(), 4);

    // Left panel: the ten sample mixes, unfairness per scheduler.
    std::cout << "Sample workloads (unfairness per scheduler):\n\n";
    Table samples({"workload", "FR-FCFS", "FCFS", "NFQ", "STFM", "PAR-BS"});
    const std::vector<WorkloadSpec> sample_workloads = Fig8SampleWorkloads();
    const auto matrix = bench::RunMatrix(
        session, runner, ComparisonSchedulers(), sample_workloads);
    for (std::size_t w = 0; w < sample_workloads.size(); ++w) {
        std::vector<std::string> row{sample_workloads[w].name};
        for (std::size_t s = 0; s < matrix.size(); ++s) {
            row.push_back(Table::Num(matrix[s][w].metrics.unfairness));
            session.RecordRun("samples", matrix[s][w]);
        }
        samples.AddRow(std::move(row));
    }
    std::cout << samples.Render() << "\n";

    // Right panel: aggregates over the random population.
    const std::uint32_t count = session.options().Count(8, 32, 100);
    bench::RunAggregate(session, runner,
                        RandomMixes(count, 4, session.options().seed),
                        "Population aggregate");
    return 0;
}
