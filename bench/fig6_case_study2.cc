/**
 * @file
 * Figure 6 — Case Study II: a non-intensive 4-core workload (matlab,
 * h264ref, omnetpp, hmmer).
 *
 * Paper shape: PAR-BS is the only scheduler that does not significantly
 * penalize the high-bank-parallelism thread (omnetpp); NFQ slows it most
 * (idleness problem); PAR-BS has the best fairness (1.19) and throughput.
 */

#include "bench_common.hh"

int
main(int argc, char** argv)
{
    using namespace parbs;
    bench::Session session(argc, argv, "Figure 6", "Case Study II: non-intensive workload");
    ExperimentRunner runner = bench::MakeRunner(session.options(), 4);
    bench::RunCaseStudy(session, runner, CaseStudy2());
    return 0;
}
