/**
 * @file
 * Table 1: additional hardware state required by PAR-BS beyond FR-FCFS.
 * Paper reference point: 1412 bits at 8 cores / 128-entry buffer / 8 banks.
 *
 * A second table scores every scheduler in the comparison lineup with the
 * same accounting (SchedulerHardwareCost); bench_report joins its
 * "scheduler cost" values with the perf/fairness aggregates into the
 * Pareto table.
 */

#include <iostream>

#include "bench_common.hh"
#include "core/hardware_cost.hh"
#include "sim/experiment.hh"

int
main(int argc, char** argv)
{
    using namespace parbs;
    bench::Session session(argc, argv, "Table 1",
                           "PAR-BS implementation cost in register bits");

    Table table({"cores", "buffer", "banks", "per-request", "per-thr/bank",
                 "per-thread", "individual", "total bits"});
    const struct {
        std::uint32_t threads, buffer, banks;
    } configs[] = {
        {4, 128, 8}, {8, 128, 8}, {16, 128, 8}, {8, 256, 8},
        {16, 256, 16}, {32, 512, 16},
    };
    for (const auto& c : configs) {
        HardwareCostParams params;
        params.num_threads = c.threads;
        params.request_buffer_entries = c.buffer;
        params.num_banks = c.banks;
        const HardwareCostBreakdown cost = ParBsHardwareCost(params);
        table.AddRow({std::to_string(c.threads), std::to_string(c.buffer),
                      std::to_string(c.banks),
                      std::to_string(cost.per_request_bits),
                      std::to_string(cost.per_thread_per_bank_bits),
                      std::to_string(cost.per_thread_bits),
                      std::to_string(cost.individual_bits),
                      std::to_string(cost.TotalBits())});
        session.RecordValue("hardware cost",
                            std::to_string(c.threads) + "c/" +
                                std::to_string(c.buffer) + "e/" +
                                std::to_string(c.banks) + "b total bits",
                            static_cast<double>(cost.TotalBits()));
    }
    std::cout << table.Render() << "\n";

    // The lineup's storage shootout at the paper's reference machine.
    // FCFS/FR-FCFS anchor the zero line; BLISS is the low-cost foil.
    std::cout << "Per-scheduler additional state at the reference machine "
                 "(8 cores, 128 entries, 8 banks):\n\n";
    Table lineup_table({"scheduler", "per-request", "per-thr/bank",
                        "per-thread", "individual", "total bits"});
    for (const SchedulerConfig& scheduler : ComparisonSchedulers()) {
        const HardwareCostBreakdown cost =
            SchedulerHardwareCost(scheduler.kind, {});
        const std::string name = SchedulerConfigName(scheduler);
        lineup_table.AddRow({name, std::to_string(cost.per_request_bits),
                             std::to_string(cost.per_thread_per_bank_bits),
                             std::to_string(cost.per_thread_bits),
                             std::to_string(cost.individual_bits),
                             std::to_string(cost.TotalBits())});
        session.RecordValue("scheduler cost", name + " total bits",
                            static_cast<double>(cost.TotalBits()));
    }
    std::cout << lineup_table.Render() << "\n";

    const std::uint64_t reference = ParBsHardwareCost({}).TotalBits();
    std::cout << "Paper reference (8 cores, 128 entries, 8 banks): 1412 "
                 "bits; computed: "
              << reference << " — "
              << (reference == 1412 ? "exact match" : "MISMATCH") << "\n";
    session.RecordValue("hardware cost", "paper reference match",
                        reference == 1412 ? 1.0 : 0.0);
    return reference == 1412 ? 0 : 1;
}
