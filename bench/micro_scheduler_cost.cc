/**
 * @file
 * Microbenchmark (google-benchmark) of the per-cycle scheduling decision —
 * the paper's implementability argument: PAR-BS uses "simple prioritization
 * rules that depend on request counts" and needs no complex arithmetic,
 * unlike STFM's slowdown estimation (which the hardware proposal implements
 * with dividers).  This measures the software decision cost of each policy
 * under an identical standing request mix.
 *
 * Three families:
 *
 *  - BM_<policy> — default-path per-tick cost at the historical 8-thread /
 *    96-request operating point (the perf-trajectory series).
 *  - BM_<policy>_indexed / BM_<policy>_scan at 4/8/16 cores with the read
 *    buffer loaded to capacity — indexed per-bank selection (DESIGN.md §5e)
 *    against the full-buffer scan, same workload, same scheduler.  The CI
 *    perf gate requires indexed to beat scan on the 16-core config.
 *  - BM_<policy>_nofastpath / BM_IdleTick_* — next-event skip-ahead cost
 *    and savings (PR 3's machinery), unchanged series.
 *  - BM_System_serial / BM_System_sharded — whole-System cycle-loop wall
 *    clock, serial against the channel-sharded engine (DESIGN.md §5g) at
 *    the 16-core/4-channel and 64-core/8-channel operating points.  The
 *    two engines are bit-identical by construction, so this pair measures
 *    nothing but speed; the CI perf gate holds sharded >= serial on the
 *    4-channel config and >= 1.5x on the 8-channel one (multi-core
 *    runners only).
 */

#include <benchmark/benchmark.h>

#include <functional>

#include "common/rng.hh"
#include "mem/controller.hh"
#include "obs/latency.hh"
#include "obs/tracer.hh"
#include "sched/factory.hh"
#include "sim/system.hh"
#include "trace/synthetic.hh"

namespace parbs {
namespace {

/** A controller pre-loaded with a reproducible mixed request population. */
std::unique_ptr<Controller>
LoadedController(SchedulerKind kind, std::uint32_t requests,
                 bool fast_path = true, std::uint32_t threads = 8,
                 bool indexed = true, double write_fraction = 0.2,
                 const std::function<void(ControllerConfig&)>& customize = {})
{
    SchedulerConfig scheduler_config;
    scheduler_config.kind = kind;
    ControllerConfig config;
    config.enable_refresh = false;
    config.fast_path = fast_path;
    config.indexed_selection = indexed;
    if (customize) {
        customize(config);
    }
    dram::Geometry geometry;
    geometry.rows_per_bank = 1024;
    auto controller = std::make_unique<Controller>(
        config, dram::TimingParams{}, geometry, threads,
        MakeScheduler(scheduler_config));
    Rng rng(42);
    for (std::uint32_t i = 0; i < requests; ++i) {
        auto request = std::make_unique<MemRequest>();
        request->id = i + 1;
        request->thread = static_cast<ThreadId>(rng.NextBelow(threads));
        request->coords.bank = static_cast<std::uint32_t>(rng.NextBelow(8));
        request->coords.row = static_cast<std::uint32_t>(rng.NextBelow(64));
        request->is_write = rng.NextBool(write_fraction);
        controller->Enqueue(std::move(request), 0);
    }
    return controller;
}

void
SchedulerTick(benchmark::State& state, SchedulerKind kind,
              bool fast_path = true)
{
    auto controller = LoadedController(kind, 96, fast_path);
    DramCycle now = 0;
    for (auto _ : state) {
        controller->Tick(now);
        now += 1;
        // Keep the buffer populated so every tick makes real decisions.
        if (controller->pending_reads() < 48) {
            state.PauseTiming();
            controller = LoadedController(kind, 96, fast_path);
            now = 0;
            state.ResumeTiming();
        }
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

/**
 * Selection-path cost at a fully-loaded read buffer (128 standing reads —
 * the paper's buffer capacity) spread over `cores` threads: the candidate
 * gather + two-level pick dominates the tick, so the indexed-vs-scan pair
 * isolates what the per-bank restructuring buys as cores scale.
 */
void
SelectionTick(benchmark::State& state, SchedulerKind kind,
              std::uint32_t cores, bool indexed)
{
    constexpr std::uint32_t kFullBuffer = 128;
    auto controller = LoadedController(kind, kFullBuffer, /*fast_path=*/true,
                                       cores, indexed,
                                       /*write_fraction=*/0.0);
    DramCycle now = 0;
    for (auto _ : state) {
        controller->Tick(now);
        now += 1;
        // Stay near capacity so every selection walks a loaded buffer.
        if (controller->pending_reads() < kFullBuffer / 2) {
            state.PauseTiming();
            controller = LoadedController(kind, kFullBuffer,
                                          /*fast_path=*/true, cores, indexed,
                                          /*write_fraction=*/0.0);
            now = 0;
            state.ResumeTiming();
        }
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

/**
 * The observability overhead pair at the 16-core loaded operating point:
 * obs_off is the same configuration as BM_ParBs_indexed/16 but built
 * through the observability-aware construction path with null sinks (the
 * CI gate holds it within 1% of BM_ParBs_indexed/16 — the zero-overhead-
 * when-off claim of DESIGN.md §5f); obs_on attaches a live tracer ring and
 * latency anatomy and is informational.
 */
void
ObsTick(benchmark::State& state, bool attach)
{
    constexpr std::uint32_t kFullBuffer = 128;
    constexpr std::uint32_t kCores = 16;
    obs::Tracer tracer(std::size_t{1} << 16);
    obs::LatencyAnatomy latency(kCores);
    auto controller =
        LoadedController(SchedulerKind::kParBs, kFullBuffer,
                         /*fast_path=*/true, kCores, /*indexed=*/true,
                         /*write_fraction=*/0.0);
    if (attach) {
        controller->AttachObservability(&tracer, &latency, 0);
    }
    DramCycle now = 0;
    for (auto _ : state) {
        controller->Tick(now);
        now += 1;
        if (controller->pending_reads() < kFullBuffer / 2) {
            state.PauseTiming();
            controller = LoadedController(SchedulerKind::kParBs, kFullBuffer,
                                          /*fast_path=*/true, kCores,
                                          /*indexed=*/true,
                                          /*write_fraction=*/0.0);
            if (attach) {
                controller->AttachObservability(&tracer, &latency, 0);
            }
            now = 0;
            state.ResumeTiming();
        }
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

/**
 * The RAS overhead pair at the 16-core loaded operating point: ras_off is
 * BM_ParBs_indexed/16 with the RAS hooks compiled in but disabled (the CI
 * gate holds it within 1% — RAS must be free when off); ras_on runs the
 * deterministic error model at a realistic 1e-4 transient rate and is
 * informational.
 */
void
RasTick(benchmark::State& state, bool enabled)
{
    constexpr std::uint32_t kFullBuffer = 128;
    constexpr std::uint32_t kCores = 16;
    const auto customize = [enabled](ControllerConfig& config) {
        config.ras.enabled = enabled;
        config.ras.transient_error_rate = enabled ? 1e-4 : 0.0;
        config.ras.seed = 99;
    };
    auto controller =
        LoadedController(SchedulerKind::kParBs, kFullBuffer,
                         /*fast_path=*/true, kCores, /*indexed=*/true,
                         /*write_fraction=*/0.0, customize);
    DramCycle now = 0;
    for (auto _ : state) {
        controller->Tick(now);
        now += 1;
        if (controller->pending_reads() < kFullBuffer / 2) {
            state.PauseTiming();
            controller = LoadedController(SchedulerKind::kParBs, kFullBuffer,
                                          /*fast_path=*/true, kCores,
                                          /*indexed=*/true,
                                          /*write_fraction=*/0.0, customize);
            now = 0;
            state.ResumeTiming();
        }
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

/**
 * Per-tick cost on a drained controller: with the fast path the first
 * tick computes a kNever bound and every further tick is a pure skip;
 * without it, every tick re-scans the empty queues.
 */
void
IdleTick(benchmark::State& state, bool fast_path)
{
    auto controller = LoadedController(SchedulerKind::kParBs, 0, fast_path);
    DramCycle now = 0;
    for (auto _ : state) {
        controller->Tick(now);
        now += 1;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

/**
 * Whole-System cycle-loop cost: cores, caches, and all controllers
 * advancing together in 20k-CPU-cycle slices under memory-intensive
 * synthetic traces.  `channel_jobs` 1 is the serial reference loop; 0
 * runs one worker per channel through the lookahead-window engine.  Items
 * processed = simulated CPU cycles, so items/s compares directly across
 * the pair.
 */
void
SystemSlice(benchmark::State& state, std::uint32_t cores,
            std::uint32_t channels, unsigned channel_jobs,
            bool engine_profile = false)
{
    SystemConfig config = SystemConfig::Baseline(cores, channels);
    config.channel_jobs = channel_jobs;
    config.observability.engine_profile = engine_profile;
    dram::AddressMapper mapper(config.geometry, config.xor_bank_hash);
    std::vector<std::unique_ptr<TraceSource>> traces;
    for (ThreadId t = 0; t < cores; ++t) {
        SyntheticParams params;
        params.mpki = 20.0;
        traces.push_back(std::make_unique<SyntheticTraceSource>(
            params, mapper, t, cores, 1000 + t));
    }
    constexpr CpuCycle kSlice = 20'000;
    System system(config, std::move(traces));
    for (auto _ : state) {
        system.Run(kSlice);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(kSlice));
}

void
BM_System_serial(benchmark::State& s)
{
    const auto cores = static_cast<std::uint32_t>(s.range(0));
    SystemSlice(s, cores, cores == 64 ? 8 : cores / 4, /*channel_jobs=*/1);
}

void
BM_System_sharded(benchmark::State& s)
{
    const auto cores = static_cast<std::uint32_t>(s.range(0));
    SystemSlice(s, cores, cores == 64 ? 8 : cores / 4, /*channel_jobs=*/0);
}

/**
 * The engine flight-recorder overhead pair on the sharded 64-core/8-channel
 * operating point: prof_off is BM_System_sharded/64 rebuilt through the
 * same configuration path with the profiler left disabled (the CI gate
 * holds it within 1% of BM_System_sharded/64 — the raw-pointer null checks
 * must be free, DESIGN.md §5h); prof_on records every phase and is
 * informational.
 */
void
BM_System_prof_off(benchmark::State& s)
{
    const auto cores = static_cast<std::uint32_t>(s.range(0));
    SystemSlice(s, cores, cores == 64 ? 8 : cores / 4, /*channel_jobs=*/0,
                /*engine_profile=*/false);
}

void
BM_System_prof_on(benchmark::State& s)
{
    const auto cores = static_cast<std::uint32_t>(s.range(0));
    SystemSlice(s, cores, cores == 64 ? 8 : cores / 4, /*channel_jobs=*/0,
                /*engine_profile=*/true);
}

void BM_Fcfs(benchmark::State& s) { SchedulerTick(s, SchedulerKind::kFcfs); }
void BM_FrFcfs(benchmark::State& s)
{
    SchedulerTick(s, SchedulerKind::kFrFcfs);
}
void BM_Nfq(benchmark::State& s) { SchedulerTick(s, SchedulerKind::kNfq); }
void BM_Stfm(benchmark::State& s) { SchedulerTick(s, SchedulerKind::kStfm); }
void BM_ParBs(benchmark::State& s)
{
    SchedulerTick(s, SchedulerKind::kParBs);
}
void BM_Bliss(benchmark::State& s)
{
    SchedulerTick(s, SchedulerKind::kBliss);
}
void BM_FrFcfs_nofastpath(benchmark::State& s)
{
    SchedulerTick(s, SchedulerKind::kFrFcfs, /*fast_path=*/false);
}
void BM_ParBs_nofastpath(benchmark::State& s)
{
    SchedulerTick(s, SchedulerKind::kParBs, /*fast_path=*/false);
}
void BM_IdleTick_skip(benchmark::State& s) { IdleTick(s, true); }
void BM_IdleTick_scan(benchmark::State& s) { IdleTick(s, false); }
void BM_ParBs_obs_off(benchmark::State& s) { ObsTick(s, false); }
void BM_ParBs_obs_on(benchmark::State& s) { ObsTick(s, true); }
void BM_ParBs_ras_off(benchmark::State& s) { RasTick(s, false); }
void BM_ParBs_ras_on(benchmark::State& s) { RasTick(s, true); }

#define PARBS_SELECTION_PAIR(Name, Kind)                                    \
    void BM_##Name##_indexed(benchmark::State& s)                           \
    {                                                                       \
        SelectionTick(s, SchedulerKind::Kind,                               \
                      static_cast<std::uint32_t>(s.range(0)), true);        \
    }                                                                       \
    void BM_##Name##_scan(benchmark::State& s)                              \
    {                                                                       \
        SelectionTick(s, SchedulerKind::Kind,                               \
                      static_cast<std::uint32_t>(s.range(0)), false);       \
    }                                                                       \
    BENCHMARK(BM_##Name##_indexed)->Arg(4)->Arg(8)->Arg(16);                \
    BENCHMARK(BM_##Name##_scan)->Arg(4)->Arg(8)->Arg(16)

BENCHMARK(BM_Fcfs);
BENCHMARK(BM_FrFcfs);
BENCHMARK(BM_Nfq);
BENCHMARK(BM_Stfm);
BENCHMARK(BM_ParBs);
BENCHMARK(BM_Bliss);
PARBS_SELECTION_PAIR(Fcfs, kFcfs);
PARBS_SELECTION_PAIR(FrFcfs, kFrFcfs);
PARBS_SELECTION_PAIR(Nfq, kNfq);
PARBS_SELECTION_PAIR(Stfm, kStfm);
PARBS_SELECTION_PAIR(ParBs, kParBs);
PARBS_SELECTION_PAIR(Bliss, kBliss);
BENCHMARK(BM_FrFcfs_nofastpath);
BENCHMARK(BM_ParBs_nofastpath);
BENCHMARK(BM_IdleTick_skip);
BENCHMARK(BM_IdleTick_scan);
BENCHMARK(BM_ParBs_obs_off);
BENCHMARK(BM_ParBs_obs_on);
BENCHMARK(BM_ParBs_ras_off);
BENCHMARK(BM_ParBs_ras_on);
// Real-time (not CPU-time) is the honest metric for the sharded engine:
// its work happens on worker threads the main thread only coordinates.
BENCHMARK(BM_System_serial)->Arg(16)->Arg(64)->UseRealTime();
BENCHMARK(BM_System_sharded)->Arg(16)->Arg(64)->UseRealTime();
BENCHMARK(BM_System_prof_off)->Arg(64)->UseRealTime();
BENCHMARK(BM_System_prof_on)->Arg(64)->UseRealTime();

} // namespace
} // namespace parbs

BENCHMARK_MAIN();
