/**
 * @file
 * Microbenchmark (google-benchmark) of the per-cycle scheduling decision —
 * the paper's implementability argument: PAR-BS uses "simple prioritization
 * rules that depend on request counts" and needs no complex arithmetic,
 * unlike STFM's slowdown estimation (which the hardware proposal implements
 * with dividers).  This measures the software decision cost of each policy
 * under an identical standing request mix.
 */

#include <benchmark/benchmark.h>

#include "common/rng.hh"
#include "mem/controller.hh"
#include "sched/factory.hh"

namespace parbs {
namespace {

/** A controller pre-loaded with a reproducible mixed request population. */
std::unique_ptr<Controller>
LoadedController(SchedulerKind kind, std::uint32_t requests)
{
    SchedulerConfig scheduler_config;
    scheduler_config.kind = kind;
    ControllerConfig config;
    config.enable_refresh = false;
    dram::Geometry geometry;
    geometry.rows_per_bank = 1024;
    auto controller = std::make_unique<Controller>(
        config, dram::TimingParams{}, geometry, 8,
        MakeScheduler(scheduler_config));
    Rng rng(42);
    for (std::uint32_t i = 0; i < requests; ++i) {
        auto request = std::make_unique<MemRequest>();
        request->id = i + 1;
        request->thread = static_cast<ThreadId>(rng.NextBelow(8));
        request->coords.bank = static_cast<std::uint32_t>(rng.NextBelow(8));
        request->coords.row = static_cast<std::uint32_t>(rng.NextBelow(64));
        request->is_write = rng.NextBool(0.2);
        controller->Enqueue(std::move(request), 0);
    }
    return controller;
}

void
SchedulerTick(benchmark::State& state, SchedulerKind kind)
{
    auto controller = LoadedController(kind, 96);
    DramCycle now = 0;
    for (auto _ : state) {
        controller->Tick(now);
        now += 1;
        // Keep the buffer populated so every tick makes real decisions.
        if (controller->pending_reads() < 48) {
            state.PauseTiming();
            controller = LoadedController(kind, 96);
            now = 0;
            state.ResumeTiming();
        }
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_Fcfs(benchmark::State& s) { SchedulerTick(s, SchedulerKind::kFcfs); }
void BM_FrFcfs(benchmark::State& s)
{
    SchedulerTick(s, SchedulerKind::kFrFcfs);
}
void BM_Nfq(benchmark::State& s) { SchedulerTick(s, SchedulerKind::kNfq); }
void BM_Stfm(benchmark::State& s) { SchedulerTick(s, SchedulerKind::kStfm); }
void BM_ParBs(benchmark::State& s)
{
    SchedulerTick(s, SchedulerKind::kParBs);
}

BENCHMARK(BM_Fcfs);
BENCHMARK(BM_FrFcfs);
BENCHMARK(BM_Nfq);
BENCHMARK(BM_Stfm);
BENCHMARK(BM_ParBs);

} // namespace
} // namespace parbs

BENCHMARK_MAIN();
