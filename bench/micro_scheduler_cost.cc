/**
 * @file
 * Microbenchmark (google-benchmark) of the per-cycle scheduling decision —
 * the paper's implementability argument: PAR-BS uses "simple prioritization
 * rules that depend on request counts" and needs no complex arithmetic,
 * unlike STFM's slowdown estimation (which the hardware proposal implements
 * with dividers).  This measures the software decision cost of each policy
 * under an identical standing request mix.
 *
 * The *_scan variants disable the controller's next-event fast path, so
 * the pairwise deltas report exactly what the skip-ahead machinery costs
 * (bound maintenance on busy ticks) and saves (skipped ticks; see
 * BM_IdleTick_* for the pure skip path).
 */

#include <benchmark/benchmark.h>

#include "common/rng.hh"
#include "mem/controller.hh"
#include "sched/factory.hh"

namespace parbs {
namespace {

/** A controller pre-loaded with a reproducible mixed request population. */
std::unique_ptr<Controller>
LoadedController(SchedulerKind kind, std::uint32_t requests,
                 bool fast_path = true)
{
    SchedulerConfig scheduler_config;
    scheduler_config.kind = kind;
    ControllerConfig config;
    config.enable_refresh = false;
    config.fast_path = fast_path;
    dram::Geometry geometry;
    geometry.rows_per_bank = 1024;
    auto controller = std::make_unique<Controller>(
        config, dram::TimingParams{}, geometry, 8,
        MakeScheduler(scheduler_config));
    Rng rng(42);
    for (std::uint32_t i = 0; i < requests; ++i) {
        auto request = std::make_unique<MemRequest>();
        request->id = i + 1;
        request->thread = static_cast<ThreadId>(rng.NextBelow(8));
        request->coords.bank = static_cast<std::uint32_t>(rng.NextBelow(8));
        request->coords.row = static_cast<std::uint32_t>(rng.NextBelow(64));
        request->is_write = rng.NextBool(0.2);
        controller->Enqueue(std::move(request), 0);
    }
    return controller;
}

void
SchedulerTick(benchmark::State& state, SchedulerKind kind,
              bool fast_path = true)
{
    auto controller = LoadedController(kind, 96, fast_path);
    DramCycle now = 0;
    for (auto _ : state) {
        controller->Tick(now);
        now += 1;
        // Keep the buffer populated so every tick makes real decisions.
        if (controller->pending_reads() < 48) {
            state.PauseTiming();
            controller = LoadedController(kind, 96, fast_path);
            now = 0;
            state.ResumeTiming();
        }
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

/**
 * Per-tick cost on a drained controller: with the fast path the first
 * tick computes a kNever bound and every further tick is a pure skip;
 * without it, every tick re-scans the empty queues.
 */
void
IdleTick(benchmark::State& state, bool fast_path)
{
    auto controller = LoadedController(SchedulerKind::kParBs, 0, fast_path);
    DramCycle now = 0;
    for (auto _ : state) {
        controller->Tick(now);
        now += 1;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_Fcfs(benchmark::State& s) { SchedulerTick(s, SchedulerKind::kFcfs); }
void BM_FrFcfs(benchmark::State& s)
{
    SchedulerTick(s, SchedulerKind::kFrFcfs);
}
void BM_Nfq(benchmark::State& s) { SchedulerTick(s, SchedulerKind::kNfq); }
void BM_Stfm(benchmark::State& s) { SchedulerTick(s, SchedulerKind::kStfm); }
void BM_ParBs(benchmark::State& s)
{
    SchedulerTick(s, SchedulerKind::kParBs);
}
void BM_FrFcfs_scan(benchmark::State& s)
{
    SchedulerTick(s, SchedulerKind::kFrFcfs, /*fast_path=*/false);
}
void BM_ParBs_scan(benchmark::State& s)
{
    SchedulerTick(s, SchedulerKind::kParBs, /*fast_path=*/false);
}
void BM_IdleTick_skip(benchmark::State& s) { IdleTick(s, true); }
void BM_IdleTick_scan(benchmark::State& s) { IdleTick(s, false); }

BENCHMARK(BM_Fcfs);
BENCHMARK(BM_FrFcfs);
BENCHMARK(BM_Nfq);
BENCHMARK(BM_Stfm);
BENCHMARK(BM_ParBs);
BENCHMARK(BM_FrFcfs_scan);
BENCHMARK(BM_ParBs_scan);
BENCHMARK(BM_IdleTick_skip);
BENCHMARK(BM_IdleTick_scan);

} // namespace
} // namespace parbs

BENCHMARK_MAIN();
