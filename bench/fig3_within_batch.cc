/**
 * @file
 * Figure 3: the within-batch scheduling example.  Reproduces the paper's
 * per-thread batch-completion times for FCFS, FR-FCFS, and PAR-BS on the
 * reconstructed request layout, including the service order per bank.
 *
 * Paper targets: FCFS [4, 4, 5, 7] avg 5; FR-FCFS [5.5, 3, 4.5, 4.5]
 * avg 4.375; PAR-BS [1, 2, 4, 5.5] avg 3.125.
 */

#include <iostream>

#include "bench_common.hh"
#include "core/abstract_batch.hh"

int
main(int argc, char** argv)
{
    using namespace parbs;
    using namespace parbs::abstract;
    bench::Session session(argc, argv, "Figure 3",
                           "within-batch scheduling example (abstract "
                           "model)");

    const AbstractBatch batch = Figure3Batch();

    std::cout << "Reconstructed batch (oldest first per bank; entries are "
                 "thread/row):\n";
    for (std::size_t b = 0; b < batch.banks.size(); ++b) {
        std::cout << "  bank " << b << ":";
        for (const AbstractRequest& request : batch.banks[b]) {
            std::cout << "  T" << request.thread + 1 << "/r" << request.row;
        }
        std::cout << "\n";
    }
    std::cout << "\n";

    const struct {
        AbstractPolicy policy;
        const char* name;
        double paper[4];
        double paper_avg;
    } rows[] = {
        {AbstractPolicy::kFcfs, "FCFS", {4, 4, 5, 7}, 5.0},
        {AbstractPolicy::kFrFcfs, "FR-FCFS", {5.5, 3, 4.5, 4.5}, 4.375},
        {AbstractPolicy::kParBs, "PAR-BS", {1, 2, 4, 5.5}, 3.125},
    };

    Table table({"policy", "T1", "T2", "T3", "T4", "AVG", "paper AVG",
                 "match"});
    bool all_match = true;
    for (const auto& row : rows) {
        const AbstractResult result = ScheduleBatch(batch, row.policy);
        bool match = true;
        for (int t = 0; t < 4; ++t) {
            match &= result.completion[t] == row.paper[t];
            session.RecordValue("completion times",
                                std::string(row.name) + "/T" +
                                    std::to_string(t + 1),
                                result.completion[t]);
        }
        all_match &= match;
        table.AddRow({row.name, Table::Num(result.completion[0], 1),
                      Table::Num(result.completion[1], 1),
                      Table::Num(result.completion[2], 1),
                      Table::Num(result.completion[3], 1),
                      Table::Num(result.AverageCompletion(), 3),
                      Table::Num(row.paper_avg, 3),
                      match ? "exact" : "MISMATCH"});
        session.RecordValue("completion times",
                            std::string(row.name) + "/avg",
                            result.AverageCompletion());
    }
    std::cout << table.Render() << "\n";

    const auto rank = MaxTotalRanking(batch);
    std::cout << "Max-Total ranking (paper: T1 > T2 > T3 > T4): ";
    for (int position = 0; position < 4; ++position) {
        for (ThreadId t = 0; t < 4; ++t) {
            if (rank[t] == static_cast<std::uint32_t>(position)) {
                std::cout << "T" << t + 1
                          << (position < 3 ? " > " : "\n");
            }
        }
    }
    std::cout << (all_match ? "\nAll completion times match the paper "
                              "exactly.\n"
                            : "\nWARNING: mismatch vs the paper.\n");
    session.RecordValue("completion times", "all_match",
                        all_match ? 1.0 : 0.0);
    return all_match ? 0 : 1;
}
