/**
 * @file
 * Figure 14: system-level thread priority support.
 *
 * Left: four copies of lbm at PAR-BS priorities 1-1-2-8 (NFQ/STFM weights
 * 8-8-4-1).  Paper shape: all schedulers respect relative priorities, but
 * PAR-BS gives the highest-priority copies the smallest slowdowns.
 *
 * Right: omnetpp as the only important thread; the other three threads are
 * purely opportunistic under PAR-BS (never marked) and approximated under
 * NFQ/STFM with a weight of 8192 vs 1.  Paper shape: PAR-BS slows omnetpp
 * by only 1.04X vs 1.14X (STFM) / 1.19X (NFQ).
 */

#include <iostream>

#include "bench_common.hh"

namespace {

void
PrintRun(const parbs::SharedRun& run, const std::string& label)
{
    using parbs::Table;
    std::cout << "  " << label << ":";
    for (std::size_t t = 0; t < run.benchmarks.size(); ++t) {
        std::cout << "  " << Table::Num(run.metrics.memory_slowdown[t]);
    }
    std::cout << "\n";
}

/**
 * Builds the five-scheduler task list for one panel: PAR-BS gets the
 * priorities, NFQ/STFM get the weights, the rest run unmodified.
 */
std::vector<parbs::bench::RunTask>
PanelTasks(const parbs::WorkloadSpec& workload,
           const std::vector<parbs::ThreadPriority>& priorities,
           const std::vector<double>& weights)
{
    using namespace parbs;
    std::vector<bench::RunTask> tasks;
    for (const auto& scheduler : ComparisonSchedulers()) {
        const bool weighted = scheduler.kind == SchedulerKind::kNfq ||
                              scheduler.kind == SchedulerKind::kStfm;
        const bool prioritized = scheduler.kind == SchedulerKind::kParBs;
        tasks.push_back({workload, scheduler,
                         prioritized ? priorities
                                     : std::vector<ThreadPriority>{},
                         weighted ? weights : std::vector<double>{}});
    }
    return tasks;
}

void
PrintPanel(parbs::bench::Session& session,
           const std::vector<parbs::bench::RunTask>& tasks,
           const std::vector<parbs::SharedRun>& runs,
           const std::string& section)
{
    for (std::size_t i = 0; i < runs.size(); ++i) {
        const bool weighted = !tasks[i].weights.empty();
        const bool prioritized = !tasks[i].priorities.empty();
        PrintRun(runs[i], runs[i].scheduler + (weighted ? " (weights)"
                                               : prioritized
                                                   ? " (priorities)"
                                                   : " (none)"));
        session.RecordRun(section, runs[i]);
    }
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace parbs;
    bench::Session session(argc, argv, "Figure 14",
                           "thread priorities and opportunistic service");
    ExperimentRunner runner = bench::MakeRunner(session.options(), 4);

    // Left: 4 x lbm with distinct priorities.
    {
        const WorkloadSpec workload = Copies("470.lbm", 4);
        std::cout << "4 x lbm; PAR-BS priorities 1,1,2,8; NFQ/STFM weights "
                     "8,8,4,1\n(memory slowdowns; copies in thread "
                     "order):\n\n";
        const std::vector<bench::RunTask> tasks =
            PanelTasks(workload, {1, 1, 2, 8}, {8, 8, 4, 1});
        PrintPanel(session, tasks,
                   bench::RunTasks(session, runner, tasks), "priorities");
        std::cout << "\n";
    }

    // Right: omnetpp important, the rest opportunistic.
    {
        WorkloadSpec workload;
        workload.name = "opportunistic";
        workload.benchmarks = {"462.libquantum", "433.milc", "471.omnetpp",
                               "473.astar"};
        std::cout << "omnetpp prioritized; libquantum/milc/astar "
                     "opportunistic\n(PAR-BS: level L = never marked; "
                     "NFQ/STFM: weights 1,1,8192,1):\n\n";
        const std::vector<bench::RunTask> tasks = PanelTasks(
            workload,
            {kOpportunisticPriority, kOpportunisticPriority, 1,
             kOpportunisticPriority},
            {1, 1, 8192, 1});
        PrintPanel(session, tasks,
                   bench::RunTasks(session, runner, tasks),
                   "opportunistic");
        std::cout << "\nFirst number pairs with the first benchmark; "
                     "omnetpp is the third column.\n";
    }
    return 0;
}
