/**
 * @file
 * Figure 14: system-level thread priority support.
 *
 * Left: four copies of lbm at PAR-BS priorities 1-1-2-8 (NFQ/STFM weights
 * 8-8-4-1).  Paper shape: all schedulers respect relative priorities, but
 * PAR-BS gives the highest-priority copies the smallest slowdowns.
 *
 * Right: omnetpp as the only important thread; the other three threads are
 * purely opportunistic under PAR-BS (never marked) and approximated under
 * NFQ/STFM with a weight of 8192 vs 1.  Paper shape: PAR-BS slows omnetpp
 * by only 1.04X vs 1.14X (STFM) / 1.19X (NFQ).
 */

#include <iostream>

#include "bench_common.hh"

namespace {

void
PrintRun(const parbs::SharedRun& run, const std::string& label)
{
    using parbs::Table;
    std::vector<std::string> header{"scheduler"};
    for (const auto& benchmark : run.benchmarks) {
        header.push_back(benchmark);
    }
    static_cast<void>(header);
    std::cout << "  " << label << ":";
    for (std::size_t t = 0; t < run.benchmarks.size(); ++t) {
        std::cout << "  " << Table::Num(run.metrics.memory_slowdown[t]);
    }
    std::cout << "\n";
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace parbs;
    const bench::Options options = bench::ParseOptions(argc, argv);
    bench::Banner("Figure 14", "thread priorities and opportunistic service");
    ExperimentRunner runner = bench::MakeRunner(options, 4);

    // Left: 4 x lbm with distinct priorities.
    {
        const WorkloadSpec workload = Copies("470.lbm", 4);
        std::cout << "4 x lbm; PAR-BS priorities 1,1,2,8; NFQ/STFM weights "
                     "8,8,4,1\n(memory slowdowns; copies in thread "
                     "order):\n\n";
        const std::vector<double> weights{8, 8, 4, 1};
        const std::vector<ThreadPriority> priorities{1, 1, 2, 8};
        for (const auto& scheduler : ComparisonSchedulers()) {
            const bool weighted =
                scheduler.kind == SchedulerKind::kNfq ||
                scheduler.kind == SchedulerKind::kStfm;
            const bool prioritized =
                scheduler.kind == SchedulerKind::kParBs;
            const SharedRun run = runner.RunShared(
                workload, scheduler,
                prioritized ? &priorities : nullptr,
                weighted ? &weights : nullptr);
            PrintRun(run, run.scheduler + (weighted   ? " (weights)"
                                           : prioritized ? " (priorities)"
                                                         : " (none)"));
        }
        std::cout << "\n";
    }

    // Right: omnetpp important, the rest opportunistic.
    {
        WorkloadSpec workload;
        workload.name = "opportunistic";
        workload.benchmarks = {"462.libquantum", "433.milc", "471.omnetpp",
                               "473.astar"};
        std::cout << "omnetpp prioritized; libquantum/milc/astar "
                     "opportunistic\n(PAR-BS: level L = never marked; "
                     "NFQ/STFM: weights 1,1,8192,1):\n\n";
        const std::vector<double> weights{1, 1, 8192, 1};
        const std::vector<ThreadPriority> priorities{
            kOpportunisticPriority, kOpportunisticPriority, 1,
            kOpportunisticPriority};
        for (const auto& scheduler : ComparisonSchedulers()) {
            const bool weighted =
                scheduler.kind == SchedulerKind::kNfq ||
                scheduler.kind == SchedulerKind::kStfm;
            const bool prioritized =
                scheduler.kind == SchedulerKind::kParBs;
            const SharedRun run = runner.RunShared(
                workload, scheduler,
                prioritized ? &priorities : nullptr,
                weighted ? &weights : nullptr);
            PrintRun(run, run.scheduler + (weighted   ? " (weights)"
                                           : prioritized ? " (priorities)"
                                                         : " (none)"));
        }
        std::cout << "\nFirst number pairs with the first benchmark; "
                     "omnetpp is the third column.\n";
    }
    return 0;
}
