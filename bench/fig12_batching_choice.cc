/**
 * @file
 * Figure 12: the effect of the batching scheme — time-based static
 * batching with Batch-Duration from 400 to 25600 DRAM-command cycles,
 * empty-slot (eslot) batching, and PAR-BS's full batching.
 *
 * Paper shape: very small Batch-Durations degenerate to rank/row-hit
 * prioritization (unfair to non-intensive threads); very large ones
 * eliminate batching and approach FR-FCFS; the static sweet spot (~3200)
 * still loses to full batching; eslot over-penalizes intensive threads.
 */

#include <iostream>

#include "bench_common.hh"

namespace {

struct Variant {
    std::string name;
    parbs::SchedulerConfig config;
};

std::vector<Variant>
Variants()
{
    using namespace parbs;
    std::vector<Variant> out;
    for (DramCycle duration :
         {400u, 800u, 1600u, 3200u, 6400u, 12800u, 25600u}) {
        SchedulerConfig config;
        config.kind = SchedulerKind::kParBsStatic;
        // Batch-Duration is specified in CPU cycles in the paper's text;
        // the scheduler operates on the DRAM command clock (10:1).
        config.static_batch_duration = duration / 10;
        out.push_back({"st-" + std::to_string(duration), config});
    }
    SchedulerConfig eslot;
    eslot.kind = SchedulerKind::kParBsEslot;
    out.push_back({"eslot", eslot});
    SchedulerConfig full;
    full.kind = SchedulerKind::kParBs;
    out.push_back({"full", full});
    return out;
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace parbs;
    bench::Session session(argc, argv, "Figure 12",
                           "effect of the batching choice");
    ExperimentRunner runner = bench::MakeRunner(session.options(), 4);
    const std::vector<Variant> variants = Variants();

    const std::uint32_t count = session.options().Count(4, 12, 100);
    const auto mixes = RandomMixes(count, 4, session.options().seed);
    std::cout << "Average over " << mixes.size() << " 4-core workloads:\n\n";
    std::vector<bench::RunTask> tasks;
    tasks.reserve(variants.size() * mixes.size());
    for (const Variant& variant : variants) {
        for (const auto& workload : mixes) {
            tasks.push_back({workload, variant.config, {}, {}});
        }
    }
    const std::vector<SharedRun> population =
        bench::RunTasks(session, runner, tasks);
    Table averages({"batching", "unfairness(gmean)", "weighted-sp",
                    "hmean-sp"});
    for (std::size_t v = 0; v < variants.size(); ++v) {
        const std::vector<SharedRun> runs(
            population.begin() +
                static_cast<std::ptrdiff_t>(v * mixes.size()),
            population.begin() +
                static_cast<std::ptrdiff_t>((v + 1) * mixes.size()));
        const AggregateMetrics agg = ExperimentRunner::Aggregate(runs);
        averages.AddRow({variants[v].name,
                         Table::Num(agg.unfairness_gmean, 3),
                         Table::Num(agg.weighted_speedup_gmean, 3),
                         Table::Num(agg.hmean_speedup_gmean, 3)});
        session.RecordAggregate("population", variants[v].name, agg);
    }
    std::cout << averages.Render() << "\n";

    for (const WorkloadSpec& workload : {CaseStudy1(), CaseStudy2()}) {
        std::cout << "Memory slowdowns, " << workload.name << ":\n\n";
        std::vector<std::string> header{"batching"};
        for (const auto& benchmark : workload.benchmarks) {
            header.push_back(benchmark);
        }
        Table slowdowns(std::move(header));
        std::vector<bench::RunTask> study_tasks;
        study_tasks.reserve(variants.size());
        for (const Variant& variant : variants) {
            study_tasks.push_back({workload, variant.config, {}, {}});
        }
        const std::vector<SharedRun> runs =
            bench::RunTasks(session, runner, study_tasks);
        for (std::size_t v = 0; v < variants.size(); ++v) {
            std::vector<std::string> row{variants[v].name};
            for (double slowdown : runs[v].metrics.memory_slowdown) {
                row.push_back(Table::Num(slowdown));
            }
            slowdowns.AddRow(std::move(row));
            session.RecordRun(workload.name, runs[v]);
        }
        std::cout << slowdowns.Render() << "\n";
    }
    return 0;
}
