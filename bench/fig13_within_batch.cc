/**
 * @file
 * Figure 13: the effect of the within-batch scheduling policy — Max-Total
 * (PAR-BS), Total-Max, random and round-robin ranking, and no ranking at
 * all (FR-FCFS or FCFS inside the batch), with STFM as the external
 * yardstick; evaluated on the workload population plus the homogeneous
 * 4xlbm (high BLP) and 4xmatlab (low BLP) mixes.
 *
 * Paper shape: the shortest-job-first rankings (Max-Total / Total-Max)
 * perform nearly identically and beat random/round-robin by ~5.7%/9.8%
 * (WS/HS) and no-rank FR-FCFS by 4.7%/10.7%; parallelism-awareness
 * matters for 4xlbm but not for 4xmatlab.
 */

#include <iostream>

#include "bench_common.hh"

namespace {

struct Variant {
    std::string name;
    parbs::SchedulerConfig config;
};

std::vector<Variant>
Variants()
{
    using namespace parbs;
    std::vector<Variant> out;
    const struct {
        RankingPolicy policy;
        const char* name;
    } rankings[] = {
        {RankingPolicy::kMaxTotal, "max-total (PAR-BS)"},
        {RankingPolicy::kTotalMax, "total-max"},
        {RankingPolicy::kRandom, "random"},
        {RankingPolicy::kRoundRobin, "round-robin"},
        {RankingPolicy::kNoRankFrFcfs, "no-rank (FR-FCFS)"},
        {RankingPolicy::kNoRankFcfs, "no-rank (FCFS)"},
    };
    for (const auto& ranking : rankings) {
        SchedulerConfig config;
        config.kind = SchedulerKind::kParBs;
        config.parbs.ranking = ranking.policy;
        out.push_back({ranking.name, config});
    }
    SchedulerConfig stfm;
    stfm.kind = SchedulerKind::kStfm;
    out.push_back({"STFM", stfm});
    return out;
}

void
Sweep(parbs::bench::Session& session, parbs::ExperimentRunner& runner,
      const std::vector<parbs::WorkloadSpec>& workloads,
      const std::string& label)
{
    using namespace parbs;
    const std::vector<Variant> variants = Variants();
    std::cout << label << ":\n\n";
    std::vector<bench::RunTask> tasks;
    tasks.reserve(variants.size() * workloads.size());
    for (const Variant& variant : variants) {
        for (const auto& workload : workloads) {
            tasks.push_back({workload, variant.config, {}, {}});
        }
    }
    const std::vector<SharedRun> flat =
        bench::RunTasks(session, runner, tasks);
    Table table({"within-batch policy", "unfairness(gmean)", "weighted-sp",
                 "hmean-sp"});
    for (std::size_t v = 0; v < variants.size(); ++v) {
        const std::vector<SharedRun> runs(
            flat.begin() +
                static_cast<std::ptrdiff_t>(v * workloads.size()),
            flat.begin() +
                static_cast<std::ptrdiff_t>((v + 1) * workloads.size()));
        const AggregateMetrics agg = ExperimentRunner::Aggregate(runs);
        table.AddRow({variants[v].name, Table::Num(agg.unfairness_gmean, 3),
                      Table::Num(agg.weighted_speedup_gmean, 3),
                      Table::Num(agg.hmean_speedup_gmean, 3)});
        session.RecordAggregate(label, variants[v].name, agg);
    }
    std::cout << table.Render() << "\n";
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace parbs;
    bench::Session session(argc, argv, "Figure 13",
                           "effect of the within-batch policy");
    ExperimentRunner runner = bench::MakeRunner(session.options(), 4);

    const std::uint32_t count = session.options().Count(4, 12, 100);
    Sweep(session, runner,
          RandomMixes(count, 4, session.options().seed),
          "Average over the workload population");
    Sweep(session, runner, {Copies("470.lbm", 4)},
          "4 copies of lbm (high BLP)");
    Sweep(session, runner, {Copies("matlab", 4)},
          "4 copies of matlab (low BLP)");
    return 0;
}
