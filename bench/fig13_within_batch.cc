/**
 * @file
 * Figure 13: the effect of the within-batch scheduling policy — Max-Total
 * (PAR-BS), Total-Max, random and round-robin ranking, and no ranking at
 * all (FR-FCFS or FCFS inside the batch), with STFM as the external
 * yardstick; evaluated on the workload population plus the homogeneous
 * 4xlbm (high BLP) and 4xmatlab (low BLP) mixes.
 *
 * Paper shape: the shortest-job-first rankings (Max-Total / Total-Max)
 * perform nearly identically and beat random/round-robin by ~5.7%/9.8%
 * (WS/HS) and no-rank FR-FCFS by 4.7%/10.7%; parallelism-awareness
 * matters for 4xlbm but not for 4xmatlab.
 */

#include <iostream>

#include "bench_common.hh"

namespace {

struct Variant {
    std::string name;
    parbs::SchedulerConfig config;
};

std::vector<Variant>
Variants()
{
    using namespace parbs;
    std::vector<Variant> out;
    const struct {
        RankingPolicy policy;
        const char* name;
    } rankings[] = {
        {RankingPolicy::kMaxTotal, "max-total (PAR-BS)"},
        {RankingPolicy::kTotalMax, "total-max"},
        {RankingPolicy::kRandom, "random"},
        {RankingPolicy::kRoundRobin, "round-robin"},
        {RankingPolicy::kNoRankFrFcfs, "no-rank (FR-FCFS)"},
        {RankingPolicy::kNoRankFcfs, "no-rank (FCFS)"},
    };
    for (const auto& ranking : rankings) {
        SchedulerConfig config;
        config.kind = SchedulerKind::kParBs;
        config.parbs.ranking = ranking.policy;
        out.push_back({ranking.name, config});
    }
    SchedulerConfig stfm;
    stfm.kind = SchedulerKind::kStfm;
    out.push_back({"STFM", stfm});
    return out;
}

void
Sweep(parbs::ExperimentRunner& runner,
      const std::vector<parbs::WorkloadSpec>& workloads,
      const std::string& label)
{
    using namespace parbs;
    std::cout << label << ":\n\n";
    Table table({"within-batch policy", "unfairness(gmean)", "weighted-sp",
                 "hmean-sp"});
    for (const Variant& variant : Variants()) {
        std::vector<SharedRun> runs;
        for (const auto& workload : workloads) {
            runs.push_back(runner.RunShared(workload, variant.config));
        }
        const AggregateMetrics agg = ExperimentRunner::Aggregate(runs);
        table.AddRow({variant.name, Table::Num(agg.unfairness_gmean, 3),
                      Table::Num(agg.weighted_speedup_gmean, 3),
                      Table::Num(agg.hmean_speedup_gmean, 3)});
    }
    std::cout << table.Render() << "\n";
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace parbs;
    const bench::Options options = bench::ParseOptions(argc, argv);
    bench::Banner("Figure 13", "effect of the within-batch policy");
    ExperimentRunner runner = bench::MakeRunner(options, 4);

    const std::uint32_t count = options.Count(4, 12, 100);
    Sweep(runner, RandomMixes(count, 4, options.seed),
          "Average over the workload population");
    Sweep(runner, {Copies("470.lbm", 4)}, "4 copies of lbm (high BLP)");
    Sweep(runner, {Copies("matlab", 4)}, "4 copies of matlab (low BLP)");
    return 0;
}
