/**
 * @file
 * RAS sweep: the five-scheduler lineup at 16 cores under three transient
 * error rates (0, 1e-6, 1e-4).  Reports per-scheduler weighted speedup and
 * unfairness with their deltas against the error-free row — does error
 * recovery change which scheduler wins, and how much throughput does the
 * recovery machinery tax?  A second table reports the per-run recovery-tax
 * percentiles (final completion minus first-attempt completion, DRAM
 * cycles) from the latency anatomy.
 *
 * The error model is deterministic in (seed, channel), so every cell is
 * reproducible and bit-identical under any --jobs / --channel-jobs value.
 */

#include <iostream>

#include "bench_common.hh"
#include "mem/ras.hh"
#include "obs/latency.hh"
#include "trace/synthetic.hh"

namespace {

using namespace parbs;

constexpr double kErrorRates[] = {0.0, 1e-6, 1e-4};

/** Applies one sweep row's error model to a system configuration. */
void
ApplyRate(SystemConfig& config, double rate)
{
    if (rate <= 0.0) {
        return; // error-free row: RAS fully disabled (the fast path stays).
    }
    config.controller.ras.enabled = true;
    config.controller.ras.transient_error_rate = rate;
    config.controller.ras.transient_uncorrectable = 0.1;
    config.controller.ras.scrub_interval = 4096;
}

/** Label such as "1e-04" (or "0") for table rows and JSON sections. */
std::string
RateLabel(double rate)
{
    if (rate <= 0.0) {
        return "0";
    }
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.0e", rate);
    return buffer;
}

struct TaxCell {
    Histogram recovery{8, 512};
    std::uint64_t corrected = 0;
    std::uint64_t uncorrectable = 0;
    std::uint64_t retries = 0;
};

/**
 * Recovery-tax percentiles for one (scheduler, rate) cell: a direct
 * 16-thread synthetic run with the latency anatomy attached, all threads
 * merged, plus the channel-summed ECC counters (at realistic rates most
 * errors are corrected in flight, so the counters — not the percentiles —
 * are where low-rate activity shows).  Kept separate from the metric runs
 * so those stay comparable to the rest of the bench suite (no
 * observability attached).
 */
TaxCell
RecoveryTax(const bench::Options& options, const SchedulerConfig& scheduler,
            double rate)
{
    constexpr std::uint32_t kCores = 16;
    SystemConfig config = SystemConfig::Baseline(kCores);
    config.scheduler = scheduler;
    config.seed = options.seed;
    config.channel_jobs = options.channel_jobs;
    config.observability.trace = true;
    ApplyRate(config, rate);
    dram::AddressMapper mapper(config.geometry, config.xor_bank_hash);
    std::vector<std::unique_ptr<TraceSource>> traces;
    for (ThreadId t = 0; t < kCores; ++t) {
        SyntheticParams params;
        params.mpki = 20.0;
        traces.push_back(std::make_unique<SyntheticTraceSource>(
            params, mapper, t, kCores, 1000 + t));
    }
    System system(config, std::move(traces));
    system.Run(options.cycles);
    TaxCell cell;
    cell.recovery = system.observability()->latency().Recovery(0);
    for (ThreadId t = 1; t < kCores; ++t) {
        cell.recovery.Merge(system.observability()->latency().Recovery(t));
    }
    for (std::uint32_t ch = 0; ch < config.geometry.channels; ++ch) {
        if (const RasEngine* ras = system.controller(ch).ras()) {
            cell.corrected += ras->stats().corrected;
            cell.uncorrectable += ras->stats().uncorrectable;
            cell.retries += ras->stats().retries;
        }
    }
    return cell;
}

} // namespace

int
main(int argc, char** argv)
{
    bench::Session session(argc, argv, "RAS sweep",
                           "Schedulers under DRAM error recovery "
                           "(16 cores, transient rates 0 / 1e-6 / 1e-4)");
    const bench::Options& options = session.options();

    const std::vector<SchedulerConfig> lineup = ComparisonSchedulers();
    const std::vector<WorkloadSpec> workloads =
        RandomMixes(options.Count(2, 4, 8), 16, options.seed);

    Table table({"error rate", "scheduler", "WS", "dWS", "unfair",
                 "dUnfair"});
    // Baseline aggregates (rate 0) per scheduler, for the delta columns.
    std::vector<AggregateMetrics> baseline(lineup.size());

    for (const double rate : kErrorRates) {
        const std::string label = "rate " + RateLabel(rate);
        ExperimentConfig config;
        config.cores = 16;
        config.run_cycles = options.cycles;
        config.seed = options.seed;
        config.channel_jobs = options.channel_jobs;
        config.customize = [rate](SystemConfig& system_config) {
            ApplyRate(system_config, rate);
        };
        ExperimentRunner runner(config);
        const auto matrix =
            bench::RunMatrix(session, runner, lineup, workloads);
        for (std::size_t s = 0; s < lineup.size(); ++s) {
            for (const SharedRun& run : matrix[s]) {
                session.RecordRun(label, run);
            }
            const AggregateMetrics aggregate =
                ExperimentRunner::Aggregate(matrix[s]);
            session.RecordAggregate(label, SchedulerConfigName(lineup[s]),
                                    aggregate);
            if (rate <= 0.0) {
                baseline[s] = aggregate;
            }
            const AggregateMetrics& base = baseline[s];
            table.AddRow(
                {RateLabel(rate), SchedulerConfigName(lineup[s]),
                 Table::Num(aggregate.weighted_speedup_gmean, 3),
                 Table::Num((aggregate.weighted_speedup_gmean /
                                 base.weighted_speedup_gmean -
                             1.0) *
                                100.0,
                            2) +
                     "%",
                 Table::Num(aggregate.unfairness_gmean, 3),
                 Table::Num((aggregate.unfairness_gmean /
                                 base.unfairness_gmean -
                             1.0) *
                                100.0,
                            2) +
                     "%"});
        }
    }
    std::cout << table.Render() << "\n";

    std::cout << "Recovery tax (DRAM cycles past the first-attempt "
                 "completion; reads, all threads):\n\n";
    Table tax({"error rate", "scheduler", "reads", "corrected", "retries",
               "p99", "max"});
    for (const double rate : kErrorRates) {
        for (const SchedulerConfig& scheduler : lineup) {
            const TaxCell cell = RecoveryTax(options, scheduler, rate);
            const Histogram::Summary summary =
                cell.recovery.PercentileSummary();
            tax.AddRow({RateLabel(rate), SchedulerConfigName(scheduler),
                        std::to_string(cell.recovery.count()),
                        std::to_string(cell.corrected),
                        std::to_string(cell.retries),
                        std::to_string(summary.p99),
                        std::to_string(summary.max)});
            const std::string section =
                "recovery-tax rate " + RateLabel(rate);
            const std::string scheduler_name =
                SchedulerConfigName(scheduler);
            session.RecordValue(section, scheduler_name + " corrected",
                                static_cast<double>(cell.corrected));
            session.RecordValue(section, scheduler_name + " retries",
                                static_cast<double>(cell.retries));
            session.RecordValue(section, scheduler_name + " p99",
                                static_cast<double>(summary.p99));
            session.RecordValue(section, scheduler_name + " max",
                                static_cast<double>(summary.max));
        }
    }
    std::cout << tax.Render() << "\n"
              << "Shape check: the error-free row pays zero tax; corrected "
                 "errors scale ~100x between\n1e-6 and 1e-4 yet cost no "
                 "cycles (ECC corrects in flight); only the rare "
                 "uncorrectable\nreads pay the retry tax, and the "
                 "scheduler ranking must not change.\n";
    return 0;
}
