/**
 * @file
 * Table 2: the baseline CMP and memory-system configuration, as realized
 * by this library's defaults — including the derived uncontended round-trip
 * latencies the paper quotes (row hit 160, closed 240, conflict 320 CPU
 * cycles for a 64-byte line).
 */

#include <iostream>

#include "bench_common.hh"
#include "sim/config.hh"

int
main(int argc, char** argv)
{
    using namespace parbs;
    bench::Session session(argc, argv, "Table 2",
                           "baseline CMP and memory-system configuration");

    const SystemConfig config = SystemConfig::Baseline(4);
    const dram::TimingParams& t = config.timing;

    Table table({"parameter", "value", "paper"});
    auto row = [&table](const std::string& name, const std::string& value,
                        const std::string& paper) {
        table.AddRow({name, value, paper});
    };
    row("cores", "4 (also 8, 16)", "4/8/16");
    row("CPU : DRAM clock", std::to_string(config.cpu_to_dram_ratio) + ":1",
        "4 GHz : DDR2-800 (10:1)");
    row("instruction window", std::to_string(config.core.window_size),
        "128");
    row("width", std::to_string(config.core.width),
        "3, one memory op/cycle");
    row("MSHRs", std::to_string(config.core.mshrs), "32");
    row("request buffer",
        std::to_string(config.controller.read_queue_capacity), "128");
    row("write buffer",
        std::to_string(config.controller.write_queue_capacity), "64");
    row("banks", std::to_string(config.geometry.banks_per_rank), "8");
    row("row size", std::to_string(config.geometry.row_bytes) + " B",
        "2 KB");
    row("channels (4 cores)", std::to_string(config.geometry.channels),
        "1 (6.4 GB/s)");
    row("tCL", std::to_string(t.tCL) + " cycles (15 ns)", "15 ns");
    row("tRCD", std::to_string(t.tRCD) + " cycles (15 ns)", "15 ns");
    row("tRP", std::to_string(t.tRP) + " cycles (15 ns)", "15 ns");
    row("BL/2", std::to_string(t.tBURST) + " cycles (10 ns)", "10 ns");
    row("tRAS", std::to_string(t.tRAS) + " cycles", "(datasheet) 45 ns");
    row("tFAW", std::to_string(t.tFAW) + " cycles", "(datasheet)");
    row("address mapping",
        config.xor_bank_hash ? "XOR bank permutation" : "linear",
        "XOR-based [6, 42]");

    const std::uint32_t ratio = config.cpu_to_dram_ratio;
    const std::uint64_t fixed = config.extra_read_latency_cpu;
    const std::uint64_t hit =
        (t.HitLatency() + t.tBURST) * ratio + fixed;
    const std::uint64_t closed =
        (t.ClosedLatency() + t.tBURST) * ratio + fixed;
    const std::uint64_t conflict =
        (t.ConflictLatency() + t.tBURST) * ratio + fixed;
    row("round trip, row hit", std::to_string(hit) + " cpu cycles",
        "160 (40 ns)");
    row("round trip, closed", std::to_string(closed) + " cpu cycles",
        "240 (60 ns)");
    row("round trip, conflict", std::to_string(conflict) + " cpu cycles",
        "320 (80 ns)");
    session.RecordValue("round trips", "row hit",
                        static_cast<double>(hit));
    session.RecordValue("round trips", "closed",
                        static_cast<double>(closed));
    session.RecordValue("round trips", "conflict",
                        static_cast<double>(conflict));

    std::cout << table.Render() << "\n";
    return 0;
}
