/**
 * @file
 * Ablation: sensitivity of the FR-FCFS -> PAR-BS comparison to system
 * parameters (the paper's extended technical report, MSR-TR-2008-26,
 * "also evaluates varying system parameters").  Sweeps the bank count,
 * the row-buffer size, and the number of memory channels on the 4-core
 * Case Study I workload plus a small population.
 */

#include <iostream>

#include "bench_common.hh"

namespace {

using namespace parbs;

void
SweepRow(Table& table, const std::string& label,
         const bench::Options& options,
         const std::function<void(SystemConfig&)>& customize)
{
    ExperimentConfig config;
    config.cores = 4;
    config.run_cycles = options.cycles;
    config.seed = options.seed;
    config.customize = customize;
    ExperimentRunner runner(config);

    auto workloads = RandomMixes(options.Count(2, 6, 16), 4, options.seed);
    workloads.push_back(CaseStudy1());

    SchedulerConfig frfcfs;
    frfcfs.kind = SchedulerKind::kFrFcfs;
    SchedulerConfig parbs_config;
    parbs_config.kind = SchedulerKind::kParBs;

    std::vector<SharedRun> base_runs;
    std::vector<SharedRun> parbs_runs;
    for (const auto& workload : workloads) {
        base_runs.push_back(runner.RunShared(workload, frfcfs));
        parbs_runs.push_back(runner.RunShared(workload, parbs_config));
    }
    const AggregateMetrics base = ExperimentRunner::Aggregate(base_runs);
    const AggregateMetrics ours = ExperimentRunner::Aggregate(parbs_runs);

    table.AddRow({label, Table::Num(base.unfairness_gmean, 3),
                  Table::Num(ours.unfairness_gmean, 3),
                  Table::Num(base.weighted_speedup_gmean, 3),
                  Table::Num(ours.weighted_speedup_gmean, 3),
                  Table::Num((ours.weighted_speedup_gmean /
                                  base.weighted_speedup_gmean -
                              1.0) *
                                 100.0,
                             1) +
                      "%"});
}

} // namespace

int
main(int argc, char** argv)
{
    const bench::Options options = bench::ParseOptions(argc, argv);
    bench::Banner("Ablation",
                  "FR-FCFS vs PAR-BS across system parameters (4 cores)");

    Table table({"configuration", "unfair FR-FCFS", "unfair PAR-BS",
                 "WS FR-FCFS", "WS PAR-BS", "PAR-BS WS gain"});

    SweepRow(table, "baseline (8 banks, 2KB rows, 1 ch)", options,
             [](SystemConfig&) {});
    SweepRow(table, "4 banks", options, [](SystemConfig& c) {
        c.geometry.banks_per_rank = 4;
    });
    SweepRow(table, "16 banks", options, [](SystemConfig& c) {
        c.geometry.banks_per_rank = 16;
    });
    SweepRow(table, "1KB rows", options, [](SystemConfig& c) {
        c.geometry.row_bytes = 1024;
    });
    SweepRow(table, "4KB rows", options, [](SystemConfig& c) {
        c.geometry.row_bytes = 4096;
    });
    SweepRow(table, "2 channels", options, [](SystemConfig& c) {
        c.geometry.channels = 2;
    });
    SweepRow(table, "2 ranks", options, [](SystemConfig& c) {
        c.geometry.ranks_per_channel = 2;
    });
    // Note: the synthetic generator picks DRAM coordinates directly and
    // encodes them through the same mapper, so the XOR permutation is
    // identity-equivalent for these traces; the row is kept as a sanity
    // check (it must match the baseline exactly).
    SweepRow(table, "no XOR bank hash", options, [](SystemConfig& c) {
        c.xor_bank_hash = false;
    });
    SweepRow(table, "64-entry request buffer", options,
             [](SystemConfig& c) {
                 c.controller.read_queue_capacity = 64;
             });

    std::cout << table.Render() << "\n"
              << "Shape check: PAR-BS should never lose to FR-FCFS on "
                 "either metric, with the largest\ngains where bank "
                 "conflicts dominate (fewer banks / smaller rows / no "
                 "hash).\n";
    return 0;
}
