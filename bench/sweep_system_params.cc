/**
 * @file
 * Ablation: sensitivity of the FR-FCFS -> PAR-BS comparison to system
 * parameters (the paper's extended technical report, MSR-TR-2008-26,
 * "also evaluates varying system parameters").  Sweeps the bank count,
 * the row-buffer size, and the number of memory channels on the 4-core
 * Case Study I workload plus a small population.
 */

#include <iostream>

#include "bench_common.hh"

namespace {

using namespace parbs;

void
SweepRow(bench::Session& session, Table& table, const std::string& label,
         const std::function<void(SystemConfig&)>& customize)
{
    const bench::Options& options = session.options();
    ExperimentConfig config;
    config.cores = 4;
    config.run_cycles = options.cycles;
    config.seed = options.seed;
    config.channel_jobs = options.channel_jobs;
    config.customize = customize;
    ExperimentRunner runner(config);

    auto workloads = RandomMixes(options.Count(2, 6, 16), 4, options.seed);
    workloads.push_back(CaseStudy1());

    SchedulerConfig frfcfs;
    frfcfs.kind = SchedulerKind::kFrFcfs;
    SchedulerConfig parbs_config;
    parbs_config.kind = SchedulerKind::kParBs;

    std::vector<bench::RunTask> tasks;
    tasks.reserve(2 * workloads.size());
    for (const auto& workload : workloads) {
        tasks.push_back({workload, frfcfs, {}, {}});
    }
    for (const auto& workload : workloads) {
        tasks.push_back({workload, parbs_config, {}, {}});
    }
    const std::vector<SharedRun> runs =
        bench::RunTasks(session, runner, tasks);
    const auto half = static_cast<std::ptrdiff_t>(workloads.size());
    const AggregateMetrics base = ExperimentRunner::Aggregate(
        {runs.begin(), runs.begin() + half});
    const AggregateMetrics ours = ExperimentRunner::Aggregate(
        {runs.begin() + half, runs.end()});
    session.RecordAggregate(label, "FR-FCFS", base);
    session.RecordAggregate(label, "PAR-BS", ours);

    table.AddRow({label, Table::Num(base.unfairness_gmean, 3),
                  Table::Num(ours.unfairness_gmean, 3),
                  Table::Num(base.weighted_speedup_gmean, 3),
                  Table::Num(ours.weighted_speedup_gmean, 3),
                  Table::Num((ours.weighted_speedup_gmean /
                                  base.weighted_speedup_gmean -
                              1.0) *
                                 100.0,
                             1) +
                      "%"});
}

} // namespace

int
main(int argc, char** argv)
{
    bench::Session session(argc, argv, "Ablation",
                           "FR-FCFS vs PAR-BS across system parameters "
                           "(4 cores)");

    Table table({"configuration", "unfair FR-FCFS", "unfair PAR-BS",
                 "WS FR-FCFS", "WS PAR-BS", "PAR-BS WS gain"});

    SweepRow(session, table, "baseline (8 banks, 2KB rows, 1 ch)",
             [](SystemConfig&) {});
    SweepRow(session, table, "4 banks", [](SystemConfig& c) {
        c.geometry.banks_per_rank = 4;
    });
    SweepRow(session, table, "16 banks", [](SystemConfig& c) {
        c.geometry.banks_per_rank = 16;
    });
    SweepRow(session, table, "1KB rows", [](SystemConfig& c) {
        c.geometry.row_bytes = 1024;
    });
    SweepRow(session, table, "4KB rows", [](SystemConfig& c) {
        c.geometry.row_bytes = 4096;
    });
    SweepRow(session, table, "2 channels", [](SystemConfig& c) {
        c.geometry.channels = 2;
    });
    SweepRow(session, table, "2 ranks", [](SystemConfig& c) {
        c.geometry.ranks_per_channel = 2;
    });
    // Note: the synthetic generator picks DRAM coordinates directly and
    // encodes them through the same mapper, so the XOR permutation is
    // identity-equivalent for these traces; the row is kept as a sanity
    // check (it must match the baseline exactly).
    SweepRow(session, table, "no XOR bank hash", [](SystemConfig& c) {
        c.xor_bank_hash = false;
    });
    SweepRow(session, table, "64-entry request buffer",
             [](SystemConfig& c) {
                 c.controller.read_queue_capacity = 64;
             });

    std::cout << table.Render() << "\n"
              << "Shape check: PAR-BS should never lose to FR-FCFS on "
                 "either metric, with the largest\ngains where bank "
                 "conflicts dominate (fewer banks / smaller rows / no "
                 "hash).\n";
    return 0;
}
