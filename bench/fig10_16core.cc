/**
 * @file
 * Figure 10: 16-core systems — five sample workloads (two Table 3 index
 * mixes, intensive16, middle16, non-intensive16) plus the aggregate over a
 * random 16-core population (paper: 12 workloads).
 *
 * Paper shape: PAR-BS reduces unfairness from 1.81 (STFM) to 1.63 while
 * improving weighted speedup by 3.2% and hmean speedup by 5.1%.
 */

#include <iostream>

#include "bench_common.hh"

int
main(int argc, char** argv)
{
    using namespace parbs;
    bench::Session session(argc, argv, "Figure 10",
                           "16-core workloads: samples + GMEAN");
    ExperimentRunner runner = bench::MakeRunner(session.options(), 16);

    std::cout << "Sample workloads (unfairness per scheduler):\n\n";
    Table samples({"workload", "FR-FCFS", "FCFS", "NFQ", "STFM", "PAR-BS"});
    const std::vector<WorkloadSpec> sample_workloads = SixteenCoreSamples();
    const auto matrix = bench::RunMatrix(
        session, runner, ComparisonSchedulers(), sample_workloads);
    for (std::size_t w = 0; w < sample_workloads.size(); ++w) {
        std::vector<std::string> row{sample_workloads[w].name};
        for (std::size_t s = 0; s < matrix.size(); ++s) {
            row.push_back(Table::Num(matrix[s][w].metrics.unfairness));
            session.RecordRun("samples", matrix[s][w]);
        }
        samples.AddRow(std::move(row));
    }
    std::cout << samples.Render() << "\n";

    const std::uint32_t count = session.options().Count(3, 7, 12);
    bench::RunAggregate(session, runner,
                        RandomMixes(count, 16, session.options().seed),
                        "Population aggregate");
    return 0;
}
