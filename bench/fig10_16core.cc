/**
 * @file
 * Figure 10: 16-core systems — five sample workloads (two Table 3 index
 * mixes, intensive16, middle16, non-intensive16) plus the aggregate over a
 * random 16-core population (paper: 12 workloads).
 *
 * Paper shape: PAR-BS reduces unfairness from 1.81 (STFM) to 1.63 while
 * improving weighted speedup by 3.2% and hmean speedup by 5.1%.
 */

#include <iostream>

#include "bench_common.hh"

int
main(int argc, char** argv)
{
    using namespace parbs;
    const bench::Options options = bench::ParseOptions(argc, argv);
    bench::Banner("Figure 10", "16-core workloads: samples + GMEAN");
    ExperimentRunner runner = bench::MakeRunner(options, 16);

    std::cout << "Sample workloads (unfairness per scheduler):\n\n";
    Table samples({"workload", "FR-FCFS", "FCFS", "NFQ", "STFM", "PAR-BS"});
    for (const WorkloadSpec& workload : SixteenCoreSamples()) {
        std::vector<std::string> row{workload.name};
        for (const auto& scheduler : ComparisonSchedulers()) {
            row.push_back(Table::Num(
                runner.RunShared(workload, scheduler).metrics.unfairness));
        }
        samples.AddRow(std::move(row));
    }
    std::cout << samples.Render() << "\n";

    const std::uint32_t count = options.Count(3, 7, 12);
    bench::RunAggregate(runner, RandomMixes(count, 16, options.seed),
                        "Population aggregate");
    return 0;
}
