#include "bench_common.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>

namespace parbs::bench {
namespace {

/** argv[0] without directories — the "binary" field in JSON output. */
std::string
BinaryName(const char* argv0)
{
    std::string name = argv0 != nullptr ? argv0 : "bench";
    const std::size_t slash = name.find_last_of('/');
    if (slash != std::string::npos) {
        name.erase(0, slash + 1);
    }
    return name;
}

/**
 * Run-level pool size: --jobs divided by the per-run channel workers so
 * --jobs J --channel-jobs C composes without oversubscription.  0 channel
 * workers means "one per channel" (unknown here), which in practice wants
 * the whole machine for each run — treat it as all hardware threads.
 */
unsigned
PoolJobs(const Options& options)
{
    const unsigned divisor = options.channel_jobs == 0
                                 ? HardwareJobs()
                                 : options.channel_jobs;
    return divisor > 1 ? std::max(1u, options.jobs / divisor)
                       : options.jobs;
}

} // namespace

Options
ParseOptions(int argc, char** argv)
{
    Options options;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--quick") {
            options.quick = true;
            options.cycles = 500'000;
        } else if (arg == "--full") {
            options.full = true;
        } else if (arg == "--cycles" && i + 1 < argc) {
            options.cycles = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--seed" && i + 1 < argc) {
            options.seed = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--jobs" && i + 1 < argc) {
            options.jobs = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10));
            if (options.jobs == 0) {
                options.jobs = HardwareJobs();
            }
        } else if (arg == "--channel-jobs" && i + 1 < argc) {
            // 0 stays 0: "one worker per channel", resolved per system.
            options.channel_jobs = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10));
        } else if (arg == "--engine") {
            options.engine = true;
        } else if (arg == "--json" && i + 1 < argc) {
            options.json_path = argv[++i];
        } else if (arg == "--trace" && i + 1 < argc) {
            options.trace_path = argv[++i];
        } else if (arg == "--help" || arg == "-h") {
            std::fprintf(stderr,
                         "usage: %s [--quick|--full] [--cycles N] "
                         "[--seed N] [--jobs N] [--channel-jobs N] "
                         "[--engine] [--json PATH] [--trace PATH]\n",
                         argv[0]);
            std::exit(0);
        } else {
            std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
            std::exit(2);
        }
    }
    return options;
}

ExperimentRunner
MakeRunner(const Options& options, std::uint32_t cores)
{
    ExperimentConfig config;
    config.cores = cores;
    config.run_cycles = options.cycles;
    config.seed = options.seed;
    config.trace_path = options.trace_path;
    config.channel_jobs = options.channel_jobs;
    return ExperimentRunner(config);
}

void
Banner(const std::string& id, const std::string& caption)
{
    std::cout << "==================================================="
                 "=========================\n"
              << id << " — " << caption << "\n"
              << "PAR-BS reproduction (Mutlu & Moscibroda, ISCA 2008)\n"
              << "==================================================="
                 "=========================\n\n";
}

Session::Session(int argc, char** argv, const std::string& id,
                 const std::string& caption)
    : options_(ParseOptions(argc, argv)),
      binary_(BinaryName(argc > 0 ? argv[0] : nullptr)),
      pool_(std::make_unique<TaskPool>(PoolJobs(options_))),
      start_(std::chrono::steady_clock::now())
{
    Banner(id, caption);
}

Session::~Session()
{
    Finish();
}

json::Value&
Session::SectionNode(const std::string& section)
{
    for (auto& item : sections_.items()) {
        if (item.Find("name")->AsString() == section) {
            return item;
        }
    }
    json::Value node = json::Value::Object();
    node.Set("name", section);
    node.Set("runs", json::Value::Array());
    node.Set("aggregates", json::Value::Array());
    node.Set("values", json::Value::Array());
    return sections_.Append(std::move(node));
}

void
Session::RecordRun(const std::string& section, const SharedRun& run)
{
    json::Value node = json::Value::Object();
    node.Set("workload", run.workload);
    node.Set("scheduler", run.scheduler);
    node.Set("unfairness", run.metrics.unfairness);
    node.Set("weighted_speedup", run.metrics.weighted_speedup);
    node.Set("hmean_speedup", run.metrics.hmean_speedup);
    node.Set("ast_per_req", run.metrics.avg_ast_per_req);
    node.Set("worst_case_latency",
             static_cast<std::uint64_t>(run.metrics.worst_case_latency));
    json::Value slowdowns = json::Value::Array();
    for (double slowdown : run.metrics.memory_slowdown) {
        slowdowns.Append(slowdown);
    }
    node.Set("memory_slowdown", std::move(slowdowns));
    SectionNode(section).Find("runs")->Append(std::move(node));
}

void
Session::RecordAggregate(const std::string& section,
                         const std::string& scheduler,
                         const AggregateMetrics& aggregate)
{
    json::Value node = json::Value::Object();
    node.Set("scheduler", scheduler);
    node.Set("unfairness_gmean", aggregate.unfairness_gmean);
    node.Set("weighted_speedup_gmean", aggregate.weighted_speedup_gmean);
    node.Set("hmean_speedup_gmean", aggregate.hmean_speedup_gmean);
    node.Set("ast_per_req_mean", aggregate.ast_per_req_mean);
    node.Set("worst_case_latency_mean", aggregate.worst_case_latency_mean);
    SectionNode(section).Find("aggregates")->Append(std::move(node));
}

void
Session::RecordValue(const std::string& section, const std::string& name,
                     double value)
{
    json::Value node = json::Value::Object();
    node.Set("name", name);
    node.Set("value", value);
    SectionNode(section).Find("values")->Append(std::move(node));
}

void
Session::RecordEngine(const std::string& label, json::Value run_engine,
                      json::Value env_engine)
{
    json::Value run_node = json::Value::Object();
    run_node.Set("label", label);
    run_node.Set("engine", std::move(run_engine));
    engine_run_.Append(std::move(run_node));

    json::Value env_node = json::Value::Object();
    env_node.Set("label", label);
    env_node.Set("engine", std::move(env_engine));
    engine_env_.Append(std::move(env_node));
}

void
Session::Finish()
{
    if (finished_) {
        return;
    }
    finished_ = true;
    const double wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    std::fprintf(stderr, "[bench] %s: wall-clock %.2f s (jobs=%u)\n",
                 binary_.c_str(), wall_seconds, options_.jobs);
    if (options_.json_path.empty()) {
        return;
    }

    // "run" holds everything deterministic (compared byte-for-byte by the
    // determinism test and exactly by the golden check); "env" holds the
    // volatile facts about this particular execution.
    json::Value run = json::Value::Object();
    run.Set("binary", binary_);
    run.Set("mode", options_.Mode());
    run.Set("cycles", static_cast<std::uint64_t>(options_.cycles));
    run.Set("seed", options_.seed);
    run.Set("sections", std::move(sections_));
    // Deterministic engine counters only — byte-identical across --jobs /
    // --channel-jobs, so they may live under the golden-checked subtree.
    if (!engine_run_.items().empty()) {
        run.Set("engine", std::move(engine_run_));
    }

    json::Value env = json::Value::Object();
    env.Set("wall_seconds", wall_seconds);
    env.Set("jobs", static_cast<std::uint64_t>(options_.jobs));
    // Parallelism knobs never reach the "run" subtree: results are
    // bit-identical for every value, so they are environment, not input.
    env.Set("channel_jobs",
            static_cast<std::uint64_t>(options_.channel_jobs));
    const char* commit = std::getenv("PARBS_COMMIT");
    env.Set("commit", commit != nullptr ? commit : "unknown");
    if (!engine_env_.items().empty()) {
        env.Set("engine", std::move(engine_env_));
    }

    json::Value root = json::Value::Object();
    root.Set("env", std::move(env));
    root.Set("run", std::move(run));

    std::ofstream out(options_.json_path);
    if (!out) {
        std::fprintf(stderr, "[bench] cannot write %s\n",
                     options_.json_path.c_str());
        return;
    }
    out << root.Dump(2) << "\n";
}

std::vector<SharedRun>
RunTasks(Session& session, ExperimentRunner& runner,
         const std::vector<RunTask>& tasks)
{
    std::vector<SharedRun> results(tasks.size());
    session.pool().ParallelFor(tasks.size(), [&](std::size_t index) {
        const RunTask& task = tasks[index];
        results[index] = runner.RunShared(
            task.workload, task.scheduler,
            task.priorities.empty() ? nullptr : &task.priorities,
            task.weights.empty() ? nullptr : &task.weights);
    });
    return results;
}

std::vector<std::vector<SharedRun>>
RunMatrix(Session& session, ExperimentRunner& runner,
          const std::vector<SchedulerConfig>& schedulers,
          const std::vector<WorkloadSpec>& workloads)
{
    std::vector<RunTask> tasks;
    tasks.reserve(schedulers.size() * workloads.size());
    for (const auto& scheduler : schedulers) {
        for (const auto& workload : workloads) {
            tasks.push_back(RunTask{workload, scheduler, {}, {}});
        }
    }
    std::vector<SharedRun> flat = RunTasks(session, runner, tasks);
    std::vector<std::vector<SharedRun>> runs(schedulers.size());
    for (std::size_t s = 0; s < schedulers.size(); ++s) {
        runs[s].assign(
            std::make_move_iterator(flat.begin() +
                                    static_cast<std::ptrdiff_t>(
                                        s * workloads.size())),
            std::make_move_iterator(flat.begin() +
                                    static_cast<std::ptrdiff_t>(
                                        (s + 1) * workloads.size())));
    }
    return runs;
}

std::vector<SharedRun>
RunCaseStudy(Session& session, ExperimentRunner& runner,
             const WorkloadSpec& workload)
{
    std::cout << "Workload " << workload.name << ":";
    for (const auto& benchmark : workload.benchmarks) {
        std::cout << " " << benchmark;
    }
    std::cout << "\n\n";

    std::vector<std::string> header{"scheduler"};
    for (const auto& benchmark : workload.benchmarks) {
        header.push_back("slow:" + benchmark);
    }
    header.insert(header.end(),
                  {"unfairness", "weighted-sp", "hmean-sp", "AST/req"});
    Table table(std::move(header));

    std::vector<std::vector<SharedRun>> matrix =
        RunMatrix(session, runner, ComparisonSchedulers(), {workload});
    std::vector<SharedRun> runs;
    runs.reserve(matrix.size());
    for (auto& per_scheduler : matrix) {
        runs.push_back(std::move(per_scheduler.front()));
    }

    for (const SharedRun& run : runs) {
        std::vector<std::string> row{run.scheduler};
        for (double slowdown : run.metrics.memory_slowdown) {
            row.push_back(Table::Num(slowdown));
        }
        row.push_back(Table::Num(run.metrics.unfairness));
        row.push_back(Table::Num(run.metrics.weighted_speedup));
        row.push_back(Table::Num(run.metrics.hmean_speedup));
        row.push_back(Table::Num(run.metrics.avg_ast_per_req, 0));
        table.AddRow(std::move(row));
        session.RecordRun(workload.name, run);
    }
    std::cout << table.Render() << "\n";
    return runs;
}

void
RunAggregate(Session& session, ExperimentRunner& runner,
             const std::vector<WorkloadSpec>& workloads,
             const std::string& label)
{
    std::cout << label << " (" << workloads.size() << " workloads, "
              << runner.config().cores << " cores)\n\n";
    Table table({"scheduler", "unfairness(gmean)", "weighted-sp(gmean)",
                 "hmean-sp(gmean)", "AST/req", "worst-case lat (cpu cyc)"});
    const std::vector<std::vector<SharedRun>> matrix =
        RunMatrix(session, runner, ComparisonSchedulers(), workloads);
    for (const std::vector<SharedRun>& runs : matrix) {
        const AggregateMetrics agg = ExperimentRunner::Aggregate(runs);
        table.AddRow({runs.front().scheduler,
                      Table::Num(agg.unfairness_gmean, 3),
                      Table::Num(agg.weighted_speedup_gmean, 3),
                      Table::Num(agg.hmean_speedup_gmean, 3),
                      Table::Num(agg.ast_per_req_mean, 0),
                      Table::Num(agg.worst_case_latency_mean, 0)});
        for (const SharedRun& run : runs) {
            session.RecordRun(label, run);
        }
        session.RecordAggregate(label, runs.front().scheduler, agg);
    }
    std::cout << table.Render() << "\n";
}

} // namespace parbs::bench
