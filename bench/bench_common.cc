#include "bench_common.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>

namespace parbs::bench {

Options
ParseOptions(int argc, char** argv)
{
    Options options;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--quick") {
            options.quick = true;
            options.cycles = 500'000;
        } else if (arg == "--full") {
            options.full = true;
        } else if (arg == "--cycles" && i + 1 < argc) {
            options.cycles = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--seed" && i + 1 < argc) {
            options.seed = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--help" || arg == "-h") {
            std::fprintf(stderr,
                         "usage: %s [--quick|--full] [--cycles N] "
                         "[--seed N]\n",
                         argv[0]);
            std::exit(0);
        } else {
            std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
            std::exit(2);
        }
    }
    return options;
}

ExperimentRunner
MakeRunner(const Options& options, std::uint32_t cores)
{
    ExperimentConfig config;
    config.cores = cores;
    config.run_cycles = options.cycles;
    config.seed = options.seed;
    return ExperimentRunner(config);
}

void
Banner(const std::string& id, const std::string& caption)
{
    std::cout << "==================================================="
                 "=========================\n"
              << id << " — " << caption << "\n"
              << "PAR-BS reproduction (Mutlu & Moscibroda, ISCA 2008)\n"
              << "==================================================="
                 "=========================\n\n";
}

std::vector<SharedRun>
RunCaseStudy(ExperimentRunner& runner, const WorkloadSpec& workload)
{
    std::cout << "Workload " << workload.name << ":";
    for (const auto& benchmark : workload.benchmarks) {
        std::cout << " " << benchmark;
    }
    std::cout << "\n\n";

    std::vector<SharedRun> runs;
    std::vector<std::string> header{"scheduler"};
    for (const auto& benchmark : workload.benchmarks) {
        header.push_back("slow:" + benchmark);
    }
    header.insert(header.end(),
                  {"unfairness", "weighted-sp", "hmean-sp", "AST/req"});
    Table table(std::move(header));

    for (const auto& scheduler : ComparisonSchedulers()) {
        SharedRun run = runner.RunShared(workload, scheduler);
        std::vector<std::string> row{run.scheduler};
        for (double slowdown : run.metrics.memory_slowdown) {
            row.push_back(Table::Num(slowdown));
        }
        row.push_back(Table::Num(run.metrics.unfairness));
        row.push_back(Table::Num(run.metrics.weighted_speedup));
        row.push_back(Table::Num(run.metrics.hmean_speedup));
        row.push_back(Table::Num(run.metrics.avg_ast_per_req, 0));
        table.AddRow(std::move(row));
        runs.push_back(std::move(run));
    }
    std::cout << table.Render() << "\n";
    return runs;
}

void
RunAggregate(ExperimentRunner& runner,
             const std::vector<WorkloadSpec>& workloads,
             const std::string& label)
{
    std::cout << label << " (" << workloads.size() << " workloads, "
              << runner.config().cores << " cores)\n\n";
    Table table({"scheduler", "unfairness(gmean)", "weighted-sp(gmean)",
                 "hmean-sp(gmean)", "AST/req", "worst-case lat (cpu cyc)"});
    for (const auto& scheduler : ComparisonSchedulers()) {
        std::vector<SharedRun> runs;
        runs.reserve(workloads.size());
        for (const auto& workload : workloads) {
            runs.push_back(runner.RunShared(workload, scheduler));
        }
        const AggregateMetrics agg = ExperimentRunner::Aggregate(runs);
        table.AddRow({runs.front().scheduler,
                      Table::Num(agg.unfairness_gmean, 3),
                      Table::Num(agg.weighted_speedup_gmean, 3),
                      Table::Num(agg.hmean_speedup_gmean, 3),
                      Table::Num(agg.ast_per_req_mean, 0),
                      Table::Num(agg.worst_case_latency_mean, 0)});
    }
    std::cout << table.Render() << "\n";
}

} // namespace parbs::bench
