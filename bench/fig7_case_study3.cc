/**
 * @file
 * Figure 7 — Case Study III: four copies of lbm (a high-BLP intensive
 * benchmark).  Unfairness is ~1 for every scheduler by symmetry; the paper
 * shows parallelism-awareness still improves system throughput (+8.6% for
 * PAR-BS over FR-FCFS/STFM; FCFS and especially NFQ lose throughput).
 */

#include "bench_common.hh"

int
main(int argc, char** argv)
{
    using namespace parbs;
    bench::Session session(argc, argv, "Figure 7",
                           "Case Study III: 4 copies of lbm (uniform mix)");
    ExperimentRunner runner = bench::MakeRunner(session.options(), 4);
    bench::RunCaseStudy(session, runner, CaseStudy3());
    return 0;
}
