/**
 * @file
 * Figure 11: the effect of Marking-Cap on PAR-BS's unfairness and
 * throughput — averaged over a 4-core workload population (left) and on
 * the per-thread slowdowns of Case Studies I and II (middle/right).
 *
 * Paper shape: tiny caps hurt both throughput (no locality, no
 * parallelism to find) and fairness (penalize high-row-locality threads);
 * very large caps drift back toward FR-FCFS-like unfairness; the knee sits
 * at cap ~5 in the paper's setup.  In this reproduction the knee shifts to
 * slightly larger caps because the synthetic streams keep more requests in
 * flight per thread (see EXPERIMENTS.md).
 */

#include <iostream>

#include "bench_common.hh"

namespace {

parbs::SchedulerConfig
ParBsWithCap(std::uint32_t cap)
{
    parbs::SchedulerConfig config;
    config.kind = parbs::SchedulerKind::kParBs;
    config.parbs.marking_cap = cap;
    return config;
}

std::string
CapName(std::uint32_t cap)
{
    return cap == 0 ? "no-c" : "c=" + std::to_string(cap);
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace parbs;
    const bench::Options options = bench::ParseOptions(argc, argv);
    bench::Banner("Figure 11", "effect of Marking-Cap");
    ExperimentRunner runner = bench::MakeRunner(options, 4);

    const std::vector<std::uint32_t> caps{1, 2, 3, 4,  5,  6,
                                          7, 8, 9, 10, 20, 0};

    // Left: population averages.
    const std::uint32_t count = options.Count(4, 12, 100);
    const auto mixes = RandomMixes(count, 4, options.seed);
    std::cout << "Average over " << mixes.size() << " 4-core workloads:\n\n";
    Table averages({"cap", "unfairness(gmean)", "weighted-sp", "hmean-sp"});
    for (std::uint32_t cap : caps) {
        std::vector<SharedRun> runs;
        for (const auto& workload : mixes) {
            runs.push_back(runner.RunShared(workload, ParBsWithCap(cap)));
        }
        const AggregateMetrics agg = ExperimentRunner::Aggregate(runs);
        averages.AddRow({CapName(cap), Table::Num(agg.unfairness_gmean, 3),
                         Table::Num(agg.weighted_speedup_gmean, 3),
                         Table::Num(agg.hmean_speedup_gmean, 3)});
    }
    std::cout << averages.Render() << "\n";

    // Middle/right: per-thread slowdowns for the case studies.
    for (const WorkloadSpec& workload : {CaseStudy1(), CaseStudy2()}) {
        std::cout << "Memory slowdowns, " << workload.name << ":\n\n";
        std::vector<std::string> header{"cap"};
        for (const auto& benchmark : workload.benchmarks) {
            header.push_back(benchmark);
        }
        Table slowdowns(std::move(header));
        for (std::uint32_t cap : caps) {
            const SharedRun run =
                runner.RunShared(workload, ParBsWithCap(cap));
            std::vector<std::string> row{CapName(cap)};
            for (double slowdown : run.metrics.memory_slowdown) {
                row.push_back(Table::Num(slowdown));
            }
            slowdowns.AddRow(std::move(row));
        }
        std::cout << slowdowns.Render() << "\n";
    }
    return 0;
}
