/**
 * @file
 * Figure 11: the effect of Marking-Cap on PAR-BS's unfairness and
 * throughput — averaged over a 4-core workload population (left) and on
 * the per-thread slowdowns of Case Studies I and II (middle/right).
 *
 * Paper shape: tiny caps hurt both throughput (no locality, no
 * parallelism to find) and fairness (penalize high-row-locality threads);
 * very large caps drift back toward FR-FCFS-like unfairness; the knee sits
 * at cap ~5 in the paper's setup.  In this reproduction the knee shifts to
 * slightly larger caps because the synthetic streams keep more requests in
 * flight per thread (see EXPERIMENTS.md).
 */

#include <iostream>

#include "bench_common.hh"

namespace {

parbs::SchedulerConfig
ParBsWithCap(std::uint32_t cap)
{
    parbs::SchedulerConfig config;
    config.kind = parbs::SchedulerKind::kParBs;
    config.parbs.marking_cap = cap;
    return config;
}

std::string
CapName(std::uint32_t cap)
{
    return cap == 0 ? "no-c" : "c=" + std::to_string(cap);
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace parbs;
    bench::Session session(argc, argv, "Figure 11",
                           "effect of Marking-Cap");
    ExperimentRunner runner = bench::MakeRunner(session.options(), 4);

    const std::vector<std::uint32_t> caps{1, 2, 3, 4,  5,  6,
                                          7, 8, 9, 10, 20, 0};

    // Left: population averages.
    const std::uint32_t count = session.options().Count(4, 12, 100);
    const auto mixes = RandomMixes(count, 4, session.options().seed);
    std::cout << "Average over " << mixes.size() << " 4-core workloads:\n\n";
    std::vector<bench::RunTask> tasks;
    tasks.reserve(caps.size() * mixes.size());
    for (std::uint32_t cap : caps) {
        for (const auto& workload : mixes) {
            tasks.push_back({workload, ParBsWithCap(cap), {}, {}});
        }
    }
    const std::vector<SharedRun> population =
        bench::RunTasks(session, runner, tasks);
    Table averages({"cap", "unfairness(gmean)", "weighted-sp", "hmean-sp"});
    for (std::size_t c = 0; c < caps.size(); ++c) {
        const std::vector<SharedRun> runs(
            population.begin() +
                static_cast<std::ptrdiff_t>(c * mixes.size()),
            population.begin() +
                static_cast<std::ptrdiff_t>((c + 1) * mixes.size()));
        const AggregateMetrics agg = ExperimentRunner::Aggregate(runs);
        averages.AddRow({CapName(caps[c]),
                         Table::Num(agg.unfairness_gmean, 3),
                         Table::Num(agg.weighted_speedup_gmean, 3),
                         Table::Num(agg.hmean_speedup_gmean, 3)});
        session.RecordAggregate("population", CapName(caps[c]), agg);
    }
    std::cout << averages.Render() << "\n";

    // Middle/right: per-thread slowdowns for the case studies.
    for (const WorkloadSpec& workload : {CaseStudy1(), CaseStudy2()}) {
        std::cout << "Memory slowdowns, " << workload.name << ":\n\n";
        std::vector<std::string> header{"cap"};
        for (const auto& benchmark : workload.benchmarks) {
            header.push_back(benchmark);
        }
        Table slowdowns(std::move(header));
        std::vector<bench::RunTask> study_tasks;
        study_tasks.reserve(caps.size());
        for (std::uint32_t cap : caps) {
            study_tasks.push_back({workload, ParBsWithCap(cap), {}, {}});
        }
        const std::vector<SharedRun> runs =
            bench::RunTasks(session, runner, study_tasks);
        for (std::size_t c = 0; c < caps.size(); ++c) {
            std::vector<std::string> row{CapName(caps[c])};
            for (double slowdown : runs[c].metrics.memory_slowdown) {
                row.push_back(Table::Num(slowdown));
            }
            slowdowns.AddRow(std::move(row));
            session.RecordRun(workload.name, runs[c]);
        }
        std::cout << slowdowns.Render() << "\n";
    }
    return 0;
}
