/**
 * @file
 * Scaling sweep for the scale-out engine (DESIGN.md §5g): 64/128/256-core
 * systems across 4/8/16 channels under the six-scheduler shootout lineup,
 * driven directly through System (no alone-run baselines — at this scale
 * the interesting outputs are throughput and service metrics, and the
 * run matrix is already 9 x 6).  Every recorded value is a deterministic
 * simulation quantity, so the JSON "run" subtree is golden-checkable and
 * bit-identical for any --jobs / --channel-jobs combination.
 *
 * Quick mode trims the matrix to the CI subset (64c x {4,8,16}ch plus
 * 128c/256c at 8 channels) and shortens the runs; the per-run cycle count
 * scales inversely with the core count so every run simulates the same
 * number of core-cycles.
 */

#include <cstdlib>
#include <iostream>
#include <memory>
#include <vector>

#include "bench_common.hh"
#include "trace/synthetic.hh"

namespace {

using namespace parbs;

struct ScalePoint {
    std::uint32_t cores;
    std::uint32_t channels;
};

/** Deterministic mixed-intensity population: a quarter each of heavy,
 *  medium, light, and near-compute-bound threads. */
double
SlotMpki(ThreadId slot)
{
    switch (slot % 4) {
    case 0: return 40.0;
    case 1: return 20.0;
    case 2: return 10.0;
    default: return 2.0;
    }
}

std::vector<std::unique_ptr<TraceSource>>
MakeTraces(const SystemConfig& config, std::uint64_t seed)
{
    dram::AddressMapper mapper(config.geometry, config.xor_bank_hash);
    std::vector<std::unique_ptr<TraceSource>> traces;
    traces.reserve(config.num_cores);
    for (ThreadId t = 0; t < config.num_cores; ++t) {
        SyntheticParams params;
        params.mpki = SlotMpki(t);
        traces.push_back(std::make_unique<SyntheticTraceSource>(
            params, mapper, t, config.num_cores, seed * 1000 + t));
    }
    return traces;
}

/** Whole-system aggregates of one scale point under one scheduler; all
 *  fields except the env-side engine timings are deterministic simulation
 *  quantities. */
struct ScaleRun {
    std::uint64_t instructions = 0;
    std::uint64_t requests = 0;
    double row_hit_rate = 0.0; ///< Request-weighted mean across threads.
    double blp = 0.0;          ///< Plain mean across threads.
    /** Engine flight-recorder output (--engine only; null otherwise).
     *  engine_run is deterministic, engine_env is wall-clock volatile. */
    json::Value engine_run;
    json::Value engine_env;
};

ScaleRun
RunPoint(const ScalePoint& point, const SchedulerConfig& scheduler,
         const bench::Options& options, CpuCycle cycles)
{
    SystemConfig config =
        SystemConfig::Baseline(point.cores, point.channels);
    config.scheduler = scheduler;
    config.seed = options.seed;
    config.channel_jobs = options.channel_jobs;
    config.observability.engine_profile = options.engine;
    // Same PARBS_CHECK contract as the ExperimentRunner binaries (see
    // ExperimentConfig::MakeSystemConfig): serial reference loop plus the
    // shadow protocol / fast-path / selection checkers — and this is the
    // one suite that actually exercises the sampled selection cross-check,
    // since every ExperimentRunner figure stays at <= 16 cores.
    const char* check = std::getenv("PARBS_CHECK");
    if (check != nullptr && check[0] != '\0' && check[0] != '0') {
        config.channel_jobs = 1;
        config.controller.protocol_check = true;
        config.controller.verify_fast_path = true;
        config.controller.verify_indexed_selection = true;
        config.controller.verify_sample_period = point.cores > 32 ? 61 : 1;
    }
    System system(config, MakeTraces(config, options.seed));
    system.Run(cycles);

    ScaleRun out;
    double hit_weight = 0.0;
    double blp_sum = 0.0;
    for (ThreadId t = 0; t < point.cores; ++t) {
        const ThreadMeasurement m = system.Measure(t);
        out.instructions += m.instructions;
        out.requests += m.requests;
        hit_weight += m.row_hit_rate * static_cast<double>(m.requests);
        blp_sum += m.blp;
    }
    if (out.requests > 0) {
        out.row_hit_rate = hit_weight / static_cast<double>(out.requests);
    }
    out.blp = blp_sum / static_cast<double>(point.cores);
    if (options.engine) {
        out.engine_run = system.EngineRunJson();
        out.engine_env = system.EngineEnvJson();
    }
    return out;
}

} // namespace

int
main(int argc, char** argv)
{
    bench::Session session(argc, argv, "Scaling sweep",
                           "64-256 cores x 4-16 channels under the "
                           "six-scheduler lineup");
    const bench::Options& options = session.options();

    std::vector<ScalePoint> points;
    if (options.quick) {
        points = {{64, 4}, {64, 8}, {64, 16}, {128, 8}, {256, 8}};
    } else {
        for (const std::uint32_t cores : {64u, 128u, 256u}) {
            for (const std::uint32_t channels : {4u, 8u, 16u}) {
                points.push_back({cores, channels});
            }
        }
    }
    const std::vector<SchedulerConfig> lineup = ComparisonSchedulers();

    // Constant core-cycles per run: a 256-core run simulates a quarter of
    // a 64-core run's cycles, so every matrix cell costs about the same.
    const CpuCycle core_cycle_budget = options.cycles * 4;

    std::vector<ScaleRun> results(points.size() * lineup.size());
    session.pool().ParallelFor(
        results.size(), [&](std::size_t index) {
            const ScalePoint& point = points[index / lineup.size()];
            const SchedulerConfig& scheduler =
                lineup[index % lineup.size()];
            results[index] =
                RunPoint(point, scheduler, options,
                         core_cycle_budget / point.cores);
        });

    Table table({"system", "scheduler", "instructions", "requests",
                 "row-hit", "BLP"});
    for (std::size_t p = 0; p < points.size(); ++p) {
        const ScalePoint& point = points[p];
        const SystemConfig geometry =
            SystemConfig::Baseline(point.cores, point.channels);
        const std::uint32_t ranks = geometry.geometry.ranks_per_channel;
        const std::string section =
            std::to_string(point.cores) + " cores x " +
            std::to_string(point.channels) + " channels (" +
            std::to_string(ranks) + (ranks == 1 ? " rank)" : " ranks)");
        for (std::size_t s = 0; s < lineup.size(); ++s) {
            const std::string name = SchedulerConfigName(lineup[s]);
            ScaleRun& run = results[p * lineup.size() + s];
            if (options.engine) {
                session.RecordEngine(section + "/" + name,
                                     std::move(run.engine_run),
                                     std::move(run.engine_env));
            }
            session.RecordValue(section, "instructions/" + name,
                                static_cast<double>(run.instructions));
            session.RecordValue(section, "requests/" + name,
                                static_cast<double>(run.requests));
            session.RecordValue(section, "row_hit/" + name,
                                run.row_hit_rate);
            session.RecordValue(section, "blp/" + name, run.blp);
            table.AddRow({section, name,
                          std::to_string(run.instructions),
                          std::to_string(run.requests),
                          Table::Num(run.row_hit_rate, 3),
                          Table::Num(run.blp, 2)});
        }
    }

    std::cout << table.Render() << "\n"
              << "Shape check: instruction throughput should grow with the "
                 "channel count at a fixed\ncore count, and the scheduler "
                 "ordering seen at 16 cores (PAR-BS/BLISS leading\n"
                 "FR-FCFS on service) should persist at 64-256 cores.\n";
    return 0;
}
