/**
 * @file
 * Figure 5 — Case Study I: a memory-intensive 4-core workload
 * (libquantum, mcf, GemsFDTD, xalancbmk) under the five-scheduler lineup.
 *
 * Paper shape: FR-FCFS/FCFS are the most unfair (paper unfairness 5.26 and
 * 1.72); STFM improves both; PAR-BS provides the best fairness (1.07) and
 * throughput.  mcf (very high BLP) is over-penalized by NFQ/STFM, less so
 * by PAR-BS.
 */

#include "bench_common.hh"

int
main(int argc, char** argv)
{
    using namespace parbs;
    bench::Session session(argc, argv, "Figure 5", "Case Study I: memory-intensive workload");
    ExperimentRunner runner = bench::MakeRunner(session.options(), 4);
    bench::RunCaseStudy(session, runner, CaseStudy1());
    return 0;
}
