/**
 * @file
 * Shared infrastructure for the benchmark harness: every binary in bench/
 * regenerates one of the paper's tables or figures as console output.
 *
 * Common CLI (every experiment binary):
 *   --quick        quarter-length runs and smaller workload sets
 *   --full         paper-scale workload counts (e.g. 100 4-core mixes)
 *   --cycles N     simulated CPU cycles per run (default 2,000,000)
 *   --seed N       master seed
 */

#ifndef PARBS_BENCH_BENCH_COMMON_HH
#define PARBS_BENCH_BENCH_COMMON_HH

#include <string>
#include <vector>

#include "sim/experiment.hh"
#include "stats/table.hh"

namespace parbs::bench {

/** Parsed harness options. */
struct Options {
    CpuCycle cycles = 2'000'000;
    bool quick = false;
    bool full = false;
    std::uint64_t seed = 1;

    /** Picks a workload count by mode: quick/default/full. */
    std::uint32_t
    Count(std::uint32_t quick_n, std::uint32_t default_n,
          std::uint32_t full_n) const
    {
        return full ? full_n : quick ? quick_n : default_n;
    }
};

/** Parses the common CLI; exits with a usage message on errors. */
Options ParseOptions(int argc, char** argv);

/** An experiment runner configured from @p options. */
ExperimentRunner MakeRunner(const Options& options, std::uint32_t cores);

/** Prints the figure/table banner. */
void Banner(const std::string& id, const std::string& caption);

/**
 * Runs @p workload under the paper's five-scheduler lineup and prints the
 * per-thread slowdowns, unfairness, and throughput — the layout of the
 * Figure 5/6/7/9 case studies.  @return the runs, in lineup order.
 */
std::vector<SharedRun> RunCaseStudy(ExperimentRunner& runner,
                                    const WorkloadSpec& workload);

/**
 * Runs a workload *set* under the lineup and prints per-scheduler
 * aggregates (the Figure 8/10 and Table 4 layout).
 */
void RunAggregate(ExperimentRunner& runner,
                  const std::vector<WorkloadSpec>& workloads,
                  const std::string& label);

} // namespace parbs::bench

#endif // PARBS_BENCH_BENCH_COMMON_HH
