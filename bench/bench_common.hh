/**
 * @file
 * Shared infrastructure for the benchmark harness: every binary in bench/
 * regenerates one of the paper's tables or figures as console output, and
 * (with --json) a machine-readable result file for the perf-regression gate.
 *
 * Common CLI (every experiment binary):
 *   --quick        quarter-length runs and smaller workload sets
 *   --full         paper-scale workload counts (e.g. 100 4-core mixes)
 *   --cycles N     simulated CPU cycles per run (default 2,000,000)
 *   --seed N       master seed
 *   --jobs N       worker threads for independent runs (default 1; 0 = all
 *                  hardware threads).  Results are bit-identical for every
 *                  N — see DESIGN.md "Parallel runner".
 *   --channel-jobs N  worker threads advancing the memory controllers
 *                  *inside* each run (default 1 = serial loop; 0 = one per
 *                  channel).  Bit-identical for every N — DESIGN.md §5g.
 *                  Composes with --jobs: the run-level pool is divided by
 *                  N so --jobs J --channel-jobs C never oversubscribes.
 *   --engine       enable the engine flight recorder (DESIGN.md §5h) on
 *                  every run that supports it; deterministic engine
 *                  counters land under the JSON "run.engine" subtree and
 *                  volatile phase timings under "env.engine"
 *   --json PATH    write structured results (metrics per scheduler per
 *                  workload, wall clock, commit metadata) to PATH
 *   --trace PATH   write a Chrome trace-event file per shared run, named
 *                  <PATH minus .json>-<workload>-<scheduler>.json
 *                  (equivalent to setting PARBS_TRACE=PATH)
 */

#ifndef PARBS_BENCH_BENCH_COMMON_HH
#define PARBS_BENCH_BENCH_COMMON_HH

#include <chrono>
#include <string>
#include <vector>

#include "common/json.hh"
#include "sim/experiment.hh"
#include "sim/runner.hh"
#include "stats/table.hh"

namespace parbs::bench {

/** Parsed harness options. */
struct Options {
    CpuCycle cycles = 2'000'000;
    bool quick = false;
    bool full = false;
    std::uint64_t seed = 1;
    /** Worker threads for independent runs; 0 means all hardware threads. */
    unsigned jobs = 1;
    /** Intra-run channel workers (SystemConfig::channel_jobs); 0 means one
     *  per channel. */
    unsigned channel_jobs = 1;
    /** Engine flight recorder (observability.engine_profile). */
    bool engine = false;
    /** Structured-output path; empty disables JSON. */
    std::string json_path;
    /** Per-run trace-output stem; empty defers to PARBS_TRACE. */
    std::string trace_path;

    /** Picks a workload count by mode: quick/default/full. */
    std::uint32_t
    Count(std::uint32_t quick_n, std::uint32_t default_n,
          std::uint32_t full_n) const
    {
        return full ? full_n : quick ? quick_n : default_n;
    }

    /** The mode label recorded in JSON output. */
    const char*
    Mode() const
    {
        return full ? "full" : quick ? "quick" : "default";
    }
};

/** Parses the common CLI; exits with a usage message on errors. */
Options ParseOptions(int argc, char** argv);

/** An experiment runner configured from @p options. */
ExperimentRunner MakeRunner(const Options& options, std::uint32_t cores);

/** Prints the figure/table banner. */
void Banner(const std::string& id, const std::string& caption);

/**
 * One benchmark-binary invocation: parses the CLI, prints the banner, owns
 * the worker pool, collects structured results, and writes the JSON file
 * (and a wall-clock line on stderr) when destroyed.
 *
 * The Record* methods are not thread-safe; call them from the main thread
 * after the parallel runs have completed (the Run* helpers below do this).
 * Console output stays on stdout and is byte-identical regardless of
 * --jobs; everything timing-dependent (wall clock) goes to stderr and the
 * JSON "env" subtree, keeping the "run" subtree deterministic.
 */
class Session {
  public:
    Session(int argc, char** argv, const std::string& id,
            const std::string& caption);
    ~Session();

    Session(const Session&) = delete;
    Session& operator=(const Session&) = delete;

    const Options& options() const { return options_; }
    TaskPool& pool() { return *pool_; }

    /** Records one shared run's metrics under @p section. */
    void RecordRun(const std::string& section, const SharedRun& run);

    /** Records a per-scheduler aggregate under @p section. */
    void RecordAggregate(const std::string& section,
                         const std::string& scheduler,
                         const AggregateMetrics& aggregate);

    /** Records a named scalar (custom tables/sweeps) under @p section. */
    void RecordValue(const std::string& section, const std::string& name,
                     double value);

    /**
     * Records one run's engine-profiler output under @p label: the
     * deterministic counters (System::EngineRunJson) join the JSON
     * "run.engine" array, the volatile timings (System::EngineEnvJson) the
     * parallel "env.engine" array.  The two arrays stay index-aligned.
     */
    void RecordEngine(const std::string& label, json::Value run_engine,
                      json::Value env_engine);

    /**
     * Writes the JSON file (if --json was given) and prints the wall clock
     * to stderr.  Idempotent; called by the destructor.
     */
    void Finish();

  private:
    json::Value& SectionNode(const std::string& section);

    Options options_;
    std::string binary_;
    std::unique_ptr<TaskPool> pool_;
    std::chrono::steady_clock::time_point start_;
    json::Value sections_ = json::Value::Array();
    json::Value engine_run_ = json::Value::Array();
    json::Value engine_env_ = json::Value::Array();
    bool finished_ = false;
};

/**
 * One simulation job for RunTasks: a workload/scheduler pair plus the
 * optional per-thread priorities and weights (empty = none).
 */
struct RunTask {
    WorkloadSpec workload;
    SchedulerConfig scheduler;
    std::vector<ThreadPriority> priorities;
    std::vector<double> weights;
};

/**
 * Runs every task on the session's pool and returns the results in
 * submission order.  Each task is an independent simulation; results are
 * bit-identical for any --jobs value.
 */
std::vector<SharedRun> RunTasks(Session& session, ExperimentRunner& runner,
                                const std::vector<RunTask>& tasks);

/**
 * Runs every (scheduler, workload) pair concurrently.
 * @return runs indexed [scheduler][workload].
 */
std::vector<std::vector<SharedRun>>
RunMatrix(Session& session, ExperimentRunner& runner,
          const std::vector<SchedulerConfig>& schedulers,
          const std::vector<WorkloadSpec>& workloads);

/**
 * Runs @p workload under the paper's five-scheduler lineup and prints the
 * per-thread slowdowns, unfairness, and throughput — the layout of the
 * Figure 5/6/7/9 case studies.  Records each run under a section named
 * after the workload.  @return the runs, in lineup order.
 */
std::vector<SharedRun> RunCaseStudy(Session& session,
                                    ExperimentRunner& runner,
                                    const WorkloadSpec& workload);

/**
 * Runs a workload *set* under the lineup and prints per-scheduler
 * aggregates (the Figure 8/10 and Table 4 layout).  Records every run and
 * the per-scheduler aggregates under @p label.
 */
void RunAggregate(Session& session, ExperimentRunner& runner,
                  const std::vector<WorkloadSpec>& workloads,
                  const std::string& label);

} // namespace parbs::bench

#endif // PARBS_BENCH_BENCH_COMMON_HH
