/**
 * @file
 * Figure 9: the mixed 8-core workload (mcf, xml-parser, cactusADM, astar,
 * hmmer, h264ref, gromacs, bzip2).
 *
 * Paper shape: every previous scheduler slows the high-BLP thread (mcf) by
 * at least 3.5X; PAR-BS preserves its bank-parallelism (2.8X) and provides
 * the best fairness (1.39) and throughput.
 */

#include "bench_common.hh"

int
main(int argc, char** argv)
{
    using namespace parbs;
    bench::Session session(argc, argv, "Figure 9", "mixed 8-core workload");
    ExperimentRunner runner = bench::MakeRunner(session.options(), 8);
    bench::RunCaseStudy(session, runner, EightCoreMixed());
    return 0;
}
