/**
 * @file
 * Table 4: the summary comparison — unfairness, weighted/hmean speedup,
 * AST/req, and worst-case request latency for all five schedulers on the
 * 4-, 8-, and 16-core systems, averaged over workload populations.
 *
 * Paper shape: PAR-BS beats STFM on every column at every core count
 * (1.11X fairness / +4.4% WS / +8.3% HS at 4 cores) and has a markedly
 * lower worst-case latency than NFQ and STFM (1.46X-2.26X).
 */

#include <iostream>

#include "bench_common.hh"

int
main(int argc, char** argv)
{
    using namespace parbs;
    const bench::Options options = bench::ParseOptions(argc, argv);
    bench::Banner("Table 4",
                  "scheduler summary on 4-, 8-, and 16-core systems");

    const struct {
        std::uint32_t cores;
        std::uint32_t quick, normal, full;
    } sizes[] = {{4, 6, 16, 100}, {8, 4, 8, 16}, {16, 3, 6, 12}};

    for (const auto& size : sizes) {
        ExperimentRunner runner = bench::MakeRunner(options, size.cores);
        const std::uint32_t count =
            options.Count(size.quick, size.normal, size.full);
        bench::RunAggregate(
            runner, RandomMixes(count, size.cores, options.seed),
            std::to_string(size.cores) + "-core system");
    }
    return 0;
}
