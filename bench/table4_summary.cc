/**
 * @file
 * Table 4: the summary comparison — unfairness, weighted/hmean speedup,
 * AST/req, and worst-case request latency for all five schedulers on the
 * 4-, 8-, and 16-core systems, averaged over workload populations.
 *
 * Paper shape: PAR-BS beats STFM on every column at every core count
 * (1.11X fairness / +4.4% WS / +8.3% HS at 4 cores) and has a markedly
 * lower worst-case latency than NFQ and STFM (1.46X-2.26X).
 */

#include <iostream>

#include "bench_common.hh"

int
main(int argc, char** argv)
{
    using namespace parbs;
    bench::Session session(argc, argv, "Table 4",
                           "scheduler summary on 4-, 8-, and 16-core "
                           "systems");

    const struct {
        std::uint32_t cores;
        std::uint32_t quick, normal, full;
    } sizes[] = {{4, 6, 16, 100}, {8, 4, 8, 16}, {16, 3, 6, 12}};

    for (const auto& size : sizes) {
        ExperimentRunner runner =
            bench::MakeRunner(session.options(), size.cores);
        const std::uint32_t count =
            session.options().Count(size.quick, size.normal, size.full);
        bench::RunAggregate(
            session, runner,
            RandomMixes(count, size.cores, session.options().seed),
            std::to_string(size.cores) + "-core system");
    }
    return 0;
}
