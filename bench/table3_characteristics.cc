/**
 * @file
 * Table 3: benchmark characteristics.  Runs every synthetic benchmark
 * profile alone on the baseline 4-core system and prints measured MCPI,
 * MPKI, row-buffer hit rate, BLP, and AST/req next to the paper's values.
 */

#include <iostream>

#include "bench_common.hh"

int
main(int argc, char** argv)
{
    using namespace parbs;
    bench::Session session(argc, argv, "Table 3",
                           "benchmark characteristics, alone on the 4-core "
                           "baseline (measured vs paper)");

    ExperimentRunner runner = bench::MakeRunner(session.options(), 4);

    // Warm the alone-baseline cache in parallel; the print loop below then
    // reads fully-computed entries in profile order.
    const auto profiles = SpecProfiles();
    session.pool().ParallelFor(profiles.size(), [&](std::size_t index) {
        runner.AloneBaseline(std::string(profiles[index].name));
    });

    Table table({"#", "benchmark", "type", "cat", "MCPI", "(paper)", "MPKI",
                 "(paper)", "RB hit", "(paper)", "BLP", "(paper)",
                 "AST/req", "(paper)"});
    int index = 1;
    for (const BenchmarkProfile& profile : profiles) {
        const ThreadMeasurement& m =
            runner.AloneBaseline(std::string(profile.name));
        table.AddRow({std::to_string(index++), std::string(profile.name),
                      std::string(profile.type),
                      std::to_string(profile.category),
                      Table::Num(m.mcpi), Table::Num(profile.paper_mcpi),
                      Table::Num(m.mpki, 1),
                      Table::Num(profile.paper_mpki, 1),
                      Table::Num(m.row_hit_rate),
                      Table::Num(profile.paper_rb_hit), Table::Num(m.blp),
                      Table::Num(profile.paper_blp),
                      Table::Num(m.ast_per_req, 0),
                      Table::Num(profile.paper_ast_per_req, 0)});
        const std::string name(profile.name);
        session.RecordValue("characteristics", name + "/mcpi", m.mcpi);
        session.RecordValue("characteristics", name + "/mpki", m.mpki);
        session.RecordValue("characteristics", name + "/rb_hit",
                            m.row_hit_rate);
        session.RecordValue("characteristics", name + "/blp", m.blp);
        session.RecordValue("characteristics", name + "/ast_per_req",
                            m.ast_per_req);
    }
    std::cout << table.Render() << "\n"
              << "Category bits: 4 = memory-intensive (MCPI), 2 = high "
                 "row-buffer locality, 1 = high BLP.\n"
              << "Generator knobs were calibrated against RB hit, BLP, and "
                 "AST/req (tools/calibrate.cpp);\n"
              << "absolute MCPI/AST of the intensive streaming benchmarks "
                 "sit below paper values by design\n"
              << "(see EXPERIMENTS.md, substitution notes).\n";
    return 0;
}
