/**
 * @file
 * Ablation: the adaptive Marking-Cap extension (Section 8.3.1's "it is
 * possible to improve our mechanism by making the Marking-Cap adaptive")
 * against fixed caps, on the workload population and on the two
 * cap-sensitive case studies.
 */

#include <iostream>

#include "bench_common.hh"

namespace {

struct Variant {
    std::string name;
    parbs::SchedulerConfig config;
};

std::vector<Variant>
Variants()
{
    using namespace parbs;
    std::vector<Variant> out;
    for (std::uint32_t cap : {2u, 5u, 10u}) {
        SchedulerConfig config;
        config.kind = SchedulerKind::kParBs;
        config.parbs.marking_cap = cap;
        out.push_back({"fixed c=" + std::to_string(cap), config});
    }
    SchedulerConfig adaptive;
    adaptive.kind = SchedulerKind::kParBsAdaptive;
    out.push_back({"adaptive", adaptive});
    return out;
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace parbs;
    const bench::Options options = bench::ParseOptions(argc, argv);
    bench::Banner("Ablation", "adaptive Marking-Cap vs fixed caps");
    ExperimentRunner runner = bench::MakeRunner(options, 4);

    const std::uint32_t count = options.Count(4, 12, 50);
    const auto mixes = RandomMixes(count, 4, options.seed);
    std::cout << "Average over " << mixes.size() << " 4-core workloads:\n\n";
    Table averages({"cap policy", "unfairness(gmean)", "weighted-sp",
                    "hmean-sp"});
    for (const Variant& variant : Variants()) {
        std::vector<SharedRun> runs;
        for (const auto& workload : mixes) {
            runs.push_back(runner.RunShared(workload, variant.config));
        }
        const AggregateMetrics agg = ExperimentRunner::Aggregate(runs);
        averages.AddRow({variant.name,
                         Table::Num(agg.unfairness_gmean, 3),
                         Table::Num(agg.weighted_speedup_gmean, 3),
                         Table::Num(agg.hmean_speedup_gmean, 3)});
    }
    std::cout << averages.Render() << "\n";

    for (const WorkloadSpec& workload : {CaseStudy1(), CaseStudy2()}) {
        std::cout << "Unfairness / weighted speedup, " << workload.name
                  << ":\n\n";
        Table table({"cap policy", "unfairness", "weighted-sp"});
        for (const Variant& variant : Variants()) {
            const SharedRun run =
                runner.RunShared(workload, variant.config);
            table.AddRow({variant.name,
                          Table::Num(run.metrics.unfairness),
                          Table::Num(run.metrics.weighted_speedup)});
        }
        std::cout << table.Render() << "\n";
    }
    return 0;
}
