/**
 * @file
 * Ablation: the adaptive Marking-Cap extension (Section 8.3.1's "it is
 * possible to improve our mechanism by making the Marking-Cap adaptive")
 * against fixed caps, on the workload population and on the two
 * cap-sensitive case studies.
 */

#include <iostream>

#include "bench_common.hh"

namespace {

struct Variant {
    std::string name;
    parbs::SchedulerConfig config;
};

std::vector<Variant>
Variants()
{
    using namespace parbs;
    std::vector<Variant> out;
    for (std::uint32_t cap : {2u, 5u, 10u}) {
        SchedulerConfig config;
        config.kind = SchedulerKind::kParBs;
        config.parbs.marking_cap = cap;
        out.push_back({"fixed c=" + std::to_string(cap), config});
    }
    SchedulerConfig adaptive;
    adaptive.kind = SchedulerKind::kParBsAdaptive;
    out.push_back({"adaptive", adaptive});
    return out;
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace parbs;
    bench::Session session(argc, argv, "Ablation",
                           "adaptive Marking-Cap vs fixed caps");
    ExperimentRunner runner = bench::MakeRunner(session.options(), 4);
    const std::vector<Variant> variants = Variants();

    const std::uint32_t count = session.options().Count(4, 12, 50);
    const auto mixes = RandomMixes(count, 4, session.options().seed);
    std::cout << "Average over " << mixes.size() << " 4-core workloads:\n\n";
    std::vector<bench::RunTask> tasks;
    tasks.reserve(variants.size() * mixes.size());
    for (const Variant& variant : variants) {
        for (const auto& workload : mixes) {
            tasks.push_back({workload, variant.config, {}, {}});
        }
    }
    const std::vector<SharedRun> population =
        bench::RunTasks(session, runner, tasks);
    Table averages({"cap policy", "unfairness(gmean)", "weighted-sp",
                    "hmean-sp"});
    for (std::size_t v = 0; v < variants.size(); ++v) {
        const std::vector<SharedRun> runs(
            population.begin() +
                static_cast<std::ptrdiff_t>(v * mixes.size()),
            population.begin() +
                static_cast<std::ptrdiff_t>((v + 1) * mixes.size()));
        const AggregateMetrics agg = ExperimentRunner::Aggregate(runs);
        averages.AddRow({variants[v].name,
                         Table::Num(agg.unfairness_gmean, 3),
                         Table::Num(agg.weighted_speedup_gmean, 3),
                         Table::Num(agg.hmean_speedup_gmean, 3)});
        session.RecordAggregate("population", variants[v].name, agg);
    }
    std::cout << averages.Render() << "\n";

    for (const WorkloadSpec& workload : {CaseStudy1(), CaseStudy2()}) {
        std::cout << "Unfairness / weighted speedup, " << workload.name
                  << ":\n\n";
        Table table({"cap policy", "unfairness", "weighted-sp"});
        std::vector<bench::RunTask> study_tasks;
        study_tasks.reserve(variants.size());
        for (const Variant& variant : variants) {
            study_tasks.push_back({workload, variant.config, {}, {}});
        }
        const std::vector<SharedRun> runs =
            bench::RunTasks(session, runner, study_tasks);
        for (std::size_t v = 0; v < variants.size(); ++v) {
            table.AddRow({variants[v].name,
                          Table::Num(runs[v].metrics.unfairness),
                          Table::Num(runs[v].metrics.weighted_speedup)});
            session.RecordRun(workload.name, runs[v]);
        }
        std::cout << table.Render() << "\n";
    }
    return 0;
}
