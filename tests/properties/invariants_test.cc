/** @file Property-based tests: invariants that must hold for every
 *  scheduler under randomized traffic (parameterized across the lineup),
 *  plus PAR-BS-specific starvation-freedom guarantees. */

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <map>

#include "common/rng.hh"
#include "sched/factory.hh"
#include "test_util.hh"

namespace parbs {
namespace {

using test::ControllerHarness;

SchedulerConfig
ConfigFor(SchedulerKind kind)
{
    SchedulerConfig config;
    config.kind = kind;
    return config;
}

/** Parameterized over every scheduler in the library. */
class AnySchedulerTest : public ::testing::TestWithParam<SchedulerKind> {};

INSTANTIATE_TEST_SUITE_P(
    AllSchedulers, AnySchedulerTest,
    ::testing::Values(SchedulerKind::kFcfs, SchedulerKind::kFrFcfs,
                      SchedulerKind::kNfq, SchedulerKind::kStfm,
                      SchedulerKind::kParBs, SchedulerKind::kParBsStatic,
                      SchedulerKind::kParBsEslot,
                      SchedulerKind::kParBsAdaptive),
    [](const auto& info) {
        std::string name = SchedulerKindName(info.param);
        std::string out;
        for (char c : name) {
            if (std::isalnum(static_cast<unsigned char>(c))) {
                out += c;
            }
        }
        return out;
    });

TEST_P(AnySchedulerTest, EveryRequestEventuallyCompletes)
{
    ControllerHarness h(MakeScheduler(ConfigFor(GetParam())), 4);
    Rng rng(123);
    std::uint64_t issued = 0;
    for (int round = 0; round < 200; ++round) {
        if (h.controller().pending_reads() < 100) {
            h.Enqueue(static_cast<ThreadId>(rng.NextBelow(4)),
                      static_cast<std::uint32_t>(rng.NextBelow(8)),
                      static_cast<std::uint32_t>(rng.NextBelow(16)),
                      static_cast<std::uint32_t>(rng.NextBelow(32)),
                      rng.NextBool(0.2));
            issued += 1;
        }
        h.Tick(static_cast<std::uint64_t>(rng.NextBelow(6)));
    }
    h.RunUntilIdle(200000);
    EXPECT_EQ(h.controller().pending_reads(), 0u);
    EXPECT_EQ(h.controller().pending_writes(), 0u);
    std::uint64_t completed = 0;
    for (ThreadId t = 0; t < 4; ++t) {
        completed += h.controller().thread_stats(t).reads_completed +
                     h.controller().thread_stats(t).writes_completed;
    }
    EXPECT_EQ(completed, issued);
}

TEST_P(AnySchedulerTest, StatsConserveRowBufferOutcomes)
{
    ControllerHarness h(MakeScheduler(ConfigFor(GetParam())), 4);
    Rng rng(77);
    std::uint64_t reads = 0;
    for (int round = 0; round < 150; ++round) {
        if (h.controller().pending_reads() < 100) {
            h.Enqueue(static_cast<ThreadId>(rng.NextBelow(4)),
                      static_cast<std::uint32_t>(rng.NextBelow(8)),
                      static_cast<std::uint32_t>(rng.NextBelow(4)));
            reads += 1;
        }
        h.Tick(static_cast<std::uint64_t>(rng.NextBelow(10)));
    }
    h.RunUntilIdle(200000);
    std::uint64_t outcomes = 0;
    for (ThreadId t = 0; t < 4; ++t) {
        const auto& stats = h.controller().thread_stats(t);
        outcomes += stats.read_row_hits + stats.read_row_closed +
                    stats.read_row_conflicts;
    }
    EXPECT_EQ(outcomes, reads);
}

TEST_P(AnySchedulerTest, DeterministicServiceOrder)
{
    auto run = [this] {
        ControllerHarness h(MakeScheduler(ConfigFor(GetParam())), 4);
        Rng rng(31);
        for (int round = 0; round < 120; ++round) {
            if (h.controller().pending_reads() < 100) {
                h.Enqueue(static_cast<ThreadId>(rng.NextBelow(4)),
                          static_cast<std::uint32_t>(rng.NextBelow(8)),
                          static_cast<std::uint32_t>(rng.NextBelow(8)));
            }
            h.Tick(static_cast<std::uint64_t>(rng.NextBelow(5)));
        }
        h.RunUntilIdle(200000);
        return h.completed();
    };
    EXPECT_EQ(run(), run());
}

/**
 * The paper's central fairness guarantee: under PAR-BS, "the number of
 * requests from a thread scheduled before requests of another thread is
 * strictly bounded with the size of a batch" — no read waits longer than a
 * bounded number of DRAM cycles regardless of how aggressively another
 * thread streams row hits.
 */
namespace {

/**
 * Memory-performance-hog scenario (cf. Moscibroda & Mutlu, USENIX Security
 * 2007): an attacker continuously streams row hits into bank 0; after the
 * stream is established, a victim posts one conflicting request to the
 * same bank.  Returns how long the victim waited, capped at @p horizon.
 */
DramCycle
VictimWait(std::unique_ptr<Scheduler> scheduler, DramCycle horizon)
{
    ControllerHarness h(std::move(scheduler), 2);
    std::uint32_t column = 0;
    for (int i = 0; i < 30; ++i) {
        h.Enqueue(0, 0, 1, column++ % 32);
    }
    h.Tick(10); // The stream is being serviced; row 1 is open.
    const DramCycle victim_arrival = h.now();
    const RequestId victim = h.Enqueue(1, 0, 999);
    while (h.now() < victim_arrival + horizon) {
        if (h.controller().pending_reads() < 40) {
            h.Enqueue(0, 0, 1, column++ % 32); // Replenish the stream.
        }
        h.Tick();
        if (std::find(h.completed().begin(), h.completed().end(), victim) !=
            h.completed().end()) {
            return h.now() - victim_arrival;
        }
    }
    return horizon;
}

} // namespace

TEST(ParBsProperty, StarvationFreeUnderRowHitFlood)
{
    ParBsConfig config;
    config.marking_cap = 5;
    const DramCycle wait =
        VictimWait(std::make_unique<ParBsScheduler>(config), 5000);
    // Bounded by roughly one batch: cap (5) requests of the attacker plus
    // the in-flight batch when the victim arrived, each <= ~30 cycles.
    EXPECT_LT(wait, 700u);
}

TEST(ParBsProperty, FrFcfsStarvesTheSameVictimLonger)
{
    const DramCycle parbs = VictimWait(
        std::make_unique<ParBsScheduler>(ParBsConfig{}), 5000);
    const DramCycle frfcfs =
        VictimWait(MakeScheduler(ConfigFor(SchedulerKind::kFrFcfs)), 5000);
    // The contrast the paper motivates: FR-FCFS lets the row-hit stream
    // capture the bank; batching bounds the victim's delay.
    EXPECT_GT(frfcfs, parbs * 4);
}

TEST(ParBsProperty, MarkedOutstandingNeverNegativeOrLeaking)
{
    ParBsConfig config;
    config.marking_cap = 3;
    auto owned = std::make_unique<ParBsScheduler>(config);
    ParBsScheduler* scheduler = owned.get();
    ControllerHarness h(std::move(owned), 4);
    Rng rng(55);
    for (int round = 0; round < 400; ++round) {
        if (h.controller().pending_reads() < 100) {
            h.Enqueue(static_cast<ThreadId>(rng.NextBelow(4)),
                      static_cast<std::uint32_t>(rng.NextBelow(8)),
                      static_cast<std::uint32_t>(rng.NextBelow(6)));
        }
        h.Tick(static_cast<std::uint64_t>(rng.NextBelow(4)));
        EXPECT_LE(scheduler->marked_outstanding(),
                  h.controller().pending_reads());
    }
    h.RunUntilIdle(200000);
    EXPECT_EQ(scheduler->marked_outstanding(), 0u);
}

/** Marking-Cap sweep: batches honour the cap for every value. */
class MarkingCapTest : public ::testing::TestWithParam<std::uint32_t> {};

INSTANTIATE_TEST_SUITE_P(Caps, MarkingCapTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 16u));

TEST_P(MarkingCapTest, FirstBatchRespectsCap)
{
    ParBsConfig config;
    config.marking_cap = GetParam();
    auto owned = std::make_unique<ParBsScheduler>(config);
    ParBsScheduler* scheduler = owned.get();
    ControllerHarness h(std::move(owned), 2);
    // 20 requests from one thread to one bank; 4 to another bank.
    for (int i = 0; i < 20; ++i) {
        h.Enqueue(0, 0, 1 + i);
    }
    for (int i = 0; i < 4; ++i) {
        h.Enqueue(0, 1, 1 + i);
    }
    h.Tick();
    const std::uint64_t expected =
        std::min<std::uint64_t>(GetParam(), 20) +
        std::min<std::uint64_t>(GetParam(), 4);
    EXPECT_EQ(scheduler->marked_outstanding(), expected);
}

TEST_P(MarkingCapTest, AllTrafficDrains)
{
    ParBsConfig config;
    config.marking_cap = GetParam();
    ControllerHarness h(std::make_unique<ParBsScheduler>(config), 4);
    Rng rng(GetParam());
    int issued = 0;
    for (int round = 0; round < 150; ++round) {
        if (h.controller().pending_reads() < 100) {
            h.Enqueue(static_cast<ThreadId>(rng.NextBelow(4)),
                      static_cast<std::uint32_t>(rng.NextBelow(8)),
                      static_cast<std::uint32_t>(rng.NextBelow(8)));
            issued += 1;
        }
        h.Tick(static_cast<std::uint64_t>(rng.NextBelow(4)));
    }
    h.RunUntilIdle(200000);
    EXPECT_EQ(static_cast<int>(h.completed().size()), issued);
}

} // namespace
} // namespace parbs
