/**
 * @file
 * Property tests for the per-bank index (DESIGN.md §5e): under randomized
 * add / remove / begin-service sequences the intrusive chains, occupancy
 * counters, and generations must always match a from-scratch rebuild of
 * the buffer, and indexed selection must be observationally identical to
 * the full-buffer scan for every deterministic scheduler.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "mem/request_queue.hh"
#include "sched/factory.hh"
#include "sim/system.hh"
#include "test_util.hh"
#include "trace/synthetic.hh"

namespace parbs {
namespace {

using test::ControllerHarness;

// Same per-scenario seed derivation as the fault-injection harness, so a
// failing scenario reproduces from (master seed, index) alone.
constexpr std::uint64_t kMasterSeed = 0xbadb100d;

std::uint64_t
ScenarioSeed(std::uint64_t index)
{
    return kMasterSeed + 0x9e3779b97f4a7c15ULL * (index + 1);
}

constexpr std::uint32_t kRanks = 2;
constexpr std::uint32_t kBanksPerRank = 4;
constexpr std::uint32_t kThreads = 4;

/** Shadow model: flat per-bank arrival-ordered id lists. */
struct ShadowModel {
    std::vector<std::vector<RequestId>> queued_ids{
        std::vector<std::vector<RequestId>>(kRanks * kBanksPerRank)};
    std::vector<RequestId> buffered; ///< arrival order, includes in-burst

    void
    ExpectMatches(const RequestQueue& queue) const
    {
        for (std::uint32_t bank = 0; bank < kRanks * kBanksPerRank; ++bank) {
            ASSERT_EQ(queue.QueuedInBank(bank), queued_ids[bank].size())
                << "bank " << bank;
            std::vector<RequestId> chain;
            for (const MemRequest* request : queue.BankQueued(bank)) {
                chain.push_back(request->id);
            }
            ASSERT_EQ(chain, queued_ids[bank])
                << "bank " << bank << " chain order diverged";
        }
        ASSERT_EQ(queue.size(), buffered.size());
    }
};

TEST(IndexedQueueFuzz, IndexMatchesRebuildAfterEveryOperation)
{
    for (std::uint64_t scenario = 0; scenario < 8; ++scenario) {
        Rng rng(ScenarioSeed(scenario));
        RequestQueue queue(32, kThreads, kRanks, kBanksPerRank);
        ShadowModel model;
        RequestId next_id = 1;
        std::vector<std::uint64_t> last_gen(kRanks * kBanksPerRank, 0);

        for (int step = 0; step < 600; ++step) {
            const std::uint64_t op = rng.NextBelow(4);
            if (op <= 1 && !queue.Full()) {
                // Add a fresh queued request.
                auto request = std::make_unique<MemRequest>();
                request->id = next_id++;
                request->thread =
                    static_cast<ThreadId>(rng.NextBelow(kThreads));
                request->coords.rank =
                    static_cast<std::uint32_t>(rng.NextBelow(kRanks));
                request->coords.bank =
                    static_cast<std::uint32_t>(rng.NextBelow(kBanksPerRank));
                request->coords.row =
                    static_cast<std::uint32_t>(rng.NextBelow(16));
                const std::uint32_t flat = queue.FlatBank(*request);
                const RequestId id = request->id;
                queue.Add(std::move(request));
                model.queued_ids[flat].push_back(id);
                model.buffered.push_back(id);
            } else if (op == 2 && !model.buffered.empty()) {
                // Remove a random buffered request (queued or in-burst).
                const std::size_t pick = static_cast<std::size_t>(
                    rng.NextBelow(model.buffered.size()));
                const RequestId id = model.buffered[pick];
                RequestPtr removed = queue.Remove(id);
                ASSERT_EQ(removed->id, id);
                model.buffered.erase(model.buffered.begin() +
                                     static_cast<std::ptrdiff_t>(pick));
                auto& chain = model.queued_ids[queue.FlatBank(*removed)];
                chain.erase(std::remove(chain.begin(), chain.end(), id),
                            chain.end());
            } else if (op == 3) {
                // Begin service on a random queued request ("issue"): the
                // request leaves its chain but stays buffered, exactly as
                // the controller does at column-command issue.
                std::vector<std::uint32_t> nonempty;
                for (std::uint32_t bank = 0;
                     bank < kRanks * kBanksPerRank; ++bank) {
                    if (!model.queued_ids[bank].empty()) {
                        nonempty.push_back(bank);
                    }
                }
                if (nonempty.empty()) {
                    continue;
                }
                const std::uint32_t bank = nonempty[static_cast<std::size_t>(
                    rng.NextBelow(nonempty.size()))];
                auto& chain = model.queued_ids[bank];
                const std::size_t pick = static_cast<std::size_t>(
                    rng.NextBelow(chain.size()));
                const RequestId id = chain[pick];
                MemRequest* request = nullptr;
                for (MemRequest* r : queue.BankQueued(bank)) {
                    if (r->id == id) {
                        request = r;
                    }
                }
                ASSERT_NE(request, nullptr);
                queue.BeginService(*request);
                request->state = RequestState::kInBurst;
                chain.erase(chain.begin() +
                            static_cast<std::ptrdiff_t>(pick));
            } else {
                continue;
            }

            // The buffer's own O(size x banks) rebuild cross-check...
            queue.CheckIndex();
            // ...plus the external shadow model (contents and order).
            model.ExpectMatches(queue);
            // Generations never move backwards (memo-key soundness).
            for (std::uint32_t bank = 0; bank < kRanks * kBanksPerRank;
                 ++bank) {
                const std::uint64_t gen = queue.BankGeneration(bank);
                ASSERT_GE(gen, std::max<std::uint64_t>(last_gen[bank], 1));
                last_gen[bank] = gen;
            }
        }
    }
}

SchedulerConfig
ConfigFor(SchedulerKind kind)
{
    SchedulerConfig config;
    config.kind = kind;
    return config;
}

/** Parameterized over the deterministic scheduler lineup. */
class IndexedSelectionExactness
    : public ::testing::TestWithParam<SchedulerKind> {};

std::vector<std::unique_ptr<TraceSource>>
SyntheticTraces(const SystemConfig& config, std::uint32_t count, double mpki)
{
    dram::AddressMapper mapper(config.geometry, config.xor_bank_hash);
    std::vector<std::unique_ptr<TraceSource>> traces;
    for (ThreadId t = 0; t < count; ++t) {
        SyntheticParams params;
        params.mpki = mpki;
        traces.push_back(std::make_unique<SyntheticTraceSource>(
            params, mapper, t, count, 4000 + t));
    }
    return traces;
}

/** Everything observable about a run that must not depend on the path. */
std::vector<std::uint64_t>
Fingerprint(SchedulerKind kind, bool indexed, double mpki)
{
    SystemConfig config = SystemConfig::Baseline(4);
    config.scheduler.kind = kind;
    config.controller.indexed_selection = indexed;
    System system(config, SyntheticTraces(config, 4, mpki));
    system.Run(200000);
    std::vector<std::uint64_t> out;
    for (ThreadId t = 0; t < 4; ++t) {
        const ThreadMeasurement m = system.Measure(t);
        out.push_back(m.requests);
        out.push_back(m.instructions);
        out.push_back(m.worst_case_latency);
        out.push_back(static_cast<std::uint64_t>(m.row_hit_rate * 1e12));
        out.push_back(static_cast<std::uint64_t>(m.blp * 1e12));
    }
    for (std::uint32_t c = 0; c < system.num_controllers(); ++c) {
        const Controller& controller = system.controller(c);
        out.push_back(
            controller.commands_issued(dram::CommandType::kActivate));
        out.push_back(
            controller.commands_issued(dram::CommandType::kPrecharge));
        out.push_back(controller.commands_issued(dram::CommandType::kRead));
        out.push_back(controller.commands_issued(dram::CommandType::kWrite));
    }
    return out;
}

TEST_P(IndexedSelectionExactness, IndexedMatchesFullScanEndToEnd)
{
    // Saturated and idle-heavy traffic stress different memo lifetimes
    // (standing chains vs constant link/unlink churn).
    for (double mpki : {20.0, 2.0}) {
        EXPECT_EQ(Fingerprint(GetParam(), true, mpki),
                  Fingerprint(GetParam(), false, mpki))
            << "indexed selection diverged at mpki " << mpki;
    }
}

TEST_P(IndexedSelectionExactness, EveryPickCrossChecksUnderRandomTraffic)
{
    // verify_indexed_selection re-runs every pick through the full-scan
    // path and asserts agreement — this exercises the memoized per-bank
    // winners (and the row-hit state they embed) against a from-scratch
    // recompute on every scheduling decision.
    for (std::uint64_t scenario = 0; scenario < 4; ++scenario) {
        ControllerConfig config = ControllerHarness::DefaultConfig();
        config.verify_indexed_selection = true;
        ControllerHarness h(MakeScheduler(ConfigFor(GetParam())), kThreads,
                            config);
        Rng rng(ScenarioSeed(scenario));
        for (int round = 0; round < 400; ++round) {
            if (h.controller().pending_reads() < 100 &&
                h.controller().pending_writes() < 50) {
                h.Enqueue(static_cast<ThreadId>(rng.NextBelow(kThreads)),
                          static_cast<std::uint32_t>(rng.NextBelow(8)),
                          static_cast<std::uint32_t>(rng.NextBelow(16)),
                          static_cast<std::uint32_t>(rng.NextBelow(32)),
                          rng.NextBool(0.2));
            }
            h.Tick(static_cast<std::uint64_t>(rng.NextBelow(6)));
        }
        h.RunUntilIdle(200000);
        EXPECT_EQ(h.controller().pending_reads(), 0u);
        EXPECT_EQ(h.controller().pending_writes(), 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllSchedulers, IndexedSelectionExactness,
    ::testing::Values(SchedulerKind::kFrFcfs, SchedulerKind::kFcfs,
                      SchedulerKind::kNfq, SchedulerKind::kStfm,
                      SchedulerKind::kParBs, SchedulerKind::kBliss),
    [](const auto& info) {
        const std::string name = SchedulerKindName(info.param);
        std::string out;
        for (char c : name) {
            if (std::isalnum(static_cast<unsigned char>(c))) {
                out += c;
            }
        }
        return out;
    });

} // namespace
} // namespace parbs
