/**
 * @file
 * Serial/sharded equivalence tests for the channel-sharded cycle loop
 * (DESIGN.md §5g): for every scheduler and every worker count the sharded
 * engine must be *bit-identical* to the serial one — same stats dump bytes,
 * same trace-document bytes, same stop cycle — with observability on or
 * off, with the watchdog armed, and under scheduler chaos.
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "sched/factory.hh"
#include "sim/experiment.hh"
#include "sim/fault_injector.hh"
#include "sim/system.hh"
#include "trace/synthetic.hh"

namespace parbs {
namespace {

std::vector<std::unique_ptr<TraceSource>>
SyntheticTraces(const SystemConfig& config, std::uint32_t count,
                double mpki = 20.0)
{
    dram::AddressMapper mapper(config.geometry, config.xor_bank_hash);
    std::vector<std::unique_ptr<TraceSource>> traces;
    for (ThreadId t = 0; t < count; ++t) {
        SyntheticParams params;
        params.mpki = mpki;
        traces.push_back(std::make_unique<SyntheticTraceSource>(
            params, mapper, t, count, 1000 + t));
    }
    return traces;
}

struct Artifacts {
    std::string stats;
    std::string trace;
    CpuCycle stop = 0;
    bool sharded = false;
};

/** Runs a fresh system to completion of @p chunks and captures every
 *  observable output byte-for-byte. */
Artifacts
RunSystem(const SystemConfig& config, std::uint32_t cores,
          const std::vector<CpuCycle>& chunks)
{
    System system(config, SyntheticTraces(config, cores));
    for (const CpuCycle chunk : chunks) {
        system.Run(chunk);
    }
    Artifacts out;
    out.stop = system.now();
    out.sharded = system.sharded();
    std::ostringstream stats;
    system.DumpStats(stats);
    out.stats = stats.str();
    if (system.observability() != nullptr) {
        std::ostringstream trace;
        system.WriteTrace(trace, "sharded-equivalence");
        out.trace = trace.str();
    }
    return out;
}

SystemConfig
TracedConfig(std::uint32_t cores, const SchedulerConfig& scheduler,
             unsigned channel_jobs)
{
    SystemConfig config = SystemConfig::Baseline(cores);
    config.scheduler = scheduler;
    config.channel_jobs = channel_jobs;
    config.observability.trace = true;
    config.observability.sample_interval = 256;
    return config;
}

class ShardedEquivalence : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ShardedEquivalence, BitIdenticalAcrossWorkerCounts)
{
    const SchedulerConfig scheduler =
        ComparisonSchedulers()[GetParam()];
    constexpr std::uint32_t kCores = 16; // Baseline(16) has 4 channels.
    const std::vector<CpuCycle> chunks{60000};

    const Artifacts serial =
        RunSystem(TracedConfig(kCores, scheduler, 1), kCores, chunks);
    ASSERT_FALSE(serial.sharded);
    for (const unsigned jobs : {2u, 4u}) {
        const Artifacts sharded = RunSystem(
            TracedConfig(kCores, scheduler, jobs), kCores, chunks);
        ASSERT_TRUE(sharded.sharded) << "jobs=" << jobs;
        EXPECT_EQ(serial.stop, sharded.stop) << "jobs=" << jobs;
        EXPECT_EQ(serial.stats, sharded.stats) << "jobs=" << jobs;
        EXPECT_EQ(serial.trace, sharded.trace) << "jobs=" << jobs;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllSchedulers, ShardedEquivalence, ::testing::Range<std::size_t>(0, 6),
    [](const ::testing::TestParamInfo<std::size_t>& info) {
        std::string name =
            SchedulerConfigName(ComparisonSchedulers()[info.param]);
        for (char& c : name) {
            if (c == '-') {
                c = '_';
            }
        }
        return name;
    });

TEST(ShardedSystem, UnalignedChunkedRunsStayIdentical)
{
    SchedulerConfig scheduler;
    scheduler.kind = SchedulerKind::kParBs;
    constexpr std::uint32_t kCores = 16;
    // Chunk boundaries that land mid-DRAM-tick and mid-window exercise the
    // resume bootstrap (next_tick_ == ceil(cpu / ratio)).
    const std::vector<CpuCycle> chunks{997, 1, 13, 29001, 7, 29981};
    const std::vector<CpuCycle> one_shot{997 + 1 + 13 + 29001 + 7 + 29981};

    const Artifacts serial =
        RunSystem(TracedConfig(kCores, scheduler, 1), kCores, one_shot);
    const Artifacts sharded_chunks =
        RunSystem(TracedConfig(kCores, scheduler, 4), kCores, chunks);
    const Artifacts serial_chunks =
        RunSystem(TracedConfig(kCores, scheduler, 1), kCores, chunks);
    EXPECT_EQ(serial.stats, serial_chunks.stats);
    EXPECT_EQ(serial.stats, sharded_chunks.stats);
    EXPECT_EQ(serial.trace, sharded_chunks.trace);
    EXPECT_EQ(serial.stop, sharded_chunks.stop);
}

TEST(ShardedSystem, WatchdogArmedRunStaysIdentical)
{
    // The global progress signature is sampled on the coordinator while
    // the controller counters lag by up to one window; a healthy run must
    // still produce identical outputs (and no spurious WatchdogError).
    SchedulerConfig scheduler;
    scheduler.kind = SchedulerKind::kParBs;
    auto config = [&](unsigned jobs) {
        SystemConfig out = TracedConfig(16, scheduler, jobs);
        out.controller.watchdog.enabled = true;
        return out;
    };
    const std::vector<CpuCycle> chunks{50000};
    const Artifacts serial = RunSystem(config(1), 16, chunks);
    const Artifacts sharded = RunSystem(config(4), 16, chunks);
    ASSERT_TRUE(sharded.sharded);
    EXPECT_EQ(serial.stats, sharded.stats);
    EXPECT_EQ(serial.trace, sharded.trace);
}

TEST(ShardedSystem, SchedulerChaosFaultInjectionStaysIdentical)
{
    // Per-channel seeded ChaosSchedulers draw from their own RNGs, so the
    // decision stream only depends on each channel's local event order —
    // which sharding must preserve exactly.
    auto config = [](unsigned jobs) {
        SystemConfig out = SystemConfig::Baseline(16);
        out.channel_jobs = jobs;
        auto counter = std::make_shared<std::uint64_t>(0);
        out.scheduler_factory = [counter]() {
            SchedulerConfig inner;
            inner.kind = SchedulerKind::kParBs;
            return std::make_unique<ChaosScheduler>(
                MakeScheduler(inner), 0xC0FFEE + (*counter)++, 0.5);
        };
        return out;
    };
    const std::vector<CpuCycle> chunks{40000};
    const Artifacts serial = RunSystem(config(1), 16, chunks);
    const Artifacts sharded = RunSystem(config(4), 16, chunks);
    ASSERT_TRUE(sharded.sharded);
    EXPECT_EQ(serial.stats, sharded.stats);
    EXPECT_EQ(serial.stop, sharded.stop);
}

TEST(ShardedSystem, SingleChannelFallsBackToSerial)
{
    SystemConfig config = SystemConfig::Baseline(4); // one channel
    config.channel_jobs = 8;
    System system(config, SyntheticTraces(config, 4));
    EXPECT_FALSE(system.sharded());
    system.Run(10000);
    EXPECT_GT(system.Measure(0).requests, 0u);
}

TEST(ShardedSystem, ZeroJobsMeansOneWorkerPerChannel)
{
    SchedulerConfig scheduler;
    scheduler.kind = SchedulerKind::kFrFcfs;
    const std::vector<CpuCycle> chunks{30000};
    const Artifacts serial =
        RunSystem(TracedConfig(16, scheduler, 1), 16, chunks);
    SystemConfig auto_jobs = TracedConfig(16, scheduler, 0);
    const Artifacts sharded = RunSystem(auto_jobs, 16, chunks);
    ASSERT_TRUE(sharded.sharded);
    EXPECT_EQ(serial.stats, sharded.stats);
    EXPECT_EQ(serial.trace, sharded.trace);
}

TEST(ShardedSystem, LookaheadWindowMatchesTimingBound)
{
    SystemConfig config = SystemConfig::Baseline(16);
    config.channel_jobs = 4;
    System system(config, SyntheticTraces(config, 16));
    ASSERT_TRUE(system.sharded());
    // The adaptive window is bounded by the shortest burst latency alone:
    // read notifications are published ahead of execution, so the return-
    // path latency no longer caps the horizon (DESIGN.md §5g).
    const DramCycle expected =
        std::min<DramCycle>(config.timing.tCL + config.timing.tBURST,
                            config.timing.tCWD + config.timing.tBURST);
    EXPECT_EQ(system.lookahead_window(), expected);
    EXPECT_GE(system.lookahead_window(), 1u);
}

TEST(ShardedSystem, FiniteTracesDrainOnTheSameCycle)
{
    // The end-of-run probe runs against the occupancy proxies; the sharded
    // engine must stop on the very same CPU cycle as the serial loop.
    auto run = [](unsigned jobs) {
        SystemConfig config = SystemConfig::Baseline(16);
        config.channel_jobs = jobs;
        std::vector<std::unique_ptr<TraceSource>> traces;
        for (ThreadId t = 0; t < 16; ++t) {
            std::vector<TraceEntry> entries;
            for (int i = 0; i < 40; ++i) {
                const Addr addr =
                    0x1000 + 64ull * (i * 97 + t * 1031 + i * i * 7);
                entries.push_back({5, addr, (i % 3) == 2, false});
            }
            traces.push_back(
                std::make_unique<VectorTraceSource>(entries));
        }
        System system(config, std::move(traces));
        system.Run(5'000'000);
        EXPECT_TRUE(system.AllDone());
        std::ostringstream stats;
        system.DumpStats(stats);
        return std::make_pair(system.now(), stats.str());
    };
    const auto serial = run(1);
    const auto sharded = run(4);
    EXPECT_EQ(serial.first, sharded.first);
    EXPECT_EQ(serial.second, sharded.second);
}

} // namespace
} // namespace parbs
