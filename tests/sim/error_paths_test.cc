/** @file User configuration faults must raise ConfigError with context. */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/assert.hh"
#include "dram/timing.hh"
#include "mem/controller.hh"
#include "sim/config.hh"
#include "sim/system.hh"

namespace parbs {
namespace {

TEST(ErrorPaths, ControllerRejectsZeroCapacityQueues)
{
    ControllerConfig config;
    config.read_queue_capacity = 0;
    EXPECT_THROW(config.Validate(), ConfigError);

    config = ControllerConfig{};
    config.write_queue_capacity = 0;
    EXPECT_THROW(config.Validate(), ConfigError);
}

TEST(ErrorPaths, ControllerRejectsInvertedDrainWatermarks)
{
    ControllerConfig config;
    config.write_drain_low = 60;
    config.write_drain_high = 40;
    EXPECT_THROW(config.Validate(), ConfigError);

    config = ControllerConfig{};
    config.write_drain_high = config.write_queue_capacity + 1;
    EXPECT_THROW(config.Validate(), ConfigError);
}

TEST(ErrorPaths, GeometryRejectsOversizedShapes)
{
    dram::Geometry geometry;
    geometry.channels = 32;
    EXPECT_THROW(geometry.Validate(), ConfigError);

    geometry = dram::Geometry{};
    geometry.ranks_per_channel = 32;
    EXPECT_THROW(geometry.Validate(), ConfigError);

    geometry = dram::Geometry{};
    geometry.banks_per_rank = 128;
    EXPECT_THROW(geometry.Validate(), ConfigError);

    geometry = dram::Geometry{};
    geometry.rows_per_bank = 1u << 25;
    EXPECT_THROW(geometry.Validate(), ConfigError);

    geometry = dram::Geometry{};
    geometry.row_bytes = 128 * 1024;
    EXPECT_THROW(geometry.Validate(), ConfigError);
}

TEST(ErrorPaths, GeometryErrorNamesTheOffendingValue)
{
    dram::Geometry geometry;
    geometry.channels = 32;
    try {
        geometry.Validate();
        FAIL() << "expected ConfigError";
    } catch (const ConfigError& error) {
        EXPECT_NE(std::string(error.what()).find("channels=32"),
                  std::string::npos)
            << error.what();
    }
}

TEST(ErrorPaths, SystemConfigValidateCoversTheController)
{
    SystemConfig config = SystemConfig::Baseline(4);
    config.controller.read_queue_capacity = 0;
    EXPECT_THROW(config.Validate(), ConfigError);
}

TEST(ErrorPaths, SystemRejectsOutOfRangeAddresses)
{
    SystemConfig config = SystemConfig::Baseline(4);
    config.Validate();
    System system(config, {});
    const std::uint64_t capacity = config.geometry.CapacityBytes();

    // The last valid line is accepted; one byte past capacity is not.
    EXPECT_NO_THROW(system.TryIssueRead(0, capacity - 1));
    EXPECT_THROW(system.TryIssueRead(0, capacity), ConfigError);
    EXPECT_THROW(system.TryIssueWrite(0, capacity + 4096), ConfigError);

    try {
        system.TryIssueRead(0, capacity);
        FAIL() << "expected ConfigError";
    } catch (const ConfigError& error) {
        // The message points the user at the geometry, not at internals.
        EXPECT_NE(std::string(error.what()).find("geometry"),
                  std::string::npos)
            << error.what();
    }
}

} // namespace
} // namespace parbs
