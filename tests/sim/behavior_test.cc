/** @file System-level behaviour tests: the paper's mechanisms observed
 *  end-to-end through full CMP simulations (slower than unit tests but
 *  still sub-second each). */

#include <gtest/gtest.h>

#include <algorithm>

#include "sim/experiment.hh"

namespace parbs {
namespace {

ExperimentConfig
SmallConfig()
{
    ExperimentConfig config;
    config.cores = 4;
    config.run_cycles = 400'000;
    return config;
}

SchedulerConfig
Kind(SchedulerKind kind)
{
    SchedulerConfig config;
    config.kind = kind;
    return config;
}

TEST(Behavior, ParBsPreservesHighBlpThreadBetterThanNfq)
{
    // Case Study I's mcf story: NFQ balances per bank without cross-bank
    // coordination and serializes mcf's parallel requests; PAR-BS ranks
    // threads consistently across banks.
    ExperimentRunner runner(SmallConfig());
    const WorkloadSpec workload = CaseStudy1();
    const SharedRun nfq = runner.RunShared(workload, Kind(SchedulerKind::kNfq));
    const SharedRun parbs =
        runner.RunShared(workload, Kind(SchedulerKind::kParBs));
    // Thread 1 is mcf.
    EXPECT_GT(parbs.shared[1].blp, nfq.shared[1].blp * 0.95);
    // And mcf's stall per request should not be worse under PAR-BS.
    EXPECT_LE(parbs.shared[1].ast_per_req,
              nfq.shared[1].ast_per_req * 1.1);
}

TEST(Behavior, ParBsThroughputAtLeastFrFcfs)
{
    // The headline throughput claim, at case-study scale.
    ExperimentRunner runner(SmallConfig());
    for (const WorkloadSpec& workload : {CaseStudy1(), CaseStudy2()}) {
        const double frfcfs =
            runner.RunShared(workload, Kind(SchedulerKind::kFrFcfs))
                .metrics.weighted_speedup;
        const double parbs =
            runner.RunShared(workload, Kind(SchedulerKind::kParBs))
                .metrics.weighted_speedup;
        EXPECT_GT(parbs, frfcfs * 0.99) << workload.name;
    }
}

TEST(Behavior, ParBsFairerThanFrFcfs)
{
    ExperimentRunner runner(SmallConfig());
    for (const WorkloadSpec& workload : {CaseStudy1(), CaseStudy2()}) {
        const double frfcfs =
            runner.RunShared(workload, Kind(SchedulerKind::kFrFcfs))
                .metrics.unfairness;
        const double parbs =
            runner.RunShared(workload, Kind(SchedulerKind::kParBs))
                .metrics.unfairness;
        EXPECT_LT(parbs, frfcfs * 1.02) << workload.name;
    }
}

TEST(Behavior, PrioritiesOrderSlowdowns)
{
    // Figure 14 left: equal programs at priorities 1,1,2,8 must come out
    // with monotonically ordered slowdowns.
    ExperimentRunner runner(SmallConfig());
    const std::vector<ThreadPriority> priorities{1, 1, 2, 8};
    const SharedRun run = runner.RunShared(
        Copies("470.lbm", 4), Kind(SchedulerKind::kParBs), &priorities);
    const auto& s = run.metrics.memory_slowdown;
    EXPECT_LT(std::max(s[0], s[1]), s[2]);
    EXPECT_LT(s[2], s[3]);
}

TEST(Behavior, OpportunisticThreadsBarelyHurtTheForegroundThread)
{
    // Figure 14 right: with the background demoted to level L, the
    // foreground thread approaches its alone-run performance.
    ExperimentRunner runner(SmallConfig());
    WorkloadSpec workload;
    workload.name = "fg-bg";
    workload.benchmarks = {"471.omnetpp", "462.libquantum", "429.mcf",
                           "matlab"};
    const SharedRun equal =
        runner.RunShared(workload, Kind(SchedulerKind::kParBs));
    const std::vector<ThreadPriority> priorities{
        1, kOpportunisticPriority, kOpportunisticPriority,
        kOpportunisticPriority};
    const SharedRun qos = runner.RunShared(
        workload, Kind(SchedulerKind::kParBs), &priorities);
    EXPECT_LT(qos.metrics.memory_slowdown[0],
              equal.metrics.memory_slowdown[0]);
    EXPECT_LT(qos.metrics.memory_slowdown[0], 1.8);
}

TEST(Behavior, NfqWeightsShiftBandwidth)
{
    ExperimentRunner runner(SmallConfig());
    const WorkloadSpec workload = Copies("470.lbm", 4);
    const std::vector<double> weights{8, 1, 1, 1};
    const SharedRun run = runner.RunShared(
        workload, Kind(SchedulerKind::kNfq), nullptr, &weights);
    // The weight-8 copy must be slowed least.
    for (int t = 1; t < 4; ++t) {
        EXPECT_LT(run.metrics.memory_slowdown[0],
                  run.metrics.memory_slowdown[t]) << "thread " << t;
    }
}

TEST(Behavior, StfmWeightsShiftBandwidth)
{
    ExperimentRunner runner(SmallConfig());
    const WorkloadSpec workload = Copies("470.lbm", 4);
    const std::vector<double> weights{8, 1, 1, 1};
    const SharedRun run = runner.RunShared(
        workload, Kind(SchedulerKind::kStfm), nullptr, &weights);
    for (int t = 1; t < 4; ++t) {
        EXPECT_LT(run.metrics.memory_slowdown[0],
                  run.metrics.memory_slowdown[t]) << "thread " << t;
    }
}

TEST(Behavior, CustomizeHookChangesTheSystem)
{
    ExperimentConfig config = SmallConfig();
    config.customize = [](SystemConfig& system) {
        system.geometry.channels = 2;
    };
    ExperimentRunner runner(config);
    // More channels => less contention => strictly better throughput.
    ExperimentRunner baseline(SmallConfig());
    const double one_channel =
        baseline.RunShared(CaseStudy1(), Kind(SchedulerKind::kFrFcfs))
            .metrics.weighted_speedup;
    const double two_channels =
        runner.RunShared(CaseStudy1(), Kind(SchedulerKind::kFrFcfs))
            .metrics.weighted_speedup;
    EXPECT_GT(two_channels, one_channel);
}

TEST(Behavior, AdaptiveCapTracksFixedCapQuality)
{
    ExperimentRunner runner(SmallConfig());
    const SharedRun fixed =
        runner.RunShared(CaseStudy2(), Kind(SchedulerKind::kParBs));
    const SharedRun adaptive = runner.RunShared(
        CaseStudy2(), Kind(SchedulerKind::kParBsAdaptive));
    // Within 10% of the default cap on both axes.
    EXPECT_LT(adaptive.metrics.unfairness, fixed.metrics.unfairness * 1.1);
    EXPECT_GT(adaptive.metrics.weighted_speedup,
              fixed.metrics.weighted_speedup * 0.9);
}

TEST(Behavior, SchedulersAgreeOnTotalWorkDone)
{
    // Request conservation at system scale: the same workload completes a
    // similar instruction volume under every scheduler (within 2x), and
    // no scheduler loses requests.
    ExperimentRunner runner(SmallConfig());
    std::vector<std::uint64_t> instructions;
    for (const auto& scheduler : ComparisonSchedulers()) {
        const SharedRun run = runner.RunShared(CaseStudy1(), scheduler);
        std::uint64_t total = 0;
        for (const auto& m : run.shared) {
            EXPECT_GT(m.requests, 0u);
            total += m.instructions;
        }
        instructions.push_back(total);
    }
    const auto [min_it, max_it] =
        std::minmax_element(instructions.begin(), instructions.end());
    EXPECT_LT(*max_it, *min_it * 2);
}

} // namespace
} // namespace parbs
