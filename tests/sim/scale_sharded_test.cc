/**
 * @file
 * Scale-out equivalence tests (DESIGN.md §5g): at 64+ cores the sharded
 * engine adds a parallel core phase and pre-published read notifications
 * on top of the channel shards, and the whole stack must stay bit-identical
 * to the serial loop — same stats bytes, same trace bytes, same stop cycle
 * — for every scheduler, channel-crew size, and core-crew size.  Also
 * covers the generalized baseline geometries (128/256 cores scale by
 * ranks) and the sampled PARBS_CHECK selection cross-check.
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "sched/factory.hh"
#include "sim/experiment.hh"
#include "sim/system.hh"
#include "trace/synthetic.hh"

namespace parbs {
namespace {

std::vector<std::unique_ptr<TraceSource>>
SyntheticTraces(const SystemConfig& config, std::uint32_t count,
                double mpki = 20.0)
{
    dram::AddressMapper mapper(config.geometry, config.xor_bank_hash);
    std::vector<std::unique_ptr<TraceSource>> traces;
    for (ThreadId t = 0; t < count; ++t) {
        SyntheticParams params;
        params.mpki = mpki;
        traces.push_back(std::make_unique<SyntheticTraceSource>(
            params, mapper, t, count, 1000 + t));
    }
    return traces;
}

struct Artifacts {
    std::string stats;
    std::string trace;
    CpuCycle stop = 0;
    bool sharded = false;
    unsigned core_crew = 1;
};

Artifacts
RunSystem(const SystemConfig& config, std::uint32_t cores, CpuCycle cycles)
{
    System system(config, SyntheticTraces(config, cores));
    system.Run(cycles);
    Artifacts out;
    out.stop = system.now();
    out.sharded = system.sharded();
    out.core_crew = system.core_crew();
    std::ostringstream stats;
    system.DumpStats(stats);
    out.stats = stats.str();
    if (system.observability() != nullptr) {
        std::ostringstream trace;
        system.WriteTrace(trace, "scale-equivalence");
        out.trace = trace.str();
    }
    return out;
}

SystemConfig
TracedConfig(std::uint32_t cores, const SchedulerConfig& scheduler,
             unsigned channel_jobs)
{
    SystemConfig config = SystemConfig::Baseline(cores);
    config.scheduler = scheduler;
    config.channel_jobs = channel_jobs;
    config.observability.trace = true;
    config.observability.sample_interval = 512;
    return config;
}

class ScaleShardedEquivalence
    : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ScaleShardedEquivalence, BitIdenticalAt64Cores)
{
    const SchedulerConfig scheduler = ComparisonSchedulers()[GetParam()];
    constexpr std::uint32_t kCores = 64; // Baseline(64) has 16 channels.
    constexpr CpuCycle kCycles = 25000;

    const Artifacts serial =
        RunSystem(TracedConfig(kCores, scheduler, 1), kCores, kCycles);
    ASSERT_FALSE(serial.sharded);
    for (const unsigned jobs : {4u, 8u}) {
        const Artifacts sharded = RunSystem(
            TracedConfig(kCores, scheduler, jobs), kCores, kCycles);
        ASSERT_TRUE(sharded.sharded) << "jobs=" << jobs;
        // core_jobs defaults to auto, which engages the parallel core
        // phase from 32 cores up — this suite must actually exercise it.
        ASSERT_EQ(sharded.core_crew, jobs) << "jobs=" << jobs;
        EXPECT_EQ(serial.stop, sharded.stop) << "jobs=" << jobs;
        EXPECT_EQ(serial.stats, sharded.stats) << "jobs=" << jobs;
        EXPECT_EQ(serial.trace, sharded.trace) << "jobs=" << jobs;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllSchedulers, ScaleShardedEquivalence,
    ::testing::Range<std::size_t>(0, 6),
    [](const ::testing::TestParamInfo<std::size_t>& info) {
        std::string name =
            SchedulerConfigName(ComparisonSchedulers()[info.param]);
        for (char& c : name) {
            if (c == '-') {
                c = '_';
            }
        }
        return name;
    });

TEST(ScaleSharded, ExplicitCoreCrewEngagesBelowAutoThreshold)
{
    // core_jobs > 1 always engages (the auto gate applies only to 0), so
    // the lockstep core phase is testable at small, fast configs too.
    SchedulerConfig scheduler;
    scheduler.kind = SchedulerKind::kParBs;
    constexpr CpuCycle kCycles = 60000;
    const Artifacts serial =
        RunSystem(TracedConfig(16, scheduler, 1), 16, kCycles);
    for (const unsigned crew : {2u, 4u}) {
        SystemConfig config = TracedConfig(16, scheduler, 4);
        config.core_jobs = crew;
        const Artifacts sharded = RunSystem(config, 16, kCycles);
        ASSERT_TRUE(sharded.sharded) << "crew=" << crew;
        ASSERT_EQ(sharded.core_crew, crew) << "crew=" << crew;
        EXPECT_EQ(serial.stop, sharded.stop) << "crew=" << crew;
        EXPECT_EQ(serial.stats, sharded.stats) << "crew=" << crew;
        EXPECT_EQ(serial.trace, sharded.trace) << "crew=" << crew;
    }
}

TEST(ScaleSharded, AutoCoreCrewGatesOnCoreCount)
{
    SchedulerConfig scheduler;
    scheduler.kind = SchedulerKind::kFrFcfs;
    {
        // Below 32 cores, auto keeps the core sweep serial.
        SystemConfig config = SystemConfig::Baseline(16);
        config.scheduler = scheduler;
        config.channel_jobs = 4;
        System system(config, SyntheticTraces(config, 16));
        ASSERT_TRUE(system.sharded());
        EXPECT_EQ(system.core_crew(), 1u);
    }
    {
        // From 32 cores up, auto matches the channel crew.
        SystemConfig config = SystemConfig::Baseline(64);
        config.scheduler = scheduler;
        config.channel_jobs = 8;
        System system(config, SyntheticTraces(config, 64));
        ASSERT_TRUE(system.sharded());
        EXPECT_EQ(system.core_crew(), 8u);
    }
    {
        // core_jobs = 1 forces the serial sweep at any scale.
        SystemConfig config = SystemConfig::Baseline(64);
        config.scheduler = scheduler;
        config.channel_jobs = 8;
        config.core_jobs = 1;
        System system(config, SyntheticTraces(config, 64));
        ASSERT_TRUE(system.sharded());
        EXPECT_EQ(system.core_crew(), 1u);
    }
}

TEST(ScaleSharded, RankScaledBaselineStaysIdenticalAt128Cores)
{
    // Baseline(128) saturates the channel cap and doubles the ranks; the
    // sharded engine must be exact on rank-scaled geometries too.
    SchedulerConfig scheduler;
    scheduler.kind = SchedulerKind::kParBs;
    constexpr CpuCycle kCycles = 8000;
    auto config = [&](unsigned jobs) {
        SystemConfig out = SystemConfig::Baseline(128);
        out.scheduler = scheduler;
        out.channel_jobs = jobs;
        return out;
    };
    const Artifacts serial = RunSystem(config(1), 128, kCycles);
    const Artifacts sharded = RunSystem(config(8), 128, kCycles);
    ASSERT_TRUE(sharded.sharded);
    EXPECT_EQ(serial.stop, sharded.stop);
    EXPECT_EQ(serial.stats, sharded.stats);
}

TEST(ScaleSharded, BaselineGeometryScalesByRanksBeyond64Cores)
{
    const SystemConfig b64 = SystemConfig::Baseline(64);
    EXPECT_EQ(b64.geometry.channels, 16u);
    EXPECT_EQ(b64.geometry.ranks_per_channel, 1u);
    const SystemConfig b128 = SystemConfig::Baseline(128);
    EXPECT_EQ(b128.geometry.channels, 16u);
    EXPECT_EQ(b128.geometry.ranks_per_channel, 2u);
    const SystemConfig b256 = SystemConfig::Baseline(256);
    EXPECT_EQ(b256.geometry.channels, 16u);
    EXPECT_EQ(b256.geometry.ranks_per_channel, 4u);
    const SystemConfig wide = SystemConfig::Baseline(64, 8);
    EXPECT_EQ(wide.geometry.channels, 8u);
    EXPECT_EQ(wide.geometry.ranks_per_channel, 2u);
    // All of them must pass full validation (the old cores/4 rule pushed
    // 128 cores to an invalid 32-channel geometry).
    b64.Validate();
    b128.Validate();
    b256.Validate();
    wide.Validate();
    EXPECT_THROW(SystemConfig::Baseline(64, 3), ConfigError);
    EXPECT_THROW(SystemConfig::Baseline(64, 32), ConfigError);
}

TEST(ScaleSharded, SampledSelectionVerifyNeverChangesResults)
{
    // The sampled cross-check must be observation-free: period 61 and the
    // exhaustive period 1 run the same simulation byte for byte (sampling
    // only decides how often the redundant reference path re-runs).
    SchedulerConfig scheduler;
    scheduler.kind = SchedulerKind::kParBs;
    auto config = [&](std::uint32_t period) {
        SystemConfig out = SystemConfig::Baseline(16);
        out.scheduler = scheduler;
        out.controller.verify_indexed_selection = true;
        out.controller.verify_sample_period = period;
        return out;
    };
    const Artifacts exhaustive = RunSystem(config(1), 16, 40000);
    const Artifacts sampled = RunSystem(config(61), 16, 40000);
    EXPECT_EQ(exhaustive.stop, sampled.stop);
    EXPECT_EQ(exhaustive.stats, sampled.stats);
}

} // namespace
} // namespace parbs
